"""Kernel-side TCP/UDP sockets (active open).

Apps on the device use these sockets exactly as they would the Android
kernel stack; so does MopEye for its *external* connections.  Whether a
socket's packets go out of the radio directly or get captured into the
VPN tunnel is decided per-packet by the device's routing layer, which is
what makes the ``protect()``/``addDisallowedApplication`` semantics of
section 3.5.2 observable: an unprotected VPN-app socket loops its own
traffic back into the tunnel.

Timing rule: the kernel emits a SYN immediately when ``connect()`` is
issued and completes the connect when the SYN/ACK arrives -- "invoking a
connect() call will immediately send out a SYN packet, and the call
returns just after receiving a SYN-ACK packet" (section 2.4).  This
makes the connect() duration the wire RTT plus only local issue costs.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Tuple

from repro.netstack.ip import IPPacket, PROTO_TCP, PROTO_UDP
from repro.netstack.tcp_segment import ACK, FIN, PSH, RST, SYN, TCPSegment
from repro.netstack.tcp_state import seq_add
from repro.netstack.udp_datagram import UDPDatagram
from repro.sim.kernel import Event, Simulator


class SocketClosed(Exception):
    """Operation on a closed socket."""


class ConnectionRefused(Exception):
    """The peer answered the SYN with RST."""


class ConnectTimeout(Exception):
    """SYN retransmissions exhausted without an answer."""


class NetworkUnreachable(Exception):
    """The network reported no route to the destination (the ICMP
    destination-unreachable feedback path; see Internet.notify_unreachable)."""


# /proc/net/tcp state codes (include/net/tcp_states.h).
TCP_ESTABLISHED = 0x01
TCP_SYN_SENT = 0x02
TCP_FIN_WAIT1 = 0x04
TCP_FIN_WAIT2 = 0x05
TCP_TIME_WAIT = 0x06
TCP_CLOSE = 0x07
TCP_CLOSE_WAIT = 0x08
TCP_LAST_ACK = 0x09

_SYN_RTO_MS = 1000.0
_SYN_RETRIES = 5


class KernelTcpSocket:
    """One connected TCP socket owned by an app (identified by UID)."""

    MSS = 1460

    def __init__(self, device, uid: int, protected: bool = False,
                 ipv6: bool = False, isn_rng=None):
        self.device = device
        self.sim: Simulator = device.sim
        self.uid = uid
        self.protected = protected
        self.ipv6 = ipv6  # which /proc/net table the socket shows in
        self.state = TCP_CLOSE
        self.local_ip: Optional[str] = None
        self.local_port: Optional[int] = None
        self.remote_ip: Optional[str] = None
        self.remote_port: Optional[int] = None
        # The ISN draw normally comes from the shared device stream;
        # callers whose socket count may vary between otherwise
        # identical runs (the cluster uploader) pass their own stream
        # so app-measurement draws stay untouched.
        self._snd_nxt = (isn_rng or device.rng).randrange(1 << 32)
        self._snd_una = self._snd_nxt  # lowest unacknowledged seq
        self._rcv_nxt: Optional[int] = None
        self._connect_event: Optional[Event] = None
        self._recv_chunks: Deque[bytes] = deque()
        self._recv_waiters: Deque[Event] = deque()
        # Flow control: the peer's advertised receive window limits
        # our in-flight bytes; pending data waits here.
        self._send_buffer: Deque[bytes] = deque()
        self._peer_window = 65535
        self._fin_pending = False
        self._fin_sent = False
        self._delack_count = 0  # delayed ACK: every 2nd segment/PSH
        self._eof_delivered = False
        self._syn_attempts = 0
        self.peer_mss: Optional[int] = None
        self.bytes_sent = 0
        self.bytes_received = 0
        self.connected_at: Optional[float] = None
        # NIO readiness hook: called with (socket, kind) on state
        # changes; kind in {"connect", "read"}.
        self.listener = None
        self.reset_received = False

    def _notify(self, kind: str) -> None:
        if self.listener is not None:
            self.listener(self, kind)

    @property
    def readable(self) -> bool:
        """Data queued or EOF/RST pending -- NIO read readiness."""
        return bool(self._recv_chunks) or self._eof_delivered

    # -- helpers ---------------------------------------------------------------
    def _segment(self, flags: int, payload: bytes = b"",
                 mss: Optional[int] = None) -> TCPSegment:
        return TCPSegment(self.local_port, self.remote_port,
                          seq=self._snd_nxt, ack=self._rcv_nxt or 0,
                          flags=flags, payload=payload, mss=mss)

    def _transmit(self, segment: TCPSegment) -> None:
        packet = IPPacket(self.local_ip, self.remote_ip, PROTO_TCP,
                          segment.encode(self.local_ip, self.remote_ip))
        self.device.transmit(self, packet)

    # -- API ------------------------------------------------------------------
    def connect(self, ip: str, port: int) -> Event:
        """Start the three-way handshake; the event triggers when the
        connection is established (or fails)."""
        if self.state != TCP_CLOSE or self._connect_event is not None:
            raise SocketClosed("socket already used")
        self.remote_ip = ip
        self.remote_port = port
        self.local_ip = self.device.source_ip_for(self)
        self.local_port = self.device.allocate_port()
        self.state = TCP_SYN_SENT
        self.device.register_socket(self)
        self._connect_event = self.sim.event("connect")
        self._send_syn()
        return self._connect_event

    def _send_syn(self) -> None:
        self._syn_attempts += 1
        self._transmit(self._segment(SYN, mss=self.MSS))
        attempt = self._syn_attempts
        timer = self.sim.timeout(_SYN_RTO_MS * (2 ** (attempt - 1)))
        timer.callbacks.append(lambda _evt: self._syn_timer(attempt))

    def _syn_timer(self, attempt: int) -> None:
        if self.state != TCP_SYN_SENT or attempt != self._syn_attempts:
            return
        if attempt >= _SYN_RETRIES:
            self.state = TCP_CLOSE
            self.device.unregister_socket(self)
            event, self._connect_event = self._connect_event, None
            if event and not event.triggered:
                event.fail(ConnectTimeout("%s:%d" % (self.remote_ip,
                                                     self.remote_port)))
            return
        self._send_syn()

    def send(self, data: bytes) -> None:
        """Segment and queue application data; transmission respects
        the peer's advertised receive window (classic flow control --
        MopEye advertises 65,535 bytes toward the apps, section 3.4)."""
        if self.state not in (TCP_ESTABLISHED, TCP_CLOSE_WAIT):
            raise SocketClosed("send in state 0x%02x" % self.state)
        for start in range(0, len(data), self.MSS):
            self._send_buffer.append(data[start:start + self.MSS])
        self.bytes_sent += len(data)
        self._flush_send_buffer()

    def _inflight(self) -> int:
        return (self._snd_nxt - self._snd_una) % (1 << 32)

    def _flush_send_buffer(self) -> None:
        while self._send_buffer:
            chunk = self._send_buffer[0]
            # Always allow one segment in flight even under a tiny
            # window (stop-and-wait floor; avoids the silly-window
            # deadlock when window < MSS).
            if self._inflight() > 0 and \
                    self._inflight() + len(chunk) > self._peer_window:
                return
            self._send_buffer.popleft()
            flags = ACK | (PSH if not self._send_buffer else 0)
            segment = self._segment(flags, payload=chunk)
            self._snd_nxt = seq_add(self._snd_nxt, len(chunk))
            self._transmit(segment)
        if self._fin_pending and not self._send_buffer:
            self._fin_pending = False
            self._send_fin()

    def recv(self) -> Event:
        """The next chunk of received bytes; ``b""`` signals EOF."""
        event = self.sim.event("recv")
        if self._recv_chunks:
            event.succeed(self._recv_chunks.popleft())
        elif self._eof_delivered or self.state in (TCP_CLOSE,
                                                   TCP_TIME_WAIT):
            event.succeed(b"")
        else:
            self._recv_waiters.append(event)
        return event

    def recv_exactly(self, size: int):
        """Generator: accumulate ``size`` bytes (or until EOF)."""
        buffer = bytearray()
        while len(buffer) < size:
            chunk = yield self.recv()
            if not chunk:
                break
            buffer.extend(chunk)
        return bytes(buffer)

    def close(self) -> None:
        """Orderly close (FIN); defers until buffered data drains."""
        if self.state in (TCP_ESTABLISHED, TCP_CLOSE_WAIT):
            if self._send_buffer:
                self._fin_pending = True
            else:
                self._send_fin()
        elif self.state == TCP_SYN_SENT:
            self.state = TCP_CLOSE
            self.device.unregister_socket(self)

    def _send_fin(self) -> None:
        self._transmit(self._segment(FIN | ACK))
        self._snd_nxt = seq_add(self._snd_nxt, 1)
        self.state = (TCP_FIN_WAIT1 if self.state == TCP_ESTABLISHED
                      else TCP_LAST_ACK)
        self._fin_sent = True

    def abort(self) -> None:
        """RST the connection."""
        if self.state not in (TCP_CLOSE, TCP_TIME_WAIT):
            self._transmit(self._segment(RST | ACK))
        self._teardown(deliver_eof=True)

    def _teardown(self, deliver_eof: bool) -> None:
        self.state = TCP_CLOSE
        self.device.unregister_socket(self)
        self._eof_delivered = True
        if deliver_eof:
            while self._recv_waiters:
                waiter = self._recv_waiters.popleft()
                if not waiter.triggered:
                    waiter.succeed(b"")
        self._notify("read")

    # -- packet input (from device demux) -----------------------------------------
    def handle_segment(self, segment: TCPSegment) -> None:
        if segment.is_rst:
            self._on_rst()
            return
        if self.state == TCP_SYN_SENT:
            if segment.is_syn_ack:
                self._on_syn_ack(segment)
            return
        if segment.is_fin:
            self._on_fin(segment)
            return
        if segment.payload:
            self._on_data(segment)
            return
        # Pure ACK: advance the send window and flush queued data.
        self._register_ack(segment)
        if self._fin_sent and segment.ack == self._snd_nxt:
            if self.state == TCP_FIN_WAIT1:
                self.state = TCP_FIN_WAIT2
            elif self.state == TCP_LAST_ACK:
                self._teardown(deliver_eof=True)

    def _register_ack(self, segment: TCPSegment) -> None:
        acked = (segment.ack - self._snd_una) % (1 << 32)
        if 0 < acked <= self._inflight():
            self._snd_una = segment.ack
        self._peer_window = segment.window
        self._flush_send_buffer()

    def _on_syn_ack(self, segment: TCPSegment) -> None:
        self._rcv_nxt = seq_add(segment.seq, 1)
        self._snd_nxt = seq_add(self._snd_nxt, 1)
        self._snd_una = self._snd_nxt
        self._peer_window = segment.window
        self.peer_mss = segment.mss
        self.state = TCP_ESTABLISHED
        self.connected_at = self.sim.now
        self._transmit(self._segment(ACK))
        event, self._connect_event = self._connect_event, None
        if event and not event.triggered:
            event.succeed(self)
        self._notify("connect")

    def _on_data(self, segment: TCPSegment) -> None:
        self._register_ack(segment)
        if segment.seq != self._rcv_nxt:
            return  # stale duplicate; tunnel/link delivery is in order
        self._rcv_nxt = seq_add(self._rcv_nxt, len(segment.payload))
        self.bytes_received += len(segment.payload)
        # Delayed ACK (RFC 1122): acknowledge every second segment.
        # (No delack timer: nothing in the simulated stacks retransmits
        # on a missing trailing ACK.)
        self._delack_count += 1
        if self._delack_count >= 2:
            self._delack_count = 0
            self._transmit(self._segment(ACK))
        while self._recv_waiters:
            waiter = self._recv_waiters.popleft()
            if not waiter.triggered:
                waiter.succeed(segment.payload)
                return
        self._recv_chunks.append(segment.payload)
        self._notify("read")

    def _on_fin(self, segment: TCPSegment) -> None:
        payload = segment.payload
        if payload:
            self._rcv_nxt = seq_add(self._rcv_nxt, len(payload))
            self.bytes_received += len(payload)
            self._recv_chunks.append(payload)
        self._rcv_nxt = seq_add(self._rcv_nxt, 1)
        self._transmit(self._segment(ACK))
        if self.state == TCP_ESTABLISHED:
            self.state = TCP_CLOSE_WAIT
        elif self.state in (TCP_FIN_WAIT1, TCP_FIN_WAIT2):
            self.state = TCP_TIME_WAIT
            self.device.unregister_socket(self)
        self._eof_delivered = True
        while self._recv_waiters:
            waiter = self._recv_waiters.popleft()
            if not waiter.triggered:
                waiter.succeed(self._recv_chunks.popleft()
                               if self._recv_chunks else b"")
        self._notify("read")

    def _on_rst(self) -> None:
        self.reset_received = True
        refused = self.state == TCP_SYN_SENT
        event, self._connect_event = self._connect_event, None
        self._teardown(deliver_eof=True)
        if refused and event and not event.triggered:
            event.fail(ConnectionRefused("%s:%d" % (self.remote_ip,
                                                    self.remote_port)))

    def on_unreachable(self) -> None:
        """ICMP destination-unreachable feedback for this flow: fail a
        pending connect now instead of burning five SYN retries."""
        if self.state != TCP_SYN_SENT:
            return
        event, self._connect_event = self._connect_event, None
        self._teardown(deliver_eof=True)
        if event and not event.triggered:
            event.fail(NetworkUnreachable("%s:%d" % (self.remote_ip,
                                                     self.remote_port)))

    # -- views ------------------------------------------------------------------
    @property
    def four_tuple(self) -> Tuple[str, int, str, int]:
        return (self.local_ip, self.local_port,
                self.remote_ip, self.remote_port)

    def __repr__(self) -> str:
        return "<KernelTcpSocket uid=%d %s:%s->%s:%s state=0x%02x>" % (
            self.uid, self.local_ip, self.local_port, self.remote_ip,
            self.remote_port, self.state)


class KernelUdpSocket:
    """A connectionless UDP socket (used by the DNS stub resolver)."""

    def __init__(self, device, uid: int, protected: bool = False,
                 ipv6: bool = False):
        self.device = device
        self.sim: Simulator = device.sim
        self.uid = uid
        self.protected = protected
        self.ipv6 = ipv6
        self.local_ip: Optional[str] = None
        self.local_port: Optional[int] = None
        self.remote_ip: Optional[str] = None
        self.remote_port: Optional[int] = None
        self.closed = False
        self._inbox: Deque[Tuple[bytes, Tuple[str, int]]] = deque()
        self._waiters: Deque[Event] = deque()
        self.state = TCP_CLOSE  # procfs uses 07 for unconnected UDP

    def _ensure_bound(self) -> None:
        if self.local_port is None:
            self.local_ip = self.device.source_ip_for(self)
            self.local_port = self.device.allocate_port()
            self.device.register_socket(self)

    def sendto(self, data: bytes, ip: str, port: int) -> None:
        if self.closed:
            raise SocketClosed("sendto on closed socket")
        self._ensure_bound()
        self.remote_ip, self.remote_port = ip, port
        datagram = UDPDatagram(self.local_port, port, data)
        packet = IPPacket(self.local_ip, ip, PROTO_UDP,
                          datagram.encode(self.local_ip, ip))
        self.device.transmit(self, packet)

    def recvfrom(self) -> Event:
        if self.closed:
            raise SocketClosed("recvfrom on closed socket")
        self._ensure_bound()
        event = self.sim.event("recvfrom")
        if self._inbox:
            event.succeed(self._inbox.popleft())
        else:
            self._waiters.append(event)
        return event

    def handle_datagram(self, datagram: UDPDatagram, src_ip: str) -> None:
        item = (datagram.payload, (src_ip, datagram.src_port))
        while self._waiters:
            waiter = self._waiters.popleft()
            if not waiter.triggered:
                waiter.succeed(item)
                return
        self._inbox.append(item)

    def close(self) -> None:
        self.closed = True
        if self.local_port is not None:
            self.device.unregister_socket(self)
        while self._waiters:
            waiter = self._waiters.popleft()
            if not waiter.triggered:
                waiter.fail(SocketClosed("socket closed"))

    @property
    def protocol(self) -> int:
        return PROTO_UDP

    def __repr__(self) -> str:
        return "<KernelUdpSocket uid=%d %s:%s>" % (
            self.uid, self.local_ip, self.local_port)
