"""The TUN virtual network device behind ``VpnService``.

The TUN fd is a point-to-point IP link: the kernel routes every app's
outgoing IP packet into the *outgoing* queue (read by the VPN app), and
whatever the VPN app writes back is injected into the device's stack as
an incoming packet.

Blocking semantics follow section 3.1 exactly:

* Android 5.0+ exposes ``setBlocking`` via the SDK;
* on 4.0--4.4 the fd can only be made blocking through ``fcntl()`` at
  the native level or Java reflection into ``libcore.io.IoUtils``;
* a blocked ``read()`` cannot be interrupted -- the only way to release
  it is to push a packet through the tunnel (the dummy-packet trick).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Optional

from repro.netstack.ip import IPPacket
from repro.sim.kernel import Event, Simulator
from repro.sim.queues import Semaphore


class TunError(Exception):
    """Raised for illegal TUN operations (API gates, closed fd)."""


class TunDevice:
    """A simulated ``/dev/tun`` file descriptor."""

    BLOCKING_API_MIN_SDK = 21  # Android 5.0

    def __init__(self, sim: Simulator, device, mtu: int = 1500):
        self.sim = sim
        self.device = device
        self.mtu = mtu
        self.blocking = False
        self.closed = False
        # Outgoing: kernel -> VPN app, stamped with the enqueue instant
        # so readers' retrieval delay (section 3.1) is measurable.
        self._outgoing: Deque[tuple] = deque()
        self._readers: Deque[Event] = deque()
        self.retrieval_delays: list = []
        # The single fd is shared by every writer thread; contention on
        # it is the directWrite problem of section 3.5.1.
        self.write_lock = Semaphore(sim, 1, name="tun-fd")
        self.reads = 0
        self.writes = 0

    # -- blocking-mode control (section 3.1) ------------------------------
    def set_blocking_via_api(self, blocking: bool) -> None:
        """``ParcelFileDescriptor``-level API, Android 5.0+ only."""
        if self.device.sdk < self.BLOCKING_API_MIN_SDK:
            raise TunError(
                "setBlocking API requires SDK >= %d (device has %d)"
                % (self.BLOCKING_API_MIN_SDK, self.device.sdk))
        self.blocking = blocking

    def set_blocking_via_fcntl(self, blocking: bool) -> None:
        """Native ``fcntl(F_SETFL)``; available on every version."""
        self.blocking = blocking

    def set_blocking_via_reflection(self, blocking: bool) -> None:
        """Java reflection into ``libcore.io.IoUtils.setBlocking``,
        present since Android's inception (section 3.1)."""
        self.blocking = blocking

    # -- kernel side -----------------------------------------------------------
    def inject_outgoing(self, packet: IPPacket) -> None:
        """Called by the device's routing layer for each app packet the
        VPN captures."""
        if self.closed:
            return
        if packet.total_length > self.mtu:
            raise TunError("packet exceeds MTU (%d > %d)"
                           % (packet.total_length, self.mtu))
        while self._readers:
            reader = self._readers.popleft()
            if not reader.triggered:
                self.retrieval_delays.append(0.0)
                reader.succeed(packet)
                return
        self._outgoing.append((packet, self.sim.now))

    @property
    def pending_outgoing(self) -> int:
        return len(self._outgoing)

    # -- VPN-app side ---------------------------------------------------------
    def read(self) -> Event:
        """Read one packet in blocking mode: the returned event triggers
        when a packet is available.  There is no timeout and no way to
        interrupt it -- exactly the section 3.1 constraint."""
        if not self.blocking:
            raise TunError("read() used in non-blocking mode; "
                           "use try_read() + your own sleep loop")
        if self.closed:
            raise TunError("read on closed tun fd")
        self.reads += 1
        event = self.sim.event("tun-read")
        if self._outgoing:
            event.succeed(self._pop())
        else:
            self._readers.append(event)
        return event

    def _pop(self) -> IPPacket:
        packet, stamped = self._outgoing.popleft()
        self.retrieval_delays.append(self.sim.now - stamped)
        return packet

    def try_read(self) -> Optional[IPPacket]:
        """Non-blocking read: None when no packet is waiting (the
        ToyVpn/Haystack polling style)."""
        if self.closed:
            raise TunError("read on closed tun fd")
        self.reads += 1
        if self._outgoing:
            return self._pop()
        return None

    def write(self, packet: IPPacket) -> None:
        """Write one response packet toward the apps.  The caller is
        responsible for modelling the syscall cost and for holding
        :attr:`write_lock` if it cares about fd contention."""
        if self.closed:
            raise TunError("write on closed tun fd")
        self.writes += 1
        self.device.deliver_from_tun(packet)

    def close(self) -> None:
        self.closed = True
        while self._readers:
            reader = self._readers.popleft()
            if not reader.triggered:
                reader.fail(TunError("tun fd closed"))
