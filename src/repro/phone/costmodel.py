"""Per-device operation cost model.

Every timing assumption in the reproduction lives here, with the source
of each default noted.  All values are milliseconds of virtual time.
Defaults describe a Nexus-6-class phone, the device the paper used for
its microbenchmarks.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.sim.distributions import (
    Constant,
    Distribution,
    LogNormal,
    Mixture,
    Normal,
    Uniform,
)


class DeviceCostModel:
    """Sampled costs for syscalls and framework operations.

    Parameters default to values that reproduce the paper's measured
    distributions; every experiment that depends on one names it
    explicitly in EXPERIMENTS.md.
    """

    def __init__(self, rng: Optional[random.Random] = None):
        rng = rng or random.Random(2017)
        self.rng = rng

        # -- TUN device (sections 3.1, 3.5.1) --------------------------------
        # A read()/write() syscall on the tun fd: ~0.1 ms level ("tunnel
        # writing (at the 0.1ms level)", section 3.5.1).
        self.tun_read_syscall = LogNormal(0.14, 0.4).bind(rng)
        self.tun_write_syscall = LogNormal(0.13, 0.5).bind(rng)
        # Extra cost when several threads contend for the single tun fd
        # (the directWrite failure mode of Table 1: 42/1244 samples
        # above 1 ms, two above 20 ms).
        self.tun_write_contended = Mixture([
            (0.962, LogNormal(0.25, 0.5)),
            (0.030, Uniform(1.0, 5.0)),
            (0.008, Uniform(5.0, 25.0)),
        ]).bind(rng)

        # -- queue hand-off (section 3.5.1) --------------------------------
        # Plain enqueue is "at the microsecond level".
        self.enqueue = LogNormal(0.004, 0.4).bind(rng)
        # Monitor notify when the consumer is parked in wait(): the
        # oldPut tail (47/810 samples > 1 ms).
        self.monitor_notify = Mixture([
            (0.80, LogNormal(0.02, 0.5)),
            (0.17, Uniform(1.0, 5.0)),
            (0.03, Uniform(5.0, 10.0)),
        ]).bind(rng)
        # Thread re-scheduling after notify() before wait() returns.
        self.monitor_wakeup_delay = Mixture([
            (0.90, LogNormal(0.05, 0.5)),
            (0.10, Uniform(0.5, 2.0)),
        ]).bind(rng)

        # -- packet processing -------------------------------------------------
        self.packet_parse = LogNormal(0.008, 0.3).bind(rng)
        self.packet_build = LogNormal(0.05, 0.3).bind(rng)

        # -- packet-to-app mapping (section 3.3) -----------------------------
        # Parsing /proc/net/tcp6|tcp for one SYN, Figure 5(a): >75 % of
        # samples above 5 ms, >10 % above 15 ms on a Nexus 6.
        self.proc_parse = LogNormal(7.8, 0.62).bind(rng)
        # PackageManager UID -> name lookup (cached after first call).
        self.uid_lookup = LogNormal(0.4, 0.4).bind(rng)

        # -- NIO (sections 2.4, 3.4) -----------------------------------------
        # register() on a selector "can sometimes be very expensive".
        self.selector_register = Mixture([
            (0.9, LogNormal(0.05, 0.5)),
            (0.1, Uniform(1.0, 4.0)),
        ]).bind(rng)
        self.selector_select = LogNormal(0.02, 0.3).bind(rng)
        # Spawning a temporary socket-connect thread.
        self.thread_spawn = LogNormal(2.3, 0.3).bind(rng)
        # socket()/connect() issue cost (not the network RTT).
        self.socket_create = LogNormal(0.4, 0.4).bind(rng)
        self.connect_issue = LogNormal(0.15, 0.4).bind(rng)
        self.socket_read = LogNormal(0.04, 0.4).bind(rng)
        self.socket_write = LogNormal(0.06, 0.4).bind(rng)

        # -- VpnService (section 3.5.2) ----------------------------------------
        # protect(socket): "a delay overhead which could be up to
        # several milliseconds".
        self.vpn_protect = Mixture([
            (0.55, LogNormal(0.35, 0.5)),
            (0.35, Uniform(0.8, 3.0)),
            (0.10, Uniform(3.0, 8.0)),
        ]).bind(rng)
        # addDisallowedApplication(): one-time, during initialisation.
        self.vpn_add_disallowed = Constant(1.0)

        # -- DNS processing (section 2.4) ----------------------------------------
        self.dns_parse = LogNormal(0.15, 0.4).bind(rng)
        self.dns_socket_init = LogNormal(0.3, 0.4).bind(rng)

        # -- timestamping ----------------------------------------------------------
        # MopEye uses System.nanoTime (sub-microsecond); MobiPerf used a
        # millisecond-granularity method (section 4.1.1).
        self.nano_clock_granularity = 1e-6
        self.milli_clock_granularity = 1.0

    def quantize_nano(self, t_ms: float) -> float:
        g = self.nano_clock_granularity
        return int(t_ms / g) * g

    def quantize_milli(self, t_ms: float) -> float:
        g = self.milli_clock_granularity
        return int(t_ms / g) * g
