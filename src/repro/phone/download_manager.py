"""``DownloadManager``: the dummy-request trick of section 3.1.

On Android 5.0+ MopEye's own packets no longer traverse the tunnel
(``addDisallowedApplication``), so the only way to release a blocked
TUN ``read()`` is to make *another* app send a packet.  MopEye uses
DownloadManager because its download provider runs under its own UID
and reliably issues a network request.
"""

from __future__ import annotations

from repro.sim.kernel import Event

DOWNLOADS_PACKAGE = "com.android.providers.downloads"


class DownloadManager:
    def __init__(self, device):
        self.device = device
        self.uid = device.packages.install(DOWNLOADS_PACKAGE)
        self.requests = 0

    def enqueue(self, server_ip: str, port: int = 80) -> Event:
        """Issue a small HTTP download from the downloads provider's
        own UID.  Its SYN traverses the VPN tunnel (the provider is not
        in the disallowed list), which releases a blocked TunReader.
        Returns the process event."""
        self.requests += 1
        return self.device.sim.process(
            self._download(server_ip, port), name="dummy-download")

    def _download(self, server_ip: str, port: int):
        socket = self.device.create_tcp_socket(self.uid)
        try:
            yield socket.connect(server_ip, port)
        except Exception:
            return None
        socket.send(b"GET /dummy HTTP/1.1\r\n\r\n")
        response = yield socket.recv()
        socket.close()
        return response
