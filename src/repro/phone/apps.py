"""Simulated apps: the traffic sources MopEye measures.

Each app owns a UID and opens ordinary kernel sockets, so its traffic is
captured by the VPN exactly like a real app's.  Workloads:

* :class:`WebBrowsingApp` -- bursts of short connections to many
  domains (the section 3.3 lazy-mapping scenario);
* :class:`SpeedtestApp` -- bulk DOWNLOAD/UPLOAD transfers plus a
  connect-latency ping (Tables 2/3 reference tool);
* :class:`StreamingApp` -- a long chunked video session (Table 4);
* :class:`ConnectProbeApp` -- the "simple tool that invokes connect()"
  used for the section 4.1.2 delay-overhead experiment.

All workload methods are generators meant to run as simulation
processes.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from repro.phone.ktcp import (
    ConnectionRefused,
    ConnectTimeout,
    NetworkUnreachable,
)
from repro.sim.kernel import Event, Simulator


class App:
    """An installed application with its own UID."""

    def __init__(self, device, package: str, ipv6_share: float = 0.0,
                 rng: Optional[random.Random] = None):
        self.device = device
        self.sim: Simulator = device.sim
        self.package = package
        self.uid = device.packages.install(package)
        self.ipv6_share = ipv6_share
        self.rng = rng or random.Random(device.rng.randrange(1 << 30))
        # (dst_ip, dst_port, connect_duration_ms, started_at)
        self.connect_samples: List[Tuple[str, int, float, float]] = []
        self.failures = 0

    def _new_socket(self):
        ipv6 = self.rng.random() < self.ipv6_share
        return self.device.create_tcp_socket(self.uid, ipv6=ipv6)

    def spawn(self, generator, name: Optional[str] = None) -> Event:
        return self.sim.process(generator, name=name or self.package)

    # -- building blocks ----------------------------------------------------
    def timed_connect(self, ip: str, port: int):
        """Generator: connect and record the app-observed duration.
        Returns the connected socket (or None on failure)."""
        socket = self._new_socket()
        start = self.sim.now
        try:
            yield socket.connect(ip, port)
        except (ConnectionRefused, ConnectTimeout, NetworkUnreachable):
            self.failures += 1
            return None
        self.connect_samples.append((ip, port, self.sim.now - start,
                                     start))
        return socket

    def request(self, ip: str, port: int, payload: bytes,
                read_response: bool = True, close: bool = True):
        """Generator: one request/response exchange.  Returns the
        response bytes (b"" when none / failed)."""
        socket = yield from self.timed_connect(ip, port)
        if socket is None:
            return b""
        socket.send(payload)
        response = b""
        if read_response:
            response = yield socket.recv()
        if close:
            socket.close()
        return response

    def resolve_and_request(self, domain: str, port: int, payload: bytes):
        """Generator: DNS lookup then request (what real apps do)."""
        address = yield self.device.resolve_process(domain)
        response = yield from self.request(address, port, payload)
        return address, response


class WebBrowsingApp(App):
    """Chrome-like bursts: each page load opens several connections to
    different origins nearly simultaneously."""

    def browse(self, pages: List[List[Tuple[str, int]]],
               page_think_ms: float = 200.0):
        """Generator: ``pages`` is a list of pages, each a list of
        (ip, port) origins fetched concurrently."""
        for page in pages:
            fetches = [self.spawn(self.request(ip, port,
                                               b"GET /page HTTP/1.1\r\n\r\n"),
                                  name="fetch") for ip, port in page]
            yield self.sim.all_of(fetches)
            yield self.sim.timeout(page_think_ms)
        return len(self.connect_samples)


class SpeedtestApp(App):
    """Ookla-style reference tool: throughput and latency."""

    def ping(self, ip: str, port: int = 80):
        """Generator: connect-based latency probe; returns ms."""
        start = self.sim.now
        socket = yield from self.timed_connect(ip, port)
        if socket is None:
            return None
        duration = self.sim.now - start
        socket.close()
        return duration

    def download(self, ip: str, size_bytes: int, port: int = 80):
        """Generator: bulk download; returns measured Mbps."""
        socket = yield from self.timed_connect(ip, port)
        if socket is None:
            return 0.0
        socket.send(b"DOWNLOAD %d\n" % size_bytes)
        start = self.sim.now
        received = yield from socket.recv_exactly(size_bytes)
        elapsed_ms = self.sim.now - start
        socket.close()
        if elapsed_ms <= 0:
            return 0.0
        return (len(received) * 8) / (elapsed_ms * 1000.0)

    def upload(self, ip: str, size_bytes: int, port: int = 80,
               chunk: int = 16384):
        """Generator: bulk upload paced by rount-trip acking; returns
        measured Mbps."""
        socket = yield from self.timed_connect(ip, port)
        if socket is None:
            return 0.0
        socket.send(b"UPLOAD %d\n" % size_bytes)
        start = self.sim.now
        sent = 0
        while sent < size_bytes:
            block = min(chunk, size_bytes - sent)
            socket.send(b"u" * block)
            sent += block
            # Writing is throttled by the path: yield so transmissions
            # serialise on the uplink.
            yield self.sim.timeout(0.01)
        confirmation = yield socket.recv()
        elapsed_ms = self.sim.now - start
        socket.close()
        if elapsed_ms <= 0 or not confirmation:
            return 0.0
        return (sent * 8) / (elapsed_ms * 1000.0)


class StreamingApp(App):
    """YouTube-like: one long session fetching media chunks."""

    def stream(self, ip: str, duration_ms: float,
               chunk_bytes: int = 262144, chunk_interval_ms: float = 2000.0,
               port: int = 443):
        """Generator: fetch chunks periodically for ``duration_ms``.
        Returns the number of chunks fetched."""
        socket = yield from self.timed_connect(ip, port)
        if socket is None:
            return 0
        chunks = 0
        deadline = self.sim.now + duration_ms
        while self.sim.now < deadline:
            socket.send(b"DOWNLOAD %d\n" % chunk_bytes)
            yield from socket.recv_exactly(chunk_bytes)
            chunks += 1
            yield self.sim.timeout(chunk_interval_ms)
        socket.close()
        return chunks


class ConnectProbeApp(App):
    """The section 4.1.2 tool: repeated connect() timing."""

    def probe(self, ip: str, port: int, rounds: int,
              gap_ms: float = 50.0):
        """Generator: ``rounds`` sequential connects; returns the list
        of durations in ms."""
        durations = []
        for _ in range(rounds):
            socket = yield from self.timed_connect(ip, port)
            if socket is not None:
                durations.append(self.connect_samples[-1][2])
                socket.close()
            yield self.sim.timeout(gap_ms)
        return durations
