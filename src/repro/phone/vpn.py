"""``VpnService`` emulation (establish / protect / addDisallowedApplication).

The routing semantics of section 3.5.2 are the point of this module:

* once the VPN is established, *every* socket's packets are captured
  into the TUN device -- including the VPN app's own sockets, which is
  the data-loop hazard;
* ``protect(socket)`` exempts one socket and costs up to several
  milliseconds;
* ``addDisallowedApplication(pkg)`` (Android 5.0+/SDK 21) exempts a
  whole app once, at initialisation time.
"""

from __future__ import annotations

from typing import Optional, Set

from repro.phone.tun import TunDevice
from repro.sim.kernel import Event


class VpnError(Exception):
    """Illegal VpnService usage (API gates, double establish)."""


class VpnService:
    """One VPN client app's service instance."""

    ADD_DISALLOWED_MIN_SDK = 21  # Android 5.0

    def __init__(self, device, owner_package: str):
        self.device = device
        self.owner_package = owner_package
        self.owner_uid = device.packages.install(owner_package)
        self.tun: Optional[TunDevice] = None
        self.disallowed_uids: Set[int] = set()
        self.protect_calls = 0
        #: True after the system revoked consent; cleared by the next
        #: successful establish().
        self.revoked = False
        #: onRevoke() callback: the owning app's teardown hook.
        self.on_revoked = None
        self.revocations = 0

    @property
    def active(self) -> bool:
        return self.tun is not None and not self.tun.closed

    def new_builder(self) -> "VpnBuilder":
        return VpnBuilder(self)

    # -- routing policy -----------------------------------------------------
    def captures(self, socket) -> bool:
        """Would this socket's traffic be routed into the tunnel?"""
        if getattr(socket, "protected", False):
            return False
        return socket.uid not in self.disallowed_uids

    # -- exemptions -----------------------------------------------------------
    def protect(self, socket) -> Event:
        """Exempt one socket from VPN routing.  Returns the event that
        completes after the call's (potentially multi-ms) cost."""
        if not self.active:
            raise VpnError("protect() before establish()")
        self.protect_calls += 1
        socket.protected = True
        cost = self.device.costs.vpn_protect.sample()
        return self.device.busy(cost, "vpn.protect")

    def add_disallowed_application(self, package: str) -> Event:
        """Exempt a whole application (SDK >= 21 only)."""
        if self.device.sdk < self.ADD_DISALLOWED_MIN_SDK:
            raise VpnError(
                "addDisallowedApplication requires SDK >= %d (device "
                "has %d)" % (self.ADD_DISALLOWED_MIN_SDK, self.device.sdk))
        uid = self.device.packages.uid_for_name(package)
        if uid is None:
            uid = self.device.packages.install(package)
        self.disallowed_uids.add(uid)
        cost = self.device.costs.vpn_add_disallowed.sample()
        return self.device.busy(cost, "vpn.init")

    def revoke(self) -> None:
        """The system revoked VPN consent (the Android ``onRevoke()``
        path: another VPN app claimed the slot, or the user disabled
        it).  Flags the service and fires the owner's teardown hook;
        the tun keeps working until the owner closes it, exactly like
        the platform behaviour."""
        if not self.active:
            return
        self.revoked = True
        self.revocations += 1
        if self.on_revoked is not None:
            self.on_revoked()

    def stop(self) -> None:
        if self.tun is not None:
            self.tun.close()
        self.device.vpn = None
        self.tun = None


class VpnBuilder:
    """``VpnService.Builder``: configure and establish the TUN."""

    def __init__(self, service: VpnService):
        self.service = service
        self.mtu = 1500
        self.address: Optional[str] = None
        self._established = False

    def set_mtu(self, mtu: int) -> "VpnBuilder":
        if mtu < 576:
            raise VpnError("MTU too small: %d" % mtu)
        self.mtu = mtu
        return self

    def add_address(self, address: str) -> "VpnBuilder":
        self.address = address
        return self

    def establish(self) -> TunDevice:
        """User consented; create the TUN and start capturing."""
        if self._established:
            raise VpnError("builder already established")
        device = self.service.device
        if device.vpn is not None and device.vpn.active:
            raise VpnError("another VPN is already active")
        self._established = True
        if self.address:
            device.tun_address = self.address
        tun = TunDevice(device.sim, device, mtu=self.mtu)
        self.service.tun = tun
        self.service.revoked = False
        device.vpn = self.service
        return tun
