"""``/proc/net/tcp|tcp6|udp|udp6`` rendering and parsing.

The four pseudo files are MopEye's only way to attribute a connection to
an app (section 2.2): each row carries the connection's local/remote
endpoints and the owning app's UID.  The renderer emits the real Linux
format -- IPv4 addresses as little-endian hex, ports as big-endian hex,
IPv6 rows with v4-mapped addresses -- and the parser consumes it, so the
mapping code is tested against genuine proc text.
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Tuple

from repro.netstack.ip import PROTO_TCP, PROTO_UDP, ip_to_int, ip_to_str

_TCP_HEADER = ("  sl  local_address rem_address   st tx_queue rx_queue tr "
               "tm->when retrnsmt   uid  timeout inode")
_TCP6_HEADER = ("  sl  local_address                         "
                "remote_address                        st tx_queue rx_queue "
                "tr tm->when retrnsmt   uid  timeout inode")


class ProcNetEntry(NamedTuple):
    local_ip: str
    local_port: int
    remote_ip: str
    remote_port: int
    state: int
    uid: int


def _hex_v4(address: str) -> str:
    """IPv4 address in /proc/net little-endian hex ('0100007F')."""
    value = ip_to_int(address)
    swapped = ((value & 0xFF) << 24 | (value & 0xFF00) << 8
               | (value & 0xFF0000) >> 8 | (value & 0xFF000000) >> 24)
    return "%08X" % swapped


def _unhex_v4(text: str) -> str:
    value = int(text, 16)
    swapped = ((value & 0xFF) << 24 | (value & 0xFF00) << 8
               | (value & 0xFF0000) >> 8 | (value & 0xFF000000) >> 24)
    return ip_to_str(swapped)


def _hex_v6_mapped(address: str) -> str:
    """A v4-mapped IPv6 address as /proc/net/tcp6 renders it: three
    32-bit groups then the v4 part, each group little-endian."""
    return "0000000000000000FFFF0000" + _hex_v4(address)


def _parse_address(token: str) -> Tuple[str, int]:
    addr_hex, port_hex = token.split(":")
    port = int(port_hex, 16)
    if len(addr_hex) == 8:
        return _unhex_v4(addr_hex), port
    if len(addr_hex) == 32:
        return _unhex_v4(addr_hex[24:]), port  # v4-mapped tail
    raise ValueError("unparseable /proc/net address %r" % token)


class ProcFs:
    """Renders the four pseudo files from the device's socket registry."""

    FILES = ("tcp", "tcp6", "udp", "udp6")

    def __init__(self, device):
        self.device = device
        self._inode = 10000
        self.reads = 0

    def read(self, filename: str) -> str:
        if filename not in self.FILES:
            raise FileNotFoundError("/proc/net/%s" % filename)
        self.reads += 1
        protocol = PROTO_TCP if filename.startswith("tcp") else PROTO_UDP
        want_v6 = filename.endswith("6")
        rows = []
        for socket in self.device.sockets(protocol):
            if bool(getattr(socket, "ipv6", False)) != want_v6:
                continue
            rows.append(self._render_row(len(rows), socket, want_v6))
        header = _TCP6_HEADER if want_v6 else _TCP_HEADER
        return "\n".join([header] + rows) + "\n"

    def _render_row(self, sl: int, socket, v6: bool) -> str:
        local_ip = socket.local_ip or "0.0.0.0"
        remote_ip = socket.remote_ip or "0.0.0.0"
        local_port = socket.local_port or 0
        remote_port = socket.remote_port or 0
        hexer = _hex_v6_mapped if v6 else _hex_v4
        self._inode += 1
        return ("%4d: %s:%04X %s:%04X %02X 00000000:00000000 00:00000000 "
                "00000000 %5d        0 %d 1 0000000000000000 20 4 30 10 -1"
                % (sl, hexer(local_ip), local_port, hexer(remote_ip),
                   remote_port, socket.state, socket.uid, self._inode))

    def entries(self, filename: str) -> List[ProcNetEntry]:
        """Convenience: read + parse."""
        return parse_proc_net(self.read(filename))


def parse_proc_net(text: str) -> List[ProcNetEntry]:
    """Parse /proc/net/tcp|tcp6|udp|udp6 text into entries."""
    entries = []
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("sl"):
            continue
        fields = line.split()
        if len(fields) < 8:
            continue
        try:
            local_ip, local_port = _parse_address(fields[1])
            remote_ip, remote_port = _parse_address(fields[2])
            state = int(fields[3], 16)
            uid = int(fields[7])
        except (ValueError, IndexError):
            continue
        entries.append(ProcNetEntry(local_ip, local_port, remote_ip,
                                    remote_port, state, uid))
    return entries


def build_uid_map(entries: List[ProcNetEntry]
                  ) -> Dict[Tuple[str, int, str, int], int]:
    """Index entries by four-tuple for O(1) mapping lookups."""
    return {(e.local_ip, e.local_port, e.remote_ip, e.remote_port): e.uid
            for e in entries}
