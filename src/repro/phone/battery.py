"""Battery model: CPU + radio energy accounting for Table 4.

A principled replacement for a flat CPU->battery factor: energy is
integrated from

* CPU busy time (per-core active power),
* radio transmission/reception (energy per byte by technology),
* radio tail time (the high-power lingering after each burst -- the
  dominant cellular cost identified by Huang et al. [28]).

Constants are representative of a Nexus-6-class device with a ~3220 mAh
battery and are documented inline; the Table 4 bench uses relative
consumption (MopEye vs Haystack), which is insensitive to their
absolute scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.network.link import NetworkType

# Representative power/energy constants.
CPU_ACTIVE_MW = 900.0          # one busy core
BATTERY_MWH = 3220 * 3.8       # 3220 mAh at 3.8 V nominal

# Energy per transferred byte (radio TX/RX averaged), uJ/byte.
_ENERGY_PER_BYTE_UJ = {
    NetworkType.WIFI: 0.35,
    NetworkType.LTE: 1.0,
    NetworkType.UMTS: 2.5,
    NetworkType.GPRS: 4.0,
}

# Radio tail: high-power dwell after each activity burst.
_TAIL_MW = {
    NetworkType.WIFI: 120.0,
    NetworkType.LTE: 1080.0,
    NetworkType.UMTS: 800.0,
    NetworkType.GPRS: 400.0,
}
_TAIL_MS = {
    NetworkType.WIFI: 200.0,
    NetworkType.LTE: 10_000.0,
    NetworkType.UMTS: 5_000.0,
    NetworkType.GPRS: 2_000.0,
}

# RRC promotion energy (mJ per full promotion): the promotion delay at
# high-state power (LTE ~260 ms at ~1080 mW, UMTS ~2 s at ~800 mW).
# WiFi has no RRC machine, so promotions are free there.
_PROMOTION_MJ = {
    NetworkType.WIFI: 0.0,
    NetworkType.LTE: 280.0,
    NetworkType.UMTS: 1600.0,
    NetworkType.GPRS: 200.0,
}


def flow_energy_mj(network_type: str, nbytes: int,
                   duration_ms: float = 0.0,
                   promotions_full: int = 0,
                   promotions_partial: int = 0) -> float:
    """Radio energy attributable to one flow, in millijoules.

    Three components, all from the constants above: per-byte TX/RX
    cost, powered-radio dwell over the flow's lifetime (capped at the
    technology's tail timer -- a longer flow re-arms the tail rather
    than paying it repeatedly), and RRC promotion energy when the flow
    triggered promotions (a partial promotion costs half a full one).
    This is the per-app energy modality's sample value (see
    docs/MODALITIES.md); an unknown technology is charged at WiFi
    rates.
    """
    wifi = NetworkType.WIFI
    energy = (_ENERGY_PER_BYTE_UJ.get(network_type,
                                      _ENERGY_PER_BYTE_UJ[wifi])
              * max(0, nbytes) / 1000.0)
    tail_ms = _TAIL_MS.get(network_type, _TAIL_MS[wifi])
    tail_mw = _TAIL_MW.get(network_type, _TAIL_MW[wifi])
    energy += tail_mw * min(max(duration_ms, 0.0), tail_ms) / 1000.0
    promo_mj = _PROMOTION_MJ.get(network_type, 0.0)
    energy += promo_mj * (max(0, promotions_full)
                          + 0.5 * max(0, promotions_partial))
    return energy


@dataclass
class BatteryReport:
    cpu_mwh: float
    radio_bytes_mwh: float
    radio_tail_mwh: float

    @property
    def total_mwh(self) -> float:
        return self.cpu_mwh + self.radio_bytes_mwh \
            + self.radio_tail_mwh

    @property
    def battery_pct(self) -> float:
        return 100.0 * self.total_mwh / BATTERY_MWH

    def scaled_to_hours(self, run_ms: float,
                        hours: float = 1.0) -> float:
        """Battery % this workload would cost if sustained for
        ``hours`` of wall time."""
        if run_ms <= 0:
            return 0.0
        return self.battery_pct * (hours * 3600_000.0 / run_ms)


class BatteryModel:
    """Estimates energy from a device's meters over a run."""

    def __init__(self, device):
        self.device = device

    def report(self, elapsed_ms: float,
               cpu_prefixes: tuple = ("",),
               bytes_transferred: Optional[int] = None,
               burst_count: Optional[int] = None) -> BatteryReport:
        """Integrate energy for a run of ``elapsed_ms``.

        ``cpu_prefixes`` selects which CpuMeter components count (e.g.
        only MopEye's); ``bytes_transferred`` / ``burst_count`` default
        to the access link's counters.
        """
        cpu_ms = sum(self.device.cpu.total(prefix)
                     for prefix in cpu_prefixes)
        cpu_mwh = CPU_ACTIVE_MW * cpu_ms / 3600_000.0

        link = self.device.link
        tech = link.network_type
        if bytes_transferred is None:
            bytes_transferred = link.up.bytes_sent \
                + link.down.bytes_sent
        bytes_mwh = (_ENERGY_PER_BYTE_UJ[tech] * bytes_transferred
                     / 3.6e9)  # uJ -> mWh

        if burst_count is None:
            # One tail per activity gap is an upper bound; approximate
            # bursts as packet groups ~20 packets apart.
            packets = link.up.packets_sent + link.down.packets_sent
            burst_count = max(1, packets // 20)
        tail_ms = min(elapsed_ms,
                      burst_count * _TAIL_MS[tech])
        tail_mwh = _TAIL_MW[tech] * tail_ms / 3600_000.0
        return BatteryReport(cpu_mwh, bytes_mwh, tail_mwh)
