"""``PackageManager``: installed apps and UID -> package-name lookup.

MopEye resolves each connection's UID to an app name with
``PackageManager`` APIs (section 2.2); the lookup has a modelled cost
and results are cacheable by the caller.
"""

from __future__ import annotations

from typing import Dict, List, Optional


class PackageManager:
    def __init__(self, device):
        self.device = device
        self._by_uid: Dict[int, str] = {}
        self._by_package: Dict[str, int] = {}
        self.lookups = 0

    def install(self, package: str) -> int:
        """Install a package; returns its (new or existing) UID."""
        if package in self._by_package:
            return self._by_package[package]
        uid = self.device.allocate_uid()
        self._by_uid[uid] = package
        self._by_package[package] = uid
        return uid

    def install_system(self, package: str, uid: int) -> int:
        """Register a system package at a fixed UID (e.g. netd)."""
        self._by_uid[uid] = package
        self._by_package[package] = uid
        return uid

    def name_for_uid(self, uid: int) -> Optional[str]:
        """``getPackagesForUid``-style lookup (cost charged by caller
        via ``device.costs.uid_lookup``)."""
        self.lookups += 1
        return self._by_uid.get(uid)

    def uid_for_name(self, package: str) -> Optional[int]:
        return self._by_package.get(package)

    def installed_packages(self) -> List[str]:
        return sorted(self._by_package)

    def __len__(self) -> int:
        return len(self._by_package)
