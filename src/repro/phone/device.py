"""The Android device: routing, socket demux, DNS stub, CPU meter.

The device owns the kernel view of the phone: every socket any app
creates registers here, outgoing packets are routed either through the
VPN tunnel or straight to the radio (section 3.5.2 semantics), and
incoming packets are demultiplexed back to their sockets.  The socket
registry is also the backing store for ``/proc/net/tcp*``.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from repro.netstack.dns import DNSMessage, RCODE_NOERROR
from repro.netstack.ip import IPPacket, PROTO_TCP, PROTO_UDP
from repro.netstack.tcp_segment import TCPSegment
from repro.netstack.udp_datagram import UDPDatagram
from repro.phone.costmodel import DeviceCostModel
from repro.phone.ktcp import KernelTcpSocket, KernelUdpSocket
from repro.phone.package_manager import PackageManager
from repro.phone.procfs import ProcFs
from repro.sim.kernel import AnyOf, Event, Simulator

SYSTEM_UID = 1000
DNS_UID = 1051  # netd
FIRST_APP_UID = 10000

_DNS_TIMEOUT_MS = 5000.0
_DNS_RETRIES = 2


class ResolveError(Exception):
    """DNS resolution failed (NXDOMAIN, SERVFAIL, or timeout)."""


class CpuMeter:
    """Accumulates busy milliseconds per component for Table 4."""

    def __init__(self) -> None:
        self.busy_ms: Dict[str, float] = {}
        self.started_at = 0.0

    def charge(self, component: str, ms: float) -> None:
        self.busy_ms[component] = self.busy_ms.get(component, 0.0) + ms

    def total(self, prefix: str = "") -> float:
        return sum(ms for name, ms in self.busy_ms.items()
                   if name.startswith(prefix))

    def utilisation(self, elapsed_ms: float, prefix: str = "") -> float:
        """Fraction of wall time spent busy in components matching
        ``prefix`` (0..1, can exceed 1 with real parallelism)."""
        if elapsed_ms <= 0:
            return 0.0
        return self.total(prefix) / elapsed_ms


class AndroidDevice:
    """One smartphone attached to an :class:`~repro.network.Internet`."""

    def __init__(self, sim: Simulator, internet, link, ip: str = "100.64.0.2",
                 sdk: int = 23, dns_server_ip: str = "8.8.8.8",
                 cost_model: Optional[DeviceCostModel] = None,
                 rng: Optional[random.Random] = None,
                 model: str = "Nexus 6"):
        self.sim = sim
        self.internet = internet
        self.link = link
        self.ip = ip
        self.sdk = sdk
        self.model = model
        self.dns_server_ip = dns_server_ip
        self.rng = rng or random.Random(99)
        self.costs = cost_model or DeviceCostModel(self.rng)
        self.cpu = CpuMeter()
        self.tun_address = "10.8.0.2"
        self.vpn = None  # set by VpnService.establish()
        self.packages = PackageManager(self)
        self.procfs = ProcFs(self)
        self._sockets: Dict[Tuple[int, int], List[object]] = {}
        self._next_port = 40000
        self._next_uid = FIRST_APP_UID
        internet.attach_device(self)

    # -- identity ---------------------------------------------------------
    def allocate_uid(self) -> int:
        uid = self._next_uid
        self._next_uid += 1
        return uid

    def allocate_port(self) -> int:
        port = self._next_port
        self._next_port += 1
        if self._next_port > 64999:
            self._next_port = 40000
        return port

    # -- CPU model ----------------------------------------------------------
    def busy(self, ms: float, component: str) -> Event:
        """Charge ``ms`` of CPU to ``component`` and return the timeout
        that represents doing that work."""
        self.cpu.charge(component, ms)
        return self.sim.timeout(ms)

    # -- socket registry ------------------------------------------------------
    def register_socket(self, socket) -> None:
        proto = PROTO_UDP if isinstance(socket, KernelUdpSocket) else PROTO_TCP
        key = (proto, socket.local_port)
        self._sockets.setdefault(key, []).append(socket)

    def unregister_socket(self, socket) -> None:
        proto = PROTO_UDP if isinstance(socket, KernelUdpSocket) else PROTO_TCP
        key = (proto, socket.local_port)
        entries = self._sockets.get(key)
        if entries and socket in entries:
            entries.remove(socket)
            if not entries:
                del self._sockets[key]

    def sockets(self, protocol: Optional[int] = None) -> List[object]:
        out = []
        for (proto, _port), entries in self._sockets.items():
            if protocol is None or proto == protocol:
                out.extend(entries)
        return out

    def create_tcp_socket(self, uid: int, protected: bool = False,
                          ipv6: bool = False,
                          isn_rng=None) -> KernelTcpSocket:
        return KernelTcpSocket(self, uid, protected=protected, ipv6=ipv6,
                               isn_rng=isn_rng)

    def create_udp_socket(self, uid: int,
                          protected: bool = False) -> KernelUdpSocket:
        return KernelUdpSocket(self, uid, protected=protected)

    # -- routing (section 3.5.2) ------------------------------------------------
    def source_ip_for(self, socket) -> str:
        if self.vpn is not None and self.vpn.active \
                and self.vpn.captures(socket):
            return self.tun_address
        return self.ip

    def transmit(self, socket, packet: IPPacket) -> None:
        if self.vpn is not None and self.vpn.active \
                and self.vpn.captures(socket):
            self.vpn.tun.inject_outgoing(packet)
        else:
            self.internet.send_from_device(self, packet)

    # -- demux -------------------------------------------------------------------
    def deliver_from_network(self, packet: IPPacket) -> None:
        self._demux(packet)

    def deliver_from_tun(self, packet: IPPacket) -> None:
        """Packets the VPN app writes to the tunnel (server -> app
        direction, or a looped outgoing packet)."""
        self._demux(packet)

    def deliver_unreachable(self, original: IPPacket) -> None:
        """ICMP destination-unreachable feedback: ``original`` is the
        outgoing packet the network could not route.  Find the owning
        socket (the original's *source* port is its local port) and let
        it fail a pending connect."""
        if original.protocol != PROTO_TCP:
            return
        segment = TCPSegment.decode(original.payload)
        socket = self._find(PROTO_TCP, segment.src_port,
                            original.dst_str, segment.dst_port)
        if socket is not None and hasattr(socket, "on_unreachable"):
            socket.on_unreachable()

    def _demux(self, packet: IPPacket) -> None:
        if packet.protocol == PROTO_TCP:
            segment = TCPSegment.decode(packet.payload)
            socket = self._find(PROTO_TCP, segment.dst_port,
                                packet.src_str, segment.src_port)
            if socket is not None:
                socket.handle_segment(segment)
        elif packet.protocol == PROTO_UDP:
            datagram = UDPDatagram.decode(packet.payload)
            socket = self._find(PROTO_UDP, datagram.dst_port,
                                packet.src_str, datagram.src_port)
            if socket is not None:
                socket.handle_datagram(datagram, packet.src_str)

    def _find(self, proto: int, local_port: int, remote_ip: str,
              remote_port: int):
        entries = self._sockets.get((proto, local_port), ())
        for socket in entries:
            if socket.remote_ip in (None, remote_ip) and \
                    socket.remote_port in (None, remote_port):
                return socket
        return None

    # -- DNS stub resolver (system-wide, section 2.2) ---------------------------
    def resolve(self, name: str, uid: int = DNS_UID):
        """Generator: resolve ``name`` via UDP DNS; returns the address.

        Run it as a process: ``address = yield device.resolve_process(name)``.
        """
        last_error = "timeout"
        for _attempt in range(_DNS_RETRIES):
            socket = self.create_udp_socket(uid)
            txid = self.rng.randrange(1 << 16)
            query = DNSMessage.query(txid, name)
            socket.sendto(query.encode(), self.dns_server_ip, 53)
            reply = socket.recvfrom()
            timer = self.sim.timeout(_DNS_TIMEOUT_MS)
            yield AnyOf(self.sim, [reply, timer])
            if not reply.triggered:
                socket.close()
                continue
            payload, _addr = reply.value
            socket.close()
            response = DNSMessage.decode(payload)
            if response.txid != txid:
                last_error = "txid mismatch"
                continue
            if response.rcode != RCODE_NOERROR or not response.answers:
                raise ResolveError("%s: rcode=%d" % (name, response.rcode))
            return response.answers[0].address
        raise ResolveError("%s: %s" % (name, last_error))

    def resolve_process(self, name: str, uid: int = DNS_UID) -> Event:
        return self.sim.process(self.resolve(name, uid),
                                name="resolve:%s" % name)

    def __repr__(self) -> str:
        return "<AndroidDevice %s ip=%s sdk=%d>" % (self.model, self.ip,
                                                    self.sdk)
