"""Java-NIO-style non-blocking sockets: ``SocketChannel`` + ``Selector``.

MopEye relays data with non-blocking SocketChannels driven by a single
selector (section 2.3), but runs each ``connect()`` in blocking mode in
a temporary thread so the post-connect timestamp is exact (section 2.4).
Both modes are provided here.

The selector also implements the section 3.2 trick: ``wakeup()`` lets
another thread (TunReader) break a pending ``select()`` so one thread
can monitor socket events *and* a packet queue.
"""

from __future__ import annotations

from typing import List, Optional

from repro.phone.ktcp import KernelTcpSocket
from repro.sim.kernel import Event, Simulator
from repro.sim.queues import Signal

OP_READ = 1
OP_WRITE = 4
OP_CONNECT = 8


class SocketChannel:
    """A selectable wrapper over a kernel TCP socket."""

    def __init__(self, device, uid: int, protected: bool = False,
                 ipv6: bool = False):
        self.device = device
        self.sim: Simulator = device.sim
        self.socket = device.create_tcp_socket(uid, protected=protected,
                                               ipv6=ipv6)
        self.socket.listener = self._on_socket_event
        self.blocking = True
        self.selector: Optional["Selector"] = None
        self.key: Optional["SelectionKey"] = None
        # Owner-managed write-pending flag: the paper's "socket write
        # event" is triggered by MopEye placing data in the write buffer.
        self.write_requested = False
        self.connected_event: Optional[Event] = None

    # -- configuration ----------------------------------------------------
    def configure_blocking(self, blocking: bool) -> "SocketChannel":
        self.blocking = blocking
        return self

    # -- connect ------------------------------------------------------------
    def connect(self, ip: str, port: int) -> Event:
        """Start connecting; the returned event triggers at the instant
        the handshake completes (blocking-connect semantics)."""
        self.connected_event = self.socket.connect(ip, port)
        return self.connected_event

    @property
    def is_connected(self) -> bool:
        from repro.phone.ktcp import TCP_ESTABLISHED, TCP_CLOSE_WAIT
        return self.socket.state in (TCP_ESTABLISHED, TCP_CLOSE_WAIT)

    # -- I/O -------------------------------------------------------------------
    def read(self) -> Optional[bytes]:
        """Non-blocking read: one buffered chunk, ``b""`` for EOF, or
        ``None`` when nothing is ready (Java's return of 0)."""
        if self.socket._recv_chunks:
            return self.socket._recv_chunks.popleft()
        if self.socket._eof_delivered:
            return b""
        return None

    def read_all(self) -> bytes:
        """Drain every buffered chunk."""
        out = bytearray()
        while self.socket._recv_chunks:
            out.extend(self.socket._recv_chunks.popleft())
        return bytes(out)

    def write(self, data: bytes) -> None:
        self.socket.send(data)

    def close(self) -> None:
        self.socket.close()
        if self.selector is not None:
            self.selector._deregister(self)

    def abort(self) -> None:
        self.socket.abort()
        if self.selector is not None:
            self.selector._deregister(self)

    def shutdown_output(self) -> None:
        """Half-close toward the server (relay of a tunnel FIN)."""
        self.socket.close()

    # -- readiness ---------------------------------------------------------------
    @property
    def readable(self) -> bool:
        return self.socket.readable

    @property
    def eof(self) -> bool:
        return self.socket._eof_delivered and not self.socket._recv_chunks

    def request_write(self) -> None:
        self.write_requested = True
        if self.selector is not None:
            self.selector._notify()

    def _on_socket_event(self, _socket: KernelTcpSocket,
                         _kind: str) -> None:
        if self.selector is not None:
            self.selector._notify()

    def __repr__(self) -> str:
        return "<SocketChannel %r>" % self.socket


class SelectionKey:
    def __init__(self, channel: SocketChannel, ops: int,
                 attachment: object = None):
        self.channel = channel
        self.interest_ops = ops
        self.attachment = attachment
        self.valid = True

    def cancel(self) -> None:
        self.valid = False


class Selector:
    """A single-thread readiness monitor with cross-thread wakeup."""

    def __init__(self, device):
        self.device = device
        self.sim: Simulator = device.sim
        self._keys: List[SelectionKey] = []
        self._signal = Signal(self.sim, "selector")
        self.select_rounds = 0
        self.wakeups = 0

    # -- registration (expensive: section 3.4) ------------------------------
    def register(self, channel: SocketChannel, ops: int,
                 attachment: object = None) -> Event:
        """Register a channel.  The returned event completes after the
        register() cost (sometimes milliseconds) and carries the key."""
        key = SelectionKey(channel, ops, attachment)
        self._keys.append(key)
        channel.selector = self
        channel.key = key
        cost = self.device.costs.selector_register.sample()
        done = self.device.busy(cost, "selector.register")
        result = self.sim.event("registered")
        done.callbacks.append(lambda _evt: result.succeed(key))
        # Readiness may already exist.
        self._notify()
        return result

    def _deregister(self, channel: SocketChannel) -> None:
        if channel.key is not None:
            channel.key.cancel()
        self._keys = [k for k in self._keys if k.valid]
        channel.selector = None
        channel.key = None

    # -- readiness ----------------------------------------------------------------
    def _ready_keys(self) -> List[SelectionKey]:
        ready = []
        for key in self._keys:
            if not key.valid:
                continue
            if key.interest_ops & OP_READ and key.channel.readable:
                ready.append(key)
            elif key.interest_ops & OP_WRITE and \
                    key.channel.write_requested:
                ready.append(key)
        return ready

    def _notify(self) -> None:
        self._signal.set()

    def wakeup(self) -> None:
        """Cross-thread wakeup (TunReader -> MainWorker, section 3.2)."""
        self.wakeups += 1
        self._signal.set()

    def select(self):
        """Generator: wait until >= 1 channel is ready *or* a wakeup
        arrives; returns the ready keys (possibly empty on wakeup)."""
        self.select_rounds += 1
        ready = self._ready_keys()
        if ready or self._signal.latched:
            self._signal.clear()
            return ready
        yield self._signal.wait()
        return self._ready_keys()

    def select_process(self) -> Event:
        return self.sim.process(self.select(), name="select")
