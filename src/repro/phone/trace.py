"""Workload traces: record/replay app network activity.

Evaluating a relay needs repeatable workloads.  A
:class:`WorkloadTrace` is a timestamped list of app-level network
events (requests, bulk transfers, DNS lookups) that can be saved as
JSON, loaded, generated synthetically, and replayed against any device
-- with or without MopEye running -- so two configurations can be
compared on identical traffic.
"""

from __future__ import annotations

import json
import random
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional

from repro.phone.apps import App
from repro.sim.kernel import Event, Simulator

ACTIONS = ("request", "download", "upload", "resolve")


@dataclass(frozen=True)
class TraceEvent:
    at_ms: float
    app: str                      # package name
    action: str                   # one of ACTIONS
    target: str                   # ip (request/download/upload) or domain
    port: int = 80
    size: int = 0                 # bytes for download/upload
    payload: str = "GET / HTTP/1.1\r\n\r\n"

    def __post_init__(self):
        if self.action not in ACTIONS:
            raise ValueError("unknown trace action %r" % self.action)
        if self.at_ms < 0:
            raise ValueError("negative timestamp")


class WorkloadTrace:
    def __init__(self, events: Optional[List[TraceEvent]] = None):
        self.events = sorted(events or [], key=lambda e: e.at_ms)

    def __len__(self) -> int:
        return len(self.events)

    @property
    def duration_ms(self) -> float:
        return self.events[-1].at_ms if self.events else 0.0

    def apps(self) -> List[str]:
        return sorted({event.app for event in self.events})

    # -- persistence ------------------------------------------------------
    def to_json(self) -> str:
        return json.dumps([asdict(event) for event in self.events],
                          indent=1)

    @classmethod
    def from_json(cls, text: str) -> "WorkloadTrace":
        return cls([TraceEvent(**item) for item in json.loads(text)])

    def save(self, path: str) -> None:
        with open(path, "w") as handle:
            handle.write(self.to_json())

    @classmethod
    def load(cls, path: str) -> "WorkloadTrace":
        with open(path) as handle:
            return cls.from_json(handle.read())

    # -- synthesis -----------------------------------------------------------
    @classmethod
    def generate(cls, endpoints: List[tuple], duration_ms: float,
                 events_per_minute: float = 30.0,
                 seed: int = 0) -> "WorkloadTrace":
        """Poisson-ish synthetic trace over ``endpoints`` entries of
        (package, ip_or_domain, port)."""
        rng = random.Random(seed)
        events = []
        t = 0.0
        mean_gap = 60_000.0 / events_per_minute
        while t < duration_ms:
            t += rng.expovariate(1.0 / mean_gap)
            if t >= duration_ms:
                break
            package, target, port = rng.choice(endpoints)
            roll = rng.random()
            if roll < 0.7:
                events.append(TraceEvent(t, package, "request",
                                         target, port))
            elif roll < 0.9:
                events.append(TraceEvent(
                    t, package, "download", target, port,
                    size=rng.choice([20_000, 100_000, 400_000])))
            else:
                events.append(TraceEvent(
                    t, package, "upload", target, port,
                    size=rng.choice([10_000, 50_000])))
        return cls(events)


class TraceReplayer:
    """Replays a trace on a device; one process per event app-side."""

    def __init__(self, device):
        self.device = device
        self.sim: Simulator = device.sim
        self._apps: Dict[str, App] = {}
        self.completed = 0
        self.failed = 0

    def app_for(self, package: str) -> App:
        if package not in self._apps:
            self._apps[package] = App(self.device, package)
        return self._apps[package]

    def replay(self, trace: WorkloadTrace) -> Event:
        """Returns the process event that triggers when every trace
        event has been issued and completed."""
        return self.sim.process(self._run(trace), name="trace-replay")

    def _run(self, trace: WorkloadTrace):
        start = self.sim.now
        pending = []
        for event in trace.events:
            delay = start + event.at_ms - self.sim.now
            if delay > 0:
                yield self.sim.timeout(delay)
            pending.append(self.sim.process(
                self._issue(event), name="trace-event"))
        if pending:
            yield self.sim.all_of(pending)
        return self.completed

    def _issue(self, event: TraceEvent):
        app = self.app_for(event.app)
        try:
            if event.action == "resolve":
                yield self.device.resolve_process(event.target)
            elif event.action == "request":
                yield from app.request(event.target, event.port,
                                       event.payload.encode())
            elif event.action == "download":
                socket = yield from app.timed_connect(event.target,
                                                      event.port)
                if socket is None:
                    self.failed += 1
                    return
                socket.send(b"DOWNLOAD %d\n" % event.size)
                yield from socket.recv_exactly(event.size)
                socket.close()
            elif event.action == "upload":
                socket = yield from app.timed_connect(event.target,
                                                      event.port)
                if socket is None:
                    self.failed += 1
                    return
                socket.send(b"UPLOAD %d\n" % event.size)
                socket.send(b"u" * event.size)
                yield socket.recv()
                socket.close()
            self.completed += 1
        except Exception:
            self.failed += 1
