"""Android-device emulation substrate.

Everything MopEye touches on a real phone is modelled here: the TUN
virtual network device behind ``VpnService``, the kernel TCP/UDP sockets
apps use, the ``/proc/net/*`` socket tables, ``PackageManager`` /
``DownloadManager``, non-blocking ``SocketChannel``/``Selector`` NIO,
and the apps themselves.  Per-operation costs (syscalls, proc parsing,
selector registration...) come from a :class:`~repro.phone.costmodel.
DeviceCostModel` so each experiment's timing assumptions are explicit.
"""

from repro.phone.costmodel import DeviceCostModel
from repro.phone.device import AndroidDevice, CpuMeter
from repro.phone.tun import TunDevice, TunError
from repro.phone.vpn import VpnBuilder, VpnService, VpnError
from repro.phone.procfs import parse_proc_net, ProcFs
from repro.phone.package_manager import PackageManager
from repro.phone.download_manager import DownloadManager
from repro.phone.ktcp import (
    ConnectionRefused,
    ConnectTimeout,
    KernelTcpSocket,
    KernelUdpSocket,
    SocketClosed,
)
from repro.phone.nio import SelectionKey, Selector, SocketChannel
from repro.phone.apps import App, ConnectProbeApp, SpeedtestApp, WebBrowsingApp
from repro.phone.battery import BatteryModel, BatteryReport

__all__ = [
    "AndroidDevice",
    "App",
    "BatteryModel",
    "BatteryReport",
    "ConnectProbeApp",
    "ConnectTimeout",
    "ConnectionRefused",
    "CpuMeter",
    "DeviceCostModel",
    "DownloadManager",
    "KernelTcpSocket",
    "KernelUdpSocket",
    "PackageManager",
    "ProcFs",
    "SelectionKey",
    "Selector",
    "SocketChannel",
    "SocketClosed",
    "SpeedtestApp",
    "TunDevice",
    "TunError",
    "VpnBuilder",
    "VpnError",
    "VpnService",
    "WebBrowsingApp",
    "parse_proc_net",
]
