"""Sharded, parallel generation of the full-scale campaign dataset.

The paper's §4.2 dataset is 5,252,758 records; generating it in one
process inside one in-memory store is both slow and RAM-hungry.  This
module fans the device population out across a ``multiprocessing``
worker pool.  Each worker regenerates its slice of devices from the
campaign seed alone and streams the records into a JSON-lines shard
file; the parent then merges shards by byte concatenation.

Correctness rests on the campaign's determinism contract
(:mod:`repro.crowd.campaign`): every device's record stream is a pure
function of ``(seed, device_id)``, so the merged dataset is
byte-identical no matter how many workers ran, how the pool scheduled
them, or what ``PYTHONHASHSEED`` each process drew.  Shard boundaries
are contiguous device ranges balanced by expected record count, and the
merge restores device order by concatenating shards in index order.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import tempfile
import time
from dataclasses import asdict, dataclass, field
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.obs import Observability, get_default

from repro.core.persist import (
    dataset_digest,
    iter_jsonl_shards,
    list_shards,
    merge_shards,
    record_to_line,
    shard_path,
)
from repro.core.records import MeasurementRecord, MeasurementStore
from repro.crowd.campaign import Campaign, CampaignConfig
from repro.crowd.population import Population


@dataclass(frozen=True)
class ShardSpec:
    """A contiguous device range assigned to one shard file."""
    index: int
    device_lo: int         # first device index (inclusive)
    device_hi: int         # last device index (exclusive)
    expected_records: int  # planning estimate, exact by construction


@dataclass(frozen=True)
class ShardResult:
    spec: ShardSpec
    path: str
    records: int
    sha256: str


@dataclass
class ShardedRunResult:
    shard_dir: str
    shards: List[ShardResult] = field(default_factory=list)
    merged_path: Optional[str] = None

    @property
    def total_records(self) -> int:
        return sum(shard.records for shard in self.shards)

    @property
    def paths(self) -> List[str]:
        return [shard.path for shard in self.shards]

    def digest(self) -> str:
        """SHA-256 of the merged dataset bytes (shard order)."""
        return dataset_digest(self.paths)

    def iter_records(self) -> Iterator[MeasurementRecord]:
        return iter_jsonl_shards(self.paths)

    def load(self) -> MeasurementStore:
        """Materialize everything (small scales / tests only)."""
        store = MeasurementStore()
        for record in self.iter_records():
            store.add(record)
        return store


def plan_shards(population: Population, scale: float,
                n_shards: int) -> List[ShardSpec]:
    """Split the device list into ``n_shards`` contiguous ranges with
    roughly equal expected record counts.  Contiguity is what lets the
    merge restore global device order by concatenation alone."""
    counts = [max(1, round(device.activity * scale))
              for device in population.devices]
    total = sum(counts)
    n_shards = max(1, min(n_shards, len(counts)))
    specs: List[ShardSpec] = []
    lo = 0
    acc = 0
    for index in range(n_shards):
        target = total * (index + 1) / n_shards
        hi = lo
        records = 0
        # Leave enough devices for the remaining shards to be nonempty.
        max_hi = len(counts) - (n_shards - index - 1)
        while hi < max_hi and (acc + records < target or hi == lo):
            records += counts[hi]
            hi += 1
        specs.append(ShardSpec(index=index, device_lo=lo, device_hi=hi,
                               expected_records=records))
        acc += records
        lo = hi
    return specs


def _generate_shard(task: Tuple[dict, int, int, int, str]
                    ) -> Tuple[int, int, str, float]:
    """Worker entry point: regenerate one device range from the seed
    and stream it to a shard file.  Rebuilds the campaign locally so
    the result never depends on inherited parent state (fork and spawn
    start methods behave identically).  The elapsed wall-clock seconds
    ride back for the parent's (volatile) throughput metrics."""
    config_kwargs, index, device_lo, device_hi, path = task
    campaign = Campaign(config=CampaignConfig(**config_kwargs))
    sha = hashlib.sha256()
    count = 0
    started = time.time()
    with open(path, "w") as handle:
        for device in campaign.population.devices[device_lo:device_hi]:
            for record in campaign.device_records(device):
                line = record_to_line(record) + "\n"
                handle.write(line)
                sha.update(line.encode("utf-8"))
                count += 1
    return index, count, sha.hexdigest(), time.time() - started


class ShardedCampaign:
    """Drive a :class:`Campaign` across a worker pool.

    ``workers=1`` runs inline (no pool, no pickling) and still writes
    shards, so the single- and multi-process paths share every byte of
    the serialization code they are compared on.
    """

    def __init__(self, config: Optional[CampaignConfig] = None,
                 workers: int = 1,
                 shard_dir: Optional[str] = None,
                 n_shards: Optional[int] = None,
                 obs: Optional[Observability] = None):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.config = config or CampaignConfig()
        self.workers = workers
        self.shard_dir = shard_dir
        self.obs = obs or get_default()
        # More shards than workers -> the pool balances dynamically
        # even though the activity law is heavy-tailed.
        self.n_shards = n_shards or max(1, workers) * 3
        self.population = Population(seed=self.config.seed + 1)

    def _tasks(self, shard_dir: str
               ) -> Tuple[List[Tuple[dict, int, int, int, str]],
                          List[ShardSpec]]:
        specs = plan_shards(self.population, self.config.scale,
                            self.n_shards)
        config_kwargs = asdict(self.config)
        return [(config_kwargs, spec.index, spec.device_lo,
                 spec.device_hi, shard_path(shard_dir, spec.index))
                for spec in specs], specs

    def run(self, merge_to: Optional[str] = None) -> ShardedRunResult:
        shard_dir = self.shard_dir or tempfile.mkdtemp(
            prefix="mopeye-shards-")
        os.makedirs(shard_dir, exist_ok=True)
        # Clear stale shards: a previous run with more shards would
        # otherwise leave extra shard-*.jsonl files that directory-level
        # readers (iter_jsonl_shards, dataset_digest) pick up.
        for stale in list_shards(shard_dir):
            os.remove(stale)
        tasks, specs = self._tasks(shard_dir)
        if self.workers == 1:
            outcomes = [_generate_shard(task) for task in tasks]
        else:
            methods = multiprocessing.get_all_start_methods()
            ctx = multiprocessing.get_context(
                "fork" if "fork" in methods else "spawn")
            with ctx.Pool(processes=self.workers) as pool:
                outcomes = pool.map(_generate_shard, tasks)
        result = ShardedRunResult(shard_dir=shard_dir)
        by_index = {index: (count, sha, elapsed)
                    for index, count, sha, elapsed in outcomes}
        for spec, task in zip(specs, tasks):
            count, sha, elapsed = by_index[spec.index]
            result.shards.append(ShardResult(
                spec=spec, path=task[4], records=count, sha256=sha))
            self.obs.inc("crowd.records_generated", count)
            self.obs.inc("crowd.shards_completed")
            self.obs.observe("crowd.shard_records", count)
            self.obs.observe("crowd.shard_elapsed_s", elapsed)
        if merge_to is not None:
            merge_shards(result.paths, merge_to)
            result.merged_path = merge_to
        return result
