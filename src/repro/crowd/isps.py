"""ISP catalog calibrated to the paper's Table 6 and Figures 10-11.

Each :class:`IspProfile` models one operator's network:

* ``dns`` -- the first-hop + resolver RTT distribution (what MopEye's
  DNS measurement sees).  Medians follow Table 6; the shapes follow
  Figure 11 (Singtel's sub-10 ms mass, Cricket's ~43 ms floor and large
  non-LTE share).
* ``access`` -- the radio access RTT component of app traffic.
* ``core_penalty_ms`` -- extra latency the operator's core network adds
  to *app* traffic but not to its local DNS (Jio's pathology in Case 2:
  app median 281 ms while DNS median is 59 ms).
* ``lte_share`` -- fraction of samples on real LTE vs. the operator's
  legacy network (Cricket 36 %, U.S. Cellular 55 % per §4.2.3).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.network.link import NetworkType
from repro.sim.distributions import (
    Distribution,
    LogNormal,
    Mixture,
    Shifted,
)


@dataclass
class IspProfile:
    name: str
    country: str
    network_type: str = NetworkType.LTE
    dns_median_ms: float = 50.0
    dns_sigma: float = 0.55
    dns_floor_ms: float = 0.0
    access_median_ms: float = 38.0
    access_sigma: float = 0.45
    core_penalty_ms: float = 0.0
    lte_share: float = 1.0
    legacy_dns_median_ms: float = 110.0
    # Relative share of dataset samples (Table 6 "# RTT" column).
    weight: float = 1.0

    def lte_dns_distribution(self, rng: random.Random) -> Distribution:
        """DNS RTT on this operator's LTE; ``dns_median_ms`` is the
        distribution's total median (floor included)."""
        return LogNormal(max(1.0, self.dns_median_ms
                             - self.dns_floor_ms),
                         self.dns_sigma,
                         shift=self.dns_floor_ms).bind(rng)

    def legacy_dns_distribution(self, rng: random.Random) -> Distribution:
        """DNS RTT on this operator's pre-4G (3G-class) network."""
        return LogNormal(max(1.0, self.legacy_dns_median_ms
                             - self.dns_floor_ms),
                         0.55, shift=self.dns_floor_ms).bind(rng)

    def dns_distribution(self, rng: random.Random) -> Distribution:
        """The operator's overall DNS RTT mix (Figure 11 shape)."""
        lte = self.lte_dns_distribution(rng)
        if self.lte_share >= 1.0:
            return lte
        legacy = self.legacy_dns_distribution(rng)
        return Mixture([(self.lte_share, lte),
                        (1.0 - self.lte_share, legacy)]).bind(rng)

    def access_distribution(self, rng: random.Random) -> Distribution:
        base = LogNormal(self.access_median_ms, self.access_sigma)
        if self.core_penalty_ms > 0:
            return Shifted(base, self.core_penalty_ms).bind(rng)
        return base.bind(rng)


# Table 6: 15 LTE operators (median DNS RTT as reported).  Weights are
# the table's sample counts in thousands.  Fig 11 shapes: Singtel gets a
# small sigma + no floor (14.7 % of RTTs below 10 ms); Cricket and U.S.
# Cellular get a ~43 ms floor and large non-LTE shares.
CELLULAR_ISPS: List[IspProfile] = [
    IspProfile("Verizon", "USA", dns_median_ms=46, dns_sigma=0.50,
               dns_floor_ms=6, access_median_ms=38, weight=80.2),
    IspProfile("Jio 4G", "India", dns_median_ms=59, dns_sigma=0.50,
               dns_floor_ms=8, access_median_ms=48,
               core_penalty_ms=225.0, weight=52.4),
    IspProfile("AT&T", "USA", dns_median_ms=53, dns_sigma=0.50,
               dns_floor_ms=7, access_median_ms=40, weight=51.4),
    IspProfile("Singtel", "Singapore", dns_median_ms=27, dns_sigma=0.75,
               dns_floor_ms=0, access_median_ms=24, weight=34.6),
    IspProfile("Boost Mobile", "USA", dns_median_ms=50, dns_sigma=0.50,
               dns_floor_ms=7, access_median_ms=40, weight=21.9),
    IspProfile("Sprint", "USA", dns_median_ms=51, dns_sigma=0.50,
               dns_floor_ms=7, access_median_ms=41, weight=20.9),
    IspProfile("3", "HK (China)", dns_median_ms=53, dns_sigma=0.48,
               dns_floor_ms=8, access_median_ms=40, weight=14.4),
    IspProfile("MetroPCS", "USA", dns_median_ms=60, dns_sigma=0.50,
               dns_floor_ms=8, access_median_ms=45, weight=13.3),
    IspProfile("T-Mobile", "USA", dns_median_ms=45, dns_sigma=0.50,
               dns_floor_ms=6, access_median_ms=37, weight=9.1),
    IspProfile("CMHK", "HK (China)", dns_median_ms=50, dns_sigma=0.48,
               dns_floor_ms=7, access_median_ms=39, weight=5.8),
    IspProfile("Celcom", "Malaysia", dns_median_ms=56, dns_sigma=0.50,
               dns_floor_ms=8, access_median_ms=44, weight=4.1),
    IspProfile("CSL", "HK (China)", dns_median_ms=61, dns_sigma=0.48,
               dns_floor_ms=8, access_median_ms=46, weight=3.1),
    IspProfile("Cricket", "USA", dns_median_ms=88, dns_sigma=0.42,
               dns_floor_ms=43, access_median_ms=60,
               lte_share=0.36, legacy_dns_median_ms=100, weight=2.8),
    IspProfile("Maxis", "Malaysia", dns_median_ms=40, dns_sigma=0.50,
               dns_floor_ms=6, access_median_ms=34, weight=2.4),
    IspProfile("U.S. Cellular", "USA", dns_median_ms=70, dns_sigma=0.42,
               dns_floor_ms=43, access_median_ms=55,
               lte_share=0.55, legacy_dns_median_ms=95, weight=2.0),
]

# 3G / 2G legacy operators backing Figure 10(b)'s technology split.
LEGACY_3G = IspProfile("generic-3G", "various",
                       network_type=NetworkType.UMTS,
                       dns_median_ms=105, dns_sigma=0.55,
                       access_median_ms=95, weight=1.0)
LEGACY_2G = IspProfile("generic-2G", "various",
                       network_type=NetworkType.GPRS,
                       dns_median_ms=755, dns_sigma=0.45,
                       access_median_ms=700, weight=1.0)

# WiFi: the dataset's WiFi DNS median is 33 ms, app-RTT median 58 ms.
WIFI_PROFILE_BY_COUNTRY: Dict[str, IspProfile] = {}


def wifi_profile_for(country: str) -> IspProfile:
    if country not in WIFI_PROFILE_BY_COUNTRY:
        WIFI_PROFILE_BY_COUNTRY[country] = IspProfile(
            "wifi-%s" % country.lower().replace(" ", "-"), country,
            network_type=NetworkType.WIFI,
            dns_median_ms=33, dns_sigma=0.65, dns_floor_ms=1,
            access_median_ms=22, access_sigma=0.55)
    return WIFI_PROFILE_BY_COUNTRY[country]


def isp_by_name(name: str) -> Optional[IspProfile]:
    for isp in CELLULAR_ISPS + [LEGACY_3G, LEGACY_2G]:
        if isp.name == name:
            return isp
    return None


def isps_for_country(country: str) -> List[IspProfile]:
    matches = [isp for isp in CELLULAR_ISPS if isp.country == country]
    if matches:
        return matches
    # Countries outside the named 15 get a generic LTE operator.
    return [IspProfile("lte-%s" % country.lower().replace(" ", "-"),
                       country, dns_median_ms=52, dns_sigma=0.52,
                       dns_floor_ms=7, access_median_ms=42)]
