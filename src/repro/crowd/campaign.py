"""The synthetic crowdsourcing campaign driver.

Generates a :class:`~repro.core.records.MeasurementStore` with the
paper dataset's structure: per-device heavy-tailed activity, WiFi vs
cellular context switching, per-ISP DNS behaviour, per-app/per-domain
path latencies, and a 68/32 TCP/DNS split (3,576,931 TCP + 1,675,827
DNS = 5,252,758 records at full scale).

``scale`` linearly scales every device's measurement count so the whole
pipeline stays fast; population structure (devices, apps, countries) is
never scaled.

Determinism contract: every device's record stream is a pure function
of ``(config.seed, device_id)``.  Each device gets its own
:class:`random.Random` seeded from a string key (string seeding hashes
through SHA-512, so it is stable across processes and immune to
``PYTHONHASHSEED``), and destination IPs are derived from a CRC-32 of
the domain rather than Python's randomized ``hash()``.  Any partition
of the device list therefore yields byte-identical records no matter
how many workers generate it -- the property
:class:`~repro.crowd.sharding.ShardedCampaign` builds on.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Tuple

from repro.core.records import (
    MeasurementKind,
    MeasurementRecord,
    MeasurementStore,
)
from repro.crowd.appcatalog import AppCatalog, DomainProfile, build_catalog
from repro.crowd.isps import IspProfile
from repro.crowd.population import CrowdDevice, Population
from repro.network.link import NetworkType
from repro.sim.distributions import Distribution, Exponential, LogNormal

_TCP_FRACTION = 3576931 / 5252758  # from section 4.2.1
_DURATION_MS = 232 * 24 * 3600 * 1000.0  # 16 May 2016 .. 3 Jan 2017


def stable_ip_for_domain(domain: str) -> str:
    """Deterministic pseudo-IP for a domain, stable across processes
    (CRC-32, not ``hash()``, which ``PYTHONHASHSEED`` randomizes)."""
    h = zlib.crc32(domain.encode("utf-8")) & 0xFFFFFFFF
    return "%d.%d.%d.%d" % (1 + (h >> 24) % 223, (h >> 16) & 0xFF,
                            (h >> 8) & 0xFF, h & 0xFF)


def device_stream_rng(seed: int, device_id: str,
                      purpose: str = "records") -> random.Random:
    """The RNG stream for one device.  Seeded from a string so CPython
    routes it through SHA-512 seeding -- identical in every process."""
    return random.Random("campaign:%d:%s:%s" % (seed, purpose, device_id))


@dataclass
class CampaignConfig:
    scale: float = 0.1
    seed: int = 7
    n_longtail_apps: int = 6250
    apps_per_device: Tuple[int, int] = (12, 40)
    # Occasional long-RTT events (congestion, weak signal): the source
    # of Figure 9(a)'s ~10 % of samples above 400 ms.
    tail_prob: float = 0.17
    tail_mean_ms: float = 340.0
    legacy_3g_split: float = 0.8   # of non-LTE cellular, 3G vs 2G
    measurement_noise_ms: float = 0.2  # MopEye's own accuracy (Table 2)


class _DeviceSampler:
    """All randomness for one device: an independent RNG plus
    distribution instances bound to it.  Keeping the caches per device
    (instead of per campaign) is what makes a device's stream
    independent of which other devices ran before it."""

    def __init__(self, campaign: "Campaign", device: CrowdDevice,
                 rng: random.Random):
        self.campaign = campaign
        self.config = campaign.config
        self.catalog = campaign.catalog
        self.device = device
        self.rng = rng
        self._dns_dist_cache: Dict[Tuple[str, str], Distribution] = {}
        self._access_dist_cache: Dict[Tuple[str, str, bool],
                                      Distribution] = {}
        self._path_dist_cache: Dict[str, Distribution] = {}
        self._tail = Exponential(self.config.tail_mean_ms).bind(rng)

    # -- cached distributions ------------------------------------------------
    def _dns_dist(self, profile: IspProfile, tech: str) -> Distribution:
        key = (profile.name, tech)
        dist = self._dns_dist_cache.get(key)
        if dist is None:
            if tech in (NetworkType.WIFI, NetworkType.LTE):
                dist = profile.lte_dns_distribution(self.rng)
            elif tech == NetworkType.UMTS:
                if profile.lte_share < 1.0:
                    # ISPs with known legacy networks (Cricket, U.S.
                    # Cellular) use their own 3G profile.
                    dist = profile.legacy_dns_distribution(self.rng)
                else:
                    dist = LogNormal(105.0, 0.55,
                                     shift=profile.dns_floor_ms
                                     ).bind(self.rng)
            else:  # GPRS / 2G
                dist = LogNormal(755.0, 0.45,
                                 shift=profile.dns_floor_ms
                                 ).bind(self.rng)
            self._dns_dist_cache[key] = dist
        return dist

    # Hostings with direct operator peering: traffic to these escapes
    # a congested LTE core (the 19 fast domains of Case 2's Jio
    # analysis are in-country CDN deployments).
    _PEERED_HOSTINGS = frozenset(["google", "facebook-cdn",
                                  "netflix-cdn"])

    def _access_dist(self, profile: IspProfile, tech: str,
                     peered: bool = False) -> Distribution:
        key = (profile.name, tech, peered)
        dist = self._access_dist_cache.get(key)
        if dist is None:
            if tech in (NetworkType.WIFI, NetworkType.LTE):
                if peered and profile.core_penalty_ms > 0:
                    # Peered CDN traffic bypasses the core bottleneck.
                    dist = LogNormal(profile.access_median_ms,
                                     profile.access_sigma
                                     ).bind(self.rng)
                else:
                    dist = profile.access_distribution(self.rng)
            elif tech == NetworkType.UMTS:
                dist = LogNormal(95.0, 0.5).bind(self.rng)
            else:
                dist = LogNormal(700.0, 0.45).bind(self.rng)
            self._access_dist_cache[key] = dist
        return dist

    def _path_dist(self, domain: DomainProfile) -> Distribution:
        dist = self._path_dist_cache.get(domain.domain)
        if dist is None:
            dist = LogNormal(domain.path_median_ms,
                             domain.path_sigma).bind(self.rng)
            self._path_dist_cache[domain.domain] = dist
        return dist

    # -- context sampling ---------------------------------------------------------
    def _sample_context(self) -> Tuple[IspProfile, str]:
        """Pick (profile, technology) for one measurement."""
        rng = self.rng
        device = self.device
        if rng.random() < device.wifi_share:
            return device.wifi, NetworkType.WIFI
        isp = device.cellular_isp
        lte_share = device.lte_share_of_cellular * isp.lte_share
        if rng.random() < lte_share:
            return isp, NetworkType.LTE
        if isp.lte_share < 1.0:
            # Mixed-technology ISPs' legacy networks are 3G-class.
            return isp, NetworkType.UMTS
        if rng.random() < self.config.legacy_3g_split:
            return isp, NetworkType.UMTS
        return isp, NetworkType.GPRS

    # -- record generation ------------------------------------------------------------
    def _tcp_record(self, profile: IspProfile, tech: str,
                    timestamp: float) -> MeasurementRecord:
        rng = self.rng
        device = self.device
        # App choice follows the global popularity law (applying the
        # weights again within per-device installed sets would square
        # them and starve the long tail that Figure 6(b) depends on).
        app = self.catalog.sample_app(rng)
        domain = app.sample_domain(rng)
        peered = domain.hosting in self._PEERED_HOSTINGS
        rtt = (self._access_dist(profile, tech, peered).sample()
               + self._path_dist(domain).sample())
        if rng.random() < self.config.tail_prob:
            rtt += self._tail.sample()
        rtt += rng.uniform(0, self.config.measurement_noise_ms)
        return MeasurementRecord(
            kind=MeasurementKind.TCP, rtt_ms=rtt,
            timestamp_ms=timestamp, app_package=app.package,
            dst_ip=self.campaign._ip_for_domain(domain.domain),
            dst_port=443 if rng.random() < 0.7 else 80,
            domain=domain.domain, network_type=tech,
            operator=profile.name, country=device.country,
            device_id=device.device_id,
            location=rng.choice(device.locations))

    def _dns_record(self, profile: IspProfile, tech: str,
                    timestamp: float) -> MeasurementRecord:
        rng = self.rng
        device = self.device
        rtt = self._dns_dist(profile, tech).sample()
        rtt += rng.uniform(0, self.config.measurement_noise_ms)
        resolver_ip = ("192.168.1.1" if tech == NetworkType.WIFI
                       else self.campaign._ip_for_domain(
                           "dns." + profile.name))
        return MeasurementRecord(
            kind=MeasurementKind.DNS, rtt_ms=rtt,
            timestamp_ms=timestamp, dst_ip=resolver_ip, dst_port=53,
            domain=None, network_type=tech, operator=profile.name,
            country=device.country, device_id=device.device_id,
            location=rng.choice(device.locations))

    def records(self) -> Iterator[MeasurementRecord]:
        rng = self.rng
        count = max(1, round(self.device.activity * self.config.scale))
        for _ in range(count):
            timestamp = rng.uniform(0, _DURATION_MS)
            profile, tech = self._sample_context()
            if rng.random() < _TCP_FRACTION:
                yield self._tcp_record(profile, tech, timestamp)
            else:
                yield self._dns_record(profile, tech, timestamp)


class Campaign:
    def __init__(self, population: Optional[Population] = None,
                 catalog: Optional[AppCatalog] = None,
                 config: Optional[CampaignConfig] = None):
        self.config = config or CampaignConfig()
        self.population = population or Population(
            seed=self.config.seed + 1)
        self.catalog = catalog or build_catalog(
            n_longtail=self.config.n_longtail_apps,
            seed=self.config.seed + 2)
        self._domain_ip_cache: Dict[str, str] = {}

    def _ip_for_domain(self, domain: str) -> str:
        ip = self._domain_ip_cache.get(domain)
        if ip is None:
            ip = stable_ip_for_domain(domain)
            self._domain_ip_cache[domain] = ip
        return ip

    # -- record generation ------------------------------------------------------------
    def _install_apps(self, device: CrowdDevice) -> None:
        # A dedicated stream so installs never perturb the record
        # stream (device_records stays idempotent).
        rng = device_stream_rng(self.config.seed, device.device_id,
                                purpose="install")
        lo, hi = self.config.apps_per_device
        count = rng.randint(lo, hi)
        seen = {}
        for app in self.catalog.sample_apps(rng, count):
            seen[app.package] = app
        device.installed = list(seen.values())

    def device_records(self, device: CrowdDevice
                       ) -> Iterator[MeasurementRecord]:
        """One device's record stream -- a pure function of
        ``(config.seed, device.device_id)``, independent of every other
        device and of which process runs it."""
        if not device.installed:
            self._install_apps(device)
        rng = device_stream_rng(self.config.seed, device.device_id)
        return _DeviceSampler(self, device, rng).records()

    def iter_records(self) -> Iterator[MeasurementRecord]:
        """Stream the whole dataset in device order without a store."""
        for device in self.population.devices:
            yield from self.device_records(device)

    # -- driver ------------------------------------------------------------------------
    def run(self, store: Optional[MeasurementStore] = None
            ) -> MeasurementStore:
        store = store or MeasurementStore()
        for record in self.iter_records():
            store.add(record)
        return store
