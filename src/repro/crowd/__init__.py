"""Synthetic crowdsourcing campaign (section 4.2 substitute).

The paper's dataset came from 2,351 phones in the wild over ten months.
Without Google Play, this package synthesises a dataset with the same
schema and the same statistical structure: a device population matching
the paper's country/model distributions, an ISP catalog whose DNS and
path models are calibrated to Table 6 / Figures 10-11, an app catalog
calibrated to Table 5 (including Whatsapp's domain split and Jio's core
network problem), and a campaign driver that emits
:class:`~repro.core.records.MeasurementRecord` streams the analysis
pipeline consumes unchanged.
"""

from repro.crowd.isps import (
    CELLULAR_ISPS,
    IspProfile,
    WIFI_PROFILE_BY_COUNTRY,
    isp_by_name,
    isps_for_country,
)
from repro.crowd.appcatalog import (
    AppCatalog,
    AppProfile,
    DomainProfile,
    build_catalog,
)
from repro.crowd.population import (
    COUNTRY_USERS,
    CrowdDevice,
    Population,
)
from repro.crowd.campaign import (
    Campaign,
    CampaignConfig,
    device_stream_rng,
    stable_ip_for_domain,
)
from repro.crowd.fleet import FleetRunner, FleetSpec, default_fleet
from repro.crowd.sharding import (
    ShardedCampaign,
    ShardedRunResult,
    ShardResult,
    ShardSpec,
    plan_shards,
)

__all__ = [
    "AppCatalog",
    "AppProfile",
    "Campaign",
    "CampaignConfig",
    "CELLULAR_ISPS",
    "COUNTRY_USERS",
    "CrowdDevice",
    "DomainProfile",
    "FleetRunner",
    "FleetSpec",
    "default_fleet",
    "IspProfile",
    "Population",
    "ShardSpec",
    "ShardResult",
    "ShardedCampaign",
    "ShardedRunResult",
    "WIFI_PROFILE_BY_COUNTRY",
    "build_catalog",
    "device_stream_rng",
    "isp_by_name",
    "isps_for_country",
    "plan_shards",
    "stable_ip_for_domain",
]
