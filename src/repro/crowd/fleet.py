"""Mechanical mini-fleet: validate the statistical campaign.

The crowd layer synthesises measurements statistically (DESIGN.md's
substitution for Google Play).  This module closes the loop: it builds
*real* simulated phones -- each with an access link derived from the
same :class:`IspProfile`, real servers placed by the same
:class:`DomainProfile` path models, and a full MopEye relay -- runs app
workloads through the packet-level pipeline, and returns the resulting
measurement store.  A fleet's distributions should match what the
statistical campaign draws for the same profiles; the test suite
asserts that they do.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Dict, List, Optional, Tuple

from repro.core import MopEyeService
from repro.core.records import MeasurementStore
from repro.crowd.appcatalog import AppCatalog, build_catalog
from repro.crowd.isps import IspProfile
from repro.network import AccessLink, AppServer, DnsServer, DnsZone, Internet
from repro.network.link import NetworkType
from repro.phone import AndroidDevice, App
from repro.sim import Constant, LogNormal, Simulator


@dataclasses.dataclass
class FleetSpec:
    """One mechanical device: its network profile and workload."""

    device_id: str
    isp: IspProfile
    network_type: str = NetworkType.WIFI
    country: str = "unknown"
    connects: int = 30
    apps: int = 4
    seed: int = 0


class FleetRunner:
    """Builds and runs one world per spec, merging the stores."""

    def __init__(self, catalog: Optional[AppCatalog] = None,
                 seed: int = 99):
        self.catalog = catalog or build_catalog(n_longtail=0)
        self.seed = seed

    # -- world building -----------------------------------------------------
    def _link_for(self, sim: Simulator, spec: FleetSpec,
                  rng: random.Random) -> AccessLink:
        """Access link whose RTT distribution matches the profile's
        access component (one-way = access/2)."""
        isp = spec.isp
        # The access link carries only the radio/first-hop latency; a
        # congested core (Jio) sits *behind* the local DNS, so it is
        # modelled on the app servers' paths, not here.
        oneway = LogNormal(max(0.5, isp.access_median_ms / 2.0),
                           isp.access_sigma).bind(rng)
        return AccessLink(sim, up_latency=oneway, down_latency=oneway,
                          network_type=spec.network_type,
                          operator=isp.name, rng=rng)

    def _build_world(self, spec: FleetSpec):
        sim = Simulator()
        internet = Internet(sim)
        rng = random.Random(spec.seed)
        link = self._link_for(sim, spec, rng)
        device = AndroidDevice(sim, internet, link, sdk=23,
                               rng=random.Random(spec.seed + 1))
        device.model = spec.device_id
        # DNS server placed so the measured DNS RTT matches the
        # profile: total = link RTT + dns extra.
        dns_extra = max(0.5, spec.isp.dns_median_ms
                        - spec.isp.access_median_ms)
        zone = DnsZone()
        dns = DnsServer(sim, "8.8.8.8", zone,
                        processing_delay=Constant(0.2),
                        path_oneway=LogNormal(dns_extra / 2.0,
                                              0.3).bind(rng))
        internet.add_server(dns)
        # Servers for a handful of apps' domains, placed per their
        # path model (one-way = path/2).
        apps = self.catalog.apps[:spec.apps]
        endpoints: List[Tuple[object, str]] = []
        next_ip = [0]

        def fresh_ip() -> str:
            next_ip[0] += 1
            return "198.51.%d.%d" % (next_ip[0] // 250 + 1,
                                     next_ip[0] % 250 + 1)

        for app_profile in apps:
            domain = app_profile.domains[0]
            ip = fresh_ip()
            internet.add_server(AppServer(
                sim, [ip], name=domain.domain,
                path_oneway=LogNormal(
                    max(0.25, (domain.path_median_ms
                               + spec.isp.core_penalty_ms) / 2.0),
                    domain.path_sigma).bind(rng),
                accept_delay=Constant(0.05),
                rng=random.Random(spec.seed + 2)))
            zone.add(domain.domain, ip)
            endpoints.append((app_profile, domain.domain))
        return sim, device, endpoints

    # -- running -------------------------------------------------------------
    def run_device(self, spec: FleetSpec) -> MeasurementStore:
        sim, device, endpoints = self._build_world(spec)
        mopeye = MopEyeService(device)
        mopeye.start()
        rng = random.Random(spec.seed + 3)
        apps = {profile.package: App(device, profile.package)
                for profile, _domain in endpoints}

        def workload():
            for _ in range(spec.connects):
                profile, domain = rng.choice(endpoints)
                app = apps[profile.package]
                yield from app.resolve_and_request(
                    domain, 443, b"GET / HTTP/1.1\r\n\r\n")
                yield sim.timeout(rng.uniform(50.0, 400.0))

        process = sim.process(workload())
        sim.run(until=spec.connects * 30_000.0, stop_event=process)
        sim.run(until=sim.now + 5_000.0)
        # Tag records with the fleet identity.
        tagged = MeasurementStore()
        for record in mopeye.store:
            tagged.add(dataclasses.replace(
                record, device_id=spec.device_id,
                country=spec.country))
        return tagged

    def run(self, specs: List[FleetSpec]) -> MeasurementStore:
        merged = MeasurementStore()
        for spec in specs:
            merged.extend(self.run_device(spec))
        return merged


def default_fleet(isp: IspProfile, n_devices: int = 5,
                  network_type: str = NetworkType.WIFI,
                  connects: int = 25, seed: int = 7
                  ) -> List[FleetSpec]:
    return [FleetSpec(device_id="fleet-%02d" % index, isp=isp,
                      network_type=network_type, connects=connects,
                      seed=seed + index * 101)
            for index in range(n_devices)]
