"""App catalog calibrated to Table 5 and the Whatsapp case study.

An app's measured RTT decomposes as ``access + path``: the access
component comes from the device's current network (ISP profile), the
path component from where the app's servers sit.  Table 5's medians are
reproduced by giving each app's domains a hosting profile: Google and
Netflix terminate on edge CDNs a few ms past the access network, while
Whatsapp's 331 chat domains sit in SoftLayer data centres ~225 ms away
(Case 1), with only the mme/mmg/pps media domains on the Facebook CDN.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.sim.distributions import LogNormal


@dataclass
class DomainProfile:
    """One server domain an app talks to."""

    domain: str
    path_median_ms: float
    path_sigma: float = 0.45
    weight: float = 1.0
    hosting: str = "generic"

    def sample_path_ms(self, rng: random.Random) -> float:
        return LogNormal(self.path_median_ms,
                         self.path_sigma).bind(rng).sample()


@dataclass
class AppProfile:
    package: str
    name: str
    category: str
    domains: List[DomainProfile]
    weight: float  # share of dataset TCP measurements

    def __post_init__(self):
        self._domain_weights = [d.weight for d in self.domains]

    def sample_domain(self, rng: random.Random) -> DomainProfile:
        return rng.choices(self.domains, weights=self._domain_weights,
                           k=1)[0]


def _single(package, name, category, domain, path, weight,
            sigma=0.45, hosting="generic"):
    return AppProfile(package, name, category,
                      [DomainProfile(domain, path, sigma,
                                     hosting=hosting)], weight)


def _whatsapp_profile() -> AppProfile:
    """334 whatsapp.net domains: 3 on the Facebook CDN (media), 331 on
    SoftLayer (chat).  Media transfers dominate connection counts just
    enough to pull the app's overall median down to ~133 ms."""
    domains = [
        DomainProfile("mme.whatsapp.net", 32.0, weight=170.0,
                      hosting="facebook-cdn"),
        DomainProfile("mmg.whatsapp.net", 30.0, weight=160.0,
                      hosting="facebook-cdn"),
        DomainProfile("pps.whatsapp.net", 34.0, weight=100.0,
                      hosting="facebook-cdn"),
    ]
    for i in range(1, 332):
        domains.append(DomainProfile("e%d.whatsapp.net" % i,
                                     210.0, 0.35, weight=1.0,
                                     hosting="softlayer"))
    return AppProfile("com.whatsapp", "Whatsapp", "Communication",
                      domains, weight=32.4)


# Table 5's 16 representative apps.  Path medians are calibrated so
# that access(median ~28 ms across the population) + path reproduces
# the reported app medians; weights are the table's measurement counts
# in thousands.
def representative_apps() -> List[AppProfile]:
    return [
        AppProfile("com.facebook.katana", "Facebook", "Social", [
            DomainProfile("graph.facebook.com", 24.0, weight=40.0,
                          hosting="facebook-cdn"),
            DomainProfile("edge-mqtt.facebook.com", 28.0, weight=20.0,
                          hosting="facebook-cdn"),
            DomainProfile("scontent.xx.fbcdn.net", 26.0, weight=25.0,
                          hosting="facebook-cdn"),
        ], weight=215.8),
        _single("com.instagram.android", "Instagram", "Social",
                "i.instagram.com", 16.0, 38.6, hosting="facebook-cdn"),
        _single("com.sina.weibo", "Weibo", "Social",
                "api.weibo.cn", 10.0, 28.9),
        _single("com.twitter.android", "Twitter", "Social",
                "api.twitter.com", 21.0, 11.4),
        _single("com.tencent.mm", "WeChat", "Social",
                "szshort.weixin.qq.com", 5.0, 61.8),
        _single("com.facebook.orca", "Facebook Messenger",
                "Communication", "edge-chat.facebook.com", 10.0, 42.4,
                hosting="facebook-cdn"),
        _whatsapp_profile(),
        _single("com.skype.raider", "Skype", "Communication",
                "api.skype.com", 39.0, 16.3),
        _single("com.android.vending", "Google Play Store", "Google",
                "play.googleapis.com", 14.0, 100.1, hosting="google"),
        _single("com.google.android.gms", "Google Play services",
                "Google", "www.googleapis.com", 6.0, 60.8,
                hosting="google"),
        _single("com.google.android.googlequicksearchbox",
                "Google Search", "Google", "www.google.com", 12.0,
                35.9, hosting="google"),
        _single("com.google.android.apps.maps", "Google Map", "Google",
                "maps.googleapis.com", 6.5, 20.0, hosting="google"),
        _single("com.google.android.youtube", "YouTube", "Video",
                "youtubei.googleapis.com", 3.0, 99.9, hosting="google"),
        _single("com.netflix.mediaclient", "Netflix", "Video",
                "api-global.netflix.com", 3.5, 28.3,
                hosting="netflix-cdn"),
        _single("com.amazon.mShop.android.shopping", "Amazon",
                "Shopping", "www.amazon.com", 24.0, 18.3),
        _single("com.ebay.mobile", "Ebay", "Shopping",
                "api.ebay.com", 34.0, 16.1),
    ]


class AppCatalog:
    """All measured apps: 16 representative + a long tail (6,266 apps
    measured in total; 424 with >1K measurements).

    Cumulative weights are precomputed so per-record app sampling is
    O(log n) over the 6,266-app catalog.
    """

    def __init__(self, apps: Sequence[AppProfile]):
        self.apps = list(apps)
        self._weights = [a.weight for a in self.apps]
        self._cum_weights = []
        acc = 0.0
        for weight in self._weights:
            acc += weight
            self._cum_weights.append(acc)
        self._by_package = {a.package: a for a in self.apps}

    def __len__(self) -> int:
        return len(self.apps)

    def by_package(self, package: str) -> Optional[AppProfile]:
        return self._by_package.get(package)

    def sample_app(self, rng: random.Random) -> AppProfile:
        return rng.choices(self.apps,
                           cum_weights=self._cum_weights, k=1)[0]

    def sample_apps(self, rng: random.Random, k: int) -> List[AppProfile]:
        return rng.choices(self.apps, cum_weights=self._cum_weights,
                           k=k)

    @property
    def representative_packages(self) -> List[str]:
        return [a.package for a in representative_apps()]


def build_catalog(n_longtail: int = 6250,
                  seed: int = 2016) -> AppCatalog:
    """The 16 representative apps plus ``n_longtail`` synthetic apps.

    Long-tail weights follow a Zipf law (matching Figure 6(b)'s shape),
    and path medians are drawn log-normally so that ~10 % of apps end
    up with overall medians above 200 ms (Figure 9(b))."""
    import math
    rng = random.Random(seed)
    apps = representative_apps()
    path_dist = LogNormal(26.0, 1.40).bind(rng)
    for i in range(n_longtail):
        # Per-app measurement counts in the wild follow a heavy-tailed
        # log-normal (calibrated to Figure 6(b)'s buckets: ~60 apps
        # above 10 K full-scale measurements, ~1.1 K in 100-1 K), and
        # the long tail carries ~75 % of TCP samples (Table 5's 16
        # apps sum to ~830 K of 3.58 M).  Weights are in thousands of
        # full-scale measurements, like the representative apps'.
        weight = min(math.exp(rng.gauss(math.log(0.0115), 2.79)),
                     250.0)
        path = min(path_dist.sample(), 900.0)
        apps.append(_single(
            "app.longtail.a%04d" % i, "LongTail %d" % i, "Other",
            "api.longtail%d.example" % i, max(1.0, path), weight,
            sigma=0.5))
    return AppCatalog(apps)
