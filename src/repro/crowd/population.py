"""Device/user population matching the paper's coverage figures.

* 2,351 measuring devices from 114 countries (Figure 7's top-20 counts
  are reproduced exactly; the remaining users spread over a tail of
  94 countries).
* 922 distinct phone models across major manufacturers.
* Per-device activity follows a heavy-tailed law calibrated to
  Figure 6(a)'s buckets (104 devices above 10 K measurements, 575 in
  100-1 K, the rest below 100).
* Each device measures from a handful of geographic locations inside
  its country's bounding box (Figure 8: 6,987 distinct locations).
"""

from __future__ import annotations

import math
import random
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.crowd.isps import IspProfile, isps_for_country, wifi_profile_for

# Figure 7: top-20 user countries with exact counts.
COUNTRY_USERS: List[Tuple[str, int]] = [
    ("USA", 790), ("UK", 116), ("India", 70), ("Italy", 68),
    ("Malaysia", 43), ("Brazil", 41), ("Indonesia", 37),
    ("Germany", 31), ("Canada", 26), ("Mexico", 25),
    ("Philippines", 23), ("Australia", 22), ("HK (China)", 20),
    ("France", 19), ("Russia", 19), ("Thailand", 18), ("Greece", 16),
    ("Spain", 13), ("Poland", 13), ("Singapore", 13),
]

N_COUNTRIES = 114
N_DEVICES = 2351
N_PHONE_MODELS = 922

# Rough bounding boxes (lat_min, lat_max, lon_min, lon_max) for the
# Figure 8 scatter; tail countries get boxes scattered worldwide.
_COUNTRY_BOXES: Dict[str, Tuple[float, float, float, float]] = {
    "USA": (25, 48, -124, -67), "UK": (50, 58, -6, 2),
    "India": (8, 32, 69, 89), "Italy": (37, 46, 7, 18),
    "Malaysia": (1, 7, 100, 119), "Brazil": (-30, 0, -60, -35),
    "Indonesia": (-9, 5, 95, 140), "Germany": (47, 55, 6, 15),
    "Canada": (43, 56, -123, -60), "Mexico": (15, 32, -115, -87),
    "Philippines": (5, 19, 117, 126), "Australia": (-38, -12, 115, 153),
    "HK (China)": (22.1, 22.5, 113.8, 114.4), "France": (43, 51, -4, 8),
    "Russia": (43, 60, 30, 135), "Thailand": (6, 20, 98, 105),
    "Greece": (35, 41, 20, 28), "Spain": (36, 43, -9, 3),
    "Poland": (49, 55, 14, 24), "Singapore": (1.2, 1.5, 103.6, 104.0),
}

_MANUFACTURERS = ["Samsung", "HTC", "LG", "Motorola", "Huawei",
                  "XiaoMi", "Sony", "OnePlus", "Asus", "Lenovo"]

# Table 6's per-ISP sample counts cannot come from user counts alone:
# Singtel collected 34.6 K DNS samples from just 13 Singapore users, so
# some countries' users measured far more (and more on cellular) than
# average.  These factors reproduce Table 6's ranking.
_ACTIVITY_BOOST: Dict[str, float] = {
    "Singapore": 4.5, "HK (China)": 4.0, "Malaysia": 2.5,
    "India": 3.0, "USA": 1.2,
}
_WIFI_SHARE_MEAN: Dict[str, float] = {
    "Singapore": 0.35, "HK (China)": 0.45, "India": 0.45,
    "Malaysia": 0.5,
}


@dataclass
class CrowdDevice:
    device_id: str
    model: str
    country: str
    cellular_isp: IspProfile
    wifi: IspProfile
    activity: int                 # target measurement count (full scale)
    wifi_share: float             # fraction of samples taken on WiFi
    lte_share_of_cellular: float  # 4G share among cellular samples
    locations: List[Tuple[float, float]]
    installed: List = field(default_factory=list)  # AppProfiles


class Population:
    def __init__(self, seed: int = 42, n_devices: int = N_DEVICES):
        self.rng = random.Random(seed)
        self.n_devices = n_devices
        self.models = self._make_models()
        self.countries = self._make_country_assignment()
        self.devices: List[CrowdDevice] = []
        self._build_devices()

    # -- construction helpers ------------------------------------------------
    def _make_models(self) -> List[str]:
        models = []
        for i in range(N_PHONE_MODELS):
            manufacturer = _MANUFACTURERS[i % len(_MANUFACTURERS)]
            models.append("%s-%s%03d" % (manufacturer,
                                         manufacturer[:2].upper(), i))
        return models

    def _make_country_assignment(self) -> List[str]:
        """Per-device country list: top-20 exact, tail spread."""
        scale = self.n_devices / N_DEVICES
        assignment: List[str] = []
        for country, count in COUNTRY_USERS:
            assignment.extend([country] * max(1, round(count * scale)))
        tail_countries = ["country-%03d" % i
                          for i in range(N_COUNTRIES
                                         - len(COUNTRY_USERS))]
        i = 0
        while len(assignment) < self.n_devices:
            assignment.append(tail_countries[i % len(tail_countries)])
            i += 1
        self.rng.shuffle(assignment)
        return assignment[:self.n_devices]

    def _activity_count(self, country: str) -> int:
        """Heavy-tailed per-device measurement count (Figure 6(a))."""
        boost = _ACTIVITY_BOOST.get(country, 1.0)
        value = self.rng.lognormvariate(math.log(140.0 * boost), 2.5)
        return max(1, min(int(value), 120000))

    def _locations_for(self, country: str,
                       n: int) -> List[Tuple[float, float]]:
        box = _COUNTRY_BOXES.get(country)
        if box is None:
            # Tail countries: a deterministic pseudo-box anywhere
            # populated (-40..60 lat).  CRC-32, not hash():
            # PYTHONHASHSEED randomizes the latter across processes.
            h = zlib.crc32(country.encode("utf-8")) & 0xFFFF
            lat = -40 + (h % 100)
            lon = -180 + ((h >> 4) % 360)
            box = (lat, min(lat + 4, 60), lon, min(lon + 6, 180))
        lat_min, lat_max, lon_min, lon_max = box
        return [(self.rng.uniform(lat_min, lat_max),
                 self.rng.uniform(lon_min, lon_max)) for _ in range(n)]

    def _isp_allocator(self):
        """Deterministic largest-remainder ISP allocation per country,
        so every Table 6 operator is represented even in small-user
        countries (CSL has only a few of Hong Kong's 20 users)."""
        assigned: Dict[str, List[IspProfile]] = {}
        from collections import Counter
        country_totals = Counter(self.countries)
        for country, total in country_totals.items():
            isps = isps_for_country(country)
            weights = [isp.weight for isp in isps]
            weight_sum = sum(weights)
            quotas = [max(1, round(total * w / weight_sum))
                      for w in weights]
            plan: List[IspProfile] = []
            for isp, quota in zip(isps, quotas):
                plan.extend([isp] * quota)
            while len(plan) < total:
                plan.append(isps[0])
            self.rng.shuffle(plan)
            assigned[country] = plan[:total]
        return assigned

    def _build_devices(self) -> None:
        isp_plan = self._isp_allocator()
        cursors: Dict[str, int] = {}
        for index, country in enumerate(self.countries):
            cursor = cursors.get(country, 0)
            cursors[country] = cursor + 1
            cellular = isp_plan[country][cursor]
            activity = self._activity_count(country)
            n_locations = 1 + min(4, int(math.log10(activity + 1)))
            wifi_mean = _WIFI_SHARE_MEAN.get(country, 0.62)
            self.devices.append(CrowdDevice(
                device_id="device-%05d" % index,
                model=self.rng.choice(self.models),
                country=country,
                cellular_isp=cellular,
                wifi=wifi_profile_for(country),
                activity=activity,
                wifi_share=min(0.95, max(0.05,
                                         self.rng.gauss(wifi_mean,
                                                        0.18))),
                # Named LTE operators are nearly all-4G (their Table 6
                # medians match pure-LTE behaviour); generic tail
                # operators carry the dataset's 3G/2G mass.
                lte_share_of_cellular=(
                    min(1.0, max(0.8, self.rng.gauss(0.97, 0.03)))
                    if not cellular.name.startswith("lte-")
                    else min(1.0, max(0.3, self.rng.gauss(0.72,
                                                          0.10)))),
                locations=self._locations_for(country, n_locations)))

    # -- views ------------------------------------------------------------------
    def devices_in(self, country: str) -> List[CrowdDevice]:
        return [d for d in self.devices if d.country == country]

    def country_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for device in self.devices:
            counts[device.country] = counts.get(device.country, 0) + 1
        return counts

    def all_locations(self) -> List[Tuple[float, float]]:
        out = []
        for device in self.devices:
            out.extend(device.locations)
        return out
