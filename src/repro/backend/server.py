"""The collection server: upload protocol terminated onto the pipeline.

Two header forms are accepted on the same port:

*  v1: ``PUSH <nbytes>\\n`` + payload            (legacy uploaders)
*  v2: ``PUSH2 <nbytes> <seq> <device_id>\\n`` + payload

and two responses exist:

*  ``ACK <count>\\n``   -- ``count`` is the number of records ingested
   from the *prefix* of the batch (ingestion stops at the first
   malformed line, so the uploader's cursor arithmetic is exact);
*  ``BUSY <retry_ms>\\n`` -- the batch was shed (rate limit or load);
   nothing was ingested; retry the same batch after the hint.

v1 has no (device, seq) identity, so each connection gets a synthetic
device id and a running sequence number -- replays cannot be detected,
which is exactly the legacy behaviour.  v2 uploads are idempotent: a
replayed (device_id, seq) returns the cached ACK without re-ingesting.

The ACK for an accepted batch is delayed by the pipeline's sim-time
ingest cost, so busy backends are slow backends, and the uploader's
``uploader.ack_latency_ms`` histogram sees real queueing.
"""

from __future__ import annotations

from typing import Optional

from repro.obs import Observability

from repro.backend.ingest import IngestLoadModel, IngestPipeline
from repro.backend.rollups import RollupStore
from repro.core.records import MeasurementStore
from repro.network.servers import AppServer, _ServerConnection


class BackendServer(AppServer):
    """An AppServer that terminates the upload protocol onto an
    :class:`IngestPipeline`."""

    def __init__(self, sim, ips, name: str = "collector",
                 pipeline: Optional[IngestPipeline] = None,
                 rollups: Optional[RollupStore] = None,
                 obs: Optional[Observability] = None,
                 keep_records: bool = True,
                 max_batch_records: Optional[int] = None,
                 load: Optional[IngestLoadModel] = None,
                 rate_capacity: float = 64.0,
                 rate_refill_per_min: float = 600.0,
                 data_dir: Optional[str] = None,
                 store=None,
                 store_config=None,
                 node_id: Optional[str] = None,
                 **kwargs):
        super().__init__(sim, ips, name=name, **kwargs)
        # Per-instance scope by default: two collectors in one process
        # must not share counters (same rule as MopEyeService).
        self.obs = obs or Observability(sim=sim)
        #: Which cluster node this server is.  Falls back to ``name``
        #: for single-collector deployments; when given explicitly the
        #: id is stamped as a metric label so N nodes' ``backend.*`` /
        #: ``store.*`` snapshots never alias, and onto every failure
        #: record in :attr:`failure_log`.
        self.node_id = node_id or name
        if node_id is not None:
            self.obs.labels["node_id"] = node_id
        #: Crash/restart records, each tagged with the node identity.
        self.failure_log: list = []
        self.received = MeasurementStore()
        #: Durable storage.  ``data_dir`` builds a
        #: :class:`repro.store.StoreEngine` under that directory;
        #: without one the backend is RAM-only and a crash genuinely
        #: loses everything (no more pretending RAM is durable).
        if data_dir is not None and store is None:
            from repro.store.engine import StoreEngine
            store = StoreEngine(data_dir, config=store_config,
                                obs=self.obs)
        self.store = store

        def _keep(records):
            for record in records:
                self.received.add(record)

        self._keep_records = keep_records
        on_records = _keep if keep_records else None
        self.pipeline = pipeline or IngestPipeline(
            rollups=rollups, obs=self.obs, load=load,
            rate_capacity=rate_capacity,
            rate_refill_per_min=rate_refill_per_min,
            on_records=on_records, store=store)
        #: Server-side cap on records ACKed per batch (None = no cap);
        #: exercises the uploader's short-ACK retry tail.
        self.max_batch_records = max_batch_records
        self._conn_seq = 0
        self.crashes = 0
        self.recoveries = 0

    # -- fault hooks ---------------------------------------------------

    @property
    def crashed(self) -> bool:
        return self.outage_mode is not None

    def crash(self, mode: str = "refuse") -> None:
        """The collector process dies: every live connection is gone
        (in-flight batches never get their ACK -- the uploader's
        ack-timeout + idempotent-replay path), and new SYNs are refused
        (process down, host up) or blackholed (host down) until
        restart().

        Volatile state dies with the process -- the rollup memtable,
        the dedup cache, the received-record mirror, token buckets and
        the load backlog are all genuinely cleared.  With a store
        engine attached, what survives is what the engine forced to
        disk (WAL frames + segments); without one, nothing survives,
        which is the honest semantics of a RAM-only collector."""
        self.set_outage(mode)
        self._connections.clear()
        self.crashes += 1
        self.failure_log.append({"node_id": self.node_id,
                                 "event": "crash", "mode": mode,
                                 "time_ms": self.sim.now})
        if self.store is not None:
            self.store.crash()
        self.received = MeasurementStore()
        self.pipeline.reset_volatile()

    def restart(self) -> None:
        """Bring the collector back.  With a store engine this is a
        real recovery: the memtable, dedup seeds and received records
        are rebuilt purely from the manifest + segments + WAL replay
        -- the in-memory state was discarded by crash()."""
        if self.store is not None:
            # WAL-tail records stream straight into the received
            # mirror; records already folded into a checkpoint or
            # segment exist only as aggregates and cannot be
            # re-materialised (recovery memory stays bounded by the
            # checkpoint interval, not the run length).
            on_record = self.received.add if self._keep_records else None
            self.store.recover(on_record=on_record)
            self.recoveries += 1
        self.failure_log.append({"node_id": self.node_id,
                                 "event": "restart",
                                 "time_ms": self.sim.now})
        self.clear_outage()

    # -- registry views (the legacy attributes) ------------------------

    @property
    def batches(self) -> int:
        return int(self.pipeline.obs.value("backend.batches"))

    @property
    def malformed(self) -> int:
        obs = self.pipeline.obs
        return int(obs.value("backend.malformed_headers")
                   + obs.value("backend.malformed_lines"))

    @property
    def duplicates(self) -> int:
        return int(self.pipeline.obs.value("backend.duplicate_batches"))

    @property
    def busy_rejections(self) -> int:
        obs = self.pipeline.obs
        return int(obs.value("backend.busy_rejections")
                   + obs.value("backend.rate_limited"))

    @property
    def rollups(self) -> RollupStore:
        return self.pipeline.rollups

    # -- protocol ------------------------------------------------------

    def _on_request_bytes(self, key, conn: _ServerConnection,
                          data: bytes) -> None:
        buffer = conn.request
        buffer.extend(data)
        while True:
            if conn.upload_expected is None:
                newline = buffer.find(b"\n")
                if newline < 0:
                    return
                header = bytes(buffer[:newline])
                del buffer[:newline + 1]
                if not self._parse_header(key, conn, header):
                    continue
                continue
            if len(buffer) < conn.upload_expected:
                return
            payload = bytes(buffer[:conn.upload_expected])
            del buffer[:conn.upload_expected]
            conn.upload_expected = None
            self._handle_batch(key, conn, payload)

    def _parse_header(self, key, conn: _ServerConnection,
                      header: bytes) -> bool:
        """Sets ``conn.upload_expected`` (+ batch identity) on success;
        counts and ACK-0s malformed headers."""
        try:
            if header.startswith(b"PUSH2 "):
                _tag, nbytes, seq, device = header.split(b" ", 3)
                conn.upload_expected = int(nbytes)
                conn.batch_device = device.decode("utf-8")
                conn.batch_seq = int(seq)
                return True
            if header.startswith(b"PUSH "):
                conn.upload_expected = int(header.split()[1])
                # Legacy batches have no identity; synthesise one per
                # batch so the dedup cache never false-positives.
                conn.batch_device = "v1:%s:%d" % (key[0], key[1])
                conn.batch_seq = self._conn_seq
                self._conn_seq += 1
                return True
        except (IndexError, ValueError, UnicodeDecodeError):
            conn.upload_expected = None
        self.obs.inc("backend.malformed_headers")
        self._send_data(key, conn, b"ACK 0\n")
        return False

    def _handle_batch(self, key, conn: _ServerConnection,
                      payload: bytes) -> None:
        if self.max_batch_records is not None:
            payload = self._clip(payload, self.max_batch_records)
        outcome = self.pipeline.handle_batch(
            conn.batch_device, conn.batch_seq, payload,
            now_ms=self.sim.now)
        if outcome.status == "busy":
            self._send_data(key, conn,
                            b"BUSY %d\n" % max(1, round(outcome.retry_ms)))
            return
        reply = b"ACK %d\n" % outcome.acked
        if outcome.delay_ms > 0:
            # The ACK waits out the ingest cost in sim time.  If the
            # server crashes inside that window the ACK dies with the
            # process -- the batch was ingested but never acknowledged,
            # which is exactly the duplicate-replay case the dedup
            # cache exists for.
            delay = self.sim.timeout(outcome.delay_ms)

            def _ack_later(_evt, key=key, conn=conn, reply=reply):
                if not self.crashed:
                    self._send_data(key, conn, reply)

            delay.callbacks.append(_ack_later)
        else:
            self._send_data(key, conn, reply)

    @staticmethod
    def _clip(payload: bytes, max_records: int) -> bytes:
        lines = payload.split(b"\n")
        kept = [line for line in lines if line.strip()][:max_records]
        return b"\n".join(kept) + (b"\n" if kept else b"")
