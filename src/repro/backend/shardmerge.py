"""Compact cross-process transfer + commutative merge for rollups.

Shard-parallel ingest used to return one pickled :class:`RollupStore`
per worker (~5 MB each at bench scale) and merge them serially behind
a pool barrier -- the parent-side cost grew with worker count and the
"parallel" path lost to serial.  This module fixes the transfer and
the merge:

* :func:`pack_store` flattens a store into a handful of flat arrays
  (row keys, per-row count/overflow/bin-count, then every sparse bin
  as one (index, count) pair in two concatenated arrays).  Packing
  happens **in the worker**, so its cost parallelises; the pack
  pickles in milliseconds because it is a few large homogeneous
  buffers, not half a million tiny dict/int objects.
* :class:`MergeAccumulator` consumes packs in *arrival order* (merge
  is commutative over integer histogram state, so scheduling cannot
  perturb the digest).  Each ``add`` is cheap bookkeeping -- key->gid
  interning plus appending array slices -- and one :meth:`finalize`
  pass builds the merged store: concatenate all bin arrays, sort by
  ``(group, bin)`` composite key, and sum duplicates with
  ``np.add.reduceat``.  Parent-side merge cost is therefore one
  O(total bins log total bins) pass independent of worker count,
  instead of W full dict merges.

numpy is the fast path; when it is unavailable the same API falls
back to plain-dict packs and merges (bit-identical digests, just
slower), so the backend never *requires* the dependency.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.backend.rollups import (
    MergeHist,
    N_BINS,
    RollupConfig,
    RollupStore,
    _decode_key,
    _encode_key,
)

try:
    import numpy as np
except ImportError:          # pragma: no cover - image always has it
    np = None

#: Composite-key stride: one more than the largest bin index, so
#: ``gid * _STRIDE + bin`` never collides across groups.
_STRIDE = N_BINS + 1


def pack_store(store: RollupStore) -> dict:
    """Flatten ``store`` for cheap pickling across a process boundary.

    The pack is self-describing: ``{"numpy": bool, "records": int,
    "failure_records": int, "tables": {...}}``.  With numpy each table
    becomes six parallel structures (key strings, int64 row arrays,
    int64 bin arrays); without it, a plain list of row tuples.
    """
    packed_tables: Dict[str, object] = {}
    for name in RollupStore.TABLES:
        table = store.tables[name]
        if np is None:
            packed_tables[name] = [
                (_encode_key(key), hist.count, hist.overflow,
                 list(hist.bins.items()))
                for key, hist in table.items()]
            continue
        keys: List[str] = []
        counts: List[int] = []
        overflows: List[int] = []
        nbins: List[int] = []
        bin_idx: List[int] = []
        bin_cnt: List[int] = []
        for key, hist in table.items():
            keys.append(_encode_key(key))
            counts.append(hist.count)
            overflows.append(hist.overflow)
            nbins.append(len(hist.bins))
            bin_idx.extend(hist.bins.keys())
            bin_cnt.extend(hist.bins.values())
        packed_tables[name] = {
            "keys": keys,
            "count": np.asarray(counts, dtype=np.int64),
            "overflow": np.asarray(overflows, dtype=np.int64),
            "nbins": np.asarray(nbins, dtype=np.int64),
            "idx": np.asarray(bin_idx, dtype=np.int64),
            "cnt": np.asarray(bin_cnt, dtype=np.int64),
        }
    return {
        "numpy": np is not None,
        "records": store.records,
        "failure_records": store.failure_records,
        "tables": packed_tables,
    }


class MergeAccumulator:
    """Merge packed stores as they arrive; one finalize pass builds
    the result.  Arrival order never affects the digest."""

    def __init__(self, config: Optional[RollupConfig] = None) -> None:
        self.config = config or RollupConfig()
        self.records = 0
        self.failure_records = 0
        self.packs = 0
        self._tables: Dict[str, dict] = {
            name: {"gids": {}, "keys": [], "count": [], "overflow": [],
                   "gid_parts": [], "idx_parts": [], "cnt_parts": [],
                   "plain_rows": []}
            for name in RollupStore.TABLES}

    # -- accumulation --------------------------------------------------

    def add(self, packed: dict) -> None:
        self.packs += 1
        self.records += int(packed["records"])
        self.failure_records += int(packed["failure_records"])
        if packed.get("numpy") and np is not None:
            self._add_arrays(packed["tables"])
        else:
            self._add_plain(packed["tables"])

    def _intern(self, acc: dict, key: str) -> int:
        gid = acc["gids"].get(key)
        if gid is None:
            gid = acc["gids"][key] = len(acc["keys"])
            acc["keys"].append(key)
            acc["count"].append(0)
            acc["overflow"].append(0)
        return gid

    def _add_arrays(self, tables: Dict[str, dict]) -> None:
        for name in RollupStore.TABLES:
            part = tables[name]
            keys = part["keys"]
            if not keys:
                continue
            acc = self._tables[name]
            counts, overflows = acc["count"], acc["overflow"]
            part_count, part_over = part["count"], part["overflow"]
            row_gids = np.empty(len(keys), dtype=np.int64)
            for i, key in enumerate(keys):
                gid = self._intern(acc, key)
                row_gids[i] = gid
                counts[gid] += int(part_count[i])
                overflows[gid] += int(part_over[i])
            acc["gid_parts"].append(np.repeat(row_gids, part["nbins"]))
            acc["idx_parts"].append(part["idx"])
            acc["cnt_parts"].append(part["cnt"])

    def _add_plain(self, tables: Dict[str, list]) -> None:
        for name in RollupStore.TABLES:
            acc = self._tables[name]
            counts, overflows = acc["count"], acc["overflow"]
            for key, count, overflow, bins in tables[name]:
                gid = self._intern(acc, key)
                counts[gid] += int(count)
                overflows[gid] += int(overflow)
                acc["plain_rows"].append((gid, bins))

    # -- finalize ------------------------------------------------------

    def finalize(self) -> RollupStore:
        store = RollupStore(config=self.config)
        store.records = self.records
        store.failure_records = self.failure_records
        for name in RollupStore.TABLES:
            acc = self._tables[name]
            if not acc["keys"]:
                continue
            table = store.tables[name]
            hists: List[MergeHist] = []
            for gid, key in enumerate(acc["keys"]):
                hist = MergeHist()
                hist.count = int(acc["count"][gid])
                hist.overflow = int(acc["overflow"][gid])
                table[_decode_key(key)] = hist
                hists.append(hist)
            if acc["gid_parts"]:
                self._fold_arrays(acc, hists)
            if acc["plain_rows"]:
                self._fold_plain(acc, hists)
        return store

    @staticmethod
    def _fold_arrays(acc: dict, hists: List[MergeHist]) -> None:
        composite = (np.concatenate(acc["gid_parts"]) * _STRIDE
                     + np.concatenate(acc["idx_parts"]))
        cnt = np.concatenate(acc["cnt_parts"])
        order = np.argsort(composite, kind="stable")
        composite = composite[order]
        cnt = cnt[order]
        unique, starts = np.unique(composite, return_index=True)
        sums = np.add.reduceat(cnt, starts)
        gids = unique // _STRIDE
        indices = unique % _STRIDE
        for j in range(len(unique)):
            hists[int(gids[j])].bins[int(indices[j])] = int(sums[j])

    @staticmethod
    def _fold_plain(acc: dict, hists: List[MergeHist]) -> None:
        for gid, bins in acc["plain_rows"]:
            target = hists[gid].bins
            for index, count in bins:
                target[index] = target.get(index, 0) + count


def np_available() -> bool:
    """Whether the array fast path is in play (vs the plain-dict
    fallback); surfaced in ingest reports so benchmark JSON records
    which codepath produced its numbers."""
    return np is not None


__all__ = ["MergeAccumulator", "np_available", "pack_store"]

