"""The collection backend: ingest, rollups, detection, queries.

MopEye's server side turned ten months of uploads from 2,351 devices
into per-app/per-ISP findings; this package is that tier for the
simulated world.  Batches arrive through
:class:`~repro.backend.server.BackendServer` (or straight from dataset
shards via :func:`~repro.backend.ingest.ingest_shard_files`), are
validated and deduplicated by
:class:`~repro.backend.ingest.IngestPipeline`, aggregated into
windowed mergeable histograms
(:class:`~repro.backend.rollups.RollupStore`), scanned by the
:class:`~repro.backend.detector.OnlineDetector` for the section 4.2.2
case studies, and served by :mod:`repro.backend.query`.

Determinism contract: rollup state is integer-only and merging is
commutative, so the rollup digest is byte-identical across ingest
worker counts and ``PYTHONHASHSEED`` values -- the same bar the
dataset digest meets.
"""

from repro.backend.detector import (
    ChatDomainDegradationRule,
    Finding,
    IspRttAnomalyRule,
    OnlineDetector,
)
from repro.backend.ingest import (
    BatchOutcome,
    IngestLoadModel,
    IngestPipeline,
    TokenBucket,
    ingest_shard_files,
    parse_batch_lines,
    parse_batch_prefix,
)
from repro.backend.rollups import (
    MergeHist,
    RollupConfig,
    RollupStore,
)
from repro.backend.server import BackendServer

__all__ = [
    "BackendServer",
    "BatchOutcome",
    "ChatDomainDegradationRule",
    "Finding",
    "IngestLoadModel",
    "IngestPipeline",
    "IspRttAnomalyRule",
    "MergeHist",
    "OnlineDetector",
    "RollupConfig",
    "RollupStore",
    "TokenBucket",
    "ingest_shard_files",
    "parse_batch_lines",
    "parse_batch_prefix",
]
