"""Online re-derivation of the section 4.2.2 case studies.

The offline analyses discovered two stories in the collected data:
WhatsApp's SoftLayer chat domains underperforming in most networks
(Case 1), and Jio's LTE serving apps slowly while its DNS stays fast
(Case 2).  The detector re-derives both from the backend's *live
rollups* -- no raw records -- using the same taxonomy and thresholds
(:mod:`repro.analysis.rules`) as the offline code, so the two paths
cannot disagree about what constitutes a finding.

Rules are generic, not hard-coded to the paper's subjects: the chat
rule fires for any configured watch suffix whose non-CDN domains
degrade, and the ISP rule scans *every* LTE operator for the
slow-app/fast-DNS signature corroborated by cross-ISP comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis import rules
from repro.core.records import MeasurementKind
from repro.network.link import NetworkType
from repro.obs import Observability, get_default

from repro.backend.rollups import MergeHist, RollupStore


@dataclass
class Finding:
    """One case-study verdict raised by a rule."""
    rule: str                  # "chat_domain_degradation" | "isp_rtt_anomaly"
    subject: str               # e.g. "whatsapp.net" or "Jio 4G/LTE"
    detected_at_records: int   # rollup record count at first detection
    summary: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {"rule": self.rule, "subject": self.subject,
                "detected_at_records": self.detected_at_records,
                "summary": self.summary}


def _merged(hists: List[MergeHist]) -> MergeHist:
    out = MergeHist()
    for hist in hists:
        out.merge(hist)
    return out


class ChatDomainDegradationRule:
    """Case 1: a watch suffix's chat-class domains are slow in most
    networks while its CDN-class domains stay fast."""

    name = "chat_domain_degradation"

    def __init__(self, min_network_count: int = 100,
                 top_networks: int = 20) -> None:
        self.min_network_count = min_network_count
        self.top_networks = top_networks

    def evaluate(self, rollups: RollupStore, scale: float
                 ) -> List[Finding]:
        findings: List[Finding] = []
        for suffix in rollups.config.watch_suffixes:
            summary = self._summarise(rollups, suffix, scale)
            if summary is None:
                continue
            if summary["degraded"]:
                findings.append(Finding(
                    rule=self.name, subject=suffix,
                    detected_at_records=rollups.records,
                    summary=summary))
        return findings

    def _summarise(self, rollups: RollupStore, suffix: str,
                   scale: float) -> Optional[Dict[str, object]]:
        domain_table = rollups.table("watch_domain")
        chat_hists: Dict[str, MergeHist] = {}
        cdn_hists: List[MergeHist] = []
        for key in sorted(domain_table):
            key_suffix, cls, domain = key
            if key_suffix != suffix:
                continue
            if cls == rules.CHAT:
                chat_hists[domain] = domain_table[key]
            else:
                cdn_hists.append(domain_table[key])
        if not chat_hists:
            return None

        chat_all = _merged(list(chat_hists.values()))
        cdn_all = _merged(cdn_hists)
        chat_median = chat_all.median()
        cdn_median = cdn_all.median() if cdn_all.count else None

        # Every observed chat domain counts, however few its samples:
        # the offline analysis does the same, and at full scale the
        # paper's 331-domain population dominates either way.
        domain_medians = {domain: hist.median()
                          for domain, hist in chat_hists.items()}
        over_200 = sum(1 for m in domain_medians.values()
                       if m > rules.CHAT_DEGRADED_MEDIAN_MS)
        over_200_share = (over_200 / len(domain_medians)
                          if domain_medians else 0.0)

        # Per-network medians over the chat class (the 20-network
        # table), merged across windows.
        network_table = rollups.table("watch_network")
        per_network: Dict[Tuple[str, str], MergeHist] = {}
        for key in sorted(network_table):
            key_suffix, cls, operator, tech = key
            if key_suffix != suffix or cls != rules.CHAT:
                continue
            per_network[(operator, tech)] = network_table[key]
        min_network = self.min_network_count * scale
        ranked = sorted(
            ((hist.count, operator, tech, hist)
             for (operator, tech), hist in per_network.items()
             if hist.count >= min_network),
            key=lambda row: (-row[0], row[1], row[2]))
        bands: Dict[str, int] = {}
        for count, operator, tech, hist in ranked[:self.top_networks]:
            band = rules.network_band(hist.median())
            bands[band] = bands.get(band, 0) + 1

        return {
            "suffix": suffix,
            "chat_domains": len(chat_hists),
            "chat_median_ms": chat_median,
            "cdn_median_ms": cdn_median,
            "chat_domains_over_200ms": over_200,
            "chat_domain_count_with_median": len(domain_medians),
            "over_200_share": over_200_share,
            "network_bands": bands,
            "networks_ranked": len(ranked),
            "degraded": rules.chat_degradation_verdict(
                chat_median, cdn_median, over_200_share, bands),
        }


class IspRttAnomalyRule:
    """Case 2: an LTE operator whose app RTT median far exceeds its
    DNS median, with the same domains faster on other LTE networks."""

    name = "isp_rtt_anomaly"

    def __init__(self, min_domain_count: int = 100,
                 min_samples: int = 500) -> None:
        self.min_domain_count = min_domain_count
        self.min_samples = min_samples

    def _per_operator(self, rollups: RollupStore, kind: str
                      ) -> Dict[str, MergeHist]:
        """LTE hists per operator for one record kind, merged across
        windows (sorted iteration keeps evaluation deterministic)."""
        out: Dict[str, MergeHist] = {}
        table = rollups.table("network")
        for key in sorted(table):
            _window, operator, tech, key_kind = key
            if tech != NetworkType.LTE or key_kind != kind:
                continue
            hist = out.get(operator)
            if hist is None:
                hist = out[operator] = MergeHist()
            hist.merge(table[key])
        return out

    def evaluate(self, rollups: RollupStore, scale: float
                 ) -> List[Finding]:
        app = self._per_operator(rollups, MeasurementKind.TCP)
        dns = self._per_operator(rollups, MeasurementKind.DNS)
        lte_domains = rollups.table("lte_domain")
        min_count = self.min_domain_count * scale
        min_samples = self.min_samples * scale

        # Per-operator per-domain hists, one pass over the table.
        by_operator: Dict[str, Dict[str, MergeHist]] = {}
        for key in sorted(lte_domains):
            domain, operator = key
            by_operator.setdefault(operator, {})[domain] = \
                lte_domains[key]

        findings: List[Finding] = []
        for operator in sorted(app):
            app_hist = app[operator]
            dns_hist = dns.get(operator)
            if dns_hist is None or app_hist.count < min_samples:
                continue
            app_median = app_hist.median()
            dns_median = dns_hist.median()

            domains = by_operator.get(operator, {})
            domain_medians = {
                domain: hist.median()
                for domain, hist in domains.items()
                if hist.count >= min_count}

            comparable = 0
            faster_elsewhere = 0
            gap_sum = 0.0
            for domain in sorted(domain_medians):
                other = MergeHist()
                for other_op, other_domains in by_operator.items():
                    if other_op == operator:
                        continue
                    hist = other_domains.get(domain)
                    if hist is not None:
                        other.merge(hist)
                if other.count < min_count:
                    continue
                comparable += 1
                gap = domain_medians[domain] - other.median()
                if gap > 0:
                    faster_elsewhere += 1
                    gap_sum += gap
            mean_gap = (gap_sum / faster_elsewhere
                        if faster_elsewhere else 0.0)

            if rules.isp_anomaly_verdict(app_median, dns_median,
                                         comparable, faster_elsewhere,
                                         mean_gap):
                findings.append(Finding(
                    rule=self.name,
                    subject="%s/%s" % (operator, NetworkType.LTE),
                    detected_at_records=rollups.records,
                    summary={
                        "operator": operator,
                        "app_median_ms": app_median,
                        "dns_median_ms": dns_median,
                        "app_rtt_count": app_hist.count,
                        "domains_analysed": len(domain_medians),
                        "domain_bands": rules.jio_domain_bands(
                            domain_medians.values()),
                        "comparable_domains": comparable,
                        "domains_faster_elsewhere": faster_elsewhere,
                        "mean_gap_ms": mean_gap,
                        "anomalous": True,
                    }))
        return findings


class CoexistenceRule:
    """Coexistence (docs/MODALITIES.md): a bulk-transfer app inflates
    a foreground app's RTT on one network.

    Pure rollup evidence: the ``app_throughput`` table shows the
    bulk-app package moving bytes, and the ``network`` table shows one
    operator's TCP median far above its peers' merged median.  The
    verdict is :func:`repro.analysis.rules.coexistence_verdict` -- the
    same function the offline ledger check applies to raw records, so
    the two paths cannot disagree.  Without modality records the bulk
    count is zero and the rule never fires.
    """

    name = "coexistence_bulk_contention"

    def evaluate(self, rollups: RollupStore, scale: float
                 ) -> List[Finding]:
        tput = rollups.table("app_throughput")
        bulk = sum(tput[key].count for key in sorted(tput)
                   if key[1] == rules.COEX_BULK_PACKAGE)
        if bulk < rules.COEX_MIN_BULK_SAMPLES:
            return []
        # Per-operator TCP hists over every technology, merged across
        # windows (the contention is on the access link, whatever the
        # radio).
        per_operator: Dict[str, MergeHist] = {}
        table = rollups.table("network")
        for key in sorted(table):
            _window, operator, _tech, kind = key
            if kind != MeasurementKind.TCP:
                continue
            hist = per_operator.get(operator)
            if hist is None:
                hist = per_operator[operator] = MergeHist()
            hist.merge(table[key])
        findings: List[Finding] = []
        for operator in sorted(per_operator):
            peers = _merged([hist for other, hist
                             in per_operator.items()
                             if other != operator])
            if not peers.count:
                continue
            median = per_operator[operator].median()
            peer_median = peers.median()
            if rules.coexistence_verdict(median, peer_median, bulk):
                findings.append(Finding(
                    rule=self.name, subject=operator,
                    detected_at_records=rollups.records,
                    summary={
                        "operator": operator,
                        "tcp_median_ms": median,
                        "peer_median_ms": peer_median,
                        "bulk_throughput_samples": bulk,
                        "bulk_package": rules.COEX_BULK_PACKAGE,
                    }))
        return findings


class ProxyDivergenceRule:
    """Middlebox detection (docs/MIDDLEBOX.md): an operator whose
    SYN-RTT and app-layer-RTT distributions have split.

    Pure rollup evidence: the ``network`` table holds both kinds per
    (window, operator, technology); merged across windows, an operator
    behind a split-connection proxy shows an APP_RTT median far above
    its TCP (SYN) median -- the SYN was answered by the middlebox, the
    response bytes crossed the full path.  The verdict is
    :func:`repro.analysis.rules.proxy_divergence_verdict`, shared
    verbatim with the offline ledger check.  Without APP_RTT records
    (every proxy-free preset) the sample gate keeps the rule inert.
    """

    name = "proxy_divergence"

    def _per_operator(self, rollups: RollupStore, kind: str
                      ) -> Dict[str, MergeHist]:
        """Hists per operator for one record kind over *every*
        technology, merged across windows (a PEP sits in cellular and
        satellite paths alike)."""
        out: Dict[str, MergeHist] = {}
        table = rollups.table("network")
        for key in sorted(table):
            _window, operator, _tech, key_kind = key
            if key_kind != kind:
                continue
            hist = out.get(operator)
            if hist is None:
                hist = out[operator] = MergeHist()
            hist.merge(table[key])
        return out

    def evaluate(self, rollups: RollupStore, scale: float
                 ) -> List[Finding]:
        syn = self._per_operator(rollups, MeasurementKind.TCP)
        app = self._per_operator(rollups, MeasurementKind.APP_RTT)
        findings: List[Finding] = []
        for operator in sorted(app):
            app_hist = app[operator]
            syn_hist = syn.get(operator)
            if syn_hist is None or not syn_hist.count:
                continue
            syn_median = syn_hist.median()
            app_median = app_hist.median()
            if rules.proxy_divergence_verdict(syn_median, app_median,
                                              app_hist.count):
                findings.append(Finding(
                    rule=self.name, subject=operator,
                    detected_at_records=rollups.records,
                    summary={
                        "operator": operator,
                        "syn_median_ms": syn_median,
                        "app_median_ms": app_median,
                        "app_rtt_samples": app_hist.count,
                        "divergence_ratio": (app_median / syn_median
                                             if syn_median else 0.0),
                    }))
        return findings


class OnlineDetector:
    """Periodically evaluates the rules against live rollups and keeps
    the earliest detection per (rule, subject)."""

    def __init__(self, rollups: RollupStore, scale: float = 1.0,
                 check_interval_records: int = 50_000,
                 obs: Optional[Observability] = None,
                 rules_: Optional[List[object]] = None) -> None:
        self.rollups = rollups
        self.scale = scale
        self.check_interval_records = check_interval_records
        self.obs = obs or get_default()
        self.rules = rules_ if rules_ is not None else [
            ChatDomainDegradationRule(), IspRttAnomalyRule(),
            CoexistenceRule(), ProxyDivergenceRule()]
        self.findings: Dict[Tuple[str, str], Finding] = {}
        self._next_check = check_interval_records

    def maybe_evaluate(self) -> List[Finding]:
        """Cheap gate for the streaming path: evaluate only every
        ``check_interval_records`` ingested records."""
        if self.rollups.records < self._next_check:
            return []
        while self._next_check <= self.rollups.records:
            self._next_check += self.check_interval_records
        return self.evaluate()

    def evaluate(self) -> List[Finding]:
        """Run every rule now; returns findings new to this run."""
        self.obs.inc("backend.detector_evaluations")
        new: List[Finding] = []
        for rule in self.rules:
            for finding in rule.evaluate(self.rollups, self.scale):
                key = (finding.rule, finding.subject)
                if key not in self.findings:
                    self.findings[key] = finding
                    self.obs.inc("backend.detector_findings")
                    if finding.rule == ProxyDivergenceRule.name:
                        self.obs.inc("mbox.divergence_findings")
                    new.append(finding)
        return new

    def report(self) -> List[Dict[str, object]]:
        return [self.findings[key].to_dict()
                for key in sorted(self.findings)]
