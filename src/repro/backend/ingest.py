"""Batch ingestion: validation, idempotency, rate limiting, load shed.

The pipeline is transport-agnostic: :class:`IngestPipeline` consumes
``(device_id, batch_seq, payload-bytes)`` triples and returns a
:class:`BatchOutcome`; :class:`~repro.backend.server.BackendServer`
adapts the wire protocol onto it, and the offline shard workers bypass
the wire entirely via :func:`ingest_shard_files`.

Contracts:

* **Prefix ACKs.** A batch is ingested up to the first malformed line
  and the ACK counts exactly that prefix -- the uploader advances its
  cursor by the ACK, so any other semantics silently duplicates or
  drops records (the bug this replaces).
* **Idempotency.** Batches are keyed on ``(device_id, batch_seq)``.  A
  replay (lost ACK, BUSY retry) returns the cached ACK count without
  touching the rollups, so uploader retries are exactly-once.
* **Backpressure.** A per-device token bucket and a global backlog
  model can both shed a batch with BUSY + a retry hint; a shed batch
  is not ingested and not remembered, so the retry is a fresh attempt.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.obs import Observability, get_default

from repro.backend.rollups import RollupConfig, RollupStore
from repro.backend.shardmerge import (
    MergeAccumulator,
    np_available,
    pack_store,
)
from repro.core.persist import _record_from_dict, iter_jsonl
from repro.core.records import MeasurementRecord


def parse_batch_lines(payload: bytes
                      ) -> Tuple[List[MeasurementRecord],
                                 List[bytes], bool]:
    """Parse JSONL payload up to the first malformed line.

    Returns ``(records, lines, truncated)``: the valid prefix as
    records, the same prefix as raw line bytes (what the WAL appends
    verbatim -- re-serialising every record on the hot path is the
    overhead this replaces), and whether a bad line stopped the parse.
    Records after a bad line are NOT ingested even if parseable: the
    ACK must be a prefix count for the uploader's cursor arithmetic.
    """
    records: List[MeasurementRecord] = []
    lines: List[bytes] = []
    for line in payload.decode("utf-8", "replace").splitlines():
        if not line.strip():
            continue
        try:
            records.append(_record_from_dict(json.loads(line)))
        except (ValueError, KeyError, TypeError):
            return records, lines, True
        lines.append(line.encode("utf-8"))
    return records, lines, False


def parse_batch_prefix(payload: bytes
                       ) -> Tuple[List[MeasurementRecord], bool]:
    """:func:`parse_batch_lines` without the raw lines."""
    records, _lines, truncated = parse_batch_lines(payload)
    return records, truncated


class TokenBucket:
    """Per-device batch rate limiter on the sim clock."""

    __slots__ = ("capacity", "refill_per_ms", "tokens", "last_ms")

    def __init__(self, capacity: float, refill_per_ms: float,
                 now_ms: float) -> None:
        self.capacity = capacity
        self.refill_per_ms = refill_per_ms
        self.tokens = capacity
        self.last_ms = now_ms

    def allow(self, now_ms: float) -> bool:
        elapsed = max(0.0, now_ms - self.last_ms)
        self.last_ms = now_ms
        self.tokens = min(self.capacity,
                          self.tokens + elapsed * self.refill_per_ms)
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False

    def retry_hint_ms(self) -> float:
        deficit = 1.0 - self.tokens
        if self.refill_per_ms <= 0:
            return 60_000.0
        return deficit / self.refill_per_ms


class IngestLoadModel:
    """Sim-time cost of ingestion, and when to shed instead.

    Each accepted batch costs ``base_ms + per_record_ms * n`` of
    backend processing; the backlog drains in sim time.  When the
    backlog would exceed ``busy_threshold_ms`` the batch is shed with
    BUSY and a retry hint sized to the excess.
    """

    def __init__(self, base_ms: float = 2.0,
                 per_record_ms: float = 0.05,
                 busy_threshold_ms: float = float("inf")) -> None:
        self.base_ms = base_ms
        self.per_record_ms = per_record_ms
        self.busy_threshold_ms = busy_threshold_ms
        self.backlog_ms = 0.0
        self._last_ms = 0.0

    def _drain(self, now_ms: float) -> None:
        elapsed = max(0.0, now_ms - self._last_ms)
        self._last_ms = now_ms
        self.backlog_ms = max(0.0, self.backlog_ms - elapsed)

    def batch_cost_ms(self, n_records: int) -> float:
        return self.base_ms + self.per_record_ms * n_records

    def admit(self, n_records: int, now_ms: float
              ) -> Tuple[bool, float]:
        """Returns ``(admitted, delay_or_retry_ms)``: the ingest delay
        to charge if admitted, else the BUSY retry hint."""
        self._drain(now_ms)
        cost = self.batch_cost_ms(n_records)
        if self.backlog_ms + cost > self.busy_threshold_ms:
            return False, self.backlog_ms + cost - self.busy_threshold_ms
        self.backlog_ms += cost
        return True, self.backlog_ms

    def reset(self) -> None:
        """Drop the in-memory backlog (a crashed process's queue does
        not survive the restart)."""
        self.backlog_ms = 0.0


@dataclass
class BatchOutcome:
    """What the transport should answer for one batch."""
    status: str                     # "ack" | "busy"
    acked: int = 0                  # prefix record count (status=ack)
    retry_ms: float = 0.0           # backoff hint (status=busy)
    delay_ms: float = 0.0           # sim-time ingest cost to charge
    duplicate: bool = False
    truncated: bool = False
    records: List[MeasurementRecord] = field(default_factory=list)


class IngestPipeline:
    """Validated, idempotent, rate-limited ingestion into rollups."""

    def __init__(self, rollups: Optional[RollupStore] = None,
                 obs: Optional[Observability] = None,
                 load: Optional[IngestLoadModel] = None,
                 rate_capacity: float = 64.0,
                 rate_refill_per_min: float = 600.0,
                 dedup_capacity: int = 4096,
                 on_records: Optional[
                     Callable[[List[MeasurementRecord]], None]] = None,
                 store=None) -> None:
        #: Optional :class:`repro.store.StoreEngine`.  When present
        #: the pipeline aggregates into the engine's memtable and
        #: dedup map (shared objects), every accepted batch is logged
        #: to the WAL before its ACK, and the modelled fsync cost is
        #: added to the ACK delay -- durability is paid for in sim
        #: time, not assumed.
        self.store = store
        if store is not None:
            if rollups is not None:
                raise ValueError("pass either rollups or store, "
                                 "not both")
            rollups = store.memtable
        self.rollups = rollups if rollups is not None else RollupStore()
        self.obs = obs or get_default()
        self.load = load or IngestLoadModel()
        self.rate_capacity = rate_capacity
        self.rate_refill_per_ms = rate_refill_per_min / 60_000.0
        self._buckets: Dict[str, TokenBucket] = {}
        self._dedup: "OrderedDict[Tuple[str, int], int]" = (
            store.dedup if store is not None else OrderedDict())
        self._dedup_capacity = (store.config.dedup_capacity
                                if store is not None
                                else dedup_capacity)
        self._on_records = on_records

    # -- wire-facing entry point -------------------------------------

    def handle_batch(self, device_id: str, batch_seq: int,
                     payload: bytes, now_ms: float) -> BatchOutcome:
        key = (device_id, batch_seq)
        cached = self._dedup.get(key)
        if cached is not None:
            self._dedup.move_to_end(key)
            self.obs.inc("backend.duplicate_batches")
            return BatchOutcome(status="ack", acked=cached,
                                duplicate=True,
                                delay_ms=self.load.base_ms)

        bucket = self._buckets.get(device_id)
        if bucket is None:
            bucket = self._buckets[device_id] = TokenBucket(
                self.rate_capacity, self.rate_refill_per_ms, now_ms)
        if not bucket.allow(now_ms):
            self.obs.inc("backend.rate_limited")
            return BatchOutcome(status="busy",
                                retry_ms=bucket.retry_hint_ms())

        records, lines, truncated = parse_batch_lines(payload)
        admitted, delay_or_retry = self.load.admit(len(records), now_ms)
        if not admitted:
            self.obs.inc("backend.busy_rejections")
            # Refund the token: the batch was not served.
            bucket.tokens = min(bucket.capacity, bucket.tokens + 1.0)
            return BatchOutcome(status="busy", retry_ms=delay_or_retry)

        self._ingest(records)
        if truncated:
            self.obs.inc("backend.malformed_lines")
        self.obs.inc("backend.batches")
        self.obs.observe("backend.batch_records", len(records))
        self.obs.observe("backend.ingest_delay_ms", delay_or_retry)
        self._remember(key, len(records))
        delay = delay_or_retry
        if self.store is not None:
            # WAL commit before the ACK: the batch is durable by the
            # time the uploader advances its cursor, and the fsync
            # cost is part of what the uploader waits out.
            delay += self.store.log_batch(device_id, batch_seq,
                                          len(records), records,
                                          lines=lines)
        if self._on_records is not None and records:
            self._on_records(records)
        return BatchOutcome(status="ack", acked=len(records),
                            delay_ms=delay,
                            truncated=truncated, records=records)

    def reset_volatile(self) -> None:
        """Crash hook: state a dead process cannot carry over.  Token
        buckets and the load backlog die with the process; the rollup
        memtable and dedup map are owned by the store engine (which
        clears and recovers them) when one is attached, and are
        cleared here when the pipeline is RAM-only."""
        self._buckets.clear()
        self.load.reset()
        if self.store is None:
            self._dedup.clear()
            self.rollups.records = 0
            self.rollups.failure_records = 0
            for name in self.rollups.TABLES:
                self.rollups.tables[name].clear()

    # -- cluster dedup handoff ----------------------------------------

    def adopt_dedup(self, device_id: str, batch_seq: int,
                    acked: int) -> bool:
        """Seed one foreign batch identity into the dedup cache.

        The cluster coordinator calls this when a device re-homes
        here: identities the previous owner already ingested must be
        absorbed as duplicates when the uploader replays them, or the
        records would be counted twice in the global rollup.  The seed
        is made durable (an empty-batch WAL envelope) when a store is
        attached, so a crash of *this* node after the handoff still
        deduplicates the replay.  Returns False if the identity was
        already known."""
        key = (device_id, int(batch_seq))
        if key in self._dedup:
            self._dedup.move_to_end(key)
            return False
        self._remember(key, int(acked))
        if self.store is not None:
            self.store.log_batch(device_id, int(batch_seq),
                                 int(acked), [], lines=[])
        return True

    def dedup_entries(self, device_id: str) -> List[Tuple[int, int]]:
        """``(batch_seq, acked)`` this pipeline remembers for one
        device, sorted -- the live side of a rebalance handoff."""
        return sorted((int(seq), int(acked))
                      for (device, seq), acked in self._dedup.items()
                      if device == device_id)

    # -- offline entry point -----------------------------------------

    def ingest_records(self, records: Iterable[MeasurementRecord]
                       ) -> int:
        """Direct path for trusted offline sources (shard workers):
        no dedup, no rate limit, no load shed."""
        n = self.rollups.add_all(records)
        self.obs.inc("backend.records_ingested", n)
        self.obs.set_gauge("backend.rollup_groups",
                           self.rollups.group_count())
        return n

    # -- internals ----------------------------------------------------

    def _ingest(self, records: List[MeasurementRecord]) -> None:
        for record in records:
            self.rollups.add(record)
        self.obs.inc("backend.records_ingested", len(records))
        self.obs.set_gauge("backend.rollup_groups",
                           self.rollups.group_count())

    def _remember(self, key: Tuple[str, int], acked: int) -> None:
        self._dedup[key] = acked
        while len(self._dedup) > self._dedup_capacity:
            self._dedup.popitem(last=False)


# -- shard-parallel offline ingest ------------------------------------------


def _balance_chunks(paths: List[str], workers: int) -> List[List[str]]:
    """Split shard files into at most ``workers`` chunks balanced by
    file size (greedy longest-processing-time).  Deterministic: ties
    break on the original path order, then the lowest chunk index."""
    sizes = []
    for index, path in enumerate(paths):
        try:
            size = os.path.getsize(path)
        except OSError:
            size = 0
        sizes.append((-size, index, path))
    chunks: List[List[str]] = [[] for _ in range(min(workers,
                                                     len(paths)))]
    loads = [0] * len(chunks)
    for negative_size, _index, path in sorted(sizes):
        target = loads.index(min(loads))
        chunks[target].append(path)
        loads[target] -= negative_size
    return [chunk for chunk in chunks if chunk]


def _ingest_shard_chunk(task: Tuple[int, List[str], dict]
                        ) -> Tuple[int, dict, int, float]:
    """Worker entry point: roll up one chunk of JSONL shard files and
    return it *packed* (see :mod:`repro.backend.shardmerge`), so the
    expensive part of serialisation happens in the worker and the
    parent receives a few flat arrays instead of a pickled store.

    The store is built from the files alone -- never from inherited
    parent state -- and histogram merge is commutative, so scheduling
    and arrival order cannot perturb the digest.
    """
    index, paths, config_kwargs = task
    store = RollupStore(config=RollupConfig(**config_kwargs))
    started = time.time()
    count = 0
    for path in paths:
        count += store.add_all(iter_jsonl(path))
    return index, pack_store(store), count, time.time() - started


def ingest_shard_files(paths: List[str],
                       config: Optional[RollupConfig] = None,
                       workers: int = 1,
                       obs: Optional[Observability] = None,
                       report: Optional[dict] = None) -> RollupStore:
    """Roll up a sharded dataset with a worker pool and merge
    deterministically (same digest for any ``workers``).

    Shards are balanced into one chunk per worker by byte size; each
    worker packs its chunk's rollups compactly and the parent folds
    packs in completion order (no barrier) through a
    :class:`~repro.backend.shardmerge.MergeAccumulator`, finalising
    once -- parent-side merge cost does not grow with ``workers``.
    Pass ``report`` (a dict) to receive per-worker wall times and the
    parent-side merge wall, which is what the scaling benchmark
    decomposes.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    config = config or RollupConfig()
    obs = obs or get_default()
    started = time.time()
    chunks = _balance_chunks(paths, workers) if workers > 1 else []
    worker_walls: List[float] = []
    merge_wall = 0.0
    if len(chunks) <= 1:
        # Single worker (or a single chunk): build the store directly,
        # no pack/unpack round trip to pay for.
        merged = RollupStore(config=config)
        total = 0
        for path in paths:
            shard_start = time.time()
            total += merged.add_all(iter_jsonl(path))
            worker_walls.append(time.time() - shard_start)
        worker_walls = [sum(worker_walls)] if worker_walls else []
    else:
        tasks = [(index, chunk, config.to_dict())
                 for index, chunk in enumerate(chunks)]
        accumulator = MergeAccumulator(config)
        worker_walls = [0.0] * len(tasks)
        total = 0
        methods = multiprocessing.get_all_start_methods()
        ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn")
        with ctx.Pool(processes=len(tasks)) as pool:
            for index, packed, count, wall in pool.imap_unordered(
                    _ingest_shard_chunk, tasks):
                fold_start = time.time()
                accumulator.add(packed)
                merge_wall += time.time() - fold_start
                worker_walls[index] = wall
                total += count
        fold_start = time.time()
        merged = accumulator.finalize()
        merge_wall += time.time() - fold_start
    elapsed = time.time() - started
    obs.inc("backend.records_ingested", total)
    obs.set_gauge("backend.rollup_groups", merged.group_count())
    obs.set_gauge("backend.ingest_merge_wall_ms", merge_wall * 1000.0)
    for wall in worker_walls:
        obs.observe("backend.ingest_worker_wall_ms", wall * 1000.0)
    if elapsed > 0:
        obs.set_gauge("backend.ingest_records_per_sec",
                      total / elapsed)
    merged.meta.update({"workers": workers, "shards": len(paths)})
    if report is not None:
        report.update({
            "workers": workers,
            "chunks": [len(chunk) for chunk in chunks] or [len(paths)],
            "worker_walls_s": [round(wall, 3) for wall in worker_walls],
            "merge_wall_s": round(merge_wall, 3),
            "elapsed_s": round(elapsed, 3),
            "mode": ("arrays" if np_available() else "plain")
                    if len(chunks) > 1 else "inline",
        })
    return merged
