"""Batch ingestion: validation, idempotency, rate limiting, load shed.

The pipeline is transport-agnostic: :class:`IngestPipeline` consumes
``(device_id, batch_seq, payload-bytes)`` triples and returns a
:class:`BatchOutcome`; :class:`~repro.backend.server.BackendServer`
adapts the wire protocol onto it, and the offline shard workers bypass
the wire entirely via :func:`ingest_shard_files`.

Contracts:

* **Prefix ACKs.** A batch is ingested up to the first malformed line
  and the ACK counts exactly that prefix -- the uploader advances its
  cursor by the ACK, so any other semantics silently duplicates or
  drops records (the bug this replaces).
* **Idempotency.** Batches are keyed on ``(device_id, batch_seq)``.  A
  replay (lost ACK, BUSY retry) returns the cached ACK count without
  touching the rollups, so uploader retries are exactly-once.
* **Backpressure.** A per-device token bucket and a global backlog
  model can both shed a batch with BUSY + a retry hint; a shed batch
  is not ingested and not remembered, so the retry is a fresh attempt.
"""

from __future__ import annotations

import json
import multiprocessing
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.obs import Observability, get_default

from repro.backend.rollups import RollupConfig, RollupStore
from repro.core.persist import _record_from_dict, iter_jsonl
from repro.core.records import MeasurementRecord


def parse_batch_prefix(payload: bytes
                       ) -> Tuple[List[MeasurementRecord], bool]:
    """Parse JSONL payload up to the first malformed line.

    Returns ``(records, truncated)`` where ``records`` is the valid
    prefix and ``truncated`` says whether a bad line stopped the parse.
    Records after a bad line are NOT ingested even if parseable: the
    ACK must be a prefix count for the uploader's cursor arithmetic.
    """
    records: List[MeasurementRecord] = []
    for line in payload.decode("utf-8", "replace").splitlines():
        if not line.strip():
            continue
        try:
            records.append(_record_from_dict(json.loads(line)))
        except (ValueError, KeyError, TypeError):
            return records, True
    return records, False


class TokenBucket:
    """Per-device batch rate limiter on the sim clock."""

    __slots__ = ("capacity", "refill_per_ms", "tokens", "last_ms")

    def __init__(self, capacity: float, refill_per_ms: float,
                 now_ms: float) -> None:
        self.capacity = capacity
        self.refill_per_ms = refill_per_ms
        self.tokens = capacity
        self.last_ms = now_ms

    def allow(self, now_ms: float) -> bool:
        elapsed = max(0.0, now_ms - self.last_ms)
        self.last_ms = now_ms
        self.tokens = min(self.capacity,
                          self.tokens + elapsed * self.refill_per_ms)
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False

    def retry_hint_ms(self) -> float:
        deficit = 1.0 - self.tokens
        if self.refill_per_ms <= 0:
            return 60_000.0
        return deficit / self.refill_per_ms


class IngestLoadModel:
    """Sim-time cost of ingestion, and when to shed instead.

    Each accepted batch costs ``base_ms + per_record_ms * n`` of
    backend processing; the backlog drains in sim time.  When the
    backlog would exceed ``busy_threshold_ms`` the batch is shed with
    BUSY and a retry hint sized to the excess.
    """

    def __init__(self, base_ms: float = 2.0,
                 per_record_ms: float = 0.05,
                 busy_threshold_ms: float = float("inf")) -> None:
        self.base_ms = base_ms
        self.per_record_ms = per_record_ms
        self.busy_threshold_ms = busy_threshold_ms
        self.backlog_ms = 0.0
        self._last_ms = 0.0

    def _drain(self, now_ms: float) -> None:
        elapsed = max(0.0, now_ms - self._last_ms)
        self._last_ms = now_ms
        self.backlog_ms = max(0.0, self.backlog_ms - elapsed)

    def batch_cost_ms(self, n_records: int) -> float:
        return self.base_ms + self.per_record_ms * n_records

    def admit(self, n_records: int, now_ms: float
              ) -> Tuple[bool, float]:
        """Returns ``(admitted, delay_or_retry_ms)``: the ingest delay
        to charge if admitted, else the BUSY retry hint."""
        self._drain(now_ms)
        cost = self.batch_cost_ms(n_records)
        if self.backlog_ms + cost > self.busy_threshold_ms:
            return False, self.backlog_ms + cost - self.busy_threshold_ms
        self.backlog_ms += cost
        return True, self.backlog_ms

    def reset(self) -> None:
        """Drop the in-memory backlog (a crashed process's queue does
        not survive the restart)."""
        self.backlog_ms = 0.0


@dataclass
class BatchOutcome:
    """What the transport should answer for one batch."""
    status: str                     # "ack" | "busy"
    acked: int = 0                  # prefix record count (status=ack)
    retry_ms: float = 0.0           # backoff hint (status=busy)
    delay_ms: float = 0.0           # sim-time ingest cost to charge
    duplicate: bool = False
    truncated: bool = False
    records: List[MeasurementRecord] = field(default_factory=list)


class IngestPipeline:
    """Validated, idempotent, rate-limited ingestion into rollups."""

    def __init__(self, rollups: Optional[RollupStore] = None,
                 obs: Optional[Observability] = None,
                 load: Optional[IngestLoadModel] = None,
                 rate_capacity: float = 64.0,
                 rate_refill_per_min: float = 600.0,
                 dedup_capacity: int = 4096,
                 on_records: Optional[
                     Callable[[List[MeasurementRecord]], None]] = None,
                 store=None) -> None:
        #: Optional :class:`repro.store.StoreEngine`.  When present
        #: the pipeline aggregates into the engine's memtable and
        #: dedup map (shared objects), every accepted batch is logged
        #: to the WAL before its ACK, and the modelled fsync cost is
        #: added to the ACK delay -- durability is paid for in sim
        #: time, not assumed.
        self.store = store
        if store is not None:
            if rollups is not None:
                raise ValueError("pass either rollups or store, "
                                 "not both")
            rollups = store.memtable
        self.rollups = rollups if rollups is not None else RollupStore()
        self.obs = obs or get_default()
        self.load = load or IngestLoadModel()
        self.rate_capacity = rate_capacity
        self.rate_refill_per_ms = rate_refill_per_min / 60_000.0
        self._buckets: Dict[str, TokenBucket] = {}
        self._dedup: "OrderedDict[Tuple[str, int], int]" = (
            store.dedup if store is not None else OrderedDict())
        self._dedup_capacity = (store.config.dedup_capacity
                                if store is not None
                                else dedup_capacity)
        self._on_records = on_records

    # -- wire-facing entry point -------------------------------------

    def handle_batch(self, device_id: str, batch_seq: int,
                     payload: bytes, now_ms: float) -> BatchOutcome:
        key = (device_id, batch_seq)
        cached = self._dedup.get(key)
        if cached is not None:
            self._dedup.move_to_end(key)
            self.obs.inc("backend.duplicate_batches")
            return BatchOutcome(status="ack", acked=cached,
                                duplicate=True,
                                delay_ms=self.load.base_ms)

        bucket = self._buckets.get(device_id)
        if bucket is None:
            bucket = self._buckets[device_id] = TokenBucket(
                self.rate_capacity, self.rate_refill_per_ms, now_ms)
        if not bucket.allow(now_ms):
            self.obs.inc("backend.rate_limited")
            return BatchOutcome(status="busy",
                                retry_ms=bucket.retry_hint_ms())

        records, truncated = parse_batch_prefix(payload)
        admitted, delay_or_retry = self.load.admit(len(records), now_ms)
        if not admitted:
            self.obs.inc("backend.busy_rejections")
            # Refund the token: the batch was not served.
            bucket.tokens = min(bucket.capacity, bucket.tokens + 1.0)
            return BatchOutcome(status="busy", retry_ms=delay_or_retry)

        self._ingest(records)
        if truncated:
            self.obs.inc("backend.malformed_lines")
        self.obs.inc("backend.batches")
        self.obs.observe("backend.batch_records", len(records))
        self.obs.observe("backend.ingest_delay_ms", delay_or_retry)
        self._remember(key, len(records))
        delay = delay_or_retry
        if self.store is not None:
            # WAL commit before the ACK: the batch is durable by the
            # time the uploader advances its cursor, and the fsync
            # cost is part of what the uploader waits out.
            delay += self.store.log_batch(device_id, batch_seq,
                                          len(records), records)
        if self._on_records is not None and records:
            self._on_records(records)
        return BatchOutcome(status="ack", acked=len(records),
                            delay_ms=delay,
                            truncated=truncated, records=records)

    def reset_volatile(self) -> None:
        """Crash hook: state a dead process cannot carry over.  Token
        buckets and the load backlog die with the process; the rollup
        memtable and dedup map are owned by the store engine (which
        clears and recovers them) when one is attached, and are
        cleared here when the pipeline is RAM-only."""
        self._buckets.clear()
        self.load.reset()
        if self.store is None:
            self._dedup.clear()
            self.rollups.records = 0
            self.rollups.failure_records = 0
            for name in self.rollups.TABLES:
                self.rollups.tables[name].clear()

    # -- offline entry point -----------------------------------------

    def ingest_records(self, records: Iterable[MeasurementRecord]
                       ) -> int:
        """Direct path for trusted offline sources (shard workers):
        no dedup, no rate limit, no load shed."""
        n = self.rollups.add_all(records)
        self.obs.inc("backend.records_ingested", n)
        self.obs.set_gauge("backend.rollup_groups",
                           self.rollups.group_count())
        return n

    # -- internals ----------------------------------------------------

    def _ingest(self, records: List[MeasurementRecord]) -> None:
        for record in records:
            self.rollups.add(record)
        self.obs.inc("backend.records_ingested", len(records))
        self.obs.set_gauge("backend.rollup_groups",
                           self.rollups.group_count())

    def _remember(self, key: Tuple[str, int], acked: int) -> None:
        self._dedup[key] = acked
        while len(self._dedup) > self._dedup_capacity:
            self._dedup.popitem(last=False)


# -- shard-parallel offline ingest ------------------------------------------


def _ingest_shard_file(task: Tuple[str, dict]
                       ) -> Tuple[str, RollupStore, int, float]:
    """Worker entry point: roll up one JSONL shard file.

    Builds the rollup store locally from the file alone, so the result
    never depends on inherited parent state; merge order is fixed by
    the parent (shard path order), and merge itself is commutative, so
    scheduling cannot perturb the digest.
    """
    path, config_kwargs = task
    store = RollupStore(config=RollupConfig(**config_kwargs))
    started = time.time()
    count = store.add_all(iter_jsonl(path))
    return path, store, count, time.time() - started


def ingest_shard_files(paths: List[str],
                       config: Optional[RollupConfig] = None,
                       workers: int = 1,
                       obs: Optional[Observability] = None
                       ) -> RollupStore:
    """Roll up a sharded dataset with a worker pool and merge
    deterministically (same digest for any ``workers``)."""
    if workers < 1:
        raise ValueError("workers must be >= 1")
    config = config or RollupConfig()
    obs = obs or get_default()
    tasks = [(path, config.to_dict()) for path in paths]
    started = time.time()
    if workers == 1:
        outcomes = [_ingest_shard_file(task) for task in tasks]
    else:
        methods = multiprocessing.get_all_start_methods()
        ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn")
        with ctx.Pool(processes=workers) as pool:
            outcomes = pool.map(_ingest_shard_file, tasks)
    merged = RollupStore(config=config)
    by_path = {path: (store, count) for path, store, count, _ in outcomes}
    total = 0
    for path in paths:                       # merge in shard order
        store, count = by_path[path]
        merged.merge(store)
        total += count
    elapsed = time.time() - started
    obs.inc("backend.records_ingested", total)
    obs.set_gauge("backend.rollup_groups", merged.group_count())
    if elapsed > 0:
        obs.set_gauge("backend.ingest_records_per_sec",
                      total / elapsed)
    merged.meta.update({"workers": workers, "shards": len(paths)})
    return merged
