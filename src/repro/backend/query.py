"""Read-side queries over a (possibly reloaded) rollup store.

Each function returns plain data (lists/dicts) so the CLI, tests and
notebooks share one implementation.  Everything iterates in sorted key
order: query output is as deterministic as the rollups themselves.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.backend.rollups import MergeHist, RollupStore
from repro.core.records import MeasurementKind


def summary(rollups: RollupStore) -> Dict[str, object]:
    return {
        "records": rollups.records,
        "groups": {table: len(rollups.table(table))
                   for table in rollups.TABLES},
        "windows": rollups.windows(),
        "window_ms": rollups.config.window_ms,
        "watch_suffixes": list(rollups.config.watch_suffixes),
        "digest": rollups.digest(),
        "meta": {k: rollups.meta[k] for k in sorted(rollups.meta)},
    }


def _merge_over_windows(rollups: RollupStore, table: str,
                        key_slice: slice) -> Dict[tuple, MergeHist]:
    """Collapse a windowed table onto the key fields in ``key_slice``."""
    out: Dict[tuple, MergeHist] = {}
    for key, hist in rollups.iter_table(table):
        subkey = key[key_slice]
        merged = out.get(subkey)
        if merged is None:
            merged = out[subkey] = MergeHist()
        merged.merge(hist)
    return out


def apps(rollups: RollupStore, top: Optional[int] = 20
         ) -> List[Dict[str, object]]:
    """Per-app RTT table, merged across windows, by volume."""
    merged = _merge_over_windows(rollups, "app", slice(1, 2))
    rows = [{"app": key[0], "count": hist.count,
             "median_ms": round(hist.median(), 2),
             "p90_ms": round(hist.quantile(0.9), 2)}
            for key, hist in merged.items()]
    rows.sort(key=lambda row: (-row["count"], row["app"]))
    return rows[:top] if top else rows


def networks(rollups: RollupStore, top: Optional[int] = 20
             ) -> List[Dict[str, object]]:
    """Per-(operator, technology) table with the app/DNS contrast."""
    merged = _merge_over_windows(rollups, "network", slice(1, 4))
    grouped: Dict[tuple, Dict[str, MergeHist]] = {}
    for (operator, tech, kind), hist in merged.items():
        grouped.setdefault((operator, tech), {})[kind] = hist
    rows = []
    for (operator, tech), kinds in grouped.items():
        tcp = kinds.get(MeasurementKind.TCP, MergeHist())
        dns = kinds.get(MeasurementKind.DNS, MergeHist())
        rows.append({
            "network": "%s/%s" % (operator, tech),
            "count": tcp.count + dns.count,
            "app_median_ms": (round(tcp.median(), 2)
                              if tcp.count else None),
            "dns_median_ms": (round(dns.median(), 2)
                              if dns.count else None),
        })
    rows.sort(key=lambda row: (-row["count"], row["network"]))
    return rows[:top] if top else rows


def windows(rollups: RollupStore) -> List[Dict[str, object]]:
    """Per-window volume and app-RTT median (coarse Figure 10)."""
    per_window: Dict[str, Dict[str, MergeHist]] = {}
    for key, hist in rollups.iter_table("network"):
        window, _operator, _tech, kind = key
        per_window.setdefault(window, {}).setdefault(
            kind, MergeHist()).merge(hist)
    rows = []
    for window in sorted(per_window, key=int):
        kinds = per_window[window]
        tcp = kinds.get(MeasurementKind.TCP, MergeHist())
        total = sum(hist.count for hist in kinds.values())
        rows.append({
            "window": int(window),
            "records": total,
            "app_median_ms": (round(tcp.median(), 2)
                              if tcp.count else None),
        })
    return rows


def cases(rollups: RollupStore) -> List[Dict[str, object]]:
    """Detector findings persisted with the rollup state."""
    return list(rollups.meta.get("findings", []))
