"""Windowed, mergeable rollups over measurement records.

The backend cannot keep 6.6M raw records in memory, and the offline
sketches are not all mergeable (`P2Quantile` explicitly is not).  The
unit of aggregation here is :class:`MergeHist`, a sparse fixed-bin
integer histogram: adding a sample increments one bin, merging two
histograms adds bin counts.  Because the state is integers only and
merging is elementwise addition, a merge is associative *and*
commutative -- the rollup digest is byte-identical whether records were
ingested by one worker or sharded over eight, the same contract as
``repro.crowd.sharding``.

Bin width is 0.25 ms over [0, 8000) ms, matching the resolution of the
offline ``StreamingCDF(max_x=8000.0, n_bins=32000)`` used by the
``*_stream`` analyses, so backend quantiles agree with offline ones to
within one bin.

A :class:`RollupStore` keys histograms four ways:

* ``network``  -- (window, operator, network_type, kind): the per-ISP
  RTT/DNS tables, windowed by sim time.
* ``app``      -- (window, app_package, kind): the per-app tables.
* ``watch``    -- (suffix, class, domain) and (suffix, class,
  operator, network_type) for configured watch suffixes
  (default ``whatsapp.net``): Case 1's chat/CDN split.
* ``lte_domain`` -- (domain, operator) over LTE app RTTs: Case 2's
  cross-ISP comparison.

Snapshots serialise with sorted keys and fixed separators; the digest
is the SHA-256 of those bytes.
"""

from __future__ import annotations

import hashlib
import json
import math
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.analysis import rules
from repro.core.records import MeasurementKind, MeasurementRecord
from repro.network.link import NetworkType

#: Histogram resolution: 0.25 ms bins over [0, 8000) ms, one overflow
#: bin above -- the same grid as the offline StreamingCDF.
BIN_WIDTH_MS = 0.25
MAX_RTT_MS = 8000.0
N_BINS = int(MAX_RTT_MS / BIN_WIDTH_MS)

#: Default rollup window: 4 sim-weeks (the campaign spans 232 days, so
#: a full-scale run produces ~9 windows -- Figure 10's weekly series
#: re-binned coarsely enough to keep cardinality bounded).
DEFAULT_WINDOW_MS = 28 * 24 * 3600 * 1000.0

_SEP = "|"

#: Snapshot wire-format version.  v1 (PR 3) had no ``schema`` key;
#: v2 added it alongside the escaped key encoding; v3 (PR 9) added the
#: modality tables (``app_throughput``/``app_energy``/``aoi``).
#: ``load`` accepts all three and rejects anything newer with a clear
#: error; a missing table in an older snapshot loads as empty.
SNAPSHOT_SCHEMA = 3

#: Log-spaced bin grid for the modality tables.  Throughput (KB/s),
#: energy (mJ) and AoI (ms) all span several decades, so a linear
#: 0.25-unit grid would waste resolution at the bottom and overflow at
#: the top.  Values map onto the *same* [0, N_BINS) integer index
#: space as the RTT grid -- bin = round(BINS_PER_DECADE * log10(v/V0))
#: -- so every downstream codec (segments, checkpoints, shardmerge's
#: gid*stride+bin packing) works on modality histograms unchanged.
LOG_BINS_PER_DECADE = 2000
LOG_BIN_FLOOR = 1e-3


def log_bin(value: float) -> int:
    """Log-spaced bin index for a modality sample; clipped to the
    shared [0, N_BINS) index space."""
    if value <= LOG_BIN_FLOOR:
        return 0
    index = int(round(LOG_BINS_PER_DECADE
                      * math.log10(value / LOG_BIN_FLOOR)))
    if index < 0:
        return 0
    if index >= N_BINS:
        return N_BINS - 1
    return index


def log_bin_value(index: float) -> float:
    """Representative value for a (possibly fractional) log bin index
    -- the inverse of :func:`log_bin`, used by quantile readout."""
    return LOG_BIN_FLOOR * 10.0 ** (index / LOG_BINS_PER_DECADE)


class MergeHist:
    """Sparse fixed-bin integer histogram with exact merge semantics.

    State is ``{bin_index: count}`` plus an overflow count; values are
    clipped into ``[0, MAX_RTT_MS)``.  All state is integral, so merge
    order can never change the digest.
    """

    __slots__ = ("bins", "count", "overflow")

    def __init__(self) -> None:
        self.bins: Dict[int, int] = {}
        self.count = 0
        self.overflow = 0

    def add(self, value_ms: float) -> None:
        if value_ms >= MAX_RTT_MS:
            self.overflow += 1
            index = N_BINS - 1
        else:
            index = int(value_ms / BIN_WIDTH_MS)
            if index < 0:
                index = 0
        self.bins[index] = self.bins.get(index, 0) + 1
        self.count += 1

    def add_bin(self, index: int) -> None:
        """Increment a precomputed bin index directly -- how the
        modality tables drive their log-spaced grid (the caller maps
        value -> index via :func:`log_bin`).  State and serialisation
        are identical to linear-grid histograms."""
        if index >= N_BINS:
            self.overflow += 1
            index = N_BINS - 1
        elif index < 0:
            index = 0
        self.bins[index] = self.bins.get(index, 0) + 1
        self.count += 1

    def quantile_index(self, q: float) -> float:
        """Quantile as a fractional bin *index* (no grid assumed), so
        log-grid callers can decode via :func:`log_bin_value`."""
        if self.count == 0:
            return 0.0
        target = q * self.count
        seen = 0
        for index in sorted(self.bins):
            n = self.bins[index]
            if seen + n >= target:
                frac = (target - seen) / n if n else 0.0
                return index + frac
            seen += n
        return float(N_BINS)

    def merge(self, other: "MergeHist") -> None:
        for index, n in other.bins.items():
            self.bins[index] = self.bins.get(index, 0) + n
        self.count += other.count
        self.overflow += other.overflow

    def copy(self) -> "MergeHist":
        dup = MergeHist()
        dup.bins = dict(self.bins)
        dup.count = self.count
        dup.overflow = self.overflow
        return dup

    def quantile(self, q: float) -> float:
        """Quantile by linear interpolation inside the landing bin."""
        if self.count == 0:
            return 0.0
        target = q * self.count
        seen = 0
        for index in sorted(self.bins):
            n = self.bins[index]
            if seen + n >= target:
                frac = (target - seen) / n if n else 0.0
                return (index + frac) * BIN_WIDTH_MS
            seen += n
        return MAX_RTT_MS

    def median(self) -> float:
        return self.quantile(0.5)

    def to_dict(self) -> Dict[str, object]:
        return {
            "count": self.count,
            "overflow": self.overflow,
            # JSON objects need string keys; sorted for canonical form.
            "bins": {str(k): self.bins[k] for k in sorted(self.bins)},
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "MergeHist":
        hist = cls()
        hist.count = int(data["count"])
        hist.overflow = int(data["overflow"])
        hist.bins = {int(k): int(v)
                     for k, v in data["bins"].items()}  # type: ignore
        return hist


class RollupConfig:
    """Shape of the aggregation: window size and watched suffixes."""

    def __init__(self, window_ms: float = DEFAULT_WINDOW_MS,
                 watch_suffixes: Tuple[str, ...] = (
                     rules.WHATSAPP_SUFFIX,)) -> None:
        self.window_ms = float(window_ms)
        self.watch_suffixes = tuple(watch_suffixes)

    def window_of(self, timestamp_ms: float) -> int:
        return int(timestamp_ms // self.window_ms)

    def to_dict(self) -> Dict[str, object]:
        return {"window_ms": self.window_ms,
                "watch_suffixes": list(self.watch_suffixes)}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "RollupConfig":
        return cls(window_ms=data["window_ms"],  # type: ignore
                   watch_suffixes=tuple(data["watch_suffixes"]))


Key = Tuple[str, ...]


def _escape_part(part: str) -> str:
    return part.replace("\\", "\\\\").replace(_SEP, "\\" + _SEP)


def _encode_key(key: Key) -> str:
    """Join key parts with ``|``, escaping literal separators.

    Keys without ``|`` or ``\\`` (every key today: domains, operator
    names, window numbers) encode exactly as before, so existing
    digests are unchanged -- but a domain containing a pipe can no
    longer silently split into extra key parts on reload (the
    round-trip bug this replaces)."""
    return _SEP.join(_escape_part(part) for part in key)


def _decode_key(text: str) -> Key:
    parts: List[str] = []
    current: List[str] = []
    index = 0
    while index < len(text):
        char = text[index]
        if char == "\\" and index + 1 < len(text):
            current.append(text[index + 1])
            index += 2
            continue
        if char == _SEP:
            parts.append("".join(current))
            current = []
            index += 1
            continue
        current.append(char)
        index += 1
    parts.append("".join(current))
    return tuple(parts)


class RollupStore:
    """Live aggregates the backend serves queries from.

    Tables are ``{tuple-key: MergeHist}``; :meth:`add` routes one
    record into every table it belongs to, :meth:`merge` combines the
    stores built by parallel ingest workers.
    """

    TABLES = ("network", "app", "watch_domain", "watch_network",
              "lte_domain", "app_throughput", "app_energy", "aoi")

    #: Tables added by the modality work (PR 9); segments and
    #: checkpoints written before it simply lack these, and the readers
    #: treat a table missing from an older footer as empty.
    MODALITY_TABLES = ("app_throughput", "app_energy", "aoi")

    def __init__(self, config: Optional[RollupConfig] = None,
                 meta: Optional[Dict[str, object]] = None) -> None:
        self.config = config or RollupConfig()
        self.meta: Dict[str, object] = dict(meta or {})
        self.records = 0
        #: Failure-tagged records seen (not rolled up: their rtt_ms is
        #: a time-to-failure, not an RTT).  Live-only; not snapshotted.
        self.failure_records = 0
        self.tables: Dict[str, Dict[Key, MergeHist]] = {
            name: {} for name in self.TABLES}

    # -- ingestion ---------------------------------------------------

    def _hist(self, table: str, key: Key) -> MergeHist:
        hists = self.tables[table]
        hist = hists.get(key)
        if hist is None:
            hist = hists[key] = MergeHist()
        return hist

    def add(self, record: MeasurementRecord) -> None:
        if record.failure is not None:
            self.failure_records += 1
            return
        self.records += 1
        rtt = record.rtt_ms
        window = str(self.config.window_of(record.timestamp_ms))
        kind = record.kind
        operator = record.operator or "unknown"
        tech = record.network_type or "unknown"

        if kind == MeasurementKind.TCP:
            self._hist("network", (window, operator, tech, kind)).add(rtt)
            self._hist("app", (window, record.app_package, kind)).add(rtt)
            domain = record.domain
            for suffix in self.config.watch_suffixes:
                if rules.domain_matches_suffix(domain, suffix):
                    cls = rules.whatsapp_domain_class(domain)
                    self._hist("watch_domain",
                               (suffix, cls, domain)).add(rtt)
                    self._hist("watch_network",
                               (suffix, cls, operator, tech)).add(rtt)
            if domain is not None and tech == NetworkType.LTE:
                self._hist("lte_domain", (domain, operator)).add(rtt)
        elif kind == MeasurementKind.DNS:
            self._hist("network", (window, operator, tech, kind)).add(rtt)
        elif kind == MeasurementKind.APP_RTT:
            # App-layer RTT samples land next to the SYN RTTs on the
            # same linear grid, keyed by kind -- the divergence rule
            # compares the TCP and APP_RTT rows per operator.  The
            # first response byte can beat the lazy app mapping, so
            # the package may still be unknown here (the SYN RTT is
            # only recorded *after* mapping, hence never is).
            self._hist("network", (window, operator, tech, kind)).add(rtt)
            self._hist("app", (window, record.app_package or "unknown",
                               kind)).add(rtt)
        elif kind == MeasurementKind.TPUT_UP or \
                kind == MeasurementKind.TPUT_DOWN:
            # rtt_ms carries the throughput sample in KB/s; log grid.
            self._hist("app_throughput",
                       (window, record.app_package or "unknown",
                        kind)).add_bin(log_bin(rtt))
        elif kind == MeasurementKind.ENERGY:
            # rtt_ms carries the flow's attributed energy in mJ.
            self._hist("app_energy",
                       (window, record.app_package or "unknown")
                       ).add_bin(log_bin(rtt))
        elif kind == MeasurementKind.AOI:
            # rtt_ms carries the record-to-ACK staleness in ms.
            self._hist("aoi",
                       (window, record.device_id or "unknown",
                        tech)).add_bin(log_bin(rtt))

    def add_all(self, records: Iterable[MeasurementRecord]) -> int:
        n = 0
        for record in records:
            self.add(record)
            n += 1
        return n

    # -- merging -----------------------------------------------------

    def merge(self, other: "RollupStore") -> None:
        if other.config.to_dict() != self.config.to_dict():
            raise ValueError("cannot merge rollups with different configs")
        self.records += other.records
        self.failure_records += other.failure_records
        for table in self.TABLES:
            mine = self.tables[table]
            for key, hist in other.tables[table].items():
                existing = mine.get(key)
                if existing is None:
                    existing = mine[key] = MergeHist()
                existing.merge(hist)

    def clone(self) -> "RollupStore":
        """Deep, independent copy: the serving tier pins one as its
        memtable snapshot while ingestion keeps mutating the live
        store."""
        dup = RollupStore(config=self.config, meta=self.meta)
        dup.records = self.records
        dup.failure_records = self.failure_records
        for table in self.TABLES:
            dup.tables[table] = {
                key: hist.copy()
                for key, hist in self.tables[table].items()}
        return dup

    # -- queries -----------------------------------------------------

    def table(self, name: str) -> Dict[Key, MergeHist]:
        return self.tables[name]

    def group_count(self) -> int:
        return sum(len(t) for t in self.tables.values())

    #: Tables whose key tuples lead with the window number.
    WINDOWED_TABLES = ("network", "app", "app_throughput",
                       "app_energy", "aoi")

    def windows(self) -> List[int]:
        seen = set()
        for table in self.WINDOWED_TABLES:
            for key in self.tables[table]:
                seen.add(int(key[0]))
        return sorted(seen)

    def iter_table(self, name: str) -> Iterator[Tuple[Key, MergeHist]]:
        table = self.tables[name]
        for key in sorted(table):
            yield key, table[key]

    # -- serialisation -----------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """Canonical plain-data form: deterministic given the records,
        whatever the ingest parallelism or PYTHONHASHSEED."""
        return {
            "schema": SNAPSHOT_SCHEMA,
            "config": self.config.to_dict(),
            "meta": {k: self.meta[k] for k in sorted(self.meta)},
            "records": self.records,
            "tables": {
                table: {
                    _encode_key(key): hist.to_dict()
                    for key, hist in sorted(self.tables[table].items())
                }
                for table in self.TABLES
            },
        }

    def to_json(self) -> str:
        return json.dumps(self.snapshot(), sort_keys=True,
                          separators=(",", ":"))

    def digest(self) -> str:
        """SHA-256 over the canonical snapshot, sans run metadata
        (meta records worker counts etc., which legitimately differ
        between runs that must digest identically)."""
        snapshot = self.snapshot()
        snapshot.pop("meta")
        data = json.dumps(snapshot, sort_keys=True,
                          separators=(",", ":")).encode()
        return hashlib.sha256(data).hexdigest()

    def save(self, path: str) -> None:
        with open(path, "w") as fh:
            json.dump(self.snapshot(), fh, sort_keys=True,
                      separators=(",", ":"))
            fh.write("\n")

    @classmethod
    def from_snapshot(cls, data: Dict[str, object]) -> "RollupStore":
        """Rebuild a store from :meth:`snapshot` data.  Accepts the
        current schema and v1 (which predates the ``schema`` key);
        anything newer is rejected with a clear error rather than a
        KeyError somewhere downstream."""
        version = data.get("schema", 1)
        if version not in (1, 2, SNAPSHOT_SCHEMA):
            raise ValueError(
                "rollup snapshot has schema version %r; this build "
                "reads versions 1..%d -- refusing to guess at a "
                "newer format" % (version, SNAPSHOT_SCHEMA))
        try:
            store = cls(config=RollupConfig.from_dict(data["config"]),
                        meta=data.get("meta", {}))
            store.records = int(data["records"])
            tables = data["tables"]
        except (KeyError, TypeError) as exc:
            raise ValueError("rollup snapshot is missing required "
                             "field: %s" % exc)
        for table in cls.TABLES:
            loaded = tables.get(table, {})
            store.tables[table] = {
                _decode_key(text): MergeHist.from_dict(hist)
                for text, hist in loaded.items()
            }
        return store

    @classmethod
    def load(cls, path: str) -> "RollupStore":
        with open(path) as fh:
            data = json.load(fh)
        return cls.from_snapshot(data)
