"""Global view: fold N per-collector rollups into one rollup.

``RollupStore`` merge is commutative and associative (each cell is a
count/sum/``MergeHist`` fold), and the cluster shards by device, so
folding the collectors' stores in *any* order yields the same global
rollup -- byte-identical, by digest, to what a single collector
ingesting the whole fleet would hold.  That is the federation's
correctness invariant, and everything here exists to make it cheap to
state: runner, CLI, benchmark, and perf guard all call
:func:`merge_stores`.
"""

from __future__ import annotations

import time
from typing import Iterable, Optional

from repro.backend.rollups import RollupStore
from repro.obs import Observability


def merge_stores(stores: Iterable[RollupStore],
                 config: Optional[dict] = None,
                 obs: Optional[Observability] = None) -> RollupStore:
    """Fold per-collector rollup stores into a fresh global store.

    ``config`` seeds the global store's rollup config when no input
    store is available to copy it from (all inputs must agree --
    ``RollupStore.merge`` enforces that).  The merge wall-clock lands
    in the ``cluster.merge_wall_ms`` gauge when ``obs`` is given.
    """
    stores = list(stores)
    start = time.perf_counter()
    if stores:
        merged = stores[0].clone()
        for store in stores[1:]:
            merged.merge(store)
    else:
        merged = RollupStore(config=config)
    wall_ms = (time.perf_counter() - start) * 1000.0
    if obs is not None:
        obs.set_gauge("cluster.merge_wall_ms", wall_ms)
    return merged


__all__ = ["merge_stores"]
