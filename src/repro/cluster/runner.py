"""Cluster device worlds: the chaos runner's federated twin.

:func:`run_cluster_device_world` mirrors
:func:`repro.faults.chaos.run_device_world` exactly on the measurement
side -- same device, link, DNS, app servers, same shared world RNG
stream consumed by the same draws -- and replaces the single embedded
collector with N :class:`~repro.cluster.node.CollectorNode`s under a
:class:`~repro.cluster.coordinator.Coordinator`.

Two isolation rules keep the global-digest invariant provable:

* **Dedicated upload path.**  Collector traffic rides its own
  :class:`AccessLink` (``Internet.set_route_link``), never the
  device's measurement link, so upload packets share no FIFO queue and
  no RNG state with the traffic being measured.
* **Dedicated RNG streams.**  Every cluster-side distribution binds a
  ``_world_rng(seed, device_id, "cluster:...")`` stream.  The shared
  world RNG sees exactly the draws it sees in a classic chaos world,
  so ``service.store`` -- the measurement ground truth -- is
  byte-identical under any node count, any failure placement, and any
  ``PYTHONHASHSEED``.

With the measurement records invariant, the per-world check
``merged(all nodes) == rollup(service.store)`` forces the *global*
merged rollup (folded across device worlds by the existing chaos
shard machinery) to equal the rollup a single collector ingesting the
whole fleet would hold -- which is the acceptance invariant the CI
cluster job diffs byte-for-byte.
"""

from __future__ import annotations

import dataclasses
import os
import shutil
import tempfile
from typing import Dict, Optional

from repro.backend.ingest import IngestLoadModel
from repro.backend.rollups import RollupStore
from repro.cluster.coordinator import Coordinator
from repro.cluster.merge import merge_stores
from repro.cluster.node import CollectorNode, cluster_node_ip, node_name
from repro.core import MopEyeService
from repro.core.uploader import MeasurementUploader
from repro.crowd.campaign import stable_ip_for_domain
from repro.faults.chaos import (
    _CONNECT_WATCHDOG_MS,
    DeviceRun,
    _world_rng,
)
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.faults.scenarios import Scenario
from repro.network import AccessLink, AppServer, DnsServer, DnsZone, Internet
from repro.obs import Observability
from repro.phone import AndroidDevice, App
from repro.phone.device import ResolveError
from repro.sim import Constant, LogNormal, Simulator
from repro.store.engine import StoreConfig


def run_cluster_device_world(scenario: Scenario, plan: FaultPlan,
                             seed: int, device_index: int,
                             nodes: Optional[int] = None) -> DeviceRun:
    """Build and run one device's world against an N-node collector
    cluster; pure function of ``(scenario, seed, device_index,
    nodes)``."""
    n_active = scenario.cluster_nodes if nodes is None else int(nodes)
    if n_active < 1:
        raise ValueError("cluster worlds need >= 1 node")
    device_id, operator = scenario.devices()[device_index]
    sim = Simulator()
    internet = Internet(sim)

    # -- measurement side: identical to run_device_world ---------------
    rng = _world_rng(seed, device_id, "world")
    oneway = LogNormal(max(0.5, operator.access_oneway_ms),
                       operator.sigma).bind(rng)
    link = AccessLink(sim, up_latency=oneway, down_latency=oneway,
                      network_type=operator.network_type,
                      operator=operator.name, rng=rng)
    device = AndroidDevice(sim, internet, link, sdk=23,
                           rng=_world_rng(seed, device_id, "device"))
    device.model = device_id
    zone = DnsZone()
    dns = DnsServer(sim, "8.8.8.8", zone,
                    processing_delay=Constant(0.2),
                    path_oneway=LogNormal(2.0, 0.2).bind(rng))
    internet.add_server(dns)
    servers: Dict[str, AppServer] = {}
    for spec in scenario.apps:
        ip = stable_ip_for_domain(spec.domain)
        server = AppServer(
            sim, [ip], name=spec.domain,
            path_oneway=LogNormal(max(0.25, spec.path_oneway_ms),
                                  spec.sigma).bind(rng),
            accept_delay=Constant(0.05),
            rng=_world_rng(seed, device_id, "server:%s" % spec.domain))
        internet.add_server(server)
        zone.add(spec.domain, ip)
        servers[spec.domain] = server
    # Modalities from the relay (throughput/energy) are node-count
    # independent -- they depend only on the measurement side, which is
    # identical to a classic chaos world.  AoI is NOT enabled here:
    # its samples are ACK timings, which legitimately vary with node
    # count (failover retries, rebalance pauses) and would break the
    # digest-invariance the cluster tier proves.
    service = MopEyeService(device, modalities=scenario.modalities)
    service.start()

    # -- cluster side: dedicated link, dedicated RNG streams -----------
    uplink_rng = _world_rng(seed, device_id, "cluster:uplink")
    upload_oneway = LogNormal(4.0, 0.2).bind(uplink_rng)
    upload_link = AccessLink(sim, up_latency=upload_oneway,
                             down_latency=upload_oneway,
                             network_type=operator.network_type,
                             operator=operator.name, rng=uplink_rng)
    cluster_root = tempfile.mkdtemp(prefix="mopeye-cluster-")
    cluster_obs = Observability(sim=sim)

    def build_node(index: int) -> CollectorNode:
        node_id = node_name(index)
        ip = cluster_node_ip(index)
        data_dir = os.path.join(cluster_root, node_id)
        os.makedirs(data_dir, exist_ok=True)
        node = CollectorNode(
            sim, node_id, ip,
            data_dir=data_dir,
            path_oneway=LogNormal(8.0, 0.2).bind(
                _world_rng(seed, device_id, "cluster:path:%s" % node_id)),
            accept_delay=Constant(0.05),
            load=IngestLoadModel(base_ms=400.0, per_record_ms=5.0),
            store_config=StoreConfig(flush_threshold_records=None,
                                     checkpoint_interval_records=50,
                                     wal_shards=2),
            rng=_world_rng(seed, device_id, "cluster:node:%s" % node_id))
        internet.add_server(node.backend)
        internet.set_route_link(ip, upload_link)
        return node

    active = {node_name(i): build_node(i) for i in range(n_active)}
    standby = {node_name(n_active + i): build_node(n_active + i)
               for i in range(scenario.cluster_standby)}
    fleet = [dev for dev, _operator in scenario.devices()]
    uploader: Optional[MeasurementUploader] = None

    def on_rehome(moved_device: str, new_ip: str) -> None:
        # Placement is fleet-wide but this world only has one uploader.
        if moved_device == device_id and uploader is not None:
            uploader.rehome(new_ip)

    coordinator = Coordinator(
        sim, nodes=active, standby=standby, fleet=fleet,
        vnodes=scenario.cluster_vnodes,
        heartbeat_ms=scenario.cluster_heartbeat_ms,
        miss_threshold=scenario.cluster_miss_threshold,
        obs=cluster_obs, on_rehome=on_rehome)
    coordinator.install()
    uploader = MeasurementUploader(
        service, coordinator.home_ip(device_id),
        interval_ms=scenario.uploader_interval_ms,
        min_batch=scenario.uploader_min_batch,
        ack_timeout_ms=scenario.uploader_ack_timeout_ms,
        isn_rng=_world_rng(seed, device_id, "cluster:isn"))
    uploader.start()
    injector = FaultInjector(sim, plan, device_id=device_id,
                             operator=operator.name, link=link,
                             servers=servers, dns=dns, service=service,
                             cluster=coordinator)
    injector.install()

    # -- workload: identical to run_device_world -----------------------
    apps = {spec.package: App(device, spec.package,
                              rng=_world_rng(seed, device_id,
                                             "app:%s" % spec.package))
            for spec in scenario.apps}
    wrng = _world_rng(seed, device_id, "workload")
    resolve_failures = [0]

    def one_connect(spec):
        try:
            yield from apps[spec.package].resolve_and_request(
                spec.domain, 443, b"GET / HTTP/1.1\r\n\r\n")
        except ResolveError:
            resolve_failures[0] += 1

    def workload():
        for index in range(scenario.connects):
            spec = scenario.apps[wrng.randrange(len(scenario.apps))]
            attempt = sim.process(one_connect(spec),
                                  name="connect-%d" % index)
            yield sim.any_of([attempt,
                              sim.timeout(_CONNECT_WATCHDOG_MS)])
            yield sim.timeout(wrng.uniform(*scenario.think_ms))

    process = sim.process(workload(), name="cluster-workload")
    sim.run(until=scenario.duration_ms, stop_event=process)
    if not process.triggered:
        raise RuntimeError(
            "cluster workload for %s did not finish within the %.0f "
            "ms budget (deadlock?)" % (device_id, scenario.duration_ms))
    uploader.stop()
    # Drain far enough that every planned membership change has fired
    # and re-driven any stranded flush -- a workload that ends before
    # the failover window must not strand its tail.
    horizon = max([event.end_ms for event in plan] + [0.0])
    sim.run(until=max(sim.now + 20_000.0, horizon + 10_000.0))

    records = [dataclasses.replace(record, device_id=device_id)
               for record in service.store]

    # -- global view: fold every node's disk, prove the invariant ------
    stores = []
    rollup_config = None
    for node in coordinator.all_nodes():
        stores.append(node.materialize())
        rollup_config = node.backend.store.rollup_config
    merged = merge_stores(stores, config=rollup_config,
                          obs=cluster_obs)
    reference = RollupStore(config=rollup_config)
    reference.add_all(service.store)
    merged_total = merged.records + merged.failure_records
    event_counts = coordinator.event_counts()
    moved = sum(len(event.details.get("moved", []))
                for event in coordinator.events
                if event.kind in ("failover", "join"))
    handoffs = sum(int(event.details.get("dedup_handoffs", 0))
                   for event in coordinator.events)
    stats: Dict[str, int] = {
        "records": len(records),
        "failure_records": sum(1 for r in records
                               if r.failure is not None),
        "app_failures": sum(app.failures for app in apps.values()),
        "resolve_failures": resolve_failures[0],
        "workloads_completed": 1,
        "vpn_revocations": device.vpn.revocations,
        "service_running": int(service.running),
        "cluster_failovers": event_counts.get("failover", 0),
        "cluster_joins": event_counts.get("join", 0),
        "cluster_partitions": event_counts.get("partition", 0),
        "cluster_heals": event_counts.get("heal", 0),
        "cluster_keys_moved": moved,
        "cluster_dedup_handoffs": handoffs,
        "cluster_rollup_matches_reference":
            int(merged.digest() == reference.digest()),
        "cluster_zero_loss":
            int(merged_total == uploader.uploaded
                and uploader.uploaded == len(service.store)),
        "uploader_failures": uploader.failures,
        "uploader_ack_timeouts": uploader.ack_timeouts,
        "uploader_records_acked": uploader.uploaded,
        "uploader_rehomes": uploader.rehomes,
        "store_records": len(service.store),
    }
    rollup_snapshot = merged.snapshot()
    for node in coordinator.all_nodes():
        node.close()
    shutil.rmtree(cluster_root, ignore_errors=True)
    return DeviceRun(device_id=device_id, records=records,
                     counts=injector.counts, stats=stats,
                     rollup=rollup_snapshot)


__all__ = ["run_cluster_device_world"]
