"""The cluster control plane: membership, epochs, failover, rebalance.

The coordinator owns the :class:`~repro.cluster.ring.HashRing`, pushes
campaign/config epochs to the collector fleet, and routes each
device's uploader to its home collector.  It is the Measure-X-style
control plane over today's data plane: collectors stay dumb
(terminate PUSH2, ingest, ACK), all placement decisions live here.

Failure detection is sim-time heartbeats: every ``heartbeat_ms`` the
coordinator probes each active node; ``miss_threshold`` consecutive
misses drive a **failover** --

1. the dead node leaves the ring (its devices re-home to their ring
   successors; the structural minimal-movement bound is asserted);
2. the dead node's *disk* is recovered and its ``(device, seq) ->
   acked`` batch identities are seeded into the successors' dedup
   caches (durably: each seed is WAL-logged as an empty batch), so a
   batch the dead node ingested but never acknowledged is absorbed as
   a duplicate when the uploader replays it -- ingested exactly once
   across the fleet;
3. affected uploaders are re-homed (``uploader.rehome``), which also
   re-drives any stranded final flush.

**Rebalance** (node join) is the same machinery without a corpse: the
standby node joins the ring, moved devices' live dedup entries are
copied to it, and every moved device must land on the joined node
(the ring's minimal-movement guarantee, asserted).

Partitions are deliberately *not* failures: ``partition_node`` makes a
node unreachable for uploads while the control plane (out of band)
keeps seeing it alive -- heartbeats do not miss, no failover fires,
and ``heal_node`` re-drives stranded uploads.  The
``network_partition`` scenario exists to prove that distinction.

Every device world re-derives the same coordinator timeline from the
scenario's fault plan (fixed sim times, fixed heartbeat cadence), so
the per-world cluster event streams are identical -- which is what
lets the verify layer compare summed stats against the ledger.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.cluster.node import CollectorNode
from repro.cluster.ring import HashRing, check_minimal_movement
from repro.obs import Observability


@dataclass
class CoordinatorEvent:
    """One control-plane decision, for joining against the ledger."""
    kind: str                  # epoch | failover | join | partition
                               # | heal | cluster_lost
    time_ms: float
    node_id: Optional[str] = None
    details: Dict[str, object] = field(default_factory=dict)


class Coordinator:
    def __init__(self, sim, *,
                 nodes: Dict[str, CollectorNode],
                 standby: Optional[Dict[str, CollectorNode]] = None,
                 fleet: Sequence[str],
                 vnodes: int = 32,
                 heartbeat_ms: float = 1_000.0,
                 miss_threshold: int = 3,
                 obs: Optional[Observability] = None,
                 on_rehome: Optional[Callable[[str, str], None]] = None
                 ) -> None:
        if not nodes:
            raise ValueError("a cluster needs at least one node")
        if miss_threshold < 1:
            raise ValueError("miss_threshold must be >= 1")
        self.sim = sim
        self.nodes = dict(nodes)
        self.standby = dict(standby or {})
        #: Every device in the campaign, in canonical order: placement
        #: is computed fleet-wide so movement accounting matches what
        #: the union of device worlds experiences.
        self.fleet = list(fleet)
        self.ring = HashRing(vnodes=vnodes, nodes=sorted(self.nodes))
        self.heartbeat_ms = heartbeat_ms
        self.miss_threshold = miss_threshold
        self.obs = obs or Observability(sim=sim)
        self.on_rehome = on_rehome
        self.epoch = 0
        self.events: List[CoordinatorEvent] = []
        self._placement = self.ring.placement(self.fleet)
        self._misses: Dict[str, int] = {}
        self._retired: Dict[str, CollectorNode] = {}
        self.obs.set_gauge("cluster.nodes", float(len(self.nodes)))

    # -- routing -------------------------------------------------------

    def home_of(self, device_id: str) -> str:
        return self._placement[device_id]

    def home_ip(self, device_id: str) -> str:
        return self.nodes[self._placement[device_id]].ip

    def knows(self, node_id: str) -> bool:
        return node_id in self.nodes or node_id in self.standby

    def is_active(self, node_id: str) -> bool:
        return node_id in self.nodes

    def is_standby(self, node_id: str) -> bool:
        return node_id in self.standby

    def all_nodes(self) -> List[CollectorNode]:
        """Every node ever part of the cluster (failed and standby
        included) in id order -- the global merge must fold them all:
        a dead node's disk still holds records it acked."""
        seen = dict(self.nodes)
        seen.update(self.standby)
        seen.update(self._retired)
        return [seen[node_id] for node_id in sorted(seen)]

    # -- lifecycle -----------------------------------------------------

    def install(self) -> None:
        self._push_epoch("bootstrap")
        self.sim.process(self._heartbeat_loop(),
                         name="cluster-coordinator")

    def _push_epoch(self, reason: str) -> None:
        self.epoch += 1
        for node_id in sorted(self.nodes):
            self.nodes[node_id].config_epoch = self.epoch
        self.obs.set_gauge("cluster.epoch", float(self.epoch))
        self.events.append(CoordinatorEvent(
            "epoch", self.sim.now,
            details={"epoch": self.epoch, "reason": reason}))

    def _heartbeat_loop(self):
        while True:
            yield self.sim.timeout(self.heartbeat_ms)
            for node_id in sorted(self.nodes):
                node = self.nodes.get(node_id)
                if node is None:        # failed over mid-sweep
                    continue
                self.obs.inc("cluster.heartbeats")
                if node.failed:
                    misses = self._misses.get(node_id, 0) + 1
                    self._misses[node_id] = misses
                    self.obs.inc("cluster.heartbeat_misses")
                    if misses >= self.miss_threshold:
                        self._failover(node_id)
                else:
                    self._misses[node_id] = 0

    # -- fault facade (called by the injector) -------------------------

    def fail_node(self, node_id: str, mode: str = "refuse") -> None:
        self.nodes[node_id].fail(mode)

    def partition_node(self, node_id: str,
                       mode: str = "blackhole") -> None:
        self.nodes[node_id].partition(mode)
        self.obs.inc("cluster.partitions")
        self.events.append(CoordinatorEvent(
            "partition", self.sim.now, node_id=node_id))

    def heal_node(self, node_id: str) -> None:
        self.nodes[node_id].heal()
        self.events.append(CoordinatorEvent(
            "heal", self.sim.now, node_id=node_id))
        # Reachability is back: re-drive uploads stranded by the
        # partition (a shutdown flush that gave up mid-window).
        if self.on_rehome is not None:
            for device_id in self.fleet:
                if self._placement[device_id] == node_id:
                    self.on_rehome(device_id,
                                   self.nodes[node_id].ip)

    # -- failover ------------------------------------------------------

    def _failover(self, node_id: str) -> None:
        node = self.nodes.pop(node_id)
        self._misses.pop(node_id, None)
        self._retired[node_id] = node
        before = dict(self._placement)
        self.ring.remove(node_id)
        self.obs.inc("cluster.failovers")
        self.obs.set_gauge("cluster.nodes", float(len(self.nodes)))
        if not self.nodes:
            self.events.append(CoordinatorEvent(
                "cluster_lost", self.sim.now, node_id=node_id))
            return
        self._placement = self.ring.placement(self.fleet)
        moved = check_minimal_movement(before, self._placement,
                                       left=node_id)
        handoffs = self._handoff_durable(node, moved)
        self.obs.inc("cluster.keys_moved", len(moved))
        self.obs.inc("cluster.devices_rehomed", len(moved))
        self._push_epoch("failover:%s" % node_id)
        self.events.append(CoordinatorEvent(
            "failover", self.sim.now, node_id=node_id,
            details={"moved": list(moved), "dedup_handoffs": handoffs}))
        self._rehome(moved)

    def _handoff_durable(self, node: CollectorNode,
                         moved: Sequence[str]) -> int:
        """Seed the successors' dedup caches from the dead node's
        disk.  Only identities whose device actually re-homed matter
        (a dead node only ever held batches of its own devices)."""
        targets = set(moved)
        handoffs = 0
        for device, seq, acked in node.durable_dedup():
            if device not in targets:
                continue
            successor = self.nodes[self._placement[device]]
            if successor.backend.pipeline.adopt_dedup(device, seq,
                                                      acked):
                handoffs += 1
        if handoffs:
            self.obs.inc("cluster.dedup_handoffs", handoffs)
        return handoffs

    # -- rebalance -----------------------------------------------------

    def join_node(self, node_id: str) -> None:
        """A standby node joins the ring: bounded key movement, live
        dedup handoff for the moved devices, re-home."""
        node = self.standby.pop(node_id)
        before = dict(self._placement)
        self.nodes[node_id] = node
        self.ring.add(node_id)
        self._placement = self.ring.placement(self.fleet)
        moved = check_minimal_movement(before, self._placement,
                                       joined=node_id)
        handoffs = 0
        for device in moved:
            old = self.nodes[before[device]]
            for seq, acked in \
                    old.backend.pipeline.dedup_entries(device):
                if node.backend.pipeline.adopt_dedup(device, seq,
                                                     acked):
                    handoffs += 1
        if handoffs:
            self.obs.inc("cluster.dedup_handoffs", handoffs)
        self.obs.inc("cluster.rebalances")
        self.obs.inc("cluster.keys_moved", len(moved))
        self.obs.inc("cluster.devices_rehomed", len(moved))
        self.obs.set_gauge("cluster.nodes", float(len(self.nodes)))
        self._push_epoch("join:%s" % node_id)
        self.events.append(CoordinatorEvent(
            "join", self.sim.now, node_id=node_id,
            details={"moved": list(moved),
                     "dedup_handoffs": handoffs}))
        self._rehome(moved)

    def _rehome(self, moved: Sequence[str]) -> None:
        if self.on_rehome is None:
            return
        for device_id in moved:
            self.on_rehome(device_id,
                           self.nodes[self._placement[device_id]].ip)

    # -- accounting ----------------------------------------------------

    def event_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for event in self.events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts


__all__ = ["Coordinator", "CoordinatorEvent"]
