"""repro.cluster -- the federated multi-collector tier.

A consistent-hash ring (:mod:`~repro.cluster.ring`) shards devices
across N collector nodes (:mod:`~repro.cluster.node`), a coordinator
(:mod:`~repro.cluster.coordinator`) owns membership/epochs/failover,
and the global view (:mod:`~repro.cluster.merge`) folds the
per-collector rollups into one store whose digest must be
byte-identical to a single-collector run.  See docs/CLUSTER.md.
"""

from repro.cluster.coordinator import Coordinator, CoordinatorEvent
from repro.cluster.merge import merge_stores
from repro.cluster.node import CollectorNode, cluster_node_ip, node_name
from repro.cluster.ring import HashRing, check_minimal_movement, moved_keys

__all__ = [
    "Coordinator",
    "CoordinatorEvent",
    "CollectorNode",
    "HashRing",
    "check_minimal_movement",
    "cluster_node_ip",
    "merge_stores",
    "moved_keys",
    "node_name",
]
