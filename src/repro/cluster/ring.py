"""Consistent-hash ring: deterministic device -> collector placement.

Devices are sharded across collector nodes by hashing ``device_id``
onto a ring of virtual nodes.  The hash is CRC-32 (`zlib.crc32`), the
same PYTHONHASHSEED-proof discipline as ``crowd/sharding.py`` and the
store's WAL shard router: placement is a pure function of the strings
involved, so every device world, worker process, and CI hash-seed
lane derives the identical ring.

Virtual nodes smooth the load: each physical node owns ``vnodes``
points on the ring, and a key belongs to the first vnode at or after
its own point (wrapping).  The payoff is *minimal movement*:

* **join** -- the new node's vnodes claim arcs from existing owners;
  the only keys that move are the ones landing on those arcs, and
  every one of them moves *to the joined node*;
* **leave** -- the removed node's arcs fall to their ring successors;
  the only keys that move are the ones the dead node owned.

Both properties are structural (they follow from point ownership, not
probability), so the coordinator asserts them outright after every
membership change instead of trusting an expected-value argument.
"""

from __future__ import annotations

import bisect
import zlib
from typing import Dict, Iterable, List, Sequence, Tuple


def _point(data: str) -> int:
    return zlib.crc32(data.encode("utf-8")) & 0xFFFFFFFF


class HashRing:
    """A consistent-hash ring over string keys with virtual nodes."""

    def __init__(self, vnodes: int = 64,
                 nodes: Iterable[str] = ()) -> None:
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1 (got %d)" % vnodes)
        self.vnodes = vnodes
        # Sorted (point, node_id) pairs; ties break on node_id so the
        # ring order is total whatever the CRC collisions.
        self._points: List[Tuple[int, str]] = []
        self._nodes: set = set()
        for node_id in nodes:
            self.add(node_id)

    # -- membership ---------------------------------------------------

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node_id: str) -> bool:
        return node_id in self._nodes

    def nodes(self) -> List[str]:
        return sorted(self._nodes)

    def add(self, node_id: str) -> None:
        if node_id in self._nodes:
            raise ValueError("node %r already on the ring" % node_id)
        self._nodes.add(node_id)
        for replica in range(self.vnodes):
            pair = (_point("%s#%d" % (node_id, replica)), node_id)
            bisect.insort(self._points, pair)

    def remove(self, node_id: str) -> None:
        if node_id not in self._nodes:
            raise ValueError("node %r not on the ring" % node_id)
        self._nodes.discard(node_id)
        self._points = [pair for pair in self._points
                        if pair[1] != node_id]

    # -- placement ----------------------------------------------------

    def node_for(self, key: str) -> str:
        """The home node of ``key``: the first vnode at or after the
        key's point, wrapping past the top of the ring."""
        if not self._points:
            raise LookupError("ring is empty")
        index = bisect.bisect_left(self._points, (_point(key), ""))
        if index == len(self._points):
            index = 0
        return self._points[index][1]

    def placement(self, keys: Sequence[str]) -> Dict[str, str]:
        """``{key: node_id}`` for every key, in one pass."""
        return {key: self.node_for(key) for key in keys}


def moved_keys(before: Dict[str, str],
               after: Dict[str, str]) -> List[str]:
    """Keys whose home changed between two placements (sorted)."""
    return sorted(key for key in before
                  if key in after and before[key] != after[key])


def check_minimal_movement(before: Dict[str, str],
                           after: Dict[str, str],
                           joined: str = None,
                           left: str = None) -> List[str]:
    """Verify the ring's structural minimal-movement bound for one
    membership change and return the moved keys.

    * ``joined=N``: every moved key must now live on ``N``;
    * ``left=N``:   every moved key must have lived on ``N``.

    Raises ``AssertionError`` with the offending keys otherwise --
    the coordinator calls this after every failover and rebalance, so
    a ring regression is loud, not a silent reshuffle.
    """
    moved = moved_keys(before, after)
    if joined is not None:
        strays = [key for key in moved if after[key] != joined]
        if strays:
            raise AssertionError(
                "join of %r moved keys to other nodes: %r"
                % (joined, strays[:5]))
    if left is not None:
        strays = [key for key in moved if before[key] != left]
        if strays:
            raise AssertionError(
                "leave of %r moved keys it never owned: %r"
                % (left, strays[:5]))
    return moved


__all__ = ["HashRing", "check_minimal_movement", "moved_keys"]
