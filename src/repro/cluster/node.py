"""One collector node: today's backend + store engine, addressable.

A :class:`CollectorNode` wraps a :class:`~repro.backend.server.
BackendServer` (with its :class:`~repro.store.engine.StoreEngine`
under a per-node ``data_dir``) behind the small surface the
coordinator drives:

* ``fail(mode)``      -- the node process dies (a real ``crash()``:
  volatile state gone, WAL + segments survive) and stays dead; the
  coordinator's heartbeats notice and drive failover.
* ``partition(mode)`` -- the node is unreachable (blackholed) but the
  *process is fine*: no state is lost, heartbeats keep succeeding
  (the control plane runs out of band), and ``heal()`` restores
  reachability.  Partition must never trigger failover -- that is the
  semantic difference the ``network_partition`` scenario asserts.
* ``durable_dedup()`` -- what a dead node's disk knows about acked
  batches, for seeding its successors' dedup caches during failover.

Each node gets an explicit ``node_id`` threaded into its backend (and
from there into the metric labels and failure records -- see the
``node_id`` satellite on ``BackendServer``), so N nodes in one
process never alias each other's counters.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.backend.ingest import IngestLoadModel
from repro.backend.server import BackendServer


def cluster_node_ip(index: int) -> str:
    """Deterministic address plan: node ``i`` lives at
    ``203.0.113.(60+i)`` (clear of the legacy single-collector
    ``203.0.113.50``)."""
    if not 0 <= index < 190:
        raise ValueError("node index %d outside the /24 plan" % index)
    return "203.0.113.%d" % (60 + index)


def node_name(index: int) -> str:
    return "node-%02d" % index


class CollectorNode:
    def __init__(self, sim, node_id: str, ip: str, *,
                 data_dir: str,
                 path_oneway=None,
                 accept_delay=None,
                 load: Optional[IngestLoadModel] = None,
                 store_config=None,
                 rng=None) -> None:
        self.node_id = node_id
        self.ip = ip
        self.sim = sim
        #: Process dead (crash-stopped); heartbeats miss.
        self.failed = False
        #: Reachability lost; the process (and its state) is fine.
        self.partitioned = False
        #: The campaign/config epoch last pushed by the coordinator.
        self.config_epoch = 0
        self.backend = BackendServer(
            sim, [ip], name=node_id, node_id=node_id,
            path_oneway=path_oneway, accept_delay=accept_delay,
            load=load, data_dir=data_dir, store_config=store_config,
            rng=rng)

    # -- fault hooks (driven by the coordinator facade) ----------------

    def fail(self, mode: str = "refuse") -> None:
        """The collector process dies and stays dead (failover, not
        restart, is the recovery path)."""
        self.backend.crash(mode)
        self.failed = True

    def partition(self, mode: str = "blackhole") -> None:
        """Unreachable, not dead: packets drop, state survives, and
        in-flight ACKs are lost (the uploader's idempotent-replay
        path absorbs that on heal)."""
        self.backend.set_outage(mode)
        self.partitioned = True

    def heal(self) -> None:
        if self.failed:
            raise RuntimeError(
                "node %s is failed, not partitioned; failover is the "
                "only way back" % self.node_id)
        self.backend.clear_outage()
        self.partitioned = False

    # -- dedup handoff -------------------------------------------------

    def durable_dedup(self) -> List[Tuple[str, int, int]]:
        """``(device_id, batch_seq, acked)`` for every batch identity
        this node's *disk* remembers, sorted.

        Every accepted batch commits its WAL envelope before the ACK
        leaves, so recovering the dead node's store yields exactly the
        identities a successor must treat as already-ingested --
        derived from disk, never from the dead process's RAM."""
        store = self.backend.store
        store.recover()
        return sorted((device, int(seq), int(acked))
                      for (device, seq), acked in store.dedup.items())

    # -- end-of-run ----------------------------------------------------

    def materialize(self):
        """The node's rollups, re-materialised purely from disk."""
        store = self.backend.store
        store.recover()
        return store.materialize()

    def close(self) -> None:
        self.backend.store.close()


__all__ = ["CollectorNode", "cluster_node_ip", "node_name"]
