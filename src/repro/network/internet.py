"""Routing fabric between devices and servers.

The Internet object owns the address space: devices attach with their
access link, servers register the IPs they serve.  A packet travels
uplink -> per-server path delay -> server, and replies travel the
reverse.  The sum of those components is the wire-level RTT that
tcpdump-style observers record as ground truth.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.netstack.ip import IPPacket
from repro.sim.kernel import Simulator


class Internet:
    def __init__(self, sim: Simulator,
                 notify_unreachable: bool = False):
        self.sim = sim
        self._devices: Dict[str, object] = {}
        self._servers: Dict[str, object] = {}
        self._server_last_arrival: Dict[int, float] = {}
        # Wire observers see (direction, packet, timestamp); tcpdump is one.
        self._taps: List[Callable[[str, IPPacket, float], None]] = []
        #: Destinations whose route is withdrawn (fault injection):
        #: packets to them are treated exactly like unknown IPs.
        self.unreachable_ips: set = set()
        #: Per-destination access-link override: traffic to (and
        #: replies from) these IPs rides a dedicated link instead of
        #: ``device.link``.  The cluster tier routes uploads this way
        #: so collector traffic shares no queue or RNG state with the
        #: measurement path -- uploads must never perturb what the
        #: fleet measures.
        self._route_links: Dict[str, object] = {}
        #: When True, unroutable uplink packets bounce an ICMP-style
        #: destination-unreachable back to the sender (after the uplink
        #: latency, as a first-hop router would).  Off by default: the
        #: classic Internet here drops silently and lets TCP time out.
        self.notify_unreachable = notify_unreachable
        #: In-path middleboxes (repro.middlebox): each may claim an
        #: uplink packet via ``wants(packet, server)`` and is then
        #: substituted for the real server -- a transparent proxy the
        #: sender cannot see.  Resolution order is install order; a
        #: middlebox's *own* upstream traffic is never re-diverted.
        self._middleboxes: List[object] = []

    # -- topology -----------------------------------------------------------
    def attach_device(self, device) -> None:
        self._devices[device.ip] = device

    def add_server(self, server) -> None:
        for ip in server.ips:
            if ip in self._servers:
                raise ValueError("IP %s already registered" % ip)
            self._servers[ip] = server
        server.internet = self

    def server_for(self, ip: str):
        return self._servers.get(ip)

    def set_route_link(self, ip: str, link) -> None:
        """Route traffic to/from ``ip`` over ``link`` instead of the
        device's access link (see ``_route_links``)."""
        self._route_links[ip] = link

    def install_middlebox(self, middlebox) -> None:
        """Place a middlebox in-path (see ``_middleboxes``).  The
        middlebox stays installed but inert until its ``enabled`` flag
        is set (fault-injector driven), so installing one cannot move
        a byte on its own."""
        self._middleboxes.append(middlebox)

    def remove_middlebox(self, middlebox) -> None:
        self._middleboxes.remove(middlebox)

    def add_tap(self, tap: Callable[[str, IPPacket, float], None]) -> None:
        """Register a wire observer (e.g. the tcpdump baseline)."""
        self._taps.append(tap)

    def _notify_taps(self, direction: str, packet: IPPacket) -> None:
        for tap in self._taps:
            tap(direction, packet, self.sim.now)

    # -- forwarding -----------------------------------------------------------
    def send_from_device(self, device, packet: IPPacket) -> None:
        """Uplink: device -> (link) -> path -> server."""
        self._notify_taps("up", packet)
        server = self._servers.get(packet.dst_str)
        if packet.dst_str in self.unreachable_ips:
            server = None
        if server is None:
            # Unroutable destination: silently dropped, like the real
            # network, unless ICMP feedback is enabled.  TCP timeouts
            # upstream handle the silent case.  With feedback on, the
            # packet still crosses the uplink; the first router past it
            # bounces a (small) destination-unreachable back down.
            if self.notify_unreachable:
                device.link.up.send(
                    packet, packet.total_length,
                    lambda pkt: device.link.down.send(
                        pkt, 64,
                        lambda orig: device.deliver_unreachable(orig)))
            return

        # Transparent interception: a middlebox may claim the packet
        # and stand in for the server.  Only routable destinations are
        # divertible (the unreachable/unknown cases above keep their
        # exact semantics), and a middlebox never intercepts its own
        # upstream traffic.
        for middlebox in self._middleboxes:
            if device is not middlebox and server is not middlebox \
                    and middlebox.wants(packet, server):
                server = middlebox
                break

        def after_uplink(pkt: IPPacket) -> None:
            # Path segments are FIFO too: clamp per-server arrivals.
            arrival = self.sim.now + server.path_oneway_ms()
            key = id(server)
            arrival = max(arrival, self._server_last_arrival.get(key, 0.0))
            self._server_last_arrival[key] = arrival
            arrive = self.sim.timeout(arrival - self.sim.now)
            arrive.callbacks.append(lambda _evt: server.receive(pkt))

        link = self._route_links.get(packet.dst_str, device.link)
        link.up.send(packet, packet.total_length, after_uplink)

    def send_to_device(self, packet: IPPacket,
                       from_server=None) -> None:
        """Downlink: server -> path -> (link) -> device."""
        device = self._devices.get(packet.dst_str)
        if device is None:
            return
        extra = from_server.path_oneway_ms() if from_server else 0.0
        link = self._route_links.get(packet.src_str, device.link)

        def after_path(_evt) -> None:
            def deliver(pkt: IPPacket) -> None:
                self._notify_taps("down", pkt)
                device.deliver_from_network(pkt)

            link.down.send(packet, packet.total_length, deliver)

        arrive = self.sim.timeout(extra)
        arrive.callbacks.append(after_path)
