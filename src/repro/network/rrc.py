"""Cellular RRC (Radio Resource Control) state machine.

The paper's related work ([41] Qian et al., [28] Huang et al., [44]
Rosen et al.) establishes that a large share of cellular RTT variance
comes from RRC state dynamics: a radio idling in a low-power state must
be *promoted* to a dedicated/connected state before the first packet
can flow, adding hundreds of milliseconds; after a burst the radio
lingers in a high-power *tail* before demoting.

This module models the machine for 3G-style (IDLE / FACH / DCH) and
LTE-style (RRC_IDLE / RRC_CONNECTED with DRX) radios.  An
:class:`RrcAwareLink` wraps an :class:`~repro.network.link.AccessLink`
so that packets sent after an idle period pay the promotion delay --
which is exactly the first-packet latency inflation MopEye's SYN-based
RTTs observe in the wild, and one reason cellular medians sit above
WiFi's in Figure 9(a).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Optional

from repro.network.link import AccessLink
from repro.sim.distributions import Constant, Distribution, Normal
from repro.sim.kernel import Simulator


class RrcState:
    IDLE = "IDLE"            # no radio resources; promotion needed
    LOW = "LOW"              # FACH (3G) / connected-DRX (LTE)
    HIGH = "HIGH"            # DCH (3G) / RRC_CONNECTED active (LTE)


@dataclass
class RrcProfile:
    """Promotion delays and inactivity (tail) timers, milliseconds."""

    name: str
    idle_to_high_ms: Distribution    # full promotion
    low_to_high_ms: Distribution     # partial promotion
    high_tail_ms: float              # HIGH -> LOW inactivity timer
    low_tail_ms: float               # LOW -> IDLE inactivity timer

    @classmethod
    def lte(cls, rng: Optional[random.Random] = None) -> "RrcProfile":
        """LTE: fast promotions (~260 ms idle->connected per Huang et
        al.), ~10 s + ~1 s tail timers."""
        rng = rng or random.Random(0)
        return cls(
            name="LTE",
            idle_to_high_ms=Normal(260.0, 40.0, floor=80.0).bind(rng),
            low_to_high_ms=Normal(40.0, 15.0, floor=5.0).bind(rng),
            high_tail_ms=10_000.0,
            low_tail_ms=1_000.0)

    @classmethod
    def umts(cls, rng: Optional[random.Random] = None) -> "RrcProfile":
        """3G UMTS: ~2 s IDLE->DCH, ~1.5 s FACH->DCH promotions, 5 s /
        12 s inactivity timers (Qian et al.)."""
        rng = rng or random.Random(0)
        return cls(
            name="UMTS",
            idle_to_high_ms=Normal(2000.0, 300.0,
                                   floor=800.0).bind(rng),
            low_to_high_ms=Normal(1500.0, 250.0,
                                  floor=500.0).bind(rng),
            high_tail_ms=5_000.0,
            low_tail_ms=12_000.0)


class RrcMachine:
    """Tracks the radio state from observed send instants."""

    def __init__(self, sim: Simulator, profile: RrcProfile):
        self.sim = sim
        self.profile = profile
        self.state = RrcState.IDLE
        self._busy_until = 0.0   # promotion in progress until here
        self._last_activity = 0.0
        self.promotions_full = 0
        self.promotions_partial = 0

    def _apply_timers(self) -> None:
        """Demote according to inactivity before judging a new send."""
        idle_for = self.sim.now - self._last_activity
        if self.state == RrcState.HIGH:
            if idle_for > self.profile.high_tail_ms + \
                    self.profile.low_tail_ms:
                self.state = RrcState.IDLE
            elif idle_for > self.profile.high_tail_ms:
                self.state = RrcState.LOW
        elif self.state == RrcState.LOW:
            if idle_for > self.profile.low_tail_ms:
                self.state = RrcState.IDLE

    def send_delay_ms(self) -> float:
        """Extra delay the radio imposes on a packet sent now; also
        advances the machine (promotion + activity timestamps)."""
        self._apply_timers()
        now = self.sim.now
        if self.state == RrcState.IDLE:
            delay = self.profile.idle_to_high_ms.sample()
            self.promotions_full += 1
            self.state = RrcState.HIGH
            self._busy_until = now + delay
        elif self.state == RrcState.LOW:
            delay = self.profile.low_to_high_ms.sample()
            self.promotions_partial += 1
            self.state = RrcState.HIGH
            self._busy_until = now + delay
        else:
            # Already HIGH: packets queued behind an in-flight
            # promotion still wait for it.
            delay = max(0.0, self._busy_until - now)
        self._last_activity = max(now + delay, self._last_activity)
        return delay

    @property
    def current_state(self) -> str:
        self._apply_timers()
        return self.state


class RrcAwareLink:
    """Wraps an AccessLink so uplink sends pay RRC promotion delays.

    Drop-in for the `link` argument of :class:`AndroidDevice`: exposes
    ``up``/``down``/``network_type``/``operator`` like AccessLink, but
    ``up.send`` defers packets by the radio's promotion delay first.
    """

    def __init__(self, link: AccessLink, profile: RrcProfile):
        self.link = link
        self.machine = RrcMachine(link.sim, profile)
        self.down = link.down
        self.network_type = link.network_type
        self.operator = link.operator
        self.up = _RrcUplink(self)

    @property
    def sim(self):
        return self.link.sim


class _RrcUplink:
    def __init__(self, owner: RrcAwareLink):
        self._owner = owner

    def __getattr__(self, name):
        return getattr(self._owner.link.up, name)

    def send(self, payload, size_bytes: int,
             deliver: Callable[[object], None]) -> None:
        owner = self._owner
        delay = owner.machine.send_delay_ms()
        if delay <= 0:
            owner.link.up.send(payload, size_bytes, deliver)
            return
        timer = owner.sim.timeout(delay)
        timer.callbacks.append(
            lambda _evt: owner.link.up.send(payload, size_bytes,
                                            deliver))
