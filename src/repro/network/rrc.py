"""Cellular RRC (Radio Resource Control) state machine.

The paper's related work ([41] Qian et al., [28] Huang et al., [44]
Rosen et al.) establishes that a large share of cellular RTT variance
comes from RRC state dynamics: a radio idling in a low-power state must
be *promoted* to a dedicated/connected state before the first packet
can flow, adding hundreds of milliseconds; after a burst the radio
lingers in a high-power *tail* before demoting.

This module models the machine for 3G-style (IDLE / FACH / DCH) and
LTE-style (RRC_IDLE / RRC_CONNECTED with DRX) radios.  An
:class:`RrcAwareLink` wraps an :class:`~repro.network.link.AccessLink`
so that packets sent after an idle period pay the promotion delay --
which is exactly the first-packet latency inflation MopEye's SYN-based
RTTs observe in the wild, and one reason cellular medians sit above
WiFi's in Figure 9(a).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Optional

from repro.network.link import AccessLink
from repro.sim.distributions import Constant, Distribution, Normal
from repro.sim.kernel import Simulator


class RrcState:
    IDLE = "IDLE"            # no radio resources; promotion needed
    LOW = "LOW"              # FACH (3G) / connected-DRX (LTE)
    HIGH = "HIGH"            # DCH (3G) / RRC_CONNECTED active (LTE)


@dataclass
class RrcProfile:
    """Promotion delays and inactivity (tail) timers, milliseconds."""

    name: str
    idle_to_high_ms: Distribution    # full promotion
    low_to_high_ms: Distribution     # partial promotion
    high_tail_ms: float              # HIGH -> LOW inactivity timer
    low_tail_ms: float               # LOW -> IDLE inactivity timer

    @classmethod
    def lte(cls, rng: Optional[random.Random] = None) -> "RrcProfile":
        """LTE: fast promotions (~260 ms idle->connected per Huang et
        al.), ~10 s + ~1 s tail timers."""
        rng = rng or random.Random(0)
        return cls(
            name="LTE",
            idle_to_high_ms=Normal(260.0, 40.0, floor=80.0).bind(rng),
            low_to_high_ms=Normal(40.0, 15.0, floor=5.0).bind(rng),
            high_tail_ms=10_000.0,
            low_tail_ms=1_000.0)

    @classmethod
    def umts(cls, rng: Optional[random.Random] = None) -> "RrcProfile":
        """3G UMTS: ~2 s IDLE->DCH, ~1.5 s FACH->DCH promotions, 5 s /
        12 s inactivity timers (Qian et al.)."""
        rng = rng or random.Random(0)
        return cls(
            name="UMTS",
            idle_to_high_ms=Normal(2000.0, 300.0,
                                   floor=800.0).bind(rng),
            low_to_high_ms=Normal(1500.0, 250.0,
                                  floor=500.0).bind(rng),
            high_tail_ms=5_000.0,
            low_tail_ms=12_000.0)


#: State -> dwell-time metric (docs/OBSERVABILITY.md).
_DWELL_METRIC = {
    RrcState.IDLE: "rrc.dwell_idle_ms",
    RrcState.LOW: "rrc.dwell_low_ms",
    RrcState.HIGH: "rrc.dwell_high_ms",
}


class RrcMachine:
    """Tracks the radio state from observed send instants.

    Besides the promotion counters, the machine accounts *dwell time*
    per state and the share of powered dwell that was pure tail
    (lingering after the last activity) -- the quantities the per-app
    energy modality joins against.  Dwell is attributed at the instant
    a demotion is *judged* (timers are lazy), but credited at the sim
    time the inactivity timer actually expired, so accounting is
    independent of how often callers poll.
    """

    def __init__(self, sim: Simulator, profile: RrcProfile,
                 obs=None):
        self.sim = sim
        self.profile = profile
        self.obs = obs
        self.state = RrcState.IDLE
        self._busy_until = 0.0   # promotion in progress until here
        self._last_activity = 0.0
        self._state_since = 0.0  # when the current state was entered
        self.promotions_full = 0
        self.promotions_partial = 0
        self.dwell = {RrcState.IDLE: 0.0, RrcState.LOW: 0.0,
                      RrcState.HIGH: 0.0}
        self.tail_ms = 0.0

    def _enter(self, state: str, at: float) -> None:
        elapsed = max(0.0, at - self._state_since)
        self.dwell[self.state] += elapsed
        if self.obs is not None and elapsed > 0:
            self.obs.inc(_DWELL_METRIC[self.state], elapsed)
        self.state = state
        self._state_since = max(at, self._state_since)

    def _credit_tail(self, ms: float) -> None:
        self.tail_ms += ms
        if self.obs is not None and ms > 0:
            self.obs.inc("rrc.tail_ms", ms)

    def _apply_timers(self) -> None:
        """Demote according to inactivity before judging a new send."""
        idle_for = self.sim.now - self._last_activity
        if self.state == RrcState.HIGH:
            if idle_for > self.profile.high_tail_ms:
                demoted_at = self._last_activity \
                    + self.profile.high_tail_ms
                self._credit_tail(self.profile.high_tail_ms)
                self._enter(RrcState.LOW, demoted_at)
                if idle_for > self.profile.high_tail_ms + \
                        self.profile.low_tail_ms:
                    self._credit_tail(self.profile.low_tail_ms)
                    self._enter(RrcState.IDLE,
                                demoted_at + self.profile.low_tail_ms)
        elif self.state == RrcState.LOW:
            if idle_for > self.profile.low_tail_ms:
                self._credit_tail(self.profile.low_tail_ms)
                self._enter(RrcState.IDLE,
                            self._last_activity
                            + self.profile.low_tail_ms)

    def send_delay_ms(self) -> float:
        """Extra delay the radio imposes on a packet sent now; also
        advances the machine (promotion + activity timestamps)."""
        self._apply_timers()
        now = self.sim.now
        if self.state == RrcState.IDLE:
            delay = self.profile.idle_to_high_ms.sample()
            self.promotions_full += 1
            self._enter(RrcState.HIGH, now)
            self._busy_until = now + delay
        elif self.state == RrcState.LOW:
            delay = self.profile.low_to_high_ms.sample()
            self.promotions_partial += 1
            self._enter(RrcState.HIGH, now)
            self._busy_until = now + delay
        else:
            # Already HIGH: packets queued behind an in-flight
            # promotion still wait for it.
            delay = max(0.0, self._busy_until - now)
        self._last_activity = max(now + delay, self._last_activity)
        return delay

    def dwell_snapshot(self) -> dict:
        """Dwell accounted up to now, current state included."""
        self._apply_timers()
        out = dict(self.dwell)
        out[self.state] += max(0.0, self.sim.now - self._state_since)
        return {"idle_ms": out[RrcState.IDLE],
                "low_ms": out[RrcState.LOW],
                "high_ms": out[RrcState.HIGH],
                "tail_ms": self.tail_ms}

    @property
    def current_state(self) -> str:
        self._apply_timers()
        return self.state


class RrcAwareLink:
    """Wraps an AccessLink so uplink sends pay RRC promotion delays.

    Drop-in for the `link` argument of :class:`AndroidDevice`: exposes
    ``up``/``down``/``network_type``/``operator`` like AccessLink, but
    ``up.send`` defers packets by the radio's promotion delay first.
    """

    def __init__(self, link: AccessLink, profile: RrcProfile,
                 obs=None):
        self.link = link
        self.machine = RrcMachine(link.sim, profile, obs=obs)
        self.down = link.down
        self.network_type = link.network_type
        self.operator = link.operator
        self.up = _RrcUplink(self)

    @property
    def sim(self):
        return self.link.sim


class _RrcUplink:
    def __init__(self, owner: RrcAwareLink):
        self._owner = owner

    def __getattr__(self, name):
        return getattr(self._owner.link.up, name)

    def send(self, payload, size_bytes: int,
             deliver: Callable[[object], None]) -> None:
        owner = self._owner
        delay = owner.machine.send_delay_ms()
        if delay <= 0:
            owner.link.up.send(payload, size_bytes, deliver)
            return
        timer = owner.sim.timeout(delay)
        timer.callbacks.append(
            lambda _evt: owner.link.up.send(payload, size_bytes,
                                            deliver))
