"""Simulated access networks, internet fabric, and remote servers.

This package is the ground truth the measurements are judged against:
the RTT a packet actually experiences on the access link + path is what
tcpdump would have reported, and every measurement tool's error is its
deviation from these link-level timings.
"""

from repro.network.link import AccessLink, LinkDirection, NetworkType
from repro.network.internet import Internet
from repro.network.servers import (
    AppServer,
    DnsServer,
    DnsZone,
    UdpEchoServer,
)
from repro.network.latency_models import (
    cellular_2g_profile,
    cellular_3g_profile,
    lte_profile,
    wifi_profile,
)
from repro.network.rrc import (
    RrcAwareLink,
    RrcMachine,
    RrcProfile,
    RrcState,
)

__all__ = [
    "AccessLink",
    "AppServer",
    "DnsServer",
    "DnsZone",
    "Internet",
    "LinkDirection",
    "NetworkType",
    "RrcAwareLink",
    "RrcMachine",
    "RrcProfile",
    "RrcState",
    "UdpEchoServer",
    "cellular_2g_profile",
    "cellular_3g_profile",
    "lte_profile",
    "wifi_profile",
]
