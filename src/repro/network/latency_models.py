"""Canonical access-technology latency profiles.

One-way latency distributions per technology, calibrated so that the
*RTT* medians line up with the paper's dataset-wide observations
(section 4.2: WiFi median RTT 58 ms, LTE 76 ms; DNS medians WiFi 33 ms,
4G 56 ms, 3G 105 ms, 2G 755 ms).  A profile describes only the access
side; per-destination path latency is added by the server placement.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.network.link import AccessLink, NetworkType
from repro.sim.distributions import Distribution, LogNormal
from repro.sim.kernel import Simulator


def _oneway(median_rtt_ms: float, sigma: float,
            rng: random.Random) -> Distribution:
    """One-way latency distribution whose doubled median matches the
    target RTT median."""
    return LogNormal(median=median_rtt_ms / 2.0, sigma=sigma).bind(rng)


def wifi_profile(sim: Simulator, rng: Optional[random.Random] = None,
                 operator: str = "wifi", median_rtt_ms: float = 14.0,
                 bandwidth_mbps: float = 25.0) -> AccessLink:
    """Home/office WiFi: low first-hop latency, ~25 Mbps (the paper's
    dedicated test WiFi, section 4.1.2)."""
    rng = rng or random.Random(0)
    return AccessLink(
        sim,
        up_latency=_oneway(median_rtt_ms, 0.45, rng),
        down_latency=_oneway(median_rtt_ms, 0.45, rng),
        up_bandwidth_mbps=bandwidth_mbps,
        down_bandwidth_mbps=bandwidth_mbps,
        network_type=NetworkType.WIFI, operator=operator, rng=rng)


def lte_profile(sim: Simulator, rng: Optional[random.Random] = None,
                operator: str = "lte", median_rtt_ms: float = 36.0,
                bandwidth_mbps: float = 40.0) -> AccessLink:
    """4G LTE: ~30-40 ms first-hop RTT."""
    rng = rng or random.Random(0)
    return AccessLink(
        sim,
        up_latency=_oneway(median_rtt_ms, 0.40, rng),
        down_latency=_oneway(median_rtt_ms, 0.40, rng),
        up_bandwidth_mbps=bandwidth_mbps,
        down_bandwidth_mbps=bandwidth_mbps,
        network_type=NetworkType.LTE, operator=operator, rng=rng)


def cellular_3g_profile(sim: Simulator,
                        rng: Optional[random.Random] = None,
                        operator: str = "3g",
                        median_rtt_ms: float = 90.0,
                        bandwidth_mbps: float = 5.0) -> AccessLink:
    """3G UMTS/HSPA(+): ~100 ms first-hop RTT, wider spread."""
    rng = rng or random.Random(0)
    return AccessLink(
        sim,
        up_latency=_oneway(median_rtt_ms, 0.55, rng),
        down_latency=_oneway(median_rtt_ms, 0.55, rng),
        up_bandwidth_mbps=bandwidth_mbps,
        down_bandwidth_mbps=bandwidth_mbps,
        network_type=NetworkType.UMTS, operator=operator, rng=rng)


def cellular_2g_profile(sim: Simulator,
                        rng: Optional[random.Random] = None,
                        operator: str = "2g",
                        median_rtt_ms: float = 740.0,
                        bandwidth_mbps: float = 0.2) -> AccessLink:
    """2G GPRS/EDGE: three-quarter-second RTTs (Figure 10(b))."""
    rng = rng or random.Random(0)
    return AccessLink(
        sim,
        up_latency=_oneway(median_rtt_ms, 0.50, rng),
        down_latency=_oneway(median_rtt_ms, 0.50, rng),
        up_bandwidth_mbps=bandwidth_mbps,
        down_bandwidth_mbps=bandwidth_mbps,
        network_type=NetworkType.GPRS, operator=operator, rng=rng)
