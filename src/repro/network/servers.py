"""Remote endpoints: TCP application servers and UDP DNS resolvers.

App servers terminate TCP with the same RFC 793 state machine the
user-space stack uses (passive open), so the whole path from an app's
SYN to the server's SYN/ACK is exercised at the wire-format level.

The default application protocol is a minimal request/response scheme
rich enough for every experiment:

* ``b"GET ..."``      -> a fixed-size response page,
* ``b"DOWNLOAD <n>"`` -> ``n`` bytes of payload (speedtest download),
* ``b"UPLOAD <n>"``   -> server consumes ``n`` bytes then replies ``OK``
  (speedtest upload),
* anything else      -> echoed back.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from repro.netstack.dns import (
    DNSMessage,
    DNSResourceRecord,
    RCODE_NXDOMAIN,
    RCODE_SERVFAIL,
)
from repro.netstack.ip import IPPacket, PROTO_TCP, PROTO_UDP
from repro.netstack.tcp_segment import ACK, SYN, TCPSegment
from repro.netstack.tcp_state import (
    TCPState,
    TCPStateError,
    TCPStateMachine,
)

SYN_ACK_FLAGS = SYN | ACK
from repro.netstack.udp_datagram import UDPDatagram
from repro.sim.distributions import Constant, Distribution
from repro.sim.kernel import Simulator

_RESPONSE_PAGE = b"HTTP/1.1 200 OK\r\n\r\n" + b"m" * 1000

# Outage modes shared by AppServer and DnsServer (driven by
# repro.faults.injector).  "refuse" answers SYNs with RST (process
# down, host up); "blackhole" drops everything (host or route gone);
# "slow_accept" delays the SYN/ACK by outage_slow_ms (brownout);
# "servfail" (DNS only) answers queries with SERVFAIL.
OUTAGE_REFUSE = "refuse"
OUTAGE_BLACKHOLE = "blackhole"
OUTAGE_SLOW_ACCEPT = "slow_accept"
OUTAGE_SERVFAIL = "servfail"


class _ServerConnection:
    """Server-side state for one TCP connection."""

    def __init__(self, machine: TCPStateMachine):
        self.machine = machine
        self.request = bytearray()
        self.upload_expected: Optional[int] = None
        self.upload_received = 0


class AppServer:
    """A TCP server reachable at one or more IPs."""

    def __init__(self, sim: Simulator, ips: List[str], name: str = "server",
                 path_oneway: Optional[Distribution] = None,
                 accept_delay: Optional[Distribution] = None,
                 response_page: bytes = _RESPONSE_PAGE,
                 listen_ports: Optional[List[int]] = None,
                 rng: Optional[random.Random] = None):
        self.sim = sim
        self.ips = list(ips)
        self.name = name
        self.path_oneway = path_oneway or Constant(0.0)
        self.accept_delay = accept_delay or Constant(0.1)
        self.response_page = response_page
        # None = accept any port; otherwise SYNs to other ports are
        # refused with RST (ConnectionRefused at the client).
        self.listen_ports = (set(listen_ports)
                             if listen_ports is not None else None)
        self.rng = rng or random.Random(0)
        self.internet = None  # set by Internet.add_server
        self._connections: Dict[Tuple[str, int, str, int],
                                _ServerConnection] = {}
        self.connections_accepted = 0
        self.bad_segments = 0
        self.syn_ack_retransmissions = 0
        #: Active outage mode (None in steady state); see set_outage.
        self.outage_mode: Optional[str] = None
        self.outage_slow_ms = 0.0

    def path_oneway_ms(self) -> float:
        return self.path_oneway.sample()

    # -- fault hooks -------------------------------------------------------
    def set_outage(self, mode: str, slow_ms: float = 0.0) -> None:
        if mode not in (OUTAGE_REFUSE, OUTAGE_BLACKHOLE,
                        OUTAGE_SLOW_ACCEPT):
            raise ValueError("unknown outage mode %r" % mode)
        self.outage_mode = mode
        self.outage_slow_ms = slow_ms

    def clear_outage(self) -> None:
        self.outage_mode = None
        self.outage_slow_ms = 0.0

    # -- packet handling ---------------------------------------------------
    def receive(self, packet: IPPacket) -> None:
        if packet.protocol != PROTO_TCP:
            return
        if self.outage_mode == OUTAGE_BLACKHOLE:
            return
        segment = TCPSegment.decode(packet.payload)
        key = (packet.src_str, segment.src_port,
               packet.dst_str, segment.dst_port)
        if segment.is_syn:
            if self.outage_mode == OUTAGE_REFUSE:
                self._refuse(packet, segment, key)
                return
            if self.listen_ports is not None and \
                    segment.dst_port not in self.listen_ports:
                self._refuse(packet, segment, key)
                return
            existing = self._connections.get(key)
            if existing is not None:
                # SYN retransmission (the first SYN/ACK is stuck in a
                # queue somewhere): re-answer from the existing
                # half-open connection, never re-accept with a new ISN.
                if existing.machine.state == TCPState.SYN_RECEIVED:
                    self._retransmit_syn_ack(key, existing.machine)
                return
            self._accept(packet, segment, key)
            return
        conn = self._connections.get(key)
        if conn is None:
            return
        machine = conn.machine
        try:
            self._process_segment(key, conn, machine, segment)
        except TCPStateError:
            # Stale/duplicate segment for a superseded state; real
            # stacks drop these.
            self.bad_segments += 1

    def _refuse(self, packet: IPPacket, segment: TCPSegment,
                key) -> None:
        """No listener on the port: answer the SYN with RST."""
        from repro.netstack.tcp_segment import RST
        rst = TCPSegment(segment.dst_port, segment.src_port,
                         seq=0, ack=(segment.seq + 1) & 0xFFFFFFFF,
                         flags=RST | ACK)
        self._transmit(key, rst)

    def _retransmit_syn_ack(self, key, machine: TCPStateMachine) -> None:
        self.syn_ack_retransmissions += 1
        duplicate = TCPSegment(
            src_port=machine.remote_port, dst_port=machine.local_port,
            seq=machine.snd_iss, ack=machine.rcv_nxt or 0,
            flags=SYN_ACK_FLAGS, window=machine.window,
            mss=machine.mss)
        self._transmit(key, duplicate)

    def _process_segment(self, key, conn: "_ServerConnection",
                         machine: TCPStateMachine,
                         segment: TCPSegment) -> None:
        if segment.is_rst:
            machine.on_rst(segment)
            self._connections.pop(key, None)
            return
        if segment.is_fin:
            ack = machine.on_fin(segment)
            self._transmit(key, ack)
            # Close our side right back (typical server close).
            if machine.state == TCPState.CLOSE_WAIT:
                self._transmit(key, machine.make_fin())
            return
        if machine.state == TCPState.SYN_RECEIVED and segment.flags:
            if segment.payload:
                data = machine.on_data(segment)
                self._on_request_bytes(key, conn, data)
            else:
                machine.on_handshake_ack(segment)
            return
        if segment.payload:
            data = machine.on_data(segment)
            self._transmit(key, machine.make_ack())
            self._on_request_bytes(key, conn, data)
        elif machine.fin_sent:
            machine.on_fin_ack(segment)
            if machine.is_closed:
                self._connections.pop(key, None)
        # Pure ACKs for data need no action (no flow control here).

    def _accept(self, packet: IPPacket, segment: TCPSegment, key) -> None:
        machine = TCPStateMachine(
            local_ip=packet.src_str, local_port=segment.src_port,
            remote_ip=packet.dst_str, remote_port=segment.dst_port,
            isn=self.rng.randrange(1 << 32))
        machine.on_syn(segment)
        self._connections[key] = _ServerConnection(machine)
        self.connections_accepted += 1
        accept_ms = self.accept_delay.sample()
        if self.outage_mode == OUTAGE_SLOW_ACCEPT:
            accept_ms += self.outage_slow_ms
        delay = self.sim.timeout(accept_ms)
        delay.callbacks.append(
            lambda _evt: self._transmit(key, machine.make_syn_ack()))

    # -- application protocol -------------------------------------------------
    def _on_request_bytes(self, key, conn: _ServerConnection,
                          data: bytes) -> None:
        """Framed request parsing.  Relays may coalesce writes, so one
        chunk can carry a command line *and* following body bytes (or
        several commands); consume the buffer incrementally."""
        conn.request.extend(data)
        while True:
            if conn.upload_expected is not None:
                take = min(len(conn.request),
                           conn.upload_expected - conn.upload_received)
                del conn.request[:take]
                conn.upload_received += take
                if conn.upload_received >= conn.upload_expected:
                    conn.upload_expected = None
                    self._send_data(key, conn, b"OK")
                    continue
                return
            if not conn.request:
                return
            if conn.request.startswith(b"GET"):
                end = conn.request.find(b"\r\n\r\n")
                if end < 0:
                    return  # incomplete HTTP request
                del conn.request[:end + 4]
                self._send_data(key, conn, self.response_page)
                continue
            newline = conn.request.find(b"\n")
            if newline < 0:
                return  # incomplete command line
            line = bytes(conn.request[:newline])
            del conn.request[:newline + 1]
            if line.startswith(b"DOWNLOAD "):
                try:
                    size = int(line.split()[1])
                except (IndexError, ValueError):
                    continue
                self._send_data(key, conn, b"d" * size)
            elif line.startswith(b"UPLOAD "):
                try:
                    size = int(line.split()[1])
                except (IndexError, ValueError):
                    continue
                conn.upload_expected = size
                conn.upload_received = 0
            else:
                self._send_data(key, conn, line + b"\n")  # echo

    def _send_data(self, key, conn: _ServerConnection,
                   payload: bytes) -> None:
        for segment in conn.machine.deliver(payload):
            self._transmit(key, segment)

    def _transmit(self, key, segment: TCPSegment) -> None:
        client_ip, _client_port, server_ip, _server_port = key
        packet = IPPacket(server_ip, client_ip, PROTO_TCP,
                          segment.encode(server_ip, client_ip))
        self.internet.send_to_device(packet, from_server=self)

    def __repr__(self) -> str:
        return "<AppServer %s %s>" % (self.name, ",".join(self.ips))


class UdpEchoServer:
    """A generic UDP responder (non-DNS UDP traffic: QUIC-ish probes,
    NTP-style exchanges).  Echoes every datagram back after a
    processing delay -- used to verify MopEye relays *all* UDP, not
    just port 53 (section 2.2)."""

    def __init__(self, sim: Simulator, ip: str, name: str = "udp-echo",
                 path_oneway: Optional[Distribution] = None,
                 processing_delay: Optional[Distribution] = None):
        self.sim = sim
        self.ips = [ip]
        self.ip = ip
        self.name = name
        self.path_oneway = path_oneway or Constant(0.0)
        self.processing_delay = processing_delay or Constant(0.2)
        self.internet = None
        self.datagrams_echoed = 0

    def path_oneway_ms(self) -> float:
        return self.path_oneway.sample()

    def receive(self, packet: IPPacket) -> None:
        if packet.protocol != PROTO_UDP:
            return
        datagram = UDPDatagram.decode(packet.payload)
        self.datagrams_echoed += 1
        reply = UDPDatagram(datagram.dst_port, datagram.src_port,
                            datagram.payload)
        out = IPPacket(packet.dst_str, packet.src_str, PROTO_UDP,
                       reply.encode(packet.dst_str, packet.src_str))
        delay = self.sim.timeout(self.processing_delay.sample())
        delay.callbacks.append(
            lambda _evt: self.internet.send_to_device(out,
                                                      from_server=self))


class DnsZone:
    """Name -> address database with wildcard support."""

    def __init__(self) -> None:
        self._exact: Dict[str, str] = {}
        self._wildcards: List[Tuple[str, str]] = []

    def add(self, name: str, address: str) -> None:
        name = name.rstrip(".").lower()
        if name.startswith("*."):
            self._wildcards.append((name[2:], address))
        else:
            self._exact[name] = address

    def lookup(self, name: str) -> Optional[str]:
        name = name.rstrip(".").lower()
        if name in self._exact:
            return self._exact[name]
        for suffix, address in self._wildcards:
            if name == suffix or name.endswith("." + suffix):
                return address
        return None

    def __len__(self) -> int:
        return len(self._exact) + len(self._wildcards)


class DnsServer:
    """A UDP resolver at a fixed IP answering from a :class:`DnsZone`."""

    def __init__(self, sim: Simulator, ip: str, zone: DnsZone,
                 name: str = "dns",
                 path_oneway: Optional[Distribution] = None,
                 processing_delay: Optional[Distribution] = None):
        self.sim = sim
        self.ips = [ip]
        self.ip = ip
        self.name = name
        self.zone = zone
        self.path_oneway = path_oneway or Constant(0.0)
        self.processing_delay = processing_delay or Constant(0.5)
        self.internet = None
        self.queries_served = 0
        #: Active outage mode (None in steady state); see set_outage.
        self.outage_mode: Optional[str] = None
        self.queries_blackholed = 0

    def path_oneway_ms(self) -> float:
        return self.path_oneway.sample()

    # -- fault hooks -------------------------------------------------------
    def set_outage(self, mode: str) -> None:
        if mode not in (OUTAGE_BLACKHOLE, OUTAGE_SERVFAIL):
            raise ValueError("unknown DNS outage mode %r" % mode)
        self.outage_mode = mode

    def clear_outage(self) -> None:
        self.outage_mode = None

    def receive(self, packet: IPPacket) -> None:
        if packet.protocol != PROTO_UDP:
            return
        if self.outage_mode == OUTAGE_BLACKHOLE:
            self.queries_blackholed += 1
            return
        datagram = UDPDatagram.decode(packet.payload)
        try:
            query = DNSMessage.decode(datagram.payload)
        except Exception:
            return
        if query.is_response or not query.questions:
            return
        self.queries_served += 1
        question = query.questions[0]
        address = self.zone.lookup(question.name)
        if self.outage_mode == OUTAGE_SERVFAIL:
            response = query.response([], rcode=RCODE_SERVFAIL)
        elif address is None:
            response = query.response([], rcode=RCODE_NXDOMAIN)
        else:
            response = query.response(
                [DNSResourceRecord.a_record(question.name, address)])
        reply = UDPDatagram(datagram.dst_port, datagram.src_port,
                            response.encode())
        out = IPPacket(packet.dst_str, packet.src_str, PROTO_UDP,
                       reply.encode(packet.dst_str, packet.src_str))
        delay = self.sim.timeout(self.processing_delay.sample())
        delay.callbacks.append(
            lambda _evt: self.internet.send_to_device(out,
                                                      from_server=self))

    def __repr__(self) -> str:
        return "<DnsServer %s %s (%d names)>" % (self.name, self.ip,
                                                 len(self.zone))
