"""Access-link model: propagation latency, serialisation, loss.

A link has two independent directions.  Each direction serialises
packets at its configured bandwidth (a transmission takes
``bytes * 8 / bandwidth`` milliseconds and the channel is busy for that
long), adds a sampled one-way propagation delay, and drops packets with
a configurable probability.  Queueing ahead of the serialiser is what
produces the throughput ceilings of Table 3.
"""

from __future__ import annotations

import random
from typing import Callable, Optional

from repro.sim.kernel import Simulator
from repro.sim.distributions import Constant, Distribution


class NetworkType:
    """Network technology tags used across the dataset (Figure 10)."""

    WIFI = "WIFI"
    LTE = "LTE"          # 4G
    UMTS = "UMTS"        # 3G (UMTS/HSPA(+))
    GPRS = "GPRS"        # 2G (GPRS/EDGE)

    CELLULAR = (LTE, UMTS, GPRS)
    ALL = (WIFI, LTE, UMTS, GPRS)


class LinkDirection:
    """One direction of an access link (uplink or downlink)."""

    # Packets within one burst see the same path latency (jitter comes
    # from conditions that change between bursts, not per packet --
    # otherwise the FIFO ordering constraint would ratchet a long
    # transfer's latency up to the distribution's running maximum).
    LATENCY_COHERENCE_MS = 5.0

    def __init__(self, sim: Simulator, latency: Distribution,
                 bandwidth_mbps: float = 0.0, loss_rate: float = 0.0,
                 rng: Optional[random.Random] = None, name: str = "dir"):
        if loss_rate < 0 or loss_rate >= 1:
            raise ValueError("loss_rate must be in [0, 1)")
        self.sim = sim
        self.latency = latency
        self.bandwidth_mbps = bandwidth_mbps
        self.loss_rate = loss_rate
        self.rng = rng or random.Random(0)
        self.name = name
        self._channel_free_at = 0.0
        self._last_arrival = 0.0
        self._current_latency: Optional[float] = None
        self._last_send_at = float("-inf")
        self.packets_sent = 0
        self.packets_dropped = 0
        self.bytes_sent = 0

    def transmission_ms(self, size_bytes: int) -> float:
        if self.bandwidth_mbps <= 0:
            return 0.0
        return (size_bytes * 8) / (self.bandwidth_mbps * 1000.0)

    def send(self, payload: object, size_bytes: int,
             deliver: Callable[[object], None]) -> None:
        """Queue ``payload`` for transmission; ``deliver`` is called at
        the (virtual) arrival instant unless the packet is lost."""
        self.packets_sent += 1
        if self.loss_rate and self.rng.random() < self.loss_rate:
            self.packets_dropped += 1
            return
        start = max(self.sim.now, self._channel_free_at)
        tx = self.transmission_ms(size_bytes)
        self._channel_free_at = start + tx
        self.bytes_sent += size_bytes
        if self._current_latency is None or \
                self.sim.now - self._last_send_at \
                > self.LATENCY_COHERENCE_MS:
            self._current_latency = self.latency.sample()
        self._last_send_at = self.sim.now
        arrival = start + tx + self._current_latency
        # The path is FIFO: jitter never reorders packets in flight.
        arrival = max(arrival, self._last_arrival)
        self._last_arrival = arrival
        event = self.sim.timeout(arrival - self.sim.now)
        event.callbacks.append(lambda _evt: deliver(payload))


class AccessLink:
    """A device's attachment to the network: an uplink + a downlink,
    tagged with technology type and operator for the dataset."""

    def __init__(self, sim: Simulator,
                 up_latency: Optional[Distribution] = None,
                 down_latency: Optional[Distribution] = None,
                 up_bandwidth_mbps: float = 0.0,
                 down_bandwidth_mbps: float = 0.0,
                 loss_rate: float = 0.0,
                 network_type: str = NetworkType.WIFI,
                 operator: str = "unknown",
                 rng: Optional[random.Random] = None):
        rng = rng or random.Random(0)
        self.sim = sim
        self.network_type = network_type
        self.operator = operator
        self.up = LinkDirection(sim, up_latency or Constant(1.0),
                                up_bandwidth_mbps, loss_rate, rng, "up")
        self.down = LinkDirection(sim, down_latency or Constant(1.0),
                                  down_bandwidth_mbps, loss_rate, rng,
                                  "down")

    def __repr__(self) -> str:
        return "<AccessLink %s %s up=%.1fMbps down=%.1fMbps>" % (
            self.network_type, self.operator,
            self.up.bandwidth_mbps, self.down.bandwidth_mbps)
