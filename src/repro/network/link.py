"""Access-link model: propagation latency, serialisation, loss.

A link has two independent directions.  Each direction serialises
packets at its configured bandwidth (a transmission takes
``bytes * 8 / bandwidth`` milliseconds and the channel is busy for that
long), adds a sampled one-way propagation delay, and drops packets with
a configurable probability.  Queueing ahead of the serialiser is what
produces the throughput ceilings of Table 3.

Two fault hooks exist beyond the steady-state model (driven by
:mod:`repro.faults.injector`):

*  a Gilbert-Elliott burst-loss mode (:meth:`LinkDirection.set_burst_loss`)
   -- a two-state Markov chain stepped per packet, so losses cluster the
   way flaky cellular links lose whole flights of segments;
*  a latency-spike modulator (:attr:`LinkDirection.latency_extra_ms`)
   adding a constant extra one-way delay while a spike fault is active.

Drop counters live in the catalog-enforced metrics registry
(``link.packets_dropped`` / ``link.burst_drops``); the old
``packets_dropped`` attribute survives as a read-only view.
"""

from __future__ import annotations

import random
from typing import Callable, Optional

from repro.obs import Observability
from repro.sim.kernel import Simulator
from repro.sim.distributions import Constant, Distribution


class NetworkType:
    """Network technology tags used across the dataset (Figure 10)."""

    WIFI = "WIFI"
    LTE = "LTE"          # 4G
    UMTS = "UMTS"        # 3G (UMTS/HSPA(+))
    GPRS = "GPRS"        # 2G (GPRS/EDGE)

    CELLULAR = (LTE, UMTS, GPRS)
    ALL = (WIFI, LTE, UMTS, GPRS)


class LinkDirection:
    """One direction of an access link (uplink or downlink)."""

    # Packets within one burst see the same path latency (jitter comes
    # from conditions that change between bursts, not per packet --
    # otherwise the FIFO ordering constraint would ratchet a long
    # transfer's latency up to the distribution's running maximum).
    LATENCY_COHERENCE_MS = 5.0

    def __init__(self, sim: Simulator, latency: Distribution,
                 bandwidth_mbps: float = 0.0, loss_rate: float = 0.0,
                 rng: Optional[random.Random] = None, name: str = "dir",
                 obs: Optional[Observability] = None):
        # 1.0 is a legal blackhole (route withdrawn, radio gone); only
        # probabilities outside [0, 1] are nonsense.
        if loss_rate < 0 or loss_rate > 1:
            raise ValueError("loss_rate must be in [0, 1]")
        self.sim = sim
        self.latency = latency
        self.bandwidth_mbps = bandwidth_mbps
        self.loss_rate = loss_rate
        self.rng = rng or random.Random(0)
        self.name = name
        # Per-direction scope by default: two directions (or two links)
        # in one process must not share drop counters.
        self.obs = obs or Observability(sim=sim)
        self._channel_free_at = 0.0
        self._last_arrival = 0.0
        self._current_latency: Optional[float] = None
        self._last_send_at = float("-inf")
        self.packets_sent = 0
        self.bytes_sent = 0
        #: Extra one-way delay injected by an active latency-spike
        #: fault; 0 in steady state.
        self.latency_extra_ms = 0.0
        self._burst: Optional[tuple] = None
        self._burst_bad = False
        self._burst_rng: Optional[random.Random] = None

    # -- registry views (the legacy attributes) ------------------------

    @property
    def packets_dropped(self) -> int:
        return int(self.obs.value("link.packets_dropped"))

    @property
    def burst_drops(self) -> int:
        return int(self.obs.value("link.burst_drops"))

    # -- fault hooks ---------------------------------------------------

    def set_burst_loss(self, p_enter: float, p_exit: float,
                       loss_good: float = 0.0, loss_bad: float = 1.0,
                       rng: Optional[random.Random] = None) -> None:
        """Enable Gilbert-Elliott burst loss: a two-state chain stepped
        once per packet.  In the *good* state packets drop with
        ``loss_good``, in the *bad* state with ``loss_bad``; the chain
        enters bad with ``p_enter`` and leaves with ``p_exit``."""
        for label, p in (("p_enter", p_enter), ("p_exit", p_exit),
                         ("loss_good", loss_good),
                         ("loss_bad", loss_bad)):
            if not 0.0 <= p <= 1.0:
                raise ValueError("%s must be in [0, 1]" % label)
        self._burst = (p_enter, p_exit, loss_good, loss_bad)
        self._burst_bad = False
        self._burst_rng = rng or random.Random(0)

    def clear_burst_loss(self) -> None:
        self._burst = None
        self._burst_bad = False
        self._burst_rng = None

    def set_latency_spike(self, extra_ms: float) -> None:
        self.latency_extra_ms = max(0.0, extra_ms)
        self.obs.set_gauge("link.latency_extra_ms",
                           self.latency_extra_ms)

    def clear_latency_spike(self) -> None:
        self.set_latency_spike(0.0)

    # -- transmission --------------------------------------------------

    def transmission_ms(self, size_bytes: int) -> float:
        if self.bandwidth_mbps <= 0:
            return 0.0
        return (size_bytes * 8) / (self.bandwidth_mbps * 1000.0)

    def _lost(self) -> bool:
        if self._burst is not None:
            p_enter, p_exit, loss_good, loss_bad = self._burst
            r = self._burst_rng
            if self._burst_bad:
                if r.random() < p_exit:
                    self._burst_bad = False
            elif r.random() < p_enter:
                self._burst_bad = True
            loss = loss_bad if self._burst_bad else loss_good
            if loss and r.random() < loss:
                self.obs.inc("link.burst_drops")
                return True
        if self.loss_rate and self.rng.random() < self.loss_rate:
            return True
        return False

    def send(self, payload: object, size_bytes: int,
             deliver: Callable[[object], None]) -> None:
        """Queue ``payload`` for transmission; ``deliver`` is called at
        the (virtual) arrival instant unless the packet is lost."""
        self.packets_sent += 1
        if self._lost():
            self.obs.inc("link.packets_dropped")
            return
        start = max(self.sim.now, self._channel_free_at)
        tx = self.transmission_ms(size_bytes)
        self._channel_free_at = start + tx
        self.bytes_sent += size_bytes
        if self._current_latency is None or \
                self.sim.now - self._last_send_at \
                > self.LATENCY_COHERENCE_MS:
            self._current_latency = self.latency.sample()
        self._last_send_at = self.sim.now
        arrival = start + tx + self._current_latency \
            + self.latency_extra_ms
        # The path is FIFO: jitter never reorders packets in flight.
        arrival = max(arrival, self._last_arrival)
        self._last_arrival = arrival
        event = self.sim.timeout(arrival - self.sim.now)
        event.callbacks.append(lambda _evt: deliver(payload))


class AccessLink:
    """A device's attachment to the network: an uplink + a downlink,
    tagged with technology type and operator for the dataset."""

    def __init__(self, sim: Simulator,
                 up_latency: Optional[Distribution] = None,
                 down_latency: Optional[Distribution] = None,
                 up_bandwidth_mbps: float = 0.0,
                 down_bandwidth_mbps: float = 0.0,
                 loss_rate: float = 0.0,
                 network_type: str = NetworkType.WIFI,
                 operator: str = "unknown",
                 rng: Optional[random.Random] = None):
        rng = rng or random.Random(0)
        self.sim = sim
        self.network_type = network_type
        self.operator = operator
        self.up = LinkDirection(sim, up_latency or Constant(1.0),
                                up_bandwidth_mbps, loss_rate, rng, "up")
        self.down = LinkDirection(sim, down_latency or Constant(1.0),
                                  down_bandwidth_mbps, loss_rate, rng,
                                  "down")

    # -- fault hooks (applied to both directions) ----------------------

    def set_burst_loss(self, p_enter: float, p_exit: float,
                       loss_good: float = 0.0, loss_bad: float = 1.0,
                       up_rng: Optional[random.Random] = None,
                       down_rng: Optional[random.Random] = None) -> None:
        self.up.set_burst_loss(p_enter, p_exit, loss_good, loss_bad,
                               rng=up_rng)
        self.down.set_burst_loss(p_enter, p_exit, loss_good, loss_bad,
                                 rng=down_rng)

    def clear_burst_loss(self) -> None:
        self.up.clear_burst_loss()
        self.down.clear_burst_loss()

    def set_latency_spike(self, extra_ms: float) -> None:
        """Adds ``extra_ms`` one-way delay to *each* direction (an RTT
        gains twice this)."""
        self.up.set_latency_spike(extra_ms)
        self.down.set_latency_spike(extra_ms)

    def clear_latency_spike(self) -> None:
        self.up.clear_latency_spike()
        self.down.clear_latency_spike()

    @property
    def packets_dropped(self) -> int:
        return self.up.packets_dropped + self.down.packets_dropped

    def __repr__(self) -> str:
        return "<AccessLink %s %s up=%.1fMbps down=%.1fMbps>" % (
            self.network_type, self.operator,
            self.up.bandwidth_mbps, self.down.bandwidth_mbps)
