"""The crowdsourcing collection server.

The deployed MopEye uploaded measurement batches to a collection
backend; this is that backend for the simulated world.  It speaks a
tiny length-prefixed protocol over TCP:

    PUSH <nbytes>\\n   followed by <nbytes> of JSON-lines records
    ->  ACK <count>\\n

and accumulates everything into a :class:`MeasurementStore`, so an
end-to-end test can assert that what a device measured is exactly what
the backend received.
"""

from __future__ import annotations

import json
from typing import Optional

from repro.core.persist import _record_from_dict
from repro.core.records import MeasurementStore
from repro.network.servers import AppServer, _ServerConnection


class CollectorServer(AppServer):
    """An AppServer that ingests measurement uploads."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.received = MeasurementStore()
        self.batches = 0
        self.malformed = 0

    def _on_request_bytes(self, key, conn: _ServerConnection,
                          data: bytes) -> None:
        buffer = conn.request
        buffer.extend(data)
        while True:
            if conn.upload_expected is None:
                newline = buffer.find(b"\n")
                if newline < 0:
                    return
                header = bytes(buffer[:newline])
                del buffer[:newline + 1]
                if not header.startswith(b"PUSH "):
                    self.malformed += 1
                    continue
                try:
                    conn.upload_expected = int(header.split()[1])
                except (IndexError, ValueError):
                    self.malformed += 1
                    conn.upload_expected = None
                continue
            if len(buffer) < conn.upload_expected:
                return
            payload = bytes(buffer[:conn.upload_expected])
            del buffer[:conn.upload_expected]
            conn.upload_expected = None
            count = self._ingest(payload)
            self.batches += 1
            self._send_data(key, conn, b"ACK %d\n" % count)

    def _ingest(self, payload: bytes) -> int:
        count = 0
        for line in payload.decode("utf-8",
                                   errors="replace").splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                self.received.add(_record_from_dict(json.loads(line)))
                count += 1
            except (ValueError, KeyError):
                self.malformed += 1
        return count
