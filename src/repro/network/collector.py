"""The crowdsourcing collection server (compatibility shim).

The 75-line accumulator that used to live here grew into the
:mod:`repro.backend` package: idempotent batch ingestion, windowed
rollups, backpressure, and online case-study detection.  The name
``CollectorServer`` is kept for the existing worlds and tests; it *is*
the backend server.

Behavioural changes worth knowing about:

* ACKs are **prefix** counts: ingestion stops at the first malformed
  line, matching the uploader's cursor arithmetic (the old code ACKed
  records parsed anywhere in the batch, silently duplicating and
  dropping around a bad line).
* ``batches``/``malformed`` are read-only views over catalog-enforced
  ``backend.*`` metrics (see docs/OBSERVABILITY.md), not ad-hoc ints.
"""

from __future__ import annotations

from repro.backend.server import BackendServer


class CollectorServer(BackendServer):
    """An AppServer that ingests measurement uploads."""


__all__ = ["CollectorServer"]
