"""Command-line entry point: ``python -m repro <command>``.

Commands:

* ``demo``      -- the quickstart world: relay a few app requests and
                   print MopEye's measurements (``--trace FILE`` to
                   also write a span trace and print the per-stage
                   sim-time budget, ``--metrics FILE`` to save the
                   metric snapshot).
* ``metrics``   -- run the demo workload silently and print the
                   deterministic metric snapshot as canonical JSON.
* ``obsreport`` -- re-render the time-budget table from a saved trace.
* ``crowd``     -- synthesise the crowdsourcing dataset and print the
                   headline analyses (``--scale`` to size it,
                   ``--export PATH.jsonl|.csv`` to persist it,
                   ``--metrics`` to append the campaign counters).
* ``serve``     -- generate a campaign, ingest it through the backend
                   pipeline with shard-parallel workers, run the online
                   case-study detector, and save the rollup state
                   (``--state FILE`` for canonical JSON, ``--data-dir
                   DIR`` for the segment-encoded storage engine).
* ``query``     -- query a saved rollup state (a ``--state`` file or
                   a ``--data-dir`` directory) through the serving
                   tier: scan views (``summary``, ``apps``,
                   ``networks``, ``windows``, ``cases``, ``table``),
                   pruned percentile panels (``panel --app`` /
                   ``--operator``), and the simulated ``dashboard``
                   fan-out.  See docs/QUERY.md.
* ``store``     -- operate on a storage-engine data directory:
                   ``inspect`` prints the manifest/segment/WAL summary,
                   ``compact`` merges segments (optionally evicting
                   windows past ``--retention-days``).  See
                   docs/STORAGE.md.
* ``chaos``     -- run a named fault-injection scenario (see
                   docs/FAULTS.md): deterministic dataset shards, the
                   ground-truth ledger, and the closed-loop
                   verification report (``--list`` to enumerate
                   scenarios).
* ``cluster``   -- run a cluster scenario against the federated
                   multi-collector tier (see docs/CLUSTER.md):
                   consistent-hash device sharding over ``--nodes``
                   collectors, coordinator-driven failover/rebalance,
                   and the merged global rollup whose digest must be
                   byte-identical for any node count.
* ``accuracy``  -- Table 2 live: MopEye vs MobiPerf vs tcpdump.

See docs/OBSERVABILITY.md for the metric/span catalog and how to read
the budget table.
"""

from __future__ import annotations

import argparse
import random
import sys


def _build_demo_world():
    from repro.network import (
        AppServer,
        DnsServer,
        DnsZone,
        Internet,
        wifi_profile,
    )
    from repro.phone import AndroidDevice
    from repro.sim import Simulator

    sim = Simulator()
    internet = Internet(sim)
    link = wifi_profile(sim, rng=random.Random(1))
    device = AndroidDevice(sim, internet, link, sdk=23)
    zone = DnsZone()
    zone.add("api.example.com", "93.184.216.34")
    internet.add_server(DnsServer(sim, "8.8.8.8", zone))
    internet.add_server(AppServer(sim, ["93.184.216.34"], name="api"))
    return sim, device


def _run_demo_workload(trace: bool = False):
    """Build the demo world, relay 5 requests, return (service, obs).

    Shared by ``demo`` and ``metrics`` so both observe the exact same
    seeded run -- which is what makes the ``metrics`` snapshot a
    byte-stable regression anchor.
    """
    from repro.core import MopEyeService
    from repro.obs import Observability
    from repro.phone import App

    sim, device = _build_demo_world()
    obs = Observability(sim=sim, trace=trace)
    mopeye = MopEyeService(device, obs=obs)
    mopeye.start()
    app = App(device, "com.example.app")

    def workload():
        for _ in range(5):
            yield from app.resolve_and_request(
                "api.example.com", 443, b"GET / HTTP/1.1\r\n\r\n")
            yield sim.timeout(250.0)

    sim.process(workload())
    sim.run(until=60_000)
    return mopeye, obs


def cmd_demo(args) -> int:
    mopeye, obs = _run_demo_workload(trace=bool(args.trace))
    print("collected %d measurements:" % len(mopeye.store))
    for record in mopeye.store:
        print("  %-4s %7.2f ms  %-22s %s" % (
            record.kind, record.rtt_ms, record.app_package or "-",
            record.domain or record.dst_ip))
    if args.trace:
        from repro.analysis.obsreport import render_time_budget
        count = obs.tracer.dump(args.trace)
        print("\nwrote %d spans to %s" % (count, args.trace))
        print(render_time_budget(
            [span.to_dict() for span in obs.tracer.spans]))
    if args.metrics:
        with open(args.metrics, "w") as handle:
            handle.write(obs.to_json() + "\n")
        print("wrote metric snapshot to %s" % args.metrics)
    return 0


def cmd_metrics(_args) -> int:
    """The deterministic snapshot: same seed -> byte-identical stdout,
    whatever PYTHONHASHSEED (CI smoke-checks this)."""
    _mopeye, obs = _run_demo_workload()
    print(obs.to_json())
    return 0


def cmd_obsreport(args) -> int:
    from repro.analysis.obsreport import load_trace, render_time_budget
    try:
        spans = load_trace(args.trace)
    except OSError as exc:
        print("error: cannot read trace: %s" % exc, file=sys.stderr)
        return 2
    print(render_time_budget(spans))
    return 0


def cmd_crowd(args) -> int:
    if args.workers < 1:
        print("error: --workers must be >= 1 (got %d)" % args.workers,
              file=sys.stderr)
        return 2
    if args.workers > 1 or args.shard_dir:
        return _crowd_sharded(args)
    from repro.analysis.coverage import dataset_statistics
    from repro.analysis.dnsperf import dns_medians
    from repro.analysis.perapp import raw_rtt_medians
    from repro.crowd import Campaign, CampaignConfig

    from repro.obs import get_default

    campaign = Campaign(config=CampaignConfig(scale=args.scale,
                                              seed=args.seed))
    store = campaign.run()
    get_default().inc("crowd.records_generated", len(store))
    for key, value in dataset_statistics(store).items():
        print("%-12s %d" % (key, value))
    print("app-RTT medians:", {k: round(v, 1)
                               for k, v in raw_rtt_medians(store)
                               .items()})
    print("DNS medians:    ", {k: round(v, 1)
                               for k, v in dns_medians(store).items()})
    if args.export:
        from repro.core import save_csv, save_jsonl
        saver = save_csv if args.export.endswith(".csv") else save_jsonl
        count = saver(store, args.export)
        print("exported %d records to %s" % (count, args.export))
    if args.metrics:
        _print_crowd_metrics()
    return 0


def _print_crowd_metrics() -> None:
    """Deterministic slice of the process-wide registry (the crowd
    counters; wall-clock throughput metrics are volatile, excluded)."""
    from repro.obs import get_default
    print("campaign metrics:")
    print(get_default().to_json())


def _crowd_sharded(args) -> int:
    """Sharded generation + streaming analysis: the full-scale
    (``--scale 1.0``) path.  Never materializes the dataset in RAM."""
    import time

    from repro.analysis.coverage import dataset_statistics_stream
    from repro.analysis.dnsperf import dns_medians_stream
    from repro.analysis.perapp import raw_rtt_medians_stream
    from repro.crowd import CampaignConfig, ShardedCampaign

    config = CampaignConfig(scale=args.scale, seed=args.seed)
    runner = ShardedCampaign(config=config, workers=args.workers,
                             shard_dir=args.shard_dir)
    started = time.time()
    merge_to = args.export if args.export else None
    result = runner.run(merge_to=merge_to)
    elapsed = time.time() - started
    if elapsed > 0:
        runner.obs.set_gauge("crowd.records_per_sec",
                             result.total_records / elapsed)
    print("generated %d records in %d shards with %d worker(s) "
          "in %.1fs" % (result.total_records, len(result.shards),
                        args.workers, elapsed))
    print("shard dir:      %s" % result.shard_dir)
    print("dataset sha256: %s" % result.digest())
    for key, value in dataset_statistics_stream(
            result.iter_records()).items():
        print("%-12s %d" % (key, value))
    print("app-RTT medians:", {k: round(v, 1)
                               for k, v in raw_rtt_medians_stream(
                                   result.iter_records()).items()})
    print("DNS medians:    ", {k: round(v, 1)
                               for k, v in dns_medians_stream(
                                   result.iter_records()).items()})
    if result.merged_path:
        print("merged dataset: %s" % result.merged_path)
    if args.metrics:
        _print_crowd_metrics()
    return 0


def cmd_serve(args) -> int:
    """The backend pipeline end to end: sharded generation, parallel
    rollup ingest (digest-stable across worker counts), online
    detection, persisted state."""
    import tempfile
    import time

    from repro.backend import (
        OnlineDetector,
        RollupConfig,
        ingest_shard_files,
    )
    from repro.crowd import CampaignConfig, ShardedCampaign

    if args.workers < 1:
        print("error: --workers must be >= 1 (got %d)" % args.workers,
              file=sys.stderr)
        return 2
    config = CampaignConfig(scale=args.scale, seed=args.seed)
    shard_dir = args.shard_dir or tempfile.mkdtemp(
        prefix="mopeye-backend-")
    runner = ShardedCampaign(config=config, workers=args.workers,
                             shard_dir=shard_dir)
    started = time.time()
    result = runner.run()
    print("generated %d records in %d shards with %d worker(s)"
          % (result.total_records, len(result.shards), args.workers))

    rollup_config = RollupConfig(
        window_ms=args.window_days * 24 * 3600 * 1000.0)
    rollups = ingest_shard_files(result.paths, config=rollup_config,
                                 workers=args.workers)
    rollups.meta.update({"scale": args.scale, "seed": args.seed})
    elapsed = time.time() - started
    print("ingested %d records into %d rollup groups in %.1fs"
          % (rollups.records, rollups.group_count(), elapsed))
    print("rollup sha256: %s" % rollups.digest())

    detector = OnlineDetector(rollups, scale=args.scale)
    detector.evaluate()
    findings = detector.report()
    rollups.meta["findings"] = findings
    print("detector: %d finding(s)" % len(findings))
    for finding in findings:
        print("  %-28s %s" % (finding["rule"], finding["subject"]))
    if args.state:
        rollups.save(args.state)
        print("saved rollup state to %s" % args.state)
    if args.data_dir:
        from repro.store import StoreEngine

        engine = StoreEngine(args.data_dir,
                             rollup_config=rollup_config)
        engine.meta.update(rollups.meta)
        engine.findings = list(findings)
        engine.bulk_load(rollups)
        segment_bytes = sum(reader.size_bytes()
                            for reader in engine.segment_readers())
        json_bytes = len(rollups.to_json()) + 1
        ratio = json_bytes / segment_bytes if segment_bytes else 0.0
        print("stored %d segment(s) under %s: %d bytes "
              "(canonical JSON %d bytes, %.1fx smaller)"
              % (len(engine.segment_names()), args.data_dir,
                 segment_bytes, json_bytes, ratio))
        engine.close()
    if args.metrics:
        _print_crowd_metrics()
    return 0


def cmd_query(args) -> int:
    import json as _json
    import os

    from repro.backend import RollupStore
    from repro.serve import DashboardWorkload, QueryEngine, QueryError, ReadView

    def _usage(message: str) -> int:
        print("error: %s" % message, file=sys.stderr)
        return 2

    if args.top is not None and args.top < 1:
        return _usage("--top must be a positive row count (got %d)"
                      % args.top)
    if args.view == "table":
        if args.name is None:
            return _usage("the table view needs --name; tables are %s"
                          % ", ".join(RollupStore.TABLES))
        if args.name not in RollupStore.TABLES:
            return _usage("unknown table %r; tables are %s"
                          % (args.name, ", ".join(RollupStore.TABLES)))
    if args.view == "panel" and \
            (args.app is None) == (args.operator is None):
        return _usage("the panel view needs exactly one of --app or "
                      "--operator")
    if args.panels < 0:
        return _usage("--panels must be >= 0 (got %d)" % args.panels)
    if args.cache_mb < 0:
        return _usage("--cache-mb must be >= 0 (got %d)"
                      % args.cache_mb)

    engine = None
    view_obj = None
    try:
        try:
            if os.path.isdir(args.state):
                from repro.store import StoreEngine

                engine = StoreEngine(args.state)
                query_engine = QueryEngine(
                    engine, cache_bytes=args.cache_mb << 20)
                view_obj = query_engine.snapshot()
            else:
                view_obj = ReadView.from_rollups(
                    RollupStore.load(args.state))
        except (OSError, ValueError, KeyError, QueryError) as exc:
            print("error: cannot read rollup state: %s" % exc,
                  file=sys.stderr)
            return 2
        try:
            if args.view == "summary":
                out = view_obj.summary()
            elif args.view == "apps":
                out = view_obj.apps(top=args.top)
            elif args.view == "networks":
                out = view_obj.networks(top=args.top)
            elif args.view == "windows":
                out = view_obj.window_series()
            elif args.view == "cases":
                out = view_obj.cases()
            elif args.view == "table":
                out = {"table": args.name,
                       "rows": view_obj.table_rows(args.name,
                                                   top=args.top)}
            elif args.view == "panel":
                if args.app is not None:
                    out = view_obj.app_panel(args.app)
                else:
                    out = view_obj.network_panel(args.operator)
            else:                       # dashboard
                workload = DashboardWorkload(
                    view_obj, seed=args.seed, panels=args.panels)
                out = workload.run(include_latency=args.latency)
        except QueryError as exc:
            print("error: %s" % exc, file=sys.stderr)
            return 2
    finally:
        if view_obj is not None:
            view_obj.close()
        if engine is not None:
            engine.close()
    print(_json.dumps(out, indent=1, sort_keys=True,
                      separators=(",", ": ")))
    return 0


def cmd_chaos(args) -> int:
    """One scenario end to end: inject, measure, verify.  Everything
    printed (digests, ledger, report) is deterministic in
    (scenario, seed) -- the CI chaos job diffs two runs of this."""
    from repro.faults import (
        SCENARIOS,
        ChaosRunner,
        get_scenario,
        verify_scenario,
    )

    if args.list:
        for name in sorted(SCENARIOS):
            print("%-16s %s" % (name, SCENARIOS[name].description))
        return 0
    if not args.scenario:
        print("error: --scenario NAME required (or --list)",
              file=sys.stderr)
        return 2
    try:
        scenario = get_scenario(args.scenario)
    except KeyError as exc:
        print("error: %s" % exc.args[0], file=sys.stderr)
        return 2
    if args.workers < 1:
        print("error: --workers must be >= 1 (got %d)" % args.workers,
              file=sys.stderr)
        return 2
    runner = ChaosRunner(scenario, seed=args.seed, workers=args.workers,
                         shard_dir=args.shard_dir)
    result = runner.run()
    print("scenario %s seed=%d: %d records from %d device(s) in %d "
          "shard(s)" % (scenario.name, args.seed, result.records,
                        len(scenario.devices()), len(result.paths)))
    print("shard dir:      %s" % result.shard_dir)
    print("dataset sha256: %s" % result.digest())
    print("plan sha256:    %s" % result.plan.digest())
    print("ledger sha256:  %s" % result.ledger.digest())
    rollup_digest = result.rollup_digest()
    if rollup_digest is not None:
        # Recovered purely from each backend's WAL + segments -- the
        # CI storage smoke diffs this across PYTHONHASHSEED values.
        print("recovered rollup sha256: %s" % rollup_digest)
    if args.ledger:
        result.ledger.save(args.ledger)
        print("wrote ledger to %s" % args.ledger)
    if args.export:
        from repro.core.persist import merge_shards
        merge_shards(result.paths, args.export)
        print("merged dataset: %s" % args.export)
    report = verify_scenario(result)
    print(report.summary())
    return 0


def cmd_cluster(args) -> int:
    """One cluster scenario end to end: shard the fleet across
    ``--nodes`` collectors, inject the cluster faults, merge the
    per-collector rollups, and check the digest invariant -- the
    merged global rollup must byte-match a single-collector reference
    built straight from the measurement records."""
    from repro.backend.rollups import RollupStore
    from repro.faults import (
        SCENARIOS,
        ChaosRunner,
        get_scenario,
        verify_scenario,
    )

    if args.list:
        for name in sorted(SCENARIOS):
            scenario = SCENARIOS[name]
            if scenario.cluster_nodes:
                print("%-20s nodes=%d %s"
                      % (name, scenario.cluster_nodes,
                         scenario.description))
        return 0
    if not args.scenario:
        print("error: --scenario NAME required (or --list)",
              file=sys.stderr)
        return 2
    try:
        scenario = get_scenario(args.scenario)
    except KeyError as exc:
        print("error: %s" % exc.args[0], file=sys.stderr)
        return 2
    if not scenario.cluster_nodes:
        print("error: scenario %r does not declare a cluster "
              "(cluster_nodes=0); run it via `chaos`" % args.scenario,
              file=sys.stderr)
        return 2
    if args.workers < 1:
        print("error: --workers must be >= 1 (got %d)" % args.workers,
              file=sys.stderr)
        return 2
    if args.nodes is not None and args.nodes < 1:
        print("error: --nodes must be >= 1 (got %d)" % args.nodes,
              file=sys.stderr)
        return 2
    runner = ChaosRunner(scenario, seed=args.seed, workers=args.workers,
                         shard_dir=args.shard_dir,
                         cluster_nodes=args.nodes)
    result = runner.run()
    nodes = args.nodes or scenario.cluster_nodes
    print("scenario %s seed=%d nodes=%d: %d records from %d device(s) "
          "in %d shard(s)" % (scenario.name, args.seed, nodes,
                              result.records, len(scenario.devices()),
                              len(result.paths)))
    print("shard dir:      %s" % result.shard_dir)
    print("dataset sha256: %s" % result.digest())
    print("plan sha256:    %s" % result.plan.digest())
    print("ledger sha256:  %s" % result.ledger.digest())
    # The global rollup is the merge of every collector's store
    # (failed nodes folded in from their disks); the reference is
    # built straight from the dataset records.  Byte-inequality here
    # means the cluster tier lost, duplicated, or perturbed records.
    global_digest = result.rollup_digest()
    reference = RollupStore()
    reference.add_all(result.iter_records())
    print("global rollup sha256:    %s" % global_digest)
    print("reference rollup sha256: %s" % reference.digest())
    if args.ledger:
        result.ledger.save(args.ledger)
        print("wrote ledger to %s" % args.ledger)
    report = verify_scenario(result)
    print(report.summary())
    if global_digest != reference.digest():
        print("error: global rollup digest != single-collector "
              "reference", file=sys.stderr)
        return 1
    return 0


def cmd_store(args) -> int:
    """Operate on a storage-engine data directory (docs/STORAGE.md)."""
    import os

    from repro.store import StoreConfig, StoreEngine

    if not os.path.isdir(args.data_dir):
        print("error: %s is not a directory" % args.data_dir,
              file=sys.stderr)
        return 2
    config = None
    if args.action == "compact" and args.retention_days is not None:
        config = StoreConfig(
            retention_ms=args.retention_days * 24 * 3600 * 1000.0)
    try:
        engine = StoreEngine(args.data_dir, config=config)
    except (OSError, ValueError) as exc:
        print("error: cannot open store: %s" % exc, file=sys.stderr)
        return 2
    try:
        if args.action == "compact":
            rollups = engine.materialize()
            windows = rollups.windows()
            # Retention is judged against the newest data the store
            # holds: the upper edge of its latest window.
            now_ms = ((windows[-1] + 1)
                      * engine.rollup_config.window_ms
                      if windows else None)
            before = engine.segment_names()
            merged = engine.compact(now_ms=now_ms, force=True)
            print("compacted %d segment(s) -> %d (%s)"
                  % (len(before), len(engine.segment_names()),
                     "merged" if merged else "nothing to merge"))
        _print_store_summary(engine)
    finally:
        engine.close()
    return 0


def _print_store_summary(engine) -> None:
    import os

    from repro.store.engine import QUARANTINE_DIR
    from repro.store.wal import replay

    info = engine.last_recovery
    readers = engine.segment_readers()
    print("data dir:       %s" % engine.data_dir)
    print("segments:       %d" % len(readers))
    for reader in readers:
        footer = reader.footer
        print("  seq %-4d %-16s %8d bytes  %7d records"
              % (footer["seq"],
                 os.path.basename(reader.path),
                 reader.size_bytes(), footer["records"]))
    frames = sum(len(replay(path).payloads)
                 for path in engine.wal_paths())
    print("wal:            %d file(s), %d frame(s), %d bytes%s"
          % (len(engine.wal_paths()), frames, engine.wal_bytes(),
             " (torn tail truncated)" if info and info.torn_tail
             else ""))
    checkpoints = engine.checkpoint_names()
    if checkpoints or (info and info.checkpoint_loaded):
        print("checkpoints:    %s" % (", ".join(checkpoints) or "-"))
        if info and info.checkpoint_loaded:
            print("  recovered from %s (%d records, %d replayed)"
                  % (info.checkpoint_loaded, info.checkpoint_records,
                     info.wal_records))
    print("dedup seeds:    %d" % len(engine.dedup))
    print("findings:       %d" % len(engine.findings))
    quarantine = os.path.join(engine.data_dir, QUARANTINE_DIR)
    quarantined = (sorted(os.listdir(quarantine))
                   if os.path.isdir(quarantine) else [])
    if quarantined or (info and info.segments_quarantined):
        print("quarantined:    %s" % (", ".join(quarantined) or "-"))
    rollups = engine.materialize()
    print("records:        %d (+%d failure-only)"
          % (rollups.records, rollups.failure_records))
    print("rollup sha256:  %s" % rollups.digest())


def cmd_accuracy(_args) -> int:
    import runpy
    import os
    script = os.path.join(os.path.dirname(__file__), "..", "..",
                          "examples", "accuracy_shootout.py")
    if os.path.exists(script):
        runpy.run_path(script, run_name="__main__")
        return 0
    print("accuracy example script not found; run "
          "examples/accuracy_shootout.py from a source checkout",
          file=sys.stderr)
    return 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="repro",
                                     description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)
    demo = sub.add_parser("demo", help="relay demo on a simulated phone")
    demo.add_argument("--trace", type=str, default=None, metavar="FILE",
                      help="write a JSONL span trace and print the "
                           "per-stage sim-time budget")
    demo.add_argument("--metrics", type=str, default=None,
                      metavar="FILE",
                      help="write the metric snapshot (canonical JSON)")
    sub.add_parser("metrics", help="print the demo run's deterministic "
                                   "metric snapshot")
    obsreport = sub.add_parser("obsreport",
                               help="render the time-budget table from "
                                    "a saved trace")
    obsreport.add_argument("trace", help="JSONL trace from demo --trace")
    crowd = sub.add_parser("crowd", help="synthesise + analyse the "
                                         "crowdsourcing dataset")
    crowd.add_argument("--scale", type=float, default=0.02)
    crowd.add_argument("--seed", type=int, default=2016)
    crowd.add_argument("--export", type=str, default=None,
                       help="write the dataset to a .jsonl or .csv "
                            "(sharded runs merge shards into it)")
    crowd.add_argument("--workers", type=int, default=1,
                       help="worker processes; >1 switches to the "
                            "sharded generator + streaming analyses")
    crowd.add_argument("--shard-dir", type=str, default=None,
                       help="directory for JSONL shards (implies the "
                            "sharded path even with --workers 1)")
    crowd.add_argument("--metrics", action="store_true",
                       help="print the campaign's registry snapshot")
    serve = sub.add_parser("serve", help="run the backend pipeline "
                                         "over a generated campaign")
    serve.add_argument("--scale", type=float, default=0.02)
    serve.add_argument("--seed", type=int, default=2016)
    serve.add_argument("--workers", type=int, default=1,
                       help="processes for generation AND ingest; the "
                            "rollup digest is identical for any value")
    serve.add_argument("--shard-dir", type=str, default=None,
                       help="directory for the dataset shards "
                            "(default: a fresh temp dir)")
    serve.add_argument("--window-days", type=float, default=28.0,
                       help="rollup window length in sim days")
    serve.add_argument("--state", type=str, default=None,
                       metavar="FILE",
                       help="save the rollup state (+ findings) as "
                            "canonical JSON for `repro query`")
    serve.add_argument("--data-dir", type=str, default=None,
                       metavar="DIR",
                       help="persist the rollups (+ findings) through "
                            "the storage engine: segment-encoded, "
                            "queryable with `repro query DIR` and "
                            "`repro store inspect DIR`")
    serve.add_argument("--metrics", action="store_true",
                       help="print the backend's registry snapshot")
    from repro.serve import VIEW_ORDER

    query = sub.add_parser("query", help="query a saved rollup state "
                                         "(see docs/QUERY.md)")
    query.add_argument("state", help="state file from serve --state, "
                                     "or a serve --data-dir directory")
    query.add_argument("view", choices=list(VIEW_ORDER))
    query.add_argument("--top", type=int, default=20,
                       help="row cap for apps/networks/table views "
                            "(must be >= 1)")
    query.add_argument("--name", default=None,
                       help="rollup table for the table view")
    query.add_argument("--app", default=None,
                       help="app package for the panel view")
    query.add_argument("--operator", default=None,
                       help="operator (ISP) for the panel view")
    query.add_argument("--panels", type=int, default=64,
                       help="dashboard view: panel queries to issue")
    query.add_argument("--seed", type=int, default=0,
                       help="dashboard view: workload RNG seed")
    query.add_argument("--cache-mb", type=int, default=32,
                       help="block-cache budget in MiB (data-dir "
                            "states only)")
    query.add_argument("--latency", action="store_true",
                       help="dashboard view: include wall-clock "
                            "latency percentiles (volatile; excluded "
                            "by default so output stays diffable)")
    chaos = sub.add_parser("chaos", help="run a fault-injection "
                                         "scenario with ground truth")
    chaos.add_argument("--scenario", type=str, default=None,
                       help="scenario name (see --list)")
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument("--workers", type=int, default=1,
                       help="worker processes; output is byte-identical "
                            "for any value")
    chaos.add_argument("--shard-dir", type=str, default=None,
                       help="directory for the dataset shards "
                            "(default: a fresh temp dir)")
    chaos.add_argument("--ledger", type=str, default=None,
                       metavar="FILE",
                       help="write the ground-truth ledger JSON")
    chaos.add_argument("--export", type=str, default=None,
                       metavar="FILE.jsonl",
                       help="merge the shards into one JSONL dataset")
    chaos.add_argument("--list", action="store_true",
                       help="list scenarios and exit")
    cluster = sub.add_parser("cluster",
                             help="run a scenario against the "
                                  "federated multi-collector tier")
    cluster.add_argument("--scenario", type=str, default=None,
                         help="cluster scenario name (see --list)")
    cluster.add_argument("--nodes", type=int, default=None,
                         help="active collector count (default: the "
                              "scenario's cluster_nodes); the global "
                              "rollup digest is identical for any "
                              "value")
    cluster.add_argument("--seed", type=int, default=0)
    cluster.add_argument("--workers", type=int, default=1,
                         help="worker processes; output is "
                              "byte-identical for any value")
    cluster.add_argument("--shard-dir", type=str, default=None,
                         help="directory for the dataset shards "
                              "(default: a fresh temp dir)")
    cluster.add_argument("--ledger", type=str, default=None,
                         metavar="FILE",
                         help="write the ground-truth ledger JSON")
    cluster.add_argument("--list", action="store_true",
                         help="list cluster scenarios and exit")
    store = sub.add_parser("store", help="inspect or compact a storage "
                                         "engine data directory")
    store.add_argument("action", choices=["inspect", "compact"],
                       help="inspect: print the manifest/segment/WAL "
                            "summary; compact: force a segment merge")
    store.add_argument("data_dir", help="directory from serve "
                                        "--data-dir (or a chaos "
                                        "backend's store)")
    store.add_argument("--retention-days", type=float, default=None,
                       help="with compact: evict windowed rows older "
                            "than this horizon (measured back from "
                            "the newest window in the store)")
    sub.add_parser("accuracy", help="Table 2 shoot-out")
    args = parser.parse_args(argv)
    return {"demo": cmd_demo, "metrics": cmd_metrics,
            "obsreport": cmd_obsreport, "crowd": cmd_crowd,
            "serve": cmd_serve, "query": cmd_query,
            "chaos": cmd_chaos, "cluster": cmd_cluster,
            "store": cmd_store,
            "accuracy": cmd_accuracy}[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
