"""repro.store: the embedded storage engine under the backend.

An LSM-shaped stack sized for rollup aggregates: a write-ahead log
for durability (:mod:`repro.store.wal`), immutable checksummed
segment files for bulk state (:mod:`repro.store.segments`), and
:class:`~repro.store.engine.StoreEngine` tying them together with a
memtable, tiered compaction, retention, and crash recovery.  See
``docs/STORAGE.md`` for the operator guide.
"""

from repro.store.blockcache import BlockCache, DEFAULT_CACHE_BYTES
from repro.store.checkpoint import (
    CheckpointCorruption,
    read_checkpoint,
    write_checkpoint,
)
from repro.store.engine import RecoveryInfo, StoreConfig, StoreEngine
from repro.store.segments import (
    ReadStats,
    SegmentCorruption,
    SegmentReader,
    write_segment,
)
from repro.store.wal import FsyncModel, WriteAheadLog, replay

__all__ = [
    "BlockCache",
    "CheckpointCorruption",
    "DEFAULT_CACHE_BYTES",
    "FsyncModel",
    "ReadStats",
    "RecoveryInfo",
    "SegmentCorruption",
    "SegmentReader",
    "StoreConfig",
    "StoreEngine",
    "WriteAheadLog",
    "read_checkpoint",
    "replay",
    "write_checkpoint",
    "write_segment",
]
