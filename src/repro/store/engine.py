"""The storage engine: memtable + WAL + checkpoints + segments.

A miniature LSM tree shaped for the rollup workload:

* writes land in the **memtable** (a live
  :class:`~repro.backend.rollups.RollupStore`) and are made durable by
  an envelope appended to the :mod:`WAL <repro.store.wal>` before the
  batch is acknowledged;
* the WAL is a sequence of **generations** (``wal.log`` is generation
  0; later files are ``wal-g<gen>-s<shard>.log``), optionally striped
  over ``wal_shards`` files whose frames merge commutatively on
  recovery.  Envelopes carry the records as raw JSONL bytes after a
  one-line JSON header -- no per-record re-serialisation, no
  JSON-in-JSON escaping -- and the bulk path group-commits on byte
  *and* record thresholds;
* a periodic **checkpoint** (every ``checkpoint_interval_records``)
  seals the current WAL generation, snapshots the memtable + dedup
  seeds atomically (checkpoint file + manifest), and prunes WAL
  generations the *previous* retained checkpoint already covers --
  recovery replay is bounded by the checkpoint interval, not the run
  length, and a torn newest checkpoint still falls back to the older
  one plus a longer replay;
* when the memtable grows past ``flush_threshold_records`` it is
  frozen into an immutable :mod:`segment <repro.store.segments>`, the
  manifest is updated (segment list, dedup seeds, findings), and the
  WAL + checkpoints restart empty -- the segment now carries that
  data;
* **compaction** merges accumulated segments into one (histogram merge
  is commutative, so this is pure bookkeeping) and the **retention**
  pass drops windowed rows older than the configured horizon;
* **recovery** rebuilds the live state from disk alone: load the
  manifest, check every segment (quarantining any that fails its
  checksums), load the newest valid checkpoint (quarantining torn
  ones), then stream the uncovered WAL tail into the memtable --
  dedup LRU seeds and all -- truncating torn tails at the last valid
  frame.  Replayed records are *not* accumulated; pass ``on_record``
  to observe them (recovery stays O(checkpoint interval) in memory,
  not O(run)).

The engine owns the memtable and the dedup map as *shared objects*:
:class:`~repro.backend.ingest.IngestPipeline` holds references to the
same instances, so an ingest is visible to the engine (and a recovery
is visible to the pipeline) without any copying.  Crash and recovery
mutate those objects in place for exactly that reason.

Everything the engine writes is canonical (sorted keys, fixed
separators, sorted rows), so two runs that ingest the same records
produce byte-identical segments, checkpoints and manifests regardless
of worker count or ``PYTHONHASHSEED`` -- the same determinism
contract as the rest of the repo.
"""

from __future__ import annotations

import json
import os
import re
import time
import zlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.backend.rollups import RollupConfig, RollupStore
from repro.core.persist import _record_from_dict, record_to_line
from repro.core.records import MeasurementRecord
from repro.obs import Observability, get_default
from repro.store.checkpoint import (
    CheckpointCorruption,
    read_checkpoint,
    write_checkpoint,
)
from repro.store.segments import (
    DEFAULT_BLOCK_ROWS,
    SegmentCorruption,
    SegmentReader,
    write_segment,
)
from repro.store.wal import FsyncModel, WriteAheadLog, replay
from repro.store.wal import MAGIC as WAL_MAGIC

MANIFEST_NAME = "MANIFEST.json"
WAL_NAME = "wal.log"
SEGMENT_DIR = "segments"
QUARANTINE_DIR = "quarantine"
#: v1 (PR 5) predates checkpoints, WAL generations and the bulk-seq
#: watermark; v2 adds those fields.  ``_load_manifest`` accepts both.
MANIFEST_SCHEMA = 2

_WAL_FILE_RE = re.compile(r"^wal-g(\d{6})-s(\d{2})\.log$")


class StoreConfig:
    """Tuning knobs for the engine."""

    def __init__(self,
                 flush_threshold_records: Optional[int] = 50_000,
                 compaction_fanout: int = 4,
                 retention_ms: Optional[float] = None,
                 group_commit_records: int = 16_384,
                 group_commit_bytes: int = 1 << 20,
                 wal_shards: int = 1,
                 checkpoint_interval_records: Optional[int] = None,
                 checkpoint_keep: int = 2,
                 dedup_capacity: int = 4096,
                 segment_block_rows: int = DEFAULT_BLOCK_ROWS,
                 fsync: Optional[FsyncModel] = None) -> None:
        #: Freeze the memtable into a segment at this many records
        #: (``None`` disables auto-flush; the WAL -- bounded by
        #: checkpoints if enabled -- then covers everything, which is
        #: what the chaos crash worlds want).
        self.flush_threshold_records = flush_threshold_records
        #: ``compact()`` merges once this many segments accumulate.
        self.compaction_fanout = max(2, int(compaction_fanout))
        #: Evict windowed rows older than this horizon (``None`` keeps
        #: everything; the CLI maps ``--retention-days`` onto it).
        self.retention_ms = retention_ms
        #: Bulk-append path: one fsync once this many *records* (not
        #: envelopes) are buffered ...
        self.group_commit_records = max(1, int(group_commit_records))
        #: ... or once this many framed bytes are, whichever first.
        self.group_commit_bytes = max(1, int(group_commit_bytes))
        #: Stripe the WAL over this many files per generation; frames
        #: merge commutatively on recovery (batch envelopes route by
        #: device hash, so per-device dedup order is preserved).
        self.wal_shards = max(1, int(wal_shards))
        #: Checkpoint the memtable every this many logged records
        #: (``None`` disables checkpoints; recovery then replays the
        #: whole WAL).
        self.checkpoint_interval_records = checkpoint_interval_records
        #: Checkpoints retained on disk.  Keeping two means a torn
        #: newest checkpoint falls back to the previous one -- WAL
        #: generations are only pruned once the *older* retained
        #: checkpoint covers them.
        self.checkpoint_keep = max(1, int(checkpoint_keep))
        self.dedup_capacity = int(dedup_capacity)
        #: Rows per zone-mapped segment block.  Smaller blocks prune
        #: harder (a point read decodes less); larger blocks compress
        #: better.  The default is a good middle for both.
        self.segment_block_rows = max(1, int(segment_block_rows))
        self.fsync = fsync or FsyncModel()


@dataclass
class RecoveryInfo:
    """What one recovery pass found and rebuilt.  Counts only: the
    replayed records themselves stream straight into the memtable (and
    the caller's ``on_record`` hook), never into a list."""
    segments_loaded: int = 0
    segments_quarantined: int = 0
    checkpoint_loaded: Optional[str] = None
    checkpoint_records: int = 0
    checkpoints_quarantined: int = 0
    wal_files: int = 0
    wal_frames: int = 0
    wal_records: int = 0
    torn_tail: bool = False
    corrupt_frame: bool = False
    dedup_entries: int = 0


class StoreEngine:
    """Embedded storage under one ``data_dir``.

    Layout::

        data_dir/
          MANIFEST.json        segments, checkpoints, seq counters,
                               dedup seeds, WAL coverage watermark
          wal.log              WAL generation 0 (shard 0)
          wal-gNNNNNN-sNN.log  later generations / extra shards
          ckpt-NNNNNN.ckpt     periodic memtable checkpoints
          segments/seg-NNNNNN.seg
          quarantine/          files that failed their checksums
    """

    def __init__(self, data_dir: str,
                 rollup_config: Optional[RollupConfig] = None,
                 config: Optional[StoreConfig] = None,
                 obs: Optional[Observability] = None) -> None:
        self.data_dir = data_dir
        self.config = config or StoreConfig()
        self.obs = obs or get_default()
        os.makedirs(os.path.join(data_dir, SEGMENT_DIR), exist_ok=True)
        #: An explicit config wins; otherwise a reopened directory
        #: adopts the config its manifest was written with (the disk
        #: layout defines the windows, not the caller's defaults).
        self._explicit_config = rollup_config is not None
        self.rollup_config = rollup_config or RollupConfig()
        #: Live aggregates; the ingest pipeline shares this object.
        self.memtable = RollupStore(config=self.rollup_config)
        #: ``(device_id, batch_seq) -> acked``; shared with the
        #: pipeline.  Rebuilt by recovery from manifest seeds + WAL.
        self.dedup: "OrderedDict[Tuple[str, int], int]" = OrderedDict()
        #: Opaque caller state persisted at flush (detector findings).
        self.findings: List[dict] = []
        self.meta: Dict[str, object] = {}
        self._segments: List[str] = []          # file names, seq order
        self._checkpoints: List[dict] = []      # {"name","covers_gen"}
        self._next_seq = 1
        self._next_ckpt = 1
        self._bulk_seq = 0
        #: Highest WAL generation whose frames are already durable in
        #: segments (set by flush; persisted in the manifest).
        self._covered_gen = -1
        self._wal_gen = 0
        self._wals: List[WriteAheadLog] = []
        self.wal: Optional[WriteAheadLog] = None
        self._pending_records = 0
        self._records_since_checkpoint = 0
        self.last_recovery: Optional[RecoveryInfo] = None
        self.recoveries = 0
        self.recover(initial=True)

    # -- paths ---------------------------------------------------------

    def _manifest_path(self) -> str:
        return os.path.join(self.data_dir, MANIFEST_NAME)

    @staticmethod
    def _wal_name(gen: int, shard: int) -> str:
        if gen == 0 and shard == 0:
            return WAL_NAME
        return "wal-g%06d-s%02d.log" % (gen, shard)

    def _wal_path(self) -> str:
        """The active shard-0 WAL file."""
        return os.path.join(self.data_dir,
                            self._wal_name(self._wal_gen, 0))

    def _segment_path(self, name: str) -> str:
        return os.path.join(self.data_dir, SEGMENT_DIR, name)

    def _checkpoint_path(self, name: str) -> str:
        return os.path.join(self.data_dir, name)

    def segment_names(self) -> List[str]:
        return list(self._segments)

    def checkpoint_names(self) -> List[str]:
        return [entry["name"] for entry in self._checkpoints]

    def _discover_wal_files(self) -> List[Tuple[int, int, str]]:
        """Every WAL file on disk as ``(gen, shard, path)``, sorted --
        the deterministic replay order."""
        found: List[Tuple[int, int, str]] = []
        try:
            names = os.listdir(self.data_dir)
        except OSError:
            return found
        for name in names:
            if name == WAL_NAME:
                found.append((0, 0, os.path.join(self.data_dir, name)))
                continue
            match = _WAL_FILE_RE.match(name)
            if match:
                found.append((int(match.group(1)), int(match.group(2)),
                              os.path.join(self.data_dir, name)))
        return sorted(found)

    def wal_paths(self) -> List[str]:
        return [path for _gen, _shard, path in self._discover_wal_files()]

    def wal_bytes(self) -> int:
        total = 0
        for path in self.wal_paths():
            try:
                total += os.path.getsize(path)
            except OSError:
                pass
        return total

    # -- manifest ------------------------------------------------------

    def _write_manifest(self) -> None:
        manifest = {
            "schema": MANIFEST_SCHEMA,
            "next_seq": self._next_seq,
            "next_ckpt": self._next_ckpt,
            "bulk_seq": self._bulk_seq,
            "wal_covered_gen": self._covered_gen,
            "segments": list(self._segments),
            "checkpoints": list(self._checkpoints),
            "config": self.rollup_config.to_dict(),
            "dedup": [[device, seq, acked]
                      for (device, seq), acked in self.dedup.items()],
            "findings": self.findings,
            "meta": {k: self.meta[k] for k in sorted(self.meta)},
        }
        blob = json.dumps(manifest, sort_keys=True,
                          separators=(",", ":"))
        tmp = self._manifest_path() + ".tmp"
        with open(tmp, "w") as handle:
            handle.write(blob + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self._manifest_path())

    def _load_manifest(self) -> Optional[dict]:
        try:
            with open(self._manifest_path()) as handle:
                manifest = json.load(handle)
        except FileNotFoundError:
            return None
        if manifest.get("schema") not in (1, MANIFEST_SCHEMA):
            raise ValueError(
                "manifest %s has schema %r; this engine understands "
                "1..%d" % (self._manifest_path(),
                           manifest.get("schema"), MANIFEST_SCHEMA))
        return manifest

    # -- the write path ------------------------------------------------

    def _shard_for_device(self, device_id: str) -> WriteAheadLog:
        if len(self._wals) == 1:
            return self._wals[0]
        digest = zlib.crc32(device_id.encode("utf-8")) & 0xFFFFFFFF
        return self._wals[digest % len(self._wals)]

    @staticmethod
    def _envelope(header: dict, lines: List[bytes]) -> bytes:
        """v2 wire form: one canonical-JSON header line, then the raw
        record lines verbatim.  No re-serialisation, no JSON-in-JSON
        escaping -- the frame CRC covers the lot."""
        payload = json.dumps(header, sort_keys=True,
                             separators=(",", ":")).encode()
        if lines:
            payload += b"\n" + b"\n".join(lines)
        return payload

    def log_batch(self, device_id: str, batch_seq: int, acked: int,
                  records: List[MeasurementRecord],
                  lines: Optional[List[bytes]] = None) -> float:
        """Make one accepted batch durable.  Returns the sim-time
        fsync cost to charge to the batch ACK.  Pass the batch's raw
        JSONL ``lines`` when the transport already has them (the
        pipeline does); otherwise they are serialised here."""
        if lines is None:
            lines = [record_to_line(record).encode("utf-8")
                     for record in records]
        # Seed the shared dedup map before any checkpoint can fire:
        # the manifest snapshot must carry this batch's identity, or a
        # checkpoint that truncates its envelope would forget it.
        self._seed_dedup(device_id, int(batch_seq), int(acked))
        header = {"kind": "batch", "device": device_id,
                  "seq": int(batch_seq), "acked": int(acked),
                  "n": len(lines)}
        wal = self._shard_for_device(device_id)
        wal.append(self._envelope(header, lines))
        cost = wal.commit()
        self._pending_records = 0
        self._records_since_checkpoint += len(lines)
        self._maybe_flush()
        self._maybe_checkpoint()
        return cost

    def append_records(self, records: Iterable[MeasurementRecord],
                       batch_records: int = 512) -> int:
        """Bulk ingest for trusted offline sources: records go through
        the memtable *and* the WAL (group commit on record/byte
        thresholds)."""
        return self.append_entries(((record, None)
                                    for record in records),
                                   batch_records=batch_records)

    def append_entries(self,
                       entries: Iterable[Tuple[MeasurementRecord,
                                               Optional[bytes]]],
                       batch_records: int = 512) -> int:
        """Bulk ingest of ``(record, raw_line_bytes)`` pairs.  A
        ``None`` line is serialised here; callers that already hold
        the canonical JSONL bytes (shard files, upload payloads) pass
        them through and skip the per-record ``json.dumps`` entirely
        -- that re-serialisation was most of the WAL's 3.5x ingest
        tax."""
        count = 0
        lines: List[bytes] = []

        def _emit() -> None:
            self._bulk_seq += 1
            header = {"kind": "bulk", "n": len(lines),
                      "seq": self._bulk_seq}
            wal = self._wals[self._bulk_seq % len(self._wals)]
            wal.append(self._envelope(header, lines))
            self._pending_records += len(lines)
            if self._group_commit_due():
                self._commit_all()

        for record, line in entries:
            self.memtable.add(record)
            lines.append(line if line is not None
                         else record_to_line(record).encode("utf-8"))
            count += 1
            self._records_since_checkpoint += 1
            if len(lines) >= batch_records:
                _emit()
                lines = []
            if self._over_threshold():
                if lines:
                    _emit()
                    lines = []
                self.flush()
            elif self._checkpoint_due():
                if lines:
                    _emit()
                    lines = []
                self.checkpoint()
        if lines:
            _emit()
        self._commit_all()
        self._update_gauges()
        return count

    def _group_commit_due(self) -> bool:
        if self._pending_records >= self.config.group_commit_records:
            return True
        return sum(wal.pending_bytes for wal in self._wals) \
            >= self.config.group_commit_bytes

    def _commit_all(self) -> float:
        cost = 0.0
        for wal in self._wals:
            cost += wal.commit()
        self._pending_records = 0
        return cost

    def bulk_load(self, store: RollupStore) -> str:
        """Import a whole RollupStore as one segment, bypassing the
        WAL (used by ``serve --data-dir``, where the shard files are
        the durable source).  Returns the segment file name."""
        name = self._flush_store(store)
        self._update_gauges()
        return name

    def _over_threshold(self) -> bool:
        threshold = self.config.flush_threshold_records
        return threshold is not None and \
            self.memtable.records + self.memtable.failure_records \
            >= threshold

    def _maybe_flush(self) -> None:
        if self._over_threshold():
            self.flush()

    def _checkpoint_due(self) -> bool:
        interval = self.config.checkpoint_interval_records
        return interval is not None and \
            self._records_since_checkpoint >= interval

    def _maybe_checkpoint(self) -> None:
        if self._checkpoint_due():
            self.checkpoint()

    # -- flush ---------------------------------------------------------

    @staticmethod
    def _clear_store(store: RollupStore) -> None:
        """Empty a RollupStore in place (object identity matters: the
        pipeline holds a reference to the memtable)."""
        store.records = 0
        store.failure_records = 0
        for name in RollupStore.TABLES:
            store.tables[name].clear()

    def _memtable_empty(self) -> bool:
        return self.memtable.records == 0 and \
            self.memtable.failure_records == 0 and \
            self.memtable.group_count() == 0

    def _flush_store(self, store: RollupStore) -> str:
        seq = self._next_seq
        self._next_seq += 1
        name = "seg-%06d.seg" % seq
        nbytes = write_segment(self._segment_path(name), store, seq,
                               obs=self.obs,
                               block_rows=self.config.segment_block_rows)
        self._segments.append(name)
        self.obs.inc("store.flushes")
        self.obs.inc("store.segment_flush_bytes", nbytes)
        self._write_manifest()
        return name

    def _seal_and_rotate(self) -> int:
        """Close the active WAL generation and open the next one.
        Returns the sealed generation number."""
        sealed = self._wal_gen
        for wal in self._wals:
            wal.close()
        self._open_wals(sealed + 1)
        self.obs.inc("store.wal_rotations")
        return sealed

    def _open_wals(self, gen: int) -> None:
        self._wal_gen = gen
        self._wals = [
            WriteAheadLog(
                os.path.join(self.data_dir, self._wal_name(gen, shard)),
                obs=self.obs, fsync=self.config.fsync)
            for shard in range(self.config.wal_shards)]
        self.wal = self._wals[0]
        self._pending_records = 0

    def _prune_wal_files(self) -> None:
        """Delete WAL generations recovery can never need: those at or
        below the flush watermark, or those the *previous* retained
        checkpoint covers (so a torn newest checkpoint still has its
        fallback's tail on disk)."""
        horizon = self._covered_gen
        if len(self._checkpoints) >= 2:
            horizon = max(horizon,
                          int(self._checkpoints[-2]["covers_gen"]))
        for gen, _shard, path in self._discover_wal_files():
            if gen <= horizon and gen < self._wal_gen:
                try:
                    os.remove(path)
                except OSError:
                    pass

    def flush(self) -> Optional[str]:
        """Freeze the memtable into a segment; the WAL rotates to a
        fresh generation and everything the segment now carries --
        older generations, checkpoints -- is deleted.  No-op on an
        empty memtable.  Returns the segment name."""
        if self._memtable_empty():
            return None
        self._commit_all()
        self._covered_gen = self._seal_and_rotate()
        stale_checkpoints = self._checkpoints
        self._checkpoints = []
        name = self._flush_store(self.memtable)
        self._clear_store(self.memtable)
        for entry in stale_checkpoints:
            try:
                os.remove(self._checkpoint_path(entry["name"]))
            except OSError:
                pass
        self._prune_wal_files()
        self._records_since_checkpoint = 0
        self._update_gauges()
        return name

    # -- checkpoints ---------------------------------------------------

    def checkpoint(self) -> Optional[str]:
        """Snapshot the memtable + dedup seeds durably and prune the
        WAL behind the previous checkpoint.

        Ordering is what makes a crash at any point recoverable:
        commit + seal the active generation first (the snapshot then
        covers exactly generations ``<= sealed``), write the
        checkpoint file atomically, publish it in the manifest
        (with the dedup seeds and bulk-seq watermark), and only then
        delete what is no longer needed.  Die before the manifest
        rename and recovery uses the previous checkpoint + the full
        tail; die before the deletions and recovery ignores (then
        cleans) the stale files.  Returns the checkpoint file name,
        or ``None`` on an empty memtable."""
        if self._memtable_empty():
            self._records_since_checkpoint = 0
            return None
        self._commit_all()
        sealed = self._seal_and_rotate()
        name = "ckpt-%06d.ckpt" % self._next_ckpt
        self._next_ckpt += 1
        write_checkpoint(self._checkpoint_path(name), self.memtable,
                         covers_gen=sealed, obs=self.obs)
        self.obs.set_gauge(
            "store.checkpoint_records",
            float(self.memtable.records
                  + self.memtable.failure_records))
        self._checkpoints.append({"name": name, "covers_gen": sealed})
        retired = self._checkpoints[:-self.config.checkpoint_keep]
        self._checkpoints = \
            self._checkpoints[-self.config.checkpoint_keep:]
        self._write_manifest()
        for entry in retired:
            try:
                os.remove(self._checkpoint_path(entry["name"]))
            except OSError:
                pass
        self._prune_wal_files()
        self._records_since_checkpoint = 0
        self._update_gauges()
        return name

    # -- compaction + retention ----------------------------------------

    def compact(self, now_ms: Optional[float] = None,
                force: bool = False) -> bool:
        """Merge segments into one when ``compaction_fanout`` have
        accumulated (or ``force`` with >= 2); apply retention when a
        horizon and ``now_ms`` are given.  Returns True if a merge
        happened."""
        if len(self._segments) < (2 if force
                                  else self.config.compaction_fanout):
            self._apply_retention_gauge_only()
            return False
        merged = RollupStore(config=self.rollup_config)
        old = list(self._segments)
        for name in old:
            with SegmentReader(self._segment_path(name)) as reader:
                merged.merge(reader.to_store())
        if self.config.retention_ms is not None and now_ms is not None:
            self._evict_old_windows(merged, now_ms)
        seq = self._next_seq
        self._next_seq += 1
        name = "seg-%06d.seg" % seq
        write_segment(self._segment_path(name), merged, seq,
                      obs=self.obs,
                      block_rows=self.config.segment_block_rows)
        self._segments = [name]
        self._write_manifest()
        for stale in old:
            os.remove(self._segment_path(stale))
        self.obs.inc("store.compactions")
        self._update_gauges()
        return True

    def _apply_retention_gauge_only(self) -> None:
        self._update_gauges()

    def _evict_old_windows(self, store: RollupStore,
                           now_ms: float) -> None:
        cutoff = self.rollup_config.window_of(
            now_ms - self.config.retention_ms)
        evicted_windows = set()
        for table in RollupStore.WINDOWED_TABLES:
            rows = store.tables[table]
            for key in [k for k in rows if int(k[0]) < cutoff]:
                evicted_windows.add(int(key[0]))
                del rows[key]
        if evicted_windows:
            self.obs.inc("store.retention_windows_evicted",
                         len(evicted_windows))

    # -- crash + recovery ----------------------------------------------

    def crash(self) -> None:
        """The process dies.  Volatile state -- memtable, dedup map,
        findings, the WALs' uncommitted buffers -- is genuinely gone;
        only what commit()/checkpoint()/flush() forced to disk
        survives."""
        for wal in self._wals:
            wal.crash()
        self._clear_store(self.memtable)
        self.dedup.clear()
        del self.findings[:]
        self._segments = []
        self._checkpoints = []
        self._next_seq = 1
        self._pending_records = 0

    @staticmethod
    def _decode_envelope(payload: bytes) -> Tuple[dict, List[bytes]]:
        """Both envelope forms: v2 (header line + raw JSONL body) and
        the legacy v1 single JSON object with a ``lines`` array."""
        newline = payload.find(b"\n")
        if newline < 0:
            header = json.loads(payload.decode("utf-8"))
            body = b""
        else:
            header = json.loads(payload[:newline].decode("utf-8"))
            body = payload[newline + 1:]
        if "lines" in header:
            lines = [line.encode("utf-8") for line in header["lines"]]
        else:
            lines = body.split(b"\n") if body else []
        return header, lines

    def _truncate_wal_file(self, path: str, valid_bytes: int) -> None:
        """Cut a torn tail at the last valid frame boundary (a file
        that lost even its header restarts empty)."""
        if valid_bytes < len(WAL_MAGIC):
            with open(path, "wb") as handle:
                handle.write(WAL_MAGIC)
                handle.flush()
                os.fsync(handle.fileno())
            return
        with open(path, "r+b") as handle:
            handle.truncate(valid_bytes)

    def recover(self, initial: bool = False,
                on_record: Optional[
                    Callable[[MeasurementRecord], None]] = None
                ) -> RecoveryInfo:
        """Rebuild live state from disk alone: manifest -> segments
        (quarantining corrupt ones) -> newest valid checkpoint
        (quarantining torn ones, falling back to the previous) -> WAL
        tail replay into the memtable and dedup map, truncating torn
        tails.  Each replayed record streams through ``on_record``
        (when given) and is then dropped -- only counts are kept."""
        started = time.time()
        info = RecoveryInfo()
        for wal in self._wals:
            wal.crash()                 # drop buffers, release handles
        self._clear_store(self.memtable)
        self.dedup.clear()
        del self.findings[:]
        self._segments = []
        self._checkpoints = []
        self._next_seq = 1
        self._next_ckpt = 1
        self._bulk_seq = 0
        self._covered_gen = -1

        manifest = self._load_manifest()
        manifest_dirty = False
        if manifest is not None:
            if not self._explicit_config and "config" in manifest:
                self.rollup_config = RollupConfig.from_dict(
                    manifest["config"])
                self.memtable.config = self.rollup_config
            self._next_seq = int(manifest.get("next_seq", 1))
            self._next_ckpt = int(manifest.get("next_ckpt", 1))
            self._bulk_seq = int(manifest.get("bulk_seq", 0))
            self._covered_gen = int(manifest.get("wal_covered_gen", -1))
            self.meta = dict(manifest.get("meta", {}))
            self.findings.extend(manifest.get("findings", []))
            for device, seq, acked in manifest.get("dedup", []):
                self._seed_dedup(device, int(seq), int(acked))
            for name in manifest.get("segments", []):
                if self._check_segment(name):
                    self._segments.append(name)
                    info.segments_loaded += 1
                else:
                    info.segments_quarantined += 1
            manifest_dirty = info.segments_quarantined > 0
            manifest_dirty |= self._load_checkpoint(
                list(manifest.get("checkpoints", [])), info)
        covered = self._covered_gen
        if manifest_dirty:
            self._write_manifest()
        self._sweep_orphan_checkpoints()

        wal_files = self._discover_wal_files()
        live_files: List[Tuple[int, int, str]] = []
        for gen, shard, path in wal_files:
            if gen <= covered:
                # Covered by a checkpoint or flush that crashed before
                # its deletions; finish the cleanup.
                try:
                    os.remove(path)
                except OSError:
                    pass
                continue
            live_files.append((gen, shard, path))
        info.wal_files = len(live_files)
        torn_files = 0
        for gen, shard, path in live_files:
            result = replay(path)
            for payload in result.payloads:
                header, lines = self._decode_envelope(payload)
                for line in lines:
                    record = _record_from_dict(json.loads(line))
                    self.memtable.add(record)
                    if on_record is not None:
                        on_record(record)
                info.wal_records += len(lines)
                if header.get("kind") == "batch":
                    self._seed_dedup(header["device"],
                                     int(header["seq"]),
                                     int(header["acked"]))
                else:
                    self._bulk_seq = max(self._bulk_seq,
                                         int(header.get("seq", 0)))
            info.wal_frames += len(result.payloads)
            if result.torn or result.corrupt:
                info.torn_tail |= result.torn
                info.corrupt_frame |= result.corrupt
                self._truncate_wal_file(path, result.valid_bytes)
                torn_files += 1
        info.dedup_entries = len(self.dedup)

        active_gen = max([gen for gen, _shard, _path in live_files],
                        default=covered + 1 if covered >= 0 else 0)
        self._open_wals(active_gen)
        if torn_files:
            self.obs.inc("store.wal_torn_tails", torn_files)

        self.obs.inc("store.wal_replayed_frames", info.wal_frames)
        self.obs.inc("store.wal_replayed_records", info.wal_records)
        if info.segments_quarantined:
            self.obs.inc("store.segments_quarantined",
                         info.segments_quarantined)
        if not initial:
            self.obs.inc("store.recoveries")
            self.recoveries += 1
        self._records_since_checkpoint = info.wal_records
        self.obs.set_gauge("store.recovery_replay_wall_ms",
                           (time.time() - started) * 1000.0)
        self._update_gauges()
        self.last_recovery = info
        return info

    def _load_checkpoint(self, entries: List[dict],
                         info: RecoveryInfo) -> bool:
        """Load the newest valid checkpoint into the memtable,
        quarantining torn ones and falling back to older entries.
        Returns True when the manifest needs rewriting."""
        survivors: List[dict] = []
        loaded_store = None
        for entry in reversed(entries):
            if loaded_store is None:
                path = self._checkpoint_path(entry["name"])
                try:
                    loaded_store, covers = read_checkpoint(path)
                except CheckpointCorruption:
                    self._quarantine_checkpoint(entry["name"])
                    info.checkpoints_quarantined += 1
                    continue
                info.checkpoint_loaded = entry["name"]
                info.checkpoint_records = (loaded_store.records
                                           + loaded_store.failure_records)
                self._covered_gen = max(self._covered_gen, int(covers))
            survivors.append(entry)
        survivors.reverse()
        self._checkpoints = survivors
        if loaded_store is not None:
            self.memtable.merge(loaded_store)
        if info.checkpoints_quarantined:
            self.obs.inc("store.checkpoints_quarantined",
                         info.checkpoints_quarantined)
        return info.checkpoints_quarantined > 0

    def _quarantine_checkpoint(self, name: str) -> None:
        quarantine = os.path.join(self.data_dir, QUARANTINE_DIR)
        os.makedirs(quarantine, exist_ok=True)
        path = self._checkpoint_path(name)
        if os.path.exists(path):
            os.replace(path, os.path.join(quarantine, name))

    def _sweep_orphan_checkpoints(self) -> None:
        """Delete checkpoint files the manifest does not reference --
        leftovers of a crash between a checkpoint/flush write and its
        manifest publish or deletions."""
        valid = {entry["name"] for entry in self._checkpoints}
        try:
            names = os.listdir(self.data_dir)
        except OSError:
            return
        for name in names:
            if (name.endswith(".ckpt") or name.endswith(".ckpt.tmp")) \
                    and name not in valid:
                try:
                    os.remove(os.path.join(self.data_dir, name))
                except OSError:
                    pass

    def _seed_dedup(self, device: str, seq: int, acked: int) -> None:
        key = (device, seq)
        self.dedup[key] = acked
        self.dedup.move_to_end(key)
        while len(self.dedup) > self.config.dedup_capacity:
            self.dedup.popitem(last=False)

    def _check_segment(self, name: str) -> bool:
        """Full checksum pass; quarantine the file on failure."""
        path = self._segment_path(name)
        try:
            with SegmentReader(path) as reader:
                reader.verify()
            return True
        except SegmentCorruption:
            quarantine = os.path.join(self.data_dir, QUARANTINE_DIR)
            os.makedirs(quarantine, exist_ok=True)
            if os.path.exists(path):
                os.replace(path, os.path.join(quarantine, name))
            return False

    # -- the read path -------------------------------------------------

    def materialize(self) -> RollupStore:
        """Segments (seq order) + memtable, merged into one
        RollupStore -- the read path queries run against."""
        merged = RollupStore(config=self.rollup_config,
                             meta=self.meta)
        for name in self._segments:
            with SegmentReader(self._segment_path(name)) as reader:
                merged.merge(reader.to_store())
        merged.merge(self.memtable)
        return merged

    def segment_readers(self, cache=None, obs=None,
                        stats=None) -> List[SegmentReader]:
        """Open one reader per live segment (seq order).  The caller
        owns the readers -- and with them a pinned view: the open file
        handles keep serving even after compaction or retention
        unlinks the files.  Pass a shared
        :class:`~repro.store.blockcache.BlockCache` and a
        :class:`~repro.store.segments.ReadStats` to share decoded
        blocks and account reads (the serving tier does both)."""
        readers: List[SegmentReader] = []
        try:
            for name in self._segments:
                readers.append(
                    SegmentReader(self._segment_path(name),
                                  cache=cache, obs=obs, stats=stats))
        except SegmentCorruption:
            for reader in readers:
                reader.close()
            raise
        return readers

    def disk_bytes(self) -> int:
        total = self.wal_bytes()
        for entry in self._checkpoints:
            try:
                total += os.path.getsize(
                    self._checkpoint_path(entry["name"]))
            except OSError:
                pass
        for name in self._segments:
            try:
                total += os.path.getsize(self._segment_path(name))
            except OSError:
                pass
        return total

    def _update_gauges(self) -> None:
        self.obs.set_gauge("store.segments", float(len(self._segments)))
        segment_bytes = 0
        for name in self._segments:
            try:
                segment_bytes += os.path.getsize(
                    self._segment_path(name))
            except OSError:
                pass
        self.obs.set_gauge("store.segment_bytes", float(segment_bytes))
        self.obs.set_gauge(
            "store.memtable_records",
            float(self.memtable.records
                  + self.memtable.failure_records))
        self.obs.set_gauge("store.wal_files",
                           float(len(self._discover_wal_files())))

    def close(self) -> None:
        for wal in self._wals:
            wal.close()


__all__ = ["MANIFEST_NAME", "QUARANTINE_DIR", "RecoveryInfo",
           "SEGMENT_DIR", "StoreConfig", "StoreEngine", "WAL_NAME"]
