"""The storage engine: memtable + WAL + immutable segments.

A miniature LSM tree shaped for the rollup workload:

* writes land in the **memtable** (a live
  :class:`~repro.backend.rollups.RollupStore`) and are made durable by
  an envelope appended to the :mod:`WAL <repro.store.wal>` before the
  batch is acknowledged;
* when the memtable grows past ``flush_threshold_records`` it is
  frozen into an immutable :mod:`segment <repro.store.segments>`, the
  manifest is updated (segment list, dedup seeds, findings), and the
  WAL restarts empty -- the segment now carries that data;
* **compaction** merges accumulated segments into one (histogram merge
  is commutative, so this is pure bookkeeping) and the **retention**
  pass drops windowed rows older than the configured horizon;
* **recovery** rebuilds the live state from disk alone: load the
  manifest, check every segment (quarantining any that fails its
  checksums), then replay the WAL into a fresh memtable -- dedup LRU
  seeds and all -- truncating a torn tail at the last valid frame.

The engine owns the memtable and the dedup map as *shared objects*:
:class:`~repro.backend.ingest.IngestPipeline` holds references to the
same instances, so an ingest is visible to the engine (and a recovery
is visible to the pipeline) without any copying.  Crash and recovery
mutate those objects in place for exactly that reason.

Everything the engine writes is canonical (sorted keys, fixed
separators, sorted rows), so two runs that ingest the same records
produce byte-identical segments and manifests regardless of worker
count or ``PYTHONHASHSEED`` -- the same determinism contract as the
rest of the repo.
"""

from __future__ import annotations

import json
import os
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.backend.rollups import RollupConfig, RollupStore
from repro.core.persist import _record_from_dict, record_to_line
from repro.core.records import MeasurementRecord
from repro.obs import Observability, get_default
from repro.store.segments import SegmentCorruption, SegmentReader, write_segment
from repro.store.wal import FsyncModel, WriteAheadLog, replay

MANIFEST_NAME = "MANIFEST.json"
WAL_NAME = "wal.log"
SEGMENT_DIR = "segments"
QUARANTINE_DIR = "quarantine"
MANIFEST_SCHEMA = 1


class StoreConfig:
    """Tuning knobs for the engine."""

    def __init__(self,
                 flush_threshold_records: Optional[int] = 50_000,
                 compaction_fanout: int = 4,
                 retention_ms: Optional[float] = None,
                 group_commit_records: int = 256,
                 dedup_capacity: int = 4096,
                 fsync: Optional[FsyncModel] = None) -> None:
        #: Freeze the memtable into a segment at this many records
        #: (``None`` disables auto-flush; the WAL then covers
        #: everything, which is what the chaos crash worlds want).
        self.flush_threshold_records = flush_threshold_records
        #: ``compact()`` merges once this many segments accumulate.
        self.compaction_fanout = max(2, int(compaction_fanout))
        #: Evict windowed rows older than this horizon (``None`` keeps
        #: everything; the CLI maps ``--retention-days`` onto it).
        self.retention_ms = retention_ms
        #: Bulk-append path: one fsync per this many envelopes.
        self.group_commit_records = max(1, int(group_commit_records))
        self.dedup_capacity = int(dedup_capacity)
        self.fsync = fsync or FsyncModel()


@dataclass
class RecoveryInfo:
    """What one recovery pass found and rebuilt."""
    segments_loaded: int = 0
    segments_quarantined: int = 0
    wal_frames: int = 0
    wal_records: int = 0
    torn_tail: bool = False
    corrupt_frame: bool = False
    dedup_entries: int = 0
    replayed_records: List[MeasurementRecord] = field(
        default_factory=list)


class StoreEngine:
    """Embedded storage under one ``data_dir``.

    Layout::

        data_dir/
          MANIFEST.json        segment list, seq counter, dedup seeds
          wal.log              the write-ahead log
          segments/seg-NNNNNN.seg
          quarantine/          segments that failed their checksums
    """

    def __init__(self, data_dir: str,
                 rollup_config: Optional[RollupConfig] = None,
                 config: Optional[StoreConfig] = None,
                 obs: Optional[Observability] = None) -> None:
        self.data_dir = data_dir
        self.config = config or StoreConfig()
        self.obs = obs or get_default()
        os.makedirs(os.path.join(data_dir, SEGMENT_DIR), exist_ok=True)
        #: An explicit config wins; otherwise a reopened directory
        #: adopts the config its manifest was written with (the disk
        #: layout defines the windows, not the caller's defaults).
        self._explicit_config = rollup_config is not None
        self.rollup_config = rollup_config or RollupConfig()
        #: Live aggregates; the ingest pipeline shares this object.
        self.memtable = RollupStore(config=self.rollup_config)
        #: ``(device_id, batch_seq) -> acked``; shared with the
        #: pipeline.  Rebuilt by recovery from manifest seeds + WAL.
        self.dedup: "OrderedDict[Tuple[str, int], int]" = OrderedDict()
        #: Opaque caller state persisted at flush (detector findings).
        self.findings: List[dict] = []
        self.meta: Dict[str, object] = {}
        self._segments: List[str] = []          # file names, seq order
        self._next_seq = 1
        self._bulk_seq = 0
        self.wal: Optional[WriteAheadLog] = None
        self.last_recovery: Optional[RecoveryInfo] = None
        self.recoveries = 0
        self.recover(initial=True)

    # -- paths ---------------------------------------------------------

    def _manifest_path(self) -> str:
        return os.path.join(self.data_dir, MANIFEST_NAME)

    def _wal_path(self) -> str:
        return os.path.join(self.data_dir, WAL_NAME)

    def _segment_path(self, name: str) -> str:
        return os.path.join(self.data_dir, SEGMENT_DIR, name)

    def segment_names(self) -> List[str]:
        return list(self._segments)

    # -- manifest ------------------------------------------------------

    def _write_manifest(self) -> None:
        manifest = {
            "schema": MANIFEST_SCHEMA,
            "next_seq": self._next_seq,
            "segments": list(self._segments),
            "config": self.rollup_config.to_dict(),
            "dedup": [[device, seq, acked]
                      for (device, seq), acked in self.dedup.items()],
            "findings": self.findings,
            "meta": {k: self.meta[k] for k in sorted(self.meta)},
        }
        blob = json.dumps(manifest, sort_keys=True,
                          separators=(",", ":"))
        tmp = self._manifest_path() + ".tmp"
        with open(tmp, "w") as handle:
            handle.write(blob + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self._manifest_path())

    def _load_manifest(self) -> Optional[dict]:
        try:
            with open(self._manifest_path()) as handle:
                manifest = json.load(handle)
        except FileNotFoundError:
            return None
        if manifest.get("schema") != MANIFEST_SCHEMA:
            raise ValueError(
                "manifest %s has schema %r; this engine understands %d"
                % (self._manifest_path(), manifest.get("schema"),
                   MANIFEST_SCHEMA))
        return manifest

    # -- the write path ------------------------------------------------

    def log_batch(self, device_id: str, batch_seq: int, acked: int,
                  records: List[MeasurementRecord]) -> float:
        """Make one accepted batch durable.  Returns the sim-time
        fsync cost to charge to the batch ACK."""
        envelope = {
            "kind": "batch",
            "device": device_id,
            "seq": int(batch_seq),
            "acked": int(acked),
            "lines": [record_to_line(record) for record in records],
        }
        self.wal.append(json.dumps(envelope, sort_keys=True,
                                   separators=(",", ":")).encode())
        cost = self.wal.commit()
        self._maybe_flush()
        return cost

    def append_records(self, records, batch_records: int = 512) -> int:
        """Bulk ingest for trusted offline sources: records go through
        the memtable *and* the WAL (group commit, one fsync per
        ``group_commit_records`` envelopes)."""
        count = 0
        batch: List[str] = []

        def _emit() -> None:
            self._bulk_seq += 1
            envelope = {"kind": "bulk", "seq": self._bulk_seq,
                        "lines": batch}
            self.wal.append(json.dumps(envelope, sort_keys=True,
                                       separators=(",", ":")).encode())
            if self.wal.pending >= self.config.group_commit_records:
                self.wal.commit()

        for record in records:
            self.memtable.add(record)
            batch.append(record_to_line(record))
            count += 1
            if len(batch) >= batch_records:
                _emit()
                batch = []
            if self._over_threshold():
                if batch:
                    _emit()
                    batch = []
                self.wal.commit()
                self.flush()
        if batch:
            _emit()
        self.wal.commit()
        self._update_gauges()
        return count

    def bulk_load(self, store: RollupStore) -> str:
        """Import a whole RollupStore as one segment, bypassing the
        WAL (used by ``serve --data-dir``, where the shard files are
        the durable source).  Returns the segment file name."""
        name = self._flush_store(store)
        self._update_gauges()
        return name

    def _over_threshold(self) -> bool:
        threshold = self.config.flush_threshold_records
        return threshold is not None and \
            self.memtable.records + self.memtable.failure_records \
            >= threshold

    def _maybe_flush(self) -> None:
        if self._over_threshold():
            self.flush()

    # -- flush ---------------------------------------------------------

    @staticmethod
    def _clear_store(store: RollupStore) -> None:
        """Empty a RollupStore in place (object identity matters: the
        pipeline holds a reference to the memtable)."""
        store.records = 0
        store.failure_records = 0
        for name in RollupStore.TABLES:
            store.tables[name].clear()

    def _memtable_empty(self) -> bool:
        return self.memtable.records == 0 and \
            self.memtable.failure_records == 0 and \
            self.memtable.group_count() == 0

    def _flush_store(self, store: RollupStore) -> str:
        seq = self._next_seq
        self._next_seq += 1
        name = "seg-%06d.seg" % seq
        nbytes = write_segment(self._segment_path(name), store, seq,
                               obs=self.obs)
        self._segments.append(name)
        self.obs.inc("store.flushes")
        self.obs.inc("store.segment_flush_bytes", nbytes)
        self._write_manifest()
        return name

    def flush(self) -> Optional[str]:
        """Freeze the memtable into a segment; the WAL restarts empty.
        No-op on an empty memtable.  Returns the segment name."""
        if self._memtable_empty():
            return None
        name = self._flush_store(self.memtable)
        self._clear_store(self.memtable)
        self.wal.reset()
        self._update_gauges()
        return name

    # -- compaction + retention ----------------------------------------

    def compact(self, now_ms: Optional[float] = None,
                force: bool = False) -> bool:
        """Merge segments into one when ``compaction_fanout`` have
        accumulated (or ``force`` with >= 2); apply retention when a
        horizon and ``now_ms`` are given.  Returns True if a merge
        happened."""
        if len(self._segments) < (2 if force
                                  else self.config.compaction_fanout):
            self._apply_retention_gauge_only()
            return False
        merged = RollupStore(config=self.rollup_config)
        old = list(self._segments)
        for name in old:
            merged.merge(SegmentReader(self._segment_path(name))
                         .to_store())
        if self.config.retention_ms is not None and now_ms is not None:
            self._evict_old_windows(merged, now_ms)
        seq = self._next_seq
        self._next_seq += 1
        name = "seg-%06d.seg" % seq
        write_segment(self._segment_path(name), merged, seq,
                      obs=self.obs)
        self._segments = [name]
        self._write_manifest()
        for stale in old:
            os.remove(self._segment_path(stale))
        self.obs.inc("store.compactions")
        self._update_gauges()
        return True

    def _apply_retention_gauge_only(self) -> None:
        self._update_gauges()

    def _evict_old_windows(self, store: RollupStore,
                           now_ms: float) -> None:
        cutoff = self.rollup_config.window_of(
            now_ms - self.config.retention_ms)
        evicted_windows = set()
        for table in ("network", "app"):
            rows = store.tables[table]
            for key in [k for k in rows if int(k[0]) < cutoff]:
                evicted_windows.add(int(key[0]))
                del rows[key]
        if evicted_windows:
            self.obs.inc("store.retention_windows_evicted",
                         len(evicted_windows))

    # -- crash + recovery ----------------------------------------------

    def crash(self) -> None:
        """The process dies.  Volatile state -- memtable, dedup map,
        findings, the WAL's uncommitted buffer -- is genuinely gone;
        only what commit()/flush() forced to disk survives."""
        if self.wal is not None:
            self.wal.crash()
        self._clear_store(self.memtable)
        self.dedup.clear()
        del self.findings[:]
        self._segments = []
        self._next_seq = 1

    def recover(self, initial: bool = False) -> RecoveryInfo:
        """Rebuild live state from disk alone: manifest -> segments
        (quarantining corrupt ones) -> WAL replay into the memtable
        and dedup map, truncating any torn tail."""
        started = time.time()
        info = RecoveryInfo()
        self._clear_store(self.memtable)
        self.dedup.clear()
        del self.findings[:]
        self._segments = []
        self._next_seq = 1
        self._bulk_seq = 0

        manifest = self._load_manifest()
        if manifest is not None:
            if not self._explicit_config and "config" in manifest:
                self.rollup_config = RollupConfig.from_dict(
                    manifest["config"])
                self.memtable.config = self.rollup_config
            self._next_seq = int(manifest.get("next_seq", 1))
            self.meta = dict(manifest.get("meta", {}))
            self.findings.extend(manifest.get("findings", []))
            for device, seq, acked in manifest.get("dedup", []):
                self._seed_dedup(device, int(seq), int(acked))
            for name in manifest.get("segments", []):
                if self._check_segment(name):
                    self._segments.append(name)
                    info.segments_loaded += 1
                else:
                    info.segments_quarantined += 1
            if info.segments_quarantined:
                self._write_manifest()

        result = replay(self._wal_path())
        info.torn_tail = result.torn
        info.corrupt_frame = result.corrupt
        for payload in result.payloads:
            envelope = json.loads(payload.decode("utf-8"))
            records = [_record_from_dict(json.loads(line))
                       for line in envelope["lines"]]
            for record in records:
                self.memtable.add(record)
            info.replayed_records.extend(records)
            info.wal_records += len(records)
            if envelope.get("kind") == "batch":
                self._seed_dedup(envelope["device"],
                                 int(envelope["seq"]),
                                 int(envelope["acked"]))
            else:
                self._bulk_seq = max(self._bulk_seq,
                                     int(envelope.get("seq", 0)))
        info.wal_frames = len(result.payloads)
        info.dedup_entries = len(self.dedup)

        if self.wal is None:
            self.wal = WriteAheadLog(self._wal_path(), obs=self.obs,
                                     fsync=self.config.fsync)
        else:
            self.wal.reopen()
        if result.torn or result.corrupt:
            self.wal.truncate_to(result.valid_bytes)
            self.obs.inc("store.wal_torn_tails")

        self.obs.inc("store.wal_replayed_frames", info.wal_frames)
        self.obs.inc("store.wal_replayed_records", info.wal_records)
        if info.segments_quarantined:
            self.obs.inc("store.segments_quarantined",
                         info.segments_quarantined)
        if not initial:
            self.obs.inc("store.recoveries")
            self.recoveries += 1
        self.obs.set_gauge("store.recovery_replay_wall_ms",
                           (time.time() - started) * 1000.0)
        self._update_gauges()
        self.last_recovery = info
        return info

    def _seed_dedup(self, device: str, seq: int, acked: int) -> None:
        key = (device, seq)
        self.dedup[key] = acked
        self.dedup.move_to_end(key)
        while len(self.dedup) > self.config.dedup_capacity:
            self.dedup.popitem(last=False)

    def _check_segment(self, name: str) -> bool:
        """Full checksum pass; quarantine the file on failure."""
        path = self._segment_path(name)
        try:
            SegmentReader(path).verify()
            return True
        except SegmentCorruption:
            quarantine = os.path.join(self.data_dir, QUARANTINE_DIR)
            os.makedirs(quarantine, exist_ok=True)
            if os.path.exists(path):
                os.replace(path, os.path.join(quarantine, name))
            return False

    # -- the read path -------------------------------------------------

    def materialize(self) -> RollupStore:
        """Segments (seq order) + memtable, merged into one
        RollupStore -- the read path queries run against."""
        merged = RollupStore(config=self.rollup_config,
                             meta=self.meta)
        for name in self._segments:
            merged.merge(SegmentReader(self._segment_path(name))
                         .to_store())
        merged.merge(self.memtable)
        return merged

    def segment_readers(self) -> List[SegmentReader]:
        return [SegmentReader(self._segment_path(name))
                for name in self._segments]

    def disk_bytes(self) -> int:
        total = self.wal.size_bytes() if self.wal is not None else 0
        for name in self._segments:
            try:
                total += os.path.getsize(self._segment_path(name))
            except OSError:
                pass
        return total

    def _update_gauges(self) -> None:
        self.obs.set_gauge("store.segments", float(len(self._segments)))
        segment_bytes = 0
        for name in self._segments:
            try:
                segment_bytes += os.path.getsize(
                    self._segment_path(name))
            except OSError:
                pass
        self.obs.set_gauge("store.segment_bytes", float(segment_bytes))
        self.obs.set_gauge(
            "store.memtable_records",
            float(self.memtable.records
                  + self.memtable.failure_records))

    def close(self) -> None:
        if self.wal is not None:
            self.wal.close()


__all__ = ["MANIFEST_NAME", "QUARANTINE_DIR", "RecoveryInfo",
           "SEGMENT_DIR", "StoreConfig", "StoreEngine", "WAL_NAME"]
