"""Immutable segment files: a flushed memtable as checksummed blocks.

Layout, front to back::

    MOPSEG1\\n                         8-byte magic
    [row block] x N per table         CRC frame per zone-mapped block
    [footer]                          CRC frame, canonical JSON
    u64 LE footer offset              where the footer frame starts
    MOPSEGF1                          8-byte tail magic

Each rollup table's rows are sorted by **encoded key** -- ``varint
key-length + key utf-8 + hist codec`` (see
:mod:`repro.store.encoding`) -- then split into blocks of at most
``block_rows`` rows, each deflated with zlib before framing (the CRC
covers the compressed bytes).  Two stores with equal content produce
byte-identical segments regardless of insertion order or
``PYTHONHASHSEED``.

The footer indexes every block by offset/length **and by zone map**:
the minimum and maximum encoded key the block holds.  Blocks within a
table are disjoint and ascending, so a point read binary-searches the
zone maps and opens at most one block, and a range read opens only the
blocks whose ``[min, max]`` intersects the requested range -- this is
what makes the serving tier's pruned queries (docs/QUERY.md) read
strictly fewer blocks than a scan.  The footer also records the set of
rollup windows the segment holds, so a reader can enumerate windows
without touching a single row block.

Reads go through an open file handle (``seek`` + bounded ``read`` per
block), never a whole-file slurp: a pinned reader touches only the
blocks its queries need, and -- because the handle stays open -- keeps
serving a consistent view even after compaction or retention has
unlinked the file (the snapshot-isolation contract in
:mod:`repro.serve`).

Every block and the footer carry their own CRC32.  A reader that
trips a checksum raises :class:`SegmentCorruption`; the engine's
recovery pass catches it and quarantines the file rather than serving
silently wrong aggregates, and the serving tier surfaces it as a
clean :class:`~repro.serve.QueryError`.

Writes are atomic: the segment is assembled in a ``.tmp`` sibling and
renamed into place, so a crash mid-flush leaves no half-segment for
recovery to misread.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.backend.rollups import (
    Key,
    MergeHist,
    RollupConfig,
    RollupStore,
    _decode_key,
    _encode_key,
)
from repro.obs import Observability

MAGIC = b"MOPSEG1\n"
TAIL_MAGIC = b"MOPSEGF1"
#: v1 (PR 5) stored one monolithic block per table; v2 splits tables
#: into zone-mapped blocks and records the window set in the footer;
#: v3 (PR 9) adds the modality tables.  The reader accepts all three:
#: a table absent from an older footer is served as empty, so pre-PR-9
#: segments keep reading next to widened ones.
SEGMENT_SCHEMA = 3
#: Default rows per zone-mapped block.  Small enough that a point
#: query decodes a few KB, large enough that zlib still has a real
#: window to compress over.
DEFAULT_BLOCK_ROWS = 256

#: Exclusive upper bound used for prefix ranges over encoded keys.
_PREFIX_CEILING = "\U0010ffff"


class SegmentCorruption(Exception):
    """A segment failed structural or checksum validation."""


@dataclass
class ReadStats:
    """Per-view read accounting (shared by every pinned reader of one
    :class:`repro.serve.ReadView`)."""
    blocks_read: int = 0
    blocks_pruned: int = 0
    cache_hits: int = 0
    cache_misses: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {"blocks_read": self.blocks_read,
                "blocks_pruned": self.blocks_pruned,
                "cache_hits": self.cache_hits,
                "cache_misses": self.cache_misses}

    def delta_since(self, other: "ReadStats") -> "ReadStats":
        return ReadStats(
            blocks_read=self.blocks_read - other.blocks_read,
            blocks_pruned=self.blocks_pruned - other.blocks_pruned,
            cache_hits=self.cache_hits - other.cache_hits,
            cache_misses=self.cache_misses - other.cache_misses)

    def copy(self) -> "ReadStats":
        return ReadStats(self.blocks_read, self.blocks_pruned,
                         self.cache_hits, self.cache_misses)


def _encode_rows(rows: List[Tuple[str, Key, MergeHist]]) -> bytes:
    """Encode ``(encoded_key, key, hist)`` rows (already sorted by
    encoded key) as one block payload."""
    from repro.store.encoding import encode_hist, write_uvarint

    out = bytearray()
    write_uvarint(out, len(rows))
    for encoded, _key, hist in rows:
        raw = encoded.encode("utf-8")
        write_uvarint(out, len(raw))
        out.extend(raw)
        encode_hist(out, hist)
    return bytes(out)


def _encode_block(table: Dict[Key, MergeHist]) -> Tuple[bytes, int]:
    """One whole table as a single payload (the checkpoint format
    still uses this monolithic form)."""
    rows = sorted(((_encode_key(key), key, hist)
                   for key, hist in table.items()),
                  key=lambda row: row[0])
    return _encode_rows(rows), len(rows)


def write_segment(path: str, store: RollupStore, seq: int,
                  obs: Optional[Observability] = None,
                  block_rows: int = DEFAULT_BLOCK_ROWS) -> int:
    """Write ``store`` as segment ``seq`` at ``path`` (atomically).
    Returns the file size in bytes."""
    from repro.store.encoding import frame, pack_u64

    block_rows = max(1, int(block_rows))
    parts = [MAGIC]
    offset = len(MAGIC)
    index: Dict[str, Dict[str, object]] = {}
    for name in RollupStore.TABLES:
        rows = sorted(((_encode_key(key), key, hist)
                       for key, hist in store.tables[name].items()),
                      key=lambda row: row[0])
        blocks: List[Dict[str, object]] = []
        for start in range(0, len(rows), block_rows):
            chunk = rows[start:start + block_rows]
            block = frame(zlib.compress(_encode_rows(chunk), 9))
            parts.append(block)
            blocks.append({"offset": offset, "length": len(block),
                           "rows": len(chunk),
                           "min": chunk[0][0], "max": chunk[-1][0]})
            offset += len(block)
        index[name] = {"rows": len(rows), "blocks": blocks}
    footer = {
        "schema": SEGMENT_SCHEMA,
        "seq": int(seq),
        "config": store.config.to_dict(),
        "records": store.records,
        "failure_records": store.failure_records,
        "windows": store.windows(),
        "tables": index,
    }
    footer_frame = frame(json.dumps(footer, sort_keys=True,
                                    separators=(",", ":")).encode())
    parts.append(footer_frame)
    parts.append(pack_u64(offset))
    parts.append(TAIL_MAGIC)
    blob = b"".join(parts)
    tmp = path + ".tmp"
    with open(tmp, "wb") as handle:
        handle.write(blob)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    if obs is not None:
        obs.inc("store.segment_writes")
    return len(blob)


class SegmentReader:
    """Block-granular random access over one segment file.

    The footer is validated on open; row blocks are CRC-checked lazily
    on first access.  Point reads (:meth:`get`) and prefix ranges
    (:meth:`scan_prefix`) consult the footer's zone maps and open only
    the blocks that can match; a full scan (:meth:`iter_table`,
    :meth:`to_store`) opens them all.  Decoded blocks go through the
    shared :class:`~repro.store.blockcache.BlockCache` when one is
    supplied, else a private per-reader cache.  Any structural or
    checksum failure raises :class:`SegmentCorruption`.

    The reader keeps its file handle open for its whole life, so a
    segment deleted by compaction or retention keeps serving the
    pinned bytes (POSIX unlink semantics) -- close() releases it.
    """

    def __init__(self, path: str, cache=None,
                 obs: Optional[Observability] = None,
                 stats: Optional[ReadStats] = None) -> None:
        self.path = path
        self.cache = cache
        self.obs = obs
        self.stats = stats
        try:
            self._handle = open(path, "rb")
            self._size = os.fstat(self._handle.fileno()).st_size
        except OSError as exc:
            raise SegmentCorruption("unreadable segment %s: %s"
                                    % (path, exc))
        self._cache_prefix = os.path.abspath(path)
        self._local: Dict[Tuple[str, int], Dict[Key, MergeHist]] = {}
        try:
            self.footer = self._load_footer()
        except SegmentCorruption:
            self._handle.close()
            raise
        self.seq = int(self.footer["seq"])
        self.records = int(self.footer["records"])
        self.failure_records = int(self.footer.get("failure_records", 0))
        self.config = RollupConfig.from_dict(self.footer["config"])
        self._tables = {
            name: self._normalize_entry(name)
            for name in RollupStore.TABLES
        }

    # -- lifecycle -----------------------------------------------------

    def close(self) -> None:
        self._handle.close()

    def __enter__(self) -> "SegmentReader":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # -- structure -----------------------------------------------------

    def _read_at(self, offset: int, length: int) -> bytes:
        self._handle.seek(offset)
        return self._handle.read(length)

    def _load_footer(self) -> Dict[str, object]:
        from repro.store.encoding import (
            FRAME_OK,
            read_frame,
            unpack_u64,
        )

        if self._size < len(MAGIC) + 16:
            raise SegmentCorruption("segment %s is too short"
                                    % self.path)
        if self._read_at(0, len(MAGIC)) != MAGIC:
            raise SegmentCorruption("bad segment magic in %s" % self.path)
        tail = self._read_at(self._size - 16, 16)
        if tail[8:] != TAIL_MAGIC:
            raise SegmentCorruption("bad tail magic in %s" % self.path)
        footer_offset = unpack_u64(tail, 0)
        if not len(MAGIC) <= footer_offset < self._size - 16:
            raise SegmentCorruption("footer offset out of range in %s"
                                    % self.path)
        buffer = self._read_at(footer_offset,
                               self._size - 16 - footer_offset)
        payload, end, status = read_frame(buffer, 0)
        if status != FRAME_OK or end != len(buffer):
            raise SegmentCorruption("footer frame invalid in %s"
                                    % self.path)
        try:
            footer = json.loads(payload.decode("utf-8"))
        except ValueError:
            raise SegmentCorruption("footer is not JSON in %s"
                                    % self.path)
        if footer.get("schema") not in (1, 2, SEGMENT_SCHEMA):
            raise SegmentCorruption(
                "segment %s has schema %r; this reader understands "
                "1..%d" % (self.path, footer.get("schema"),
                           SEGMENT_SCHEMA))
        return footer

    def _normalize_entry(self, name: str) -> Dict[str, object]:
        """v2 entries carry zone-mapped block lists; a v1 entry is one
        monolithic block with an unbounded zone map.  A table missing
        from the footer means the segment predates that table (the v3
        schema widening) -- it reads as empty, not as corruption."""
        try:
            entry = self.footer["tables"][name]
        except KeyError:
            return {"rows": 0, "blocks": []}
        if "blocks" in entry:
            return entry
        return {"rows": int(entry["rows"]),
                "blocks": [{"offset": int(entry["offset"]),
                            "length": int(entry["length"]),
                            "rows": int(entry["rows"]),
                            "min": None, "max": None}]
                if int(entry["rows"]) else []}

    def blocks(self, name: str) -> List[Dict[str, object]]:
        """Block metadata (offset, length, rows, zone-map min/max)."""
        return list(self._tables[name]["blocks"])

    def rows(self, name: str) -> int:
        return int(self._tables[name]["rows"])

    def windows(self) -> Optional[List[int]]:
        """Rollup windows this segment holds, straight from the footer
        (``None`` for a v1 segment, which predates the field)."""
        windows = self.footer.get("windows")
        if windows is None:
            return None
        return [int(window) for window in windows]

    # -- block loading -------------------------------------------------

    def _load_block(self, name: str, index: int) -> Dict[Key, MergeHist]:
        if self.stats is not None:
            self.stats.blocks_read += 1
        if self.obs is not None:
            self.obs.inc("store.blocks_read")
        if self.cache is not None:
            cache_key = (self._cache_prefix, name, index)
            rows = self.cache.get(cache_key)
            if rows is not None:
                if self.stats is not None:
                    self.stats.cache_hits += 1
                return rows
            if self.stats is not None:
                self.stats.cache_misses += 1
            rows, nbytes = self._decode_block(name, index)
            self.cache.put(cache_key, rows, nbytes)
            return rows
        local_key = (name, index)
        rows = self._local.get(local_key)
        if rows is None:
            rows, _nbytes = self._decode_block(name, index)
            self._local[local_key] = rows
        return rows

    def _decode_block(self, name: str, index: int
                      ) -> Tuple[Dict[Key, MergeHist], int]:
        from repro.store.encoding import FRAME_OK, read_frame

        entry = self._tables[name]["blocks"][index]
        buffer = self._read_at(int(entry["offset"]),
                               int(entry["length"]))
        payload, _end, status = read_frame(buffer, 0)
        if status != FRAME_OK:
            raise SegmentCorruption(
                "table %r block %d failed its checksum in %s (%s)"
                % (name, index, self.path, status))
        try:
            payload = zlib.decompress(payload)
        except zlib.error as exc:
            raise SegmentCorruption(
                "table %r block %d undeflatable in %s: %s"
                % (name, index, self.path, exc))
        try:
            rows = self._decode_rows(payload, int(entry["rows"]))
        except (ValueError, IndexError) as exc:
            raise SegmentCorruption(
                "table %r block %d rows undecodable in %s: %s"
                % (name, index, self.path, exc))
        return rows, len(payload)

    @staticmethod
    def _decode_rows(payload: bytes, expected_rows: int
                     ) -> Dict[Key, MergeHist]:
        from repro.store.encoding import decode_hist, read_uvarint

        table: Dict[Key, MergeHist] = {}
        n_rows, pos = read_uvarint(payload, 0)
        if n_rows != expected_rows:
            raise ValueError("row count %d != footer's %d"
                             % (n_rows, expected_rows))
        for _ in range(n_rows):
            key_len, pos = read_uvarint(payload, pos)
            key = _decode_key(payload[pos:pos + key_len].decode("utf-8"))
            pos += key_len
            hist, pos = decode_hist(payload, pos)
            table[key] = hist
        return table

    # -- the read path -------------------------------------------------

    @staticmethod
    def _block_holds(entry: Dict[str, object], encoded: str) -> bool:
        low = entry["min"]
        high = entry["max"]
        if low is not None and encoded < low:
            return False
        if high is not None and encoded > high:
            return False
        return True

    def _prune(self, skipped: int) -> None:
        if skipped <= 0:
            return
        if self.stats is not None:
            self.stats.blocks_pruned += skipped
        if self.obs is not None:
            self.obs.inc("store.blocks_pruned", skipped)

    def get(self, name: str, key: Key) -> Optional[MergeHist]:
        """Zone-map point read: opens at most one block."""
        blocks = self._tables[name]["blocks"]
        encoded = _encode_key(tuple(key))
        for index, entry in enumerate(blocks):
            if self._block_holds(entry, encoded):
                self._prune(len(blocks) - 1)
                return self._load_block(name, index).get(tuple(key))
            if entry["max"] is not None and entry["max"] > encoded:
                break
        self._prune(len(blocks))
        return None

    def get_many(self, name: str, keys: List[Key]
                 ) -> Dict[Key, MergeHist]:
        """Batched point reads: one merge-join pass over the zone
        maps, opening each candidate block at most once however many
        keys land in it.  Absent keys are simply missing from the
        result."""
        blocks = self._tables[name]["blocks"]
        encoded = sorted((_encode_key(tuple(key)), tuple(key))
                         for key in set(map(tuple, keys)))
        out: Dict[Key, MergeHist] = {}
        skipped = 0
        index = 0
        for block_index, entry in enumerate(blocks):
            if index >= len(encoded):
                skipped += len(blocks) - block_index
                break
            low = entry["min"]
            high = entry["max"]
            while index < len(encoded) and low is not None \
                    and encoded[index][0] < low:
                index += 1               # below every later block too
            end = index
            while end < len(encoded) and \
                    (high is None or encoded[end][0] <= high):
                end += 1
            if end == index:
                skipped += 1
                continue
            rows = self._load_block(name, block_index)
            for _encoded_key, key in encoded[index:end]:
                hist = rows.get(key)
                if hist is not None:
                    out[key] = hist
            index = end
        self._prune(skipped)
        return out

    @staticmethod
    def _prefix_range(prefix_parts: Tuple[str, ...]) -> Tuple[str, str]:
        low = _encode_key(tuple(prefix_parts)) + "|" \
            if prefix_parts else ""
        return low, low + _PREFIX_CEILING

    def scan_prefix(self, name: str, prefix_parts: Tuple[str, ...]
                    ) -> Iterator[Tuple[Key, MergeHist]]:
        """All rows whose key starts with ``prefix_parts``, opening
        only the blocks whose zone map intersects the prefix range."""
        return self.scan_prefixes(name, [tuple(prefix_parts)])

    def scan_prefixes(self, name: str,
                      prefixes: List[Tuple[str, ...]]
                      ) -> Iterator[Tuple[Key, MergeHist]]:
        """All rows matching *any* of the (equal-length) prefixes, in
        one pass: each block is opened at most once however many
        prefix ranges intersect it."""
        if not prefixes:
            return
        lengths = {len(prefix) for prefix in prefixes}
        if len(lengths) != 1:
            raise ValueError("scan_prefixes wants equal-length "
                             "prefixes, got lengths %s"
                             % sorted(lengths))
        n = lengths.pop()
        wanted = {tuple(prefix) for prefix in prefixes}
        ranges = sorted(self._prefix_range(prefix)
                        for prefix in wanted)
        blocks = self._tables[name]["blocks"]
        skipped = 0
        for index, entry in enumerate(blocks):
            low = entry["min"]
            high = entry["max"]
            candidate = False
            for range_low, range_high in ranges:
                if high is not None and high < range_low:
                    break    # block sits below this and later ranges
                if low is not None and low >= range_high:
                    continue             # above this range; try next
                candidate = True
                break
            if not candidate:
                skipped += 1
                continue
            rows = self._load_block(name, index)
            for key in sorted(rows, key=_encode_key):
                if key[:n] in wanted:
                    yield key, rows[key]
        self._prune(skipped)

    def iter_table(self, name: str) -> Iterator[Tuple[Key, MergeHist]]:
        for index in range(len(self._tables[name]["blocks"])):
            rows = self._load_block(name, index)
            for key in sorted(rows, key=_encode_key):
                yield key, rows[key]

    def table(self, name: str) -> Dict[Key, MergeHist]:
        """The whole table, merged across its blocks (a full scan)."""
        merged: Dict[Key, MergeHist] = {}
        for index in range(len(self._tables[name]["blocks"])):
            merged.update(self._load_block(name, index))
        return merged

    def to_store(self) -> RollupStore:
        """Materialise the whole segment as a RollupStore."""
        store = RollupStore(config=self.config)
        store.records = self.records
        store.failure_records = self.failure_records
        for name in RollupStore.TABLES:
            store.tables[name] = self.table(name)
        return store

    def verify(self) -> None:
        """Force-check every block's checksum (used by recovery and
        ``store inspect``)."""
        for name in RollupStore.TABLES:
            for index in range(len(self._tables[name]["blocks"])):
                self._load_block(name, index)

    def size_bytes(self) -> int:
        return self._size


__all__ = ["DEFAULT_BLOCK_ROWS", "MAGIC", "ReadStats", "SEGMENT_SCHEMA",
           "SegmentCorruption", "SegmentReader", "TAIL_MAGIC",
           "write_segment"]
