"""Immutable segment files: a flushed memtable as checksummed blocks.

Layout, front to back::

    MOPSEG1\\n                         8-byte magic
    [table block]  x len(TABLES)      CRC frame per rollup table
    [footer]                          CRC frame, canonical JSON
    u64 LE footer offset              where the footer frame starts
    MOPSEGF1                          8-byte tail magic

Each table block holds its rows sorted by encoded key -- ``varint
key-length + key utf-8 + hist codec`` (see
:mod:`repro.store.encoding`) -- deflated with zlib before framing
(the CRC covers the compressed bytes), so two stores with equal
content produce byte-identical segments regardless of insertion order
or ``PYTHONHASHSEED``.  The footer indexes every block by offset/length,
which is what makes point and range reads possible without touching
the other tables: a reader seeks to the tail, loads the footer, then
loads exactly the blocks a query needs.

Every block and the footer carry their own CRC32.  A reader that
trips a checksum raises :class:`SegmentCorruption`; the engine's
recovery pass catches it and quarantines the file rather than serving
silently wrong aggregates.

Writes are atomic: the segment is assembled in a ``.tmp`` sibling and
renamed into place, so a crash mid-flush leaves no half-segment for
recovery to misread.
"""

from __future__ import annotations

import json
import os
import zlib
from typing import Dict, Iterator, Optional, Tuple

from repro.backend.rollups import (
    Key,
    MergeHist,
    RollupConfig,
    RollupStore,
    _decode_key,
    _encode_key,
)
from repro.obs import Observability
from repro.store.encoding import (
    FRAME_HEADER_BYTES,
    FRAME_OK,
    decode_hist,
    encode_hist,
    frame,
    pack_u64,
    read_frame,
    read_uvarint,
    unpack_u64,
    write_uvarint,
)

MAGIC = b"MOPSEG1\n"
TAIL_MAGIC = b"MOPSEGF1"
SEGMENT_SCHEMA = 1


class SegmentCorruption(Exception):
    """A segment failed structural or checksum validation."""


def _encode_block(table: Dict[Key, MergeHist]) -> Tuple[bytes, int]:
    out = bytearray()
    keys = sorted(table)
    write_uvarint(out, len(keys))
    for key in keys:
        encoded = _encode_key(key).encode("utf-8")
        write_uvarint(out, len(encoded))
        out.extend(encoded)
        encode_hist(out, table[key])
    return bytes(out), len(keys)


def write_segment(path: str, store: RollupStore, seq: int,
                  obs: Optional[Observability] = None) -> int:
    """Write ``store`` as segment ``seq`` at ``path`` (atomically).
    Returns the file size in bytes."""
    parts = [MAGIC]
    offset = len(MAGIC)
    index: Dict[str, Dict[str, int]] = {}
    for name in RollupStore.TABLES:
        payload, rows = _encode_block(store.tables[name])
        block = frame(zlib.compress(payload, 9))
        parts.append(block)
        index[name] = {"offset": offset, "length": len(block),
                       "rows": rows}
        offset += len(block)
    footer = {
        "schema": SEGMENT_SCHEMA,
        "seq": int(seq),
        "config": store.config.to_dict(),
        "records": store.records,
        "failure_records": store.failure_records,
        "tables": index,
    }
    footer_frame = frame(json.dumps(footer, sort_keys=True,
                                    separators=(",", ":")).encode())
    parts.append(footer_frame)
    parts.append(pack_u64(offset))
    parts.append(TAIL_MAGIC)
    blob = b"".join(parts)
    tmp = path + ".tmp"
    with open(tmp, "wb") as handle:
        handle.write(blob)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    if obs is not None:
        obs.inc("store.segment_writes")
    return len(blob)


class SegmentReader:
    """Random access over one segment file.

    The footer is validated on open; table blocks are CRC-checked
    lazily on first access and cached.  Any structural or checksum
    failure raises :class:`SegmentCorruption`.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        try:
            with open(path, "rb") as handle:
                self._data = handle.read()
        except OSError as exc:
            raise SegmentCorruption("unreadable segment %s: %s"
                                    % (path, exc))
        self.footer = self._load_footer()
        self.seq = int(self.footer["seq"])
        self.records = int(self.footer["records"])
        self.failure_records = int(self.footer.get("failure_records", 0))
        self.config = RollupConfig.from_dict(self.footer["config"])
        self._tables: Dict[str, Dict[Key, MergeHist]] = {}

    def _load_footer(self) -> Dict[str, object]:
        data = self._data
        if len(data) < len(MAGIC) + 16 or not data.startswith(MAGIC):
            raise SegmentCorruption("bad segment magic in %s" % self.path)
        if data[-8:] != TAIL_MAGIC:
            raise SegmentCorruption("bad tail magic in %s" % self.path)
        footer_offset = unpack_u64(data, len(data) - 16)
        if not len(MAGIC) <= footer_offset < len(data) - 16:
            raise SegmentCorruption("footer offset out of range in %s"
                                    % self.path)
        payload, end, status = read_frame(data, footer_offset)
        if status != FRAME_OK or end != len(data) - 16:
            raise SegmentCorruption("footer frame invalid in %s"
                                    % self.path)
        try:
            footer = json.loads(payload.decode("utf-8"))
        except ValueError:
            raise SegmentCorruption("footer is not JSON in %s"
                                    % self.path)
        if footer.get("schema") != SEGMENT_SCHEMA:
            raise SegmentCorruption(
                "segment %s has schema %r; this reader understands %d"
                % (self.path, footer.get("schema"), SEGMENT_SCHEMA))
        return footer

    def _block(self, name: str) -> Dict[Key, MergeHist]:
        cached = self._tables.get(name)
        if cached is not None:
            return cached
        try:
            entry = self.footer["tables"][name]
        except KeyError:
            raise SegmentCorruption("table %r missing from footer of %s"
                                    % (name, self.path))
        offset = int(entry["offset"])
        payload, _end, status = read_frame(self._data, offset)
        if status != FRAME_OK:
            raise SegmentCorruption(
                "table %r block failed its checksum in %s (%s)"
                % (name, self.path, status))
        try:
            payload = zlib.decompress(payload)
        except zlib.error as exc:
            raise SegmentCorruption("table %r block undeflatable in "
                                    "%s: %s" % (name, self.path, exc))
        try:
            table = self._decode_rows(payload, int(entry["rows"]))
        except (ValueError, IndexError) as exc:
            raise SegmentCorruption("table %r rows undecodable in %s: %s"
                                    % (name, self.path, exc))
        self._tables[name] = table
        return table

    @staticmethod
    def _decode_rows(payload: bytes, expected_rows: int
                     ) -> Dict[Key, MergeHist]:
        table: Dict[Key, MergeHist] = {}
        n_rows, pos = read_uvarint(payload, 0)
        if n_rows != expected_rows:
            raise ValueError("row count %d != footer's %d"
                             % (n_rows, expected_rows))
        for _ in range(n_rows):
            key_len, pos = read_uvarint(payload, pos)
            key = _decode_key(payload[pos:pos + key_len].decode("utf-8"))
            pos += key_len
            hist, pos = decode_hist(payload, pos)
            table[key] = hist
        return table

    # -- the read path -------------------------------------------------

    def iter_table(self, name: str) -> Iterator[Tuple[Key, MergeHist]]:
        table = self._block(name)
        for key in sorted(table):
            yield key, table[key]

    def get(self, name: str, key: Key) -> Optional[MergeHist]:
        return self._block(name).get(tuple(key))

    def to_store(self) -> RollupStore:
        """Materialise the whole segment as a RollupStore."""
        store = RollupStore(config=self.config)
        store.records = self.records
        store.failure_records = self.failure_records
        for name in RollupStore.TABLES:
            store.tables[name] = dict(self._block(name))
        return store

    def verify(self) -> None:
        """Force-check every block's checksum (used by recovery and
        ``store inspect``)."""
        for name in RollupStore.TABLES:
            self._block(name)

    def size_bytes(self) -> int:
        return len(self._data)


__all__ = ["MAGIC", "SEGMENT_SCHEMA", "SegmentCorruption",
           "SegmentReader", "TAIL_MAGIC", "write_segment"]
