"""Byte-level codecs shared by the WAL and segment formats.

Three small, composable pieces:

* **uvarint** -- unsigned LEB128, the variable-length integer both
  file formats build on.
* **CRC frames** -- every durable payload is wrapped in
  ``u32 LE length + u32 LE crc32 + payload``.  The reader classifies
  the tail of a file as *clean* (ends exactly on a frame boundary),
  *torn* (a partial frame: the process died mid-write, the valid
  prefix is trustworthy) or *corrupt* (a complete frame whose checksum
  fails: the media lied, the file is quarantined).  The distinction
  matters: torn tails are expected after a crash and recovery simply
  truncates them; checksum failures are never expected and must be
  surfaced, not silently dropped.
* **hist codec** -- a :class:`~repro.backend.rollups.MergeHist` as
  delta+varint bytes.  Bin indices are strictly ascending, so after
  the first index each delta is >= 1 and is stored as ``delta - 1``;
  bin counts are >= 1 and are stored as ``count - 1``.  Sparse
  histograms (the common case: a handful of occupied 0.25 ms bins)
  collapse to a few bytes each, which is where the segment format's
  size win over the JSON snapshot comes from.
"""

from __future__ import annotations

import struct
import zlib
from typing import List, Tuple

from repro.backend.rollups import MergeHist

_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")

FRAME_HEADER_BYTES = 8

#: Classification of a frame read.
FRAME_OK = "ok"
FRAME_END = "end"          # clean end of buffer at a frame boundary
FRAME_TORN = "torn"        # partial frame: crash mid-write
FRAME_CORRUPT = "corrupt"  # complete frame, bad checksum


# -- varints ----------------------------------------------------------------


def write_uvarint(out: bytearray, value: int) -> None:
    if value < 0:
        raise ValueError("uvarint cannot encode negative %d" % value)
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def read_uvarint(data: bytes, pos: int) -> Tuple[int, int]:
    """Returns ``(value, new_pos)``; raises ``ValueError`` on a
    truncated or oversized varint."""
    result = 0
    shift = 0
    while True:
        if pos >= len(data):
            raise ValueError("truncated uvarint")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7
        if shift > 63:
            raise ValueError("uvarint too long")


# -- CRC frames -------------------------------------------------------------


def frame(payload: bytes) -> bytes:
    """``u32 LE length + u32 LE crc32(payload) + payload``."""
    return (_U32.pack(len(payload))
            + _U32.pack(zlib.crc32(payload) & 0xFFFFFFFF)
            + payload)


def read_frame(data: bytes, pos: int) -> Tuple[bytes, int, str]:
    """Read one frame at ``pos``.

    Returns ``(payload, new_pos, status)``.  ``status`` is
    ``FRAME_OK``, ``FRAME_END`` (pos is exactly the end of the
    buffer), ``FRAME_TORN`` (header or payload cut short) or
    ``FRAME_CORRUPT`` (checksum mismatch).  On anything but
    ``FRAME_OK`` the payload is ``b""`` and ``new_pos`` is ``pos``.
    """
    if pos == len(data):
        return b"", pos, FRAME_END
    if pos + FRAME_HEADER_BYTES > len(data):
        return b"", pos, FRAME_TORN
    (length,) = _U32.unpack_from(data, pos)
    (crc,) = _U32.unpack_from(data, pos + 4)
    end = pos + FRAME_HEADER_BYTES + length
    if end > len(data):
        return b"", pos, FRAME_TORN
    payload = bytes(data[pos + FRAME_HEADER_BYTES:end])
    if zlib.crc32(payload) & 0xFFFFFFFF != crc:
        return b"", pos, FRAME_CORRUPT
    return payload, end, FRAME_OK


def pack_u64(value: int) -> bytes:
    return _U64.pack(value)


def unpack_u64(data: bytes, pos: int) -> int:
    return _U64.unpack_from(data, pos)[0]


# -- MergeHist codec --------------------------------------------------------


def encode_hist(out: bytearray, hist: MergeHist) -> None:
    """Append one histogram: varint count, varint overflow, varint
    n_entries, then ascending (delta-1 index, count-1) varint pairs
    (the first index is absolute)."""
    write_uvarint(out, hist.count)
    write_uvarint(out, hist.overflow)
    indices = sorted(hist.bins)
    write_uvarint(out, len(indices))
    previous = None
    for index in indices:
        if previous is None:
            write_uvarint(out, index)
        else:
            write_uvarint(out, index - previous - 1)
        previous = index
        write_uvarint(out, hist.bins[index] - 1)


def decode_hist(data: bytes, pos: int) -> Tuple[MergeHist, int]:
    hist = MergeHist()
    hist.count, pos = read_uvarint(data, pos)
    hist.overflow, pos = read_uvarint(data, pos)
    n_entries, pos = read_uvarint(data, pos)
    index = 0
    for entry in range(n_entries):
        delta, pos = read_uvarint(data, pos)
        index = delta if entry == 0 else index + delta + 1
        count, pos = read_uvarint(data, pos)
        hist.bins[index] = count + 1
    return hist, pos


__all__ = [
    "FRAME_CORRUPT", "FRAME_END", "FRAME_HEADER_BYTES", "FRAME_OK",
    "FRAME_TORN", "decode_hist", "encode_hist", "frame", "pack_u64",
    "read_frame", "read_uvarint", "unpack_u64", "write_uvarint",
]
