"""Byte-budgeted LRU cache for decoded segment blocks.

One cache is shared by every :class:`~repro.store.segments.SegmentReader`
a :class:`~repro.serve.QueryEngine` opens, so a dashboard fan-out that
hits the same hot blocks (popular apps, the current window) decodes
each block once.  Entries are keyed ``(segment path, table, block
index)`` -- segment names are never reused within a data dir (``seq``
is monotonic), so a key uniquely names immutable bytes and entries
never need invalidation.

The budget is counted in **decoded** payload bytes (the decompressed
block payload length), which tracks resident cost far better than the
on-disk size of a ~4x-deflated block.  Inserting past the budget
evicts from the least-recently-used end until the new entry fits; an
entry larger than the whole budget is not admitted (it would only
evict everything for a single-use row set).

Metrics (catalog-enforced, see docs/OBSERVABILITY.md):
``store.cache.hits`` / ``store.cache.misses`` / ``store.cache.evictions``
counters and ``store.cache.bytes`` / ``store.cache.entries`` gauges.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Hashable, Optional, Tuple

from repro.obs import Observability

#: Default byte budget: 32 MiB of decoded blocks.
DEFAULT_CACHE_BYTES = 32 << 20


class BlockCache:
    """LRU over decoded blocks with a byte budget."""

    def __init__(self, capacity_bytes: int = DEFAULT_CACHE_BYTES,
                 obs: Optional[Observability] = None) -> None:
        self.capacity_bytes = max(0, int(capacity_bytes))
        self.obs = obs
        self._entries: "OrderedDict[Hashable, Tuple[object, int]]" = \
            OrderedDict()
        self._bytes = 0

    def get(self, key: Hashable):
        """The cached value, refreshed to most-recently-used, or
        ``None`` on a miss."""
        entry = self._entries.get(key)
        if entry is None:
            if self.obs is not None:
                self.obs.inc("store.cache.misses")
            return None
        self._entries.move_to_end(key)
        if self.obs is not None:
            self.obs.inc("store.cache.hits")
        return entry[0]

    def put(self, key: Hashable, value: object, nbytes: int) -> None:
        """Insert ``value`` costed at ``nbytes``, evicting LRU entries
        to stay under budget.  Oversized values are not admitted."""
        nbytes = max(0, int(nbytes))
        if nbytes > self.capacity_bytes:
            return
        old = self._entries.pop(key, None)
        if old is not None:
            self._bytes -= old[1]
        while self._entries and self._bytes + nbytes > self.capacity_bytes:
            _evicted_key, (_value, evicted_bytes) = \
                self._entries.popitem(last=False)
            self._bytes -= evicted_bytes
            if self.obs is not None:
                self.obs.inc("store.cache.evictions")
        self._entries[key] = (value, nbytes)
        self._bytes += nbytes
        self._update_gauges()

    def clear(self) -> None:
        self._entries.clear()
        self._bytes = 0
        self._update_gauges()

    def _update_gauges(self) -> None:
        if self.obs is None:
            return
        self.obs.set_gauge("store.cache.bytes", float(self._bytes))
        self.obs.set_gauge("store.cache.entries",
                           float(len(self._entries)))

    # -- introspection -------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def bytes_used(self) -> int:
        return self._bytes

    def stats(self) -> Dict[str, int]:
        return {"entries": len(self._entries), "bytes": self._bytes,
                "capacity_bytes": self.capacity_bytes}


__all__ = ["BlockCache", "DEFAULT_CACHE_BYTES"]
