"""Checkpoint files: a durable snapshot of the memtable mid-run.

Without checkpoints, recovery replays the WAL from its first frame,
so recovery time grows with run length.  A checkpoint freezes the
memtable's aggregates to disk (without flushing them to a segment, so
the memtable keeps accumulating) and records which WAL generations it
covers; recovery then loads the newest valid checkpoint and replays
only the WAL tail written after it -- bounded by the checkpoint
interval, not the run.

Layout, front to back::

    MOPCKP1\\n                         8-byte magic
    [header]                          CRC frame, canonical JSON
    [table block] x len(TABLES)       CRC frame per rollup table
    MOPCKPF1                          8-byte tail magic

The header carries ``schema``, ``covers_gen`` (the highest WAL
generation whose frames are folded into this snapshot), the rollup
config, and the record counters.  Table blocks reuse the segment
format's sorted delta+varint row encoding (deflated, CRC framed), so
a checkpoint of equal content is byte-identical regardless of
insertion order or ``PYTHONHASHSEED``.

Writes are atomic (``.tmp`` + rename).  Readers validate everything
up front and raise :class:`CheckpointCorruption` on any structural or
checksum failure; the engine quarantines the file and falls back to
the previous checkpoint plus a longer WAL replay -- which is exactly
why the engine retains two checkpoints and only prunes WAL
generations the *older* one covers.
"""

from __future__ import annotations

import json
import os
import zlib
from typing import Optional, Tuple

from repro.backend.rollups import RollupConfig, RollupStore
from repro.obs import Observability
from repro.store.encoding import FRAME_OK, frame, read_frame
from repro.store.segments import SegmentReader, _encode_block

MAGIC = b"MOPCKP1\n"
TAIL_MAGIC = b"MOPCKPF1"
CHECKPOINT_SCHEMA = 1


class CheckpointCorruption(Exception):
    """A checkpoint failed structural or checksum validation."""


def write_checkpoint(path: str, store: RollupStore, covers_gen: int,
                     obs: Optional[Observability] = None) -> int:
    """Write ``store`` as a checkpoint covering WAL generations
    ``<= covers_gen`` (atomically).  Returns the file size."""
    header = {
        "schema": CHECKPOINT_SCHEMA,
        "covers_gen": int(covers_gen),
        "config": store.config.to_dict(),
        "records": store.records,
        "failure_records": store.failure_records,
        "tables": list(RollupStore.TABLES),
    }
    parts = [MAGIC,
             frame(json.dumps(header, sort_keys=True,
                              separators=(",", ":")).encode())]
    for name in RollupStore.TABLES:
        payload, _rows = _encode_block(store.tables[name])
        parts.append(frame(zlib.compress(payload, 9)))
    parts.append(TAIL_MAGIC)
    blob = b"".join(parts)
    tmp = path + ".tmp"
    with open(tmp, "wb") as handle:
        handle.write(blob)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    if obs is not None:
        obs.inc("store.checkpoints")
        obs.inc("store.checkpoint_bytes", len(blob))
    return len(blob)


def read_checkpoint(path: str) -> Tuple[RollupStore, int]:
    """Load and fully validate a checkpoint.  Returns
    ``(store, covers_gen)``; raises :class:`CheckpointCorruption` on
    any defect (the caller quarantines and falls back)."""
    try:
        with open(path, "rb") as handle:
            data = handle.read()
    except OSError as exc:
        raise CheckpointCorruption("unreadable checkpoint %s: %s"
                                   % (path, exc))
    if len(data) < len(MAGIC) + len(TAIL_MAGIC) or \
            not data.startswith(MAGIC):
        raise CheckpointCorruption("bad checkpoint magic in %s" % path)
    if data[-len(TAIL_MAGIC):] != TAIL_MAGIC:
        raise CheckpointCorruption("bad tail magic in %s (torn write?)"
                                   % path)
    payload, pos, status = read_frame(data, len(MAGIC))
    if status != FRAME_OK:
        raise CheckpointCorruption("header frame %s in %s"
                                   % (status, path))
    try:
        header = json.loads(payload.decode("utf-8"))
    except ValueError:
        raise CheckpointCorruption("header is not JSON in %s" % path)
    if header.get("schema") != CHECKPOINT_SCHEMA:
        raise CheckpointCorruption(
            "checkpoint %s has schema %r; this reader understands %d"
            % (path, header.get("schema"), CHECKPOINT_SCHEMA))
    store = RollupStore(
        config=RollupConfig.from_dict(header["config"]))
    store.records = int(header["records"])
    store.failure_records = int(header.get("failure_records", 0))
    # The header records which tables were written, in order, so a
    # checkpoint taken before a schema widening (fewer tables) still
    # reads back next to the current TABLES tuple: absent tables stay
    # empty, and any table this build does not know is decoded (to
    # keep frame positions honest) and dropped.
    for name in header.get("tables", list(RollupStore.TABLES)):
        payload, pos, status = read_frame(data, pos)
        if status != FRAME_OK:
            raise CheckpointCorruption(
                "table %r block %s in %s" % (name, status, path))
        try:
            rows = zlib.decompress(payload)
        except zlib.error as exc:
            raise CheckpointCorruption(
                "table %r block undeflatable in %s: %s"
                % (name, path, exc))
        try:
            decoded = _decode_rows(rows)
        except (ValueError, IndexError) as exc:
            raise CheckpointCorruption(
                "table %r rows undecodable in %s: %s"
                % (name, path, exc))
        if name in store.tables:
            store.tables[name] = decoded
    if pos != len(data) - len(TAIL_MAGIC):
        raise CheckpointCorruption("trailing garbage in %s" % path)
    return store, int(header["covers_gen"])


def _decode_rows(payload: bytes):
    from repro.store.encoding import read_uvarint
    n_rows, _pos = read_uvarint(payload, 0)
    return SegmentReader._decode_rows(payload, n_rows)


__all__ = ["CHECKPOINT_SCHEMA", "CheckpointCorruption", "MAGIC",
           "TAIL_MAGIC", "read_checkpoint", "write_checkpoint"]
