"""The write-ahead log: durability for everything the memtable holds.

Every accepted batch becomes one canonical-JSON envelope appended to
``wal.log`` as a CRC frame (see :mod:`repro.store.encoding`).  Appends
buffer in memory; :meth:`WriteAheadLog.commit` writes the buffered
frames and issues one fsync for the whole group -- group commit, the
classic trade of latency for throughput.  The sim-time price of that
fsync comes from :class:`FsyncModel` (the same shape as
``IngestLoadModel``: a base cost plus a marginal per-kilobyte cost)
and is returned to the caller, which charges it to the batch ACK --
durable backends are slower backends, and the uploader's ACK-latency
histogram sees the difference.

Crash semantics are literal: :meth:`WriteAheadLog.crash` discards the
uncommitted buffer, exactly the bytes a real process loses when it
dies between ``write()`` and ``fsync()``.  :func:`replay` walks the
frames back, classifying the tail -- a *torn* tail (partial frame) is
the expected signature of a crash and recovery truncates it; a
*corrupt* frame (complete but checksum-failed) stops the replay at
the last valid frame and is reported separately, because media
corruption is never expected and must show up in ``store.*`` metrics.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import List, Optional

from repro.obs import Observability, get_default
from repro.store.encoding import (
    FRAME_CORRUPT,
    FRAME_END,
    FRAME_OK,
    frame,
    read_frame,
)

MAGIC = b"MOPWAL1\n"


class FsyncModel:
    """Sim-time cost of one group-commit fsync.

    ``base_ms`` is the fixed price of the barrier (journal flush,
    device cache flush); ``per_kb_ms`` the marginal cost of the dirty
    bytes being forced out.  Defaults approximate a mobile-grade eMMC
    part; a benchmark can zero them to measure the no-WAL upper bound.
    """

    def __init__(self, base_ms: float = 8.0,
                 per_kb_ms: float = 0.05) -> None:
        self.base_ms = float(base_ms)
        self.per_kb_ms = float(per_kb_ms)

    def cost_ms(self, nbytes: int) -> float:
        return self.base_ms + self.per_kb_ms * (nbytes / 1024.0)


@dataclass
class ReplayResult:
    """What :func:`replay` found in a WAL file."""
    payloads: List[bytes] = field(default_factory=list)
    valid_bytes: int = 0        # offset of the last valid frame's end
    torn: bool = False          # partial frame at the tail (crash)
    corrupt: bool = False       # checksum-failed frame (media fault)


def replay(path: str) -> ReplayResult:
    """Read every valid frame from ``path``, stopping at the first
    torn or corrupt frame.  ``valid_bytes`` is the safe truncation
    point.  A missing file replays as empty."""
    result = ReplayResult()
    try:
        with open(path, "rb") as handle:
            data = handle.read()
    except FileNotFoundError:
        return result
    if not data.startswith(MAGIC):
        # A WAL that lost its header is unreadable from byte 0: treat
        # the whole file as a torn tail and let recovery reset it.
        result.torn = bool(data)
        return result
    pos = len(MAGIC)
    result.valid_bytes = pos
    while True:
        payload, pos, status = read_frame(data, pos)
        if status == FRAME_OK:
            result.payloads.append(payload)
            result.valid_bytes = pos
            continue
        if status != FRAME_END:
            result.torn = status != FRAME_CORRUPT
            result.corrupt = status == FRAME_CORRUPT
        return result


class WriteAheadLog:
    """Append-only frame log with group commit.

    ``append`` buffers; ``commit`` makes the buffered group durable
    and returns the modelled fsync cost in sim-ms.  Nothing buffered
    survives :meth:`crash`.
    """

    def __init__(self, path: str,
                 obs: Optional[Observability] = None,
                 fsync: Optional[FsyncModel] = None) -> None:
        self.path = path
        self.obs = obs or get_default()
        self.fsync = fsync or FsyncModel()
        self._pending: List[bytes] = []
        self._pending_bytes = 0
        self._handle = None
        self._open()

    def _open(self) -> None:
        fresh = not os.path.exists(self.path) or \
            os.path.getsize(self.path) == 0
        self._handle = open(self.path, "ab")
        if fresh:
            self._handle.write(MAGIC)
            self._handle.flush()

    # -- the write path ------------------------------------------------

    @property
    def pending(self) -> int:
        return len(self._pending)

    @property
    def pending_bytes(self) -> int:
        """Framed bytes buffered but not yet committed -- what the
        engine's byte-threshold group commit watches."""
        return self._pending_bytes

    def append(self, payload: bytes) -> None:
        """Buffer one record; durable only after :meth:`commit`."""
        if self._handle is None:
            raise RuntimeError("WAL is closed")
        framed = frame(payload)
        self._pending.append(framed)
        self._pending_bytes += len(framed)

    def commit(self) -> float:
        """Write and fsync the buffered group.  Returns the modelled
        sim-time cost; 0.0 when nothing was pending."""
        if not self._pending:
            return 0.0
        blob = b"".join(self._pending)
        count = len(self._pending)
        self._pending = []
        self._pending_bytes = 0
        self._handle.write(blob)
        self._handle.flush()
        os.fsync(self._handle.fileno())
        cost = self.fsync.cost_ms(len(blob))
        self.obs.inc("store.wal_appends", count)
        self.obs.inc("store.wal_bytes", len(blob))
        self.obs.inc("store.wal_fsyncs")
        self.obs.observe("store.wal_commit_cost_ms", cost)
        return cost

    # -- lifecycle -----------------------------------------------------

    def crash(self) -> None:
        """The process dies: the uncommitted buffer is gone, the file
        keeps only what commit() already forced out."""
        self._pending = []
        self._pending_bytes = 0
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def close(self) -> None:
        if self._pending:
            self.commit()
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def reopen(self) -> None:
        if self._handle is None:
            self._open()

    def reset(self) -> None:
        """Truncate after a segment flush: everything logged so far is
        now durable in a segment, the log restarts empty."""
        self._pending = []
        self._pending_bytes = 0
        if self._handle is not None:
            self._handle.close()
        with open(self.path, "wb") as handle:
            handle.write(MAGIC)
            handle.flush()
            os.fsync(handle.fileno())
        self._handle = open(self.path, "ab")

    def truncate_to(self, valid_bytes: int) -> None:
        """Cut a torn tail off at the last valid frame boundary."""
        if valid_bytes < len(MAGIC):
            # Not even the header survived: start the log over.
            self.reset()
            return
        if self._handle is not None:
            self._handle.close()
        with open(self.path, "r+b") as handle:
            handle.truncate(valid_bytes)
        self._handle = open(self.path, "ab")

    def size_bytes(self) -> int:
        try:
            return os.path.getsize(self.path)
        except OSError:
            return 0


__all__ = ["FsyncModel", "MAGIC", "ReplayResult", "WriteAheadLog",
           "replay"]
