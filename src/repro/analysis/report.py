"""Plain-text table rendering for the benchmark harness output."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 title: Optional[str] = None) -> str:
    """Render an aligned ASCII table (the benches print these so their
    output reads like the paper's tables)."""
    text_rows = [[_cell(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i])
                           for i, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[i]
                           for i in range(len(headers))))
    for row in text_rows:
        lines.append("  ".join(cell.ljust(widths[i])
                               for i, cell in enumerate(row)))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return "%.2f" % value
    return str(value)


def format_cdf_summary(name: str, xs: List[float],
                       fractions: List[float],
                       probes: Sequence[float] = (50, 100, 200, 400)
                       ) -> str:
    """One-line CDF summary: fraction of mass below each probe point."""
    parts = []
    for probe in probes:
        fraction = 0.0
        for x, f in zip(xs, fractions):
            if x <= probe:
                fraction = f
            else:
                break
        parts.append("<%gms: %.0f%%" % (probe, fraction * 100))
    return "%s  %s" % (name.ljust(12), "  ".join(parts))
