"""Per-app performance analyses: Figure 9 and Table 5.

Every figure has two entry points: the exact one over a materialized
:class:`MeasurementStore`, and a ``*_stream`` variant that consumes a
record iterator (e.g. :func:`repro.core.persist.iter_jsonl_shards`) so
the full-scale sharded dataset is analysed in O(sketch) memory."""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, List, Optional, Tuple

from repro.analysis.stats import (
    P2Quantile,
    StreamingCDF,
    StreamingGroups,
    cdf,
    median,
)
from repro.core.records import (
    MeasurementKind,
    MeasurementRecord,
    MeasurementStore,
)
from repro.network.link import NetworkType


def app_rtt_cdfs(store: MeasurementStore,
                 max_x: float = 400.0) -> Dict[str, Tuple[List[float],
                                                          List[float]]]:
    """Figure 9(a): CDFs of raw app RTTs for All / WiFi / Cellular."""
    tcp = store.tcp()
    return {
        "All": cdf(tcp.rtts(), max_x),
        "WiFi": cdf(tcp.for_network_type(NetworkType.WIFI).rtts(),
                    max_x),
        "Cellular": cdf(tcp.for_network_type(*NetworkType.CELLULAR)
                        .rtts(), max_x),
    }


def raw_rtt_medians(store: MeasurementStore) -> Dict[str, float]:
    """The section 4.2.2 headline medians (All 65 / WiFi 58 /
    Cellular 84 / LTE 76 in the paper)."""
    tcp = store.tcp()
    return {
        "All": median(tcp.rtts()),
        "WiFi": median(tcp.for_network_type(NetworkType.WIFI).rtts()),
        "Cellular": median(
            tcp.for_network_type(*NetworkType.CELLULAR).rtts()),
        "LTE": median(tcp.for_network_type(NetworkType.LTE).rtts()),
    }


def per_app_median_cdf(store: MeasurementStore,
                       min_count: int = 1000, scale: float = 1.0,
                       max_x: float = 400.0
                       ) -> Tuple[List[float], List[float], int]:
    """Figure 9(b): CDF of per-app median RTTs over apps with more than
    ``min_count`` (full-scale) measurements.  Returns (xs, fractions,
    n_apps)."""
    tcp = store.tcp()
    counts = Counter(r.app_package for r in tcp
                     if r.app_package is not None)
    eligible = {app for app, count in counts.items()
                if count / scale > min_count}
    medians = []
    rtts_by_app: Dict[str, List[float]] = {}
    for record in tcp:
        if record.app_package in eligible:
            rtts_by_app.setdefault(record.app_package, []).append(
                record.rtt_ms)
    for app_rtts in rtts_by_app.values():
        medians.append(median(app_rtts))
    xs, fractions = cdf(medians, max_x)
    return xs, fractions, len(medians)


def representative_app_table(store: MeasurementStore,
                             packages_with_names: List[Tuple[str, str,
                                                             str]]
                             ) -> List[Dict[str, object]]:
    """Table 5: (category, name, #RTT, median RTT) for each
    representative app.  ``packages_with_names`` rows are (package,
    display name, category)."""
    tcp = store.tcp()
    rows = []
    for package, name, category in packages_with_names:
        app_store = tcp.for_app(package)
        rtts = app_store.rtts()
        rows.append({
            "category": category,
            "app": name,
            "package": package,
            "count": len(rtts),
            "median_ms": median(rtts) if rtts else None,
        })
    return rows


def raw_rtt_medians_stream(records: Iterable[MeasurementRecord]
                           ) -> Dict[str, float]:
    """Streaming Figure 9(a) medians: one fixed-size histogram sketch
    per class, one pass over the record stream, O(1) memory.  The
    cellular mix is strongly multimodal (per-ISP access medians plus
    Jio's core penalty), so the bin-width-bounded histogram quantile is
    used rather than P²."""
    sketches = {label: StreamingCDF(max_x=8000.0, n_bins=32000)
                for label in ("All", "WiFi", "Cellular", "LTE")}
    cellular = set(NetworkType.CELLULAR)
    for record in records:
        if record.kind != MeasurementKind.TCP:
            continue
        rtt = record.rtt_ms
        sketches["All"].add(rtt)
        if record.network_type == NetworkType.WIFI:
            sketches["WiFi"].add(rtt)
        elif record.network_type in cellular:
            sketches["Cellular"].add(rtt)
            if record.network_type == NetworkType.LTE:
                sketches["LTE"].add(rtt)
    return {label: sketch.quantile(0.5)
            for label, sketch in sketches.items() if sketch.count}


def app_rtt_cdfs_stream(records: Iterable[MeasurementRecord],
                        max_x: float = 400.0
                        ) -> Dict[str, Tuple[List[float],
                                             List[float]]]:
    """Streaming Figure 9(a) CDFs over a record iterator."""
    hists = {label: StreamingCDF(max_x)
             for label in ("All", "WiFi", "Cellular")}
    cellular = set(NetworkType.CELLULAR)
    for record in records:
        if record.kind != MeasurementKind.TCP:
            continue
        hists["All"].add(record.rtt_ms)
        if record.network_type == NetworkType.WIFI:
            hists["WiFi"].add(record.rtt_ms)
        elif record.network_type in cellular:
            hists["Cellular"].add(record.rtt_ms)
    return {label: hist.cdf() for label, hist in hists.items()}


def per_app_median_cdf_stream(records: Iterable[MeasurementRecord],
                              min_count: int = 1000,
                              scale: float = 1.0,
                              max_x: float = 400.0
                              ) -> Tuple[List[float], List[float], int]:
    """Streaming Figure 9(b): per-app P² medians in one pass; only the
    per-app sketches (5 floats each) stay resident."""
    groups = StreamingGroups(lambda: P2Quantile(0.5))
    for record in records:
        if (record.kind == MeasurementKind.TCP
                and record.app_package is not None):
            groups.add(record.app_package, record.rtt_ms)
    medians = [sketch.value() for app, sketch in groups.items()
               if groups.counts[app] / scale > min_count]
    xs, fractions = cdf(medians, max_x)
    return xs, fractions, len(medians)


def representative_packages_table_spec() -> List[Tuple[str, str, str]]:
    """The 16 apps of Table 5 in paper order."""
    from repro.crowd.appcatalog import representative_apps
    return [(a.package, a.name, a.category)
            for a in representative_apps()]
