"""Analysis pipeline: regenerates every evaluation table and figure.

Each function consumes a :class:`~repro.core.records.MeasurementStore`
-- whether it came from the live relay or the synthetic campaign -- and
returns plain data structures (dicts/lists) that the benchmark harness
renders in the paper's table/figure formats.
"""

from repro.analysis.stats import (
    P2Quantile,
    ReservoirSample,
    StreamingCDF,
    StreamingGroups,
    cdf,
    fraction_below,
    median,
    percentile,
)
from repro.analysis.coverage import (
    bucket_counts,
    country_distribution,
    dataset_statistics_stream,
    location_scatter,
    measurements_per_app,
    measurements_per_user,
    measurements_per_user_stream,
)
from repro.analysis.perapp import (
    app_rtt_cdfs,
    app_rtt_cdfs_stream,
    per_app_median_cdf,
    per_app_median_cdf_stream,
    raw_rtt_medians_stream,
    representative_app_table,
)
from repro.analysis.dnsperf import (
    dns_cdfs_by_network,
    dns_cdfs_by_technology,
    dns_medians_stream,
    isp_dns_cdfs,
    isp_dns_table,
    isp_dns_table_stream,
)
from repro.analysis.casestudies import jio_analysis, whatsapp_analysis
from repro.analysis.diagnosis import (
    Finding,
    Verdict,
    diagnose_all,
    diagnose_app,
    diagnose_operator,
)
from repro.analysis.asciiplot import (
    render_bars,
    render_cdf,
    render_histogram,
    render_map,
)
from repro.analysis.obsreport import (
    load_trace,
    render_metrics,
    render_time_budget,
    time_budget,
)
from repro.analysis.report import format_table
from repro.analysis.timeseries import (
    coverage_gaps,
    temporal_stability,
    weekly_medians,
    weekly_volumes,
)
from repro.analysis.validation import (
    compare_stores,
    ks_distance,
    median_ratio,
    seed_stability,
)

__all__ = [
    "Finding",
    "P2Quantile",
    "ReservoirSample",
    "StreamingCDF",
    "StreamingGroups",
    "Verdict",
    "app_rtt_cdfs",
    "app_rtt_cdfs_stream",
    "dataset_statistics_stream",
    "dns_medians_stream",
    "isp_dns_table_stream",
    "measurements_per_user_stream",
    "per_app_median_cdf_stream",
    "raw_rtt_medians_stream",
    "diagnose_all",
    "diagnose_app",
    "diagnose_operator",
    "render_bars",
    "render_cdf",
    "render_histogram",
    "render_map",
    "bucket_counts",
    "cdf",
    "compare_stores",
    "country_distribution",
    "coverage_gaps",
    "ks_distance",
    "median_ratio",
    "seed_stability",
    "temporal_stability",
    "weekly_medians",
    "weekly_volumes",
    "dns_cdfs_by_network",
    "dns_cdfs_by_technology",
    "format_table",
    "fraction_below",
    "isp_dns_cdfs",
    "isp_dns_table",
    "jio_analysis",
    "load_trace",
    "location_scatter",
    "measurements_per_app",
    "measurements_per_user",
    "median",
    "per_app_median_cdf",
    "percentile",
    "render_metrics",
    "render_time_budget",
    "representative_app_table",
    "time_budget",
    "whatsapp_analysis",
]
