"""Temporal coverage of the crowdsourcing dataset.

The paper's dataset spans ten months (16 May 2016 -- 3 January 2017).
These helpers slice a store along its timestamps: weekly measurement
volumes (deployment growth / retention view) and per-period medians
(is the headline RTT stable over the campaign, or driven by a burst?).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.analysis.stats import median
from repro.core.records import MeasurementStore

_WEEK_MS = 7 * 24 * 3600 * 1000.0


def weekly_volumes(store: MeasurementStore) -> List[Tuple[int, int]]:
    """(week index, record count) pairs covering the campaign."""
    counts: Dict[int, int] = {}
    for record in store:
        week = int(record.timestamp_ms // _WEEK_MS)
        counts[week] = counts.get(week, 0) + 1
    return sorted(counts.items())


def weekly_medians(store: MeasurementStore,
                   min_count: int = 30) -> List[Tuple[int, float]]:
    """(week index, median RTT) for weeks with enough samples."""
    buckets: Dict[int, List[float]] = {}
    for record in store:
        week = int(record.timestamp_ms // _WEEK_MS)
        buckets.setdefault(week, []).append(record.rtt_ms)
    return [(week, median(rtts))
            for week, rtts in sorted(buckets.items())
            if len(rtts) >= min_count]


def coverage_gaps(store: MeasurementStore) -> List[int]:
    """Week indices inside the campaign span with zero records."""
    volumes = dict(weekly_volumes(store))
    if not volumes:
        return []
    first, last = min(volumes), max(volumes)
    return [week for week in range(first, last + 1)
            if week not in volumes]


def temporal_stability(store: MeasurementStore,
                       min_count: int = 30) -> Dict[str, float]:
    """How stable the weekly median RTT is across the campaign:
    max relative deviation from the overall median."""
    overall = median(store.rtts())
    weekly = weekly_medians(store, min_count=min_count)
    if not weekly:
        raise ValueError("not enough data for temporal analysis")
    deviations = [abs(value - overall) / overall
                  for _week, value in weekly]
    return {
        "overall_median_ms": overall,
        "weeks": len(weekly),
        "max_weekly_deviation": max(deviations),
        "mean_weekly_deviation": float(np.mean(deviations)),
    }
