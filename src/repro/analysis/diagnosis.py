"""Automated performance diagnosis over a measurement store.

The paper's case studies follow a recipe (section 4.2.2): compare an
app's RTT against (a) the same network's DNS RTT (first-hop health),
(b) other apps on the same network, and (c) the same domains on other
networks -- then localise the problem to the app's servers, the ISP's
core network, or the access network.  This module systematises that
recipe so it runs over any store:

* :func:`diagnose_app` -- "is this app slow, and whose fault is it?"
  (Case 1's Whatsapp logic);
* :func:`diagnose_operator` -- "is this ISP slow, and where?"
  (Case 2's Jio logic);
* :func:`diagnose_all` -- sweep every app/operator above a sample
  threshold and return ranked findings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.analysis.stats import median
from repro.core.records import MeasurementStore
from repro.network.link import NetworkType


class Verdict:
    HEALTHY = "HEALTHY"
    SERVER_SIDE = "SERVER_SIDE"      # app's servers are far/slow
    CORE_NETWORK = "CORE_NETWORK"    # ISP core (Jio pattern)
    ACCESS_NETWORK = "ACCESS_NETWORK"  # radio/first hop (2G pattern)
    INSUFFICIENT_DATA = "INSUFFICIENT_DATA"


@dataclass
class Finding:
    subject: str                  # app package or operator name
    kind: str                     # "app" | "operator"
    verdict: str
    median_ms: Optional[float] = None
    baseline_ms: Optional[float] = None
    evidence: List[str] = field(default_factory=list)

    @property
    def slowdown(self) -> Optional[float]:
        if self.median_ms is None or not self.baseline_ms:
            return None
        return self.median_ms / self.baseline_ms


def _median_or_none(values) -> Optional[float]:
    return median(values) if values else None


def diagnose_app(store: MeasurementStore, package: str,
                 min_samples: int = 30,
                 slow_factor: float = 1.6) -> Finding:
    """Localise an app's slowness.

    The app's median RTT is compared against all other apps measured on
    the *same network types* (the peer baseline).  A slow app whose
    peers are fast has a server-side problem -- its servers are far
    from users (the Whatsapp/SoftLayer pattern).
    """
    tcp = store.tcp()
    app_store = tcp.for_app(package)
    if len(app_store) < min_samples:
        return Finding(package, "app", Verdict.INSUFFICIENT_DATA)
    app_median = median(app_store.rtts())
    peer_rtts = [r.rtt_ms for r in tcp
                 if r.app_package != package]
    peer_median = _median_or_none(peer_rtts)
    finding = Finding(package, "app", Verdict.HEALTHY,
                      median_ms=app_median, baseline_ms=peer_median)
    if peer_median is None:
        finding.verdict = Verdict.INSUFFICIENT_DATA
        return finding
    if app_median <= slow_factor * peer_median:
        finding.evidence.append(
            "median %.0f ms within %.1fx of the %.0f ms peer median"
            % (app_median, slow_factor, peer_median))
        return finding
    # App is slow relative to peers on the same networks: the
    # differential rules out the access path -> server side.
    finding.verdict = Verdict.SERVER_SIDE
    finding.evidence.append(
        "median %.0f ms vs %.0f ms for other apps on the same "
        "networks (%.1fx)" % (app_median, peer_median,
                              app_median / peer_median))
    # Domain breakdown: name the slow server groups, if labelled.
    by_domain = app_store.by_domain()
    slow_domains = sorted(
        ((domain, median(group.rtts()))
         for domain, group in by_domain.items()
         if domain and len(group) >= 5),
        key=lambda item: -item[1])
    if slow_domains:
        worst = [d for d, m in slow_domains
                 if m > slow_factor * peer_median]
        if worst:
            finding.evidence.append(
                "%d/%d of its domains exceed the threshold (worst: "
                "%s at %.0f ms)" % (len(worst), len(slow_domains),
                                    slow_domains[0][0],
                                    slow_domains[0][1]))
    return finding


def diagnose_operator(store: MeasurementStore, operator: str,
                      min_samples: int = 30,
                      slow_factor: float = 1.6) -> Finding:
    """Localise an operator's slowness using the Case-2 recipe:

    * app RTT high + DNS RTT high      -> access network (radio/first
      hop; the 2G pattern);
    * app RTT high + DNS RTT normal    -> core network (local DNS
      bypasses the congested core; the Jio pattern);
    * both normal                      -> healthy.
    """
    op_store = store.for_operator(operator)
    op_tcp = op_store.tcp()
    op_dns = op_store.dns()
    if len(op_tcp) < min_samples or len(op_dns) < min_samples // 3:
        return Finding(operator, "operator",
                       Verdict.INSUFFICIENT_DATA)
    app_median = median(op_tcp.rtts())
    dns_median = median(op_dns.rtts())
    # Baselines: every *other* operator of the same network types.
    types = tuple(op_store.unique(lambda r: r.network_type))
    peers = store.for_network_type(*types).filter(
        lambda r: r.operator != operator)
    peer_tcp = _median_or_none(peers.tcp().rtts())
    peer_dns = _median_or_none(peers.dns().rtts())
    finding = Finding(operator, "operator", Verdict.HEALTHY,
                      median_ms=app_median, baseline_ms=peer_tcp)
    if peer_tcp is None or peer_dns is None:
        finding.verdict = Verdict.INSUFFICIENT_DATA
        return finding
    app_slow = app_median > slow_factor * peer_tcp
    dns_slow = dns_median > slow_factor * peer_dns
    if app_slow and dns_slow:
        finding.verdict = Verdict.ACCESS_NETWORK
        finding.evidence.append(
            "both app RTT (%.0f vs %.0f ms) and DNS RTT (%.0f vs "
            "%.0f ms) are inflated: first hop / radio"
            % (app_median, peer_tcp, dns_median, peer_dns))
    elif app_slow:
        finding.verdict = Verdict.CORE_NETWORK
        finding.evidence.append(
            "app RTT %.0f ms (peers %.0f ms) but DNS only %.0f ms "
            "(peers %.0f ms): local DNS is fast, the core path is "
            "not -- the Jio pattern" % (app_median, peer_tcp,
                                        dns_median, peer_dns))
    else:
        finding.evidence.append(
            "app median %.0f ms and DNS median %.0f ms in line with "
            "peers" % (app_median, dns_median))
    return finding


def diagnose_all(store: MeasurementStore, min_samples: int = 200,
                 slow_factor: float = 1.6,
                 top: int = 20) -> List[Finding]:
    """Sweep apps and operators; return non-healthy findings ranked by
    slowdown factor."""
    findings: List[Finding] = []
    tcp = store.tcp()
    app_counts: Dict[str, int] = {}
    for record in tcp:
        if record.app_package:
            app_counts[record.app_package] = \
                app_counts.get(record.app_package, 0) + 1
    for package, count in app_counts.items():
        if count >= min_samples:
            finding = diagnose_app(store, package,
                                   min_samples=min_samples,
                                   slow_factor=slow_factor)
            if finding.verdict not in (Verdict.HEALTHY,
                                       Verdict.INSUFFICIENT_DATA):
                findings.append(finding)
    for operator in store.unique(lambda r: r.operator):
        finding = diagnose_operator(store, operator,
                                    min_samples=min_samples,
                                    slow_factor=slow_factor)
        if finding.verdict not in (Verdict.HEALTHY,
                                   Verdict.INSUFFICIENT_DATA):
            findings.append(finding)
    findings.sort(key=lambda f: -(f.slowdown or 0))
    return findings[:top]
