"""Terminal renderings of the paper's figures.

No plotting library is assumed; CDFs, bar charts and the Figure 8 world
map are rendered as monospace text.  The benches persist paper-format
tables; these renderers make the *figures* inspectable too.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

_MARKS = "*o+x#@%&"


def render_cdf(series: Dict[str, Tuple[List[float], List[float]]],
               width: int = 64, height: int = 16,
               max_x: float = 400.0, title: str = "") -> str:
    """Multi-series CDF plot: x = value (0..max_x), y = fraction."""
    grid = [[" "] * width for _ in range(height)]
    legend = []
    for index, (name, (xs, fractions)) in enumerate(series.items()):
        mark = _MARKS[index % len(_MARKS)]
        legend.append("%s %s" % (mark, name))
        for x, fraction in zip(xs, fractions):
            if x > max_x:
                break
            col = min(width - 1, int(x / max_x * (width - 1)))
            row = min(height - 1, int(fraction * (height - 1)))
            grid[height - 1 - row][col] = mark
    lines = []
    if title:
        lines.append(title)
    for row_index, row in enumerate(grid):
        fraction = 1.0 - row_index / (height - 1)
        label = "%4.1f |" % fraction if row_index % 5 == 0 else "     |"
        lines.append(label + "".join(row))
    lines.append("     +" + "-" * width)
    ticks = "      0"
    step = width // 4
    for quarter in range(1, 5):
        value = "%g" % (max_x * quarter / 4)
        ticks += value.rjust(step)
    lines.append(ticks + "  (ms)")
    lines.append("  " + "   ".join(legend))
    return "\n".join(lines)


def render_bars(items: Sequence[Tuple[str, float]], width: int = 50,
                title: str = "") -> str:
    """Horizontal bar chart (Figures 6/7 style)."""
    if not items:
        return title
    peak = max(value for _label, value in items) or 1.0
    label_width = max(len(label) for label, _value in items)
    lines = [title] if title else []
    for label, value in items:
        bar = "#" * max(1, int(value / peak * width)) if value else ""
        lines.append("%s |%s %g" % (label.ljust(label_width), bar,
                                    value))
    return "\n".join(lines)


def render_map(locations: Sequence[Tuple[float, float]],
               width: int = 72, height: int = 24,
               title: str = "") -> str:
    """Figure 8: a lat/lon scatter on an ASCII world grid."""
    grid = [[" "] * width for _ in range(height)]
    for lat, lon in locations:
        col = int((lon + 180.0) / 360.0 * (width - 1))
        row = int((90.0 - lat) / 180.0 * (height - 1))
        if 0 <= row < height and 0 <= col < width:
            cell = grid[row][col]
            if cell == " ":
                grid[row][col] = "."
            elif cell == ".":
                grid[row][col] = "o"
            else:
                grid[row][col] = "#"
    lines = [title] if title else []
    lines.append("+" + "-" * width + "+")
    for row in grid:
        lines.append("|" + "".join(row) + "|")
    lines.append("+" + "-" * width + "+")
    lines.append(" density: . few  o some  # many   "
                 "(%d locations)" % len(locations))
    return "\n".join(lines)


def render_histogram(values: Sequence[float], bins: int = 12,
                     width: int = 40, title: str = "",
                     max_value: float = None) -> str:
    """Vertical-ish histogram as labelled bars."""
    if not values:
        return title
    top = max_value if max_value is not None else max(values)
    top = top or 1.0
    counts = [0] * bins
    for value in values:
        index = min(bins - 1, int(value / top * bins))
        counts[index] += 1
    peak = max(counts) or 1
    lines = [title] if title else []
    for index, count in enumerate(counts):
        low = top * index / bins
        high = top * (index + 1) / bins
        bar = "#" * int(count / peak * width)
        lines.append("%7.1f-%-7.1f |%s %d" % (low, high, bar, count))
    return "\n".join(lines)
