"""The section 4.2.2 case studies: Whatsapp (Case 1) and Jio (Case 2).

The domain taxonomy, latency bands, and verdict thresholds are shared
with the backend's online detector via :mod:`repro.analysis.rules`;
this module applies them to an offline :class:`MeasurementStore`.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Tuple

from repro.analysis import rules
from repro.analysis.stats import median
from repro.core.records import MeasurementStore
from repro.network.link import NetworkType


def whatsapp_analysis(store: MeasurementStore,
                      min_network_count: int = 100,
                      scale: float = 1.0) -> Dict[str, object]:
    """Case 1: the vast majority of *.whatsapp.net domains do not
    perform well in many networks.

    Returns the paper's talking points: overall chat-domain median, the
    CDN/SoftLayer split, and the per-network median histogram over the
    most-accessed networks.
    """
    wa = store.tcp().for_domain_suffix(rules.WHATSAPP_SUFFIX)
    if len(wa) == 0:
        raise ValueError("no whatsapp.net measurements in store")
    cdn = wa.filter(
        lambda r: rules.whatsapp_domain_class(r.domain) == rules.CDN)
    chat = wa.filter(
        lambda r: rules.whatsapp_domain_class(r.domain) == rules.CHAT)
    domains = wa.unique(lambda r: r.domain)
    chat_domains = chat.unique(lambda r: r.domain)

    # Per-domain medians: how many chat domains exceed 200 ms.
    chat_domain_medians = {
        domain: median(group.rtts())
        for domain, group in chat.by_domain().items()
    }
    over_200 = sum(1 for m in chat_domain_medians.values()
                   if m > rules.CHAT_DEGRADED_MEDIAN_MS)

    # Per-network medians over the chat domains (the 20-network table).
    by_network: Dict[Tuple[str, str], List[float]] = {}
    for record in chat:
        key = (record.operator, record.network_type)
        by_network.setdefault(key, []).append(record.rtt_ms)
    network_rows = [
        {"network": "%s/%s" % key, "count": len(rtts),
         "median_ms": median(rtts)}
        for key, rtts in by_network.items()
        if len(rtts) / scale >= min_network_count
    ]
    network_rows.sort(key=lambda row: -row["count"])

    bands = Counter()
    for row in network_rows[:20]:
        bands[rules.network_band(row["median_ms"])] += 1

    chat_median = median(chat.rtts())
    cdn_median = median(cdn.rtts()) if len(cdn) else None
    over_200_share = (over_200 / len(chat_domain_medians)
                      if chat_domain_medians else 0.0)
    return {
        "total_domains": len(domains),
        "chat_domains": len(chat_domains),
        "chat_median_ms": chat_median,
        "cdn_median_ms": cdn_median,
        "app_median_ms": median(wa.rtts()),
        "chat_domains_over_200ms": over_200,
        "chat_domain_count_with_median": len(chat_domain_medians),
        "network_rows": network_rows[:20],
        "network_bands": dict(bands),
        "degraded": rules.chat_degradation_verdict(
            chat_median, cdn_median, over_200_share, bands),
    }


def jio_analysis(store: MeasurementStore, jio_name: str = "Jio 4G",
                 min_domain_count: int = 100,
                 scale: float = 1.0) -> Dict[str, object]:
    """Case 2: Jio fails to provide acceptable performance to many app
    domains (app median ~281 ms) while its DNS stays fast (~59 ms) --
    and the same domains are much faster on non-Jio LTE."""
    lte = store.for_network_type(NetworkType.LTE)
    jio = lte.for_operator(jio_name)
    jio_tcp = jio.tcp()
    jio_dns = jio.dns()
    if len(jio_tcp) == 0 or len(jio_dns) == 0:
        raise ValueError("no Jio measurements in store")

    # Per-domain medians inside Jio.
    domain_medians = {
        domain: (median(group.rtts()), len(group))
        for domain, group in jio_tcp.by_domain().items()
        if domain is not None and len(group) / scale >= min_domain_count
    }
    bands = rules.jio_domain_bands(
        med for med, _count in domain_medians.values())

    # Same domains on non-Jio LTE networks.
    non_jio_tcp = lte.tcp().filter(lambda r: r.operator != jio_name)
    non_jio_by_domain = non_jio_tcp.by_domain()
    comparable = []
    for domain, (jio_median, _count) in domain_medians.items():
        other = non_jio_by_domain.get(domain)
        if other is None or len(other) / scale < min_domain_count:
            continue
        comparable.append({
            "domain": domain,
            "jio_median_ms": jio_median,
            "other_median_ms": median(other.rtts()),
        })
    faster_on_other = [row for row in comparable
                       if row["jio_median_ms"]
                       - row["other_median_ms"] > 0]
    mean_gap = (sum(row["jio_median_ms"] - row["other_median_ms"]
                    for row in faster_on_other) / len(faster_on_other)
                if faster_on_other else 0.0)

    app_median = median(jio_tcp.rtts())
    dns_median = median(jio_dns.rtts())
    return {
        "app_median_ms": app_median,
        "dns_median_ms": dns_median,
        "app_rtt_count": len(jio_tcp),
        "domains_analysed": len(domain_medians),
        "domain_bands": bands,
        "comparable_domains": len(comparable),
        "domains_faster_elsewhere": len(faster_on_other),
        "mean_gap_ms": mean_gap,
        "anomalous": rules.isp_anomaly_verdict(
            app_median, dns_median, len(comparable),
            len(faster_on_other), mean_gap),
    }
