"""Render observability artifacts: trace time budgets and metric tables.

Consumes the JSONL traces written by :class:`repro.obs.tracer.Tracer`
and the snapshots of :class:`repro.obs.registry.MetricsRegistry`, and
renders the operator views documented in docs/OBSERVABILITY.md:

* :func:`time_budget` / :func:`render_time_budget` -- the per-stage
  sim-time budget: for every span name, how much simulated time the
  stage consumed in total and in *self* time (own duration minus the
  duration of child spans), so nested stages are not double-counted.
  This is the table that replays the paper's section 4 internal-latency
  arguments from a single ``repro demo --trace`` run.
* :func:`render_metrics` -- a metric snapshot as an aligned table.
"""

from __future__ import annotations

import json
from collections import defaultdict
from typing import Dict, Iterable, List, Optional

from repro.analysis.report import format_table
from repro.analysis.stats import percentile


def load_trace(path: str) -> List[dict]:
    """Read a JSONL trace file into span dicts (end order preserved)."""
    spans = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                spans.append(json.loads(line))
    return spans


def time_budget(spans: Iterable[dict]) -> List[dict]:
    """Aggregate spans into a per-stage budget, sorted by self time.

    Each row: ``name``, ``count``, ``total_ms`` (sum of durations),
    ``self_ms`` (durations minus direct children -- where the time
    actually went), ``mean_ms``, ``p95_ms``, ``max_ms``, ``share``
    (fraction of the trace's total self time).
    """
    spans = list(spans)
    child_time: Dict[Optional[int], float] = defaultdict(float)
    for span in spans:
        child_time[span["parent_id"]] += span["dur_ms"]
    groups: Dict[str, List[dict]] = defaultdict(list)
    for span in spans:
        groups[span["name"]].append(span)
    rows = []
    for name, members in groups.items():
        durations = [span["dur_ms"] for span in members]
        self_ms = sum(span["dur_ms"] - child_time.get(span["span_id"], 0.0)
                      for span in members)
        rows.append({
            "name": name,
            "count": len(members),
            "total_ms": sum(durations),
            "self_ms": self_ms,
            "mean_ms": sum(durations) / len(members),
            "p95_ms": percentile(durations, 95),
            "max_ms": max(durations),
        })
    grand_self = sum(row["self_ms"] for row in rows)
    for row in rows:
        row["share"] = (row["self_ms"] / grand_self) if grand_self else 0.0
    rows.sort(key=lambda row: (-row["self_ms"], row["name"]))
    return rows


def render_time_budget(spans: Iterable[dict],
                       title: str = "Per-stage sim-time budget") -> str:
    """The operator-facing budget table (see docs/OBSERVABILITY.md for
    how to read it)."""
    rows = time_budget(spans)
    if not rows:
        return "%s\n(no spans: was tracing enabled?)" % title
    return format_table(
        ["stage", "count", "total ms", "self ms", "self %", "mean ms",
         "p95 ms", "max ms"],
        [[row["name"], row["count"], row["total_ms"], row["self_ms"],
          "%.1f" % (row["share"] * 100), row["mean_ms"], row["p95_ms"],
          row["max_ms"]] for row in rows],
        title=title)


def render_metrics(snapshot: dict,
                   title: str = "Metric snapshot") -> str:
    """A registry snapshot as an aligned table; histograms summarise
    to count/mean/p50/p95."""
    rows = []
    for name in sorted(snapshot):
        entry = snapshot[name]
        if entry["type"] == "histogram":
            count = entry["count"]
            mean = (entry["sum"] / count) if count else 0.0
            value = "n=%d mean=%.3f" % (count, mean)
        elif entry["type"] == "counter":
            value = "%d" % entry["value"]
        else:
            value = "%.3f" % entry["value"]
        rows.append([name, entry["type"], entry["unit"], value])
    return format_table(["metric", "type", "unit", "value"], rows,
                        title=title)


__all__ = ["load_trace", "time_budget", "render_time_budget",
           "render_metrics"]
