"""DNS performance analyses: Figure 10, Table 6, Figure 11.

The ``*_stream`` variants consume record iterators (shards) instead of
a materialized store -- same numbers, O(sketch) memory."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.analysis.stats import (
    P2Quantile,
    StreamingCDF,
    StreamingGroups,
    cdf,
    fraction_below,
    median,
)
from repro.core.records import (
    MeasurementKind,
    MeasurementRecord,
    MeasurementStore,
)
from repro.network.link import NetworkType


def dns_cdfs_by_network(store: MeasurementStore, max_x: float = 400.0
                        ) -> Dict[str, Tuple[List[float], List[float]]]:
    """Figure 10(a): All / WiFi / Cellular DNS RTT CDFs."""
    dns = store.dns()
    return {
        "All": cdf(dns.rtts(), max_x),
        "WiFi": cdf(dns.for_network_type(NetworkType.WIFI).rtts(),
                    max_x),
        "Cellular": cdf(dns.for_network_type(*NetworkType.CELLULAR)
                        .rtts(), max_x),
    }


def dns_cdfs_by_technology(store: MeasurementStore, max_x: float = 400.0
                           ) -> Dict[str, Tuple[List[float],
                                                List[float]]]:
    """Figure 10(b): 4G LTE / 3G / 2G DNS RTT CDFs."""
    dns = store.dns()
    return {
        "4G LTE": cdf(dns.for_network_type(NetworkType.LTE).rtts(),
                      max_x),
        "3G UMTS/HSPA(P)": cdf(
            dns.for_network_type(NetworkType.UMTS).rtts(), max_x),
        "2G GPRS/EDGE": cdf(
            dns.for_network_type(NetworkType.GPRS).rtts(), max_x),
    }


def dns_medians(store: MeasurementStore) -> Dict[str, float]:
    """Headline DNS medians (All 42 / WiFi 33 / Cellular 61 / 4G 56 /
    3G 105 / 2G 755 in the paper)."""
    dns = store.dns()
    out = {
        "All": median(dns.rtts()),
        "WiFi": median(dns.for_network_type(NetworkType.WIFI).rtts()),
        "Cellular": median(
            dns.for_network_type(*NetworkType.CELLULAR).rtts()),
    }
    for label, tech in (("4G", NetworkType.LTE),
                        ("3G", NetworkType.UMTS),
                        ("2G", NetworkType.GPRS)):
        rtts = dns.for_network_type(tech).rtts()
        if rtts:
            out[label] = median(rtts)
    return out


def dns_medians_stream(records: Iterable[MeasurementRecord]
                       ) -> Dict[str, float]:
    """Streaming Figure 10 medians (All/WiFi/Cellular + 4G/3G/2G) in
    one pass; histogram sketches sized to cover the 2G tail (755 ms
    paper median) with sub-ms bins."""
    labels = {NetworkType.LTE: "4G", NetworkType.UMTS: "3G",
              NetworkType.GPRS: "2G"}
    sketches = {label: StreamingCDF(max_x=8000.0, n_bins=32000)
                for label in ("All", "WiFi", "Cellular",
                              "4G", "3G", "2G")}
    for record in records:
        if record.kind != MeasurementKind.DNS:
            continue
        rtt = record.rtt_ms
        sketches["All"].add(rtt)
        if record.network_type == NetworkType.WIFI:
            sketches["WiFi"].add(rtt)
            continue
        tech = labels.get(record.network_type)
        if tech is not None:
            sketches["Cellular"].add(rtt)
            sketches[tech].add(rtt)
    return {label: sketch.quantile(0.5)
            for label, sketch in sketches.items() if sketch.count}


def isp_dns_table_stream(records: Iterable[MeasurementRecord],
                         top: int = 15) -> List[Dict[str, object]]:
    """Streaming Table 6: per-operator medians + counts, one pass.
    Named cellular operators number ~15, so a histogram sketch per
    operator is cheap and immune to the mixed-technology bimodality
    (Cricket, U.S. Cellular) that biases P²."""
    groups = StreamingGroups(
        lambda: StreamingCDF(max_x=8000.0, n_bins=32000))
    countries: Dict[str, str] = {}
    for record in records:
        if record.kind != MeasurementKind.DNS:
            continue
        operator = record.operator
        if operator.startswith("wifi") or operator.startswith("lte-"):
            continue
        groups.add(operator, record.rtt_ms)
        countries.setdefault(operator, record.country)
    rows = [{
        "isp": operator,
        "country": countries[operator],
        "count": groups.counts[operator],
        "median_ms": sketch.quantile(0.5),
    } for operator, sketch in groups.items()]
    rows.sort(key=lambda row: -row["count"])
    return rows[:top]


def isp_dns_table(store: MeasurementStore,
                  top: int = 15) -> List[Dict[str, object]]:
    """Table 6: the LTE operators with the most DNS samples.

    Operators are ranked by DNS sample count; WiFi pseudo-operators and
    the generic tail are excluded the way the paper's table names only
    real cellular ISPs."""
    dns = store.dns()
    rows = []
    for operator, group in dns.by_operator().items():
        if operator.startswith("wifi") or operator.startswith("lte-"):
            continue
        country = _country_of(group)
        rtts = group.rtts()
        rows.append({
            "isp": operator,
            "country": country,
            "count": len(rtts),
            "median_ms": median(rtts),
        })
    rows.sort(key=lambda row: -row["count"])
    return rows[:top]


def _country_of(store: MeasurementStore) -> str:
    for record in store:
        return record.country
    return "unknown"


def isp_dns_cdfs(store: MeasurementStore, isps: List[str],
                 max_x: float = 400.0
                 ) -> Dict[str, Tuple[List[float], List[float]]]:
    """Figure 11: DNS RTT CDFs of selected ISPs."""
    dns = store.dns()
    return {isp: cdf(dns.for_operator(isp).rtts(), max_x)
            for isp in isps}


def isp_dns_profile(store: MeasurementStore,
                    isp: str) -> Dict[str, float]:
    """Figure 11's commentary numbers for one ISP: share below 10 ms,
    minimum RTT, share of samples on non-LTE technology."""
    group = store.dns().for_operator(isp)
    rtts = group.rtts()
    if not rtts:
        raise ValueError("no DNS samples for %r" % isp)
    non_lte = group.filter(
        lambda r: r.network_type != NetworkType.LTE)
    return {
        "below_10ms": fraction_below(rtts, 10.0),
        "min_ms": min(rtts),
        "median_ms": median(rtts),
        "non_lte_share": len(non_lte) / len(group),
    }
