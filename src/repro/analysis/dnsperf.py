"""DNS performance analyses: Figure 10, Table 6, Figure 11."""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.analysis.stats import cdf, fraction_below, median
from repro.core.records import MeasurementStore
from repro.network.link import NetworkType


def dns_cdfs_by_network(store: MeasurementStore, max_x: float = 400.0
                        ) -> Dict[str, Tuple[List[float], List[float]]]:
    """Figure 10(a): All / WiFi / Cellular DNS RTT CDFs."""
    dns = store.dns()
    return {
        "All": cdf(dns.rtts(), max_x),
        "WiFi": cdf(dns.for_network_type(NetworkType.WIFI).rtts(),
                    max_x),
        "Cellular": cdf(dns.for_network_type(*NetworkType.CELLULAR)
                        .rtts(), max_x),
    }


def dns_cdfs_by_technology(store: MeasurementStore, max_x: float = 400.0
                           ) -> Dict[str, Tuple[List[float],
                                                List[float]]]:
    """Figure 10(b): 4G LTE / 3G / 2G DNS RTT CDFs."""
    dns = store.dns()
    return {
        "4G LTE": cdf(dns.for_network_type(NetworkType.LTE).rtts(),
                      max_x),
        "3G UMTS/HSPA(P)": cdf(
            dns.for_network_type(NetworkType.UMTS).rtts(), max_x),
        "2G GPRS/EDGE": cdf(
            dns.for_network_type(NetworkType.GPRS).rtts(), max_x),
    }


def dns_medians(store: MeasurementStore) -> Dict[str, float]:
    """Headline DNS medians (All 42 / WiFi 33 / Cellular 61 / 4G 56 /
    3G 105 / 2G 755 in the paper)."""
    dns = store.dns()
    out = {
        "All": median(dns.rtts()),
        "WiFi": median(dns.for_network_type(NetworkType.WIFI).rtts()),
        "Cellular": median(
            dns.for_network_type(*NetworkType.CELLULAR).rtts()),
    }
    for label, tech in (("4G", NetworkType.LTE),
                        ("3G", NetworkType.UMTS),
                        ("2G", NetworkType.GPRS)):
        rtts = dns.for_network_type(tech).rtts()
        if rtts:
            out[label] = median(rtts)
    return out


def isp_dns_table(store: MeasurementStore,
                  top: int = 15) -> List[Dict[str, object]]:
    """Table 6: the LTE operators with the most DNS samples.

    Operators are ranked by DNS sample count; WiFi pseudo-operators and
    the generic tail are excluded the way the paper's table names only
    real cellular ISPs."""
    dns = store.dns()
    rows = []
    for operator, group in dns.by_operator().items():
        if operator.startswith("wifi") or operator.startswith("lte-"):
            continue
        country = _country_of(group)
        rtts = group.rtts()
        rows.append({
            "isp": operator,
            "country": country,
            "count": len(rtts),
            "median_ms": median(rtts),
        })
    rows.sort(key=lambda row: -row["count"])
    return rows[:top]


def _country_of(store: MeasurementStore) -> str:
    for record in store:
        return record.country
    return "unknown"


def isp_dns_cdfs(store: MeasurementStore, isps: List[str],
                 max_x: float = 400.0
                 ) -> Dict[str, Tuple[List[float], List[float]]]:
    """Figure 11: DNS RTT CDFs of selected ISPs."""
    dns = store.dns()
    return {isp: cdf(dns.for_operator(isp).rtts(), max_x)
            for isp in isps}


def isp_dns_profile(store: MeasurementStore,
                    isp: str) -> Dict[str, float]:
    """Figure 11's commentary numbers for one ISP: share below 10 ms,
    minimum RTT, share of samples on non-LTE technology."""
    group = store.dns().for_operator(isp)
    rtts = group.rtts()
    if not rtts:
        raise ValueError("no DNS samples for %r" % isp)
    non_lte = group.filter(
        lambda r: r.network_type != NetworkType.LTE)
    return {
        "below_10ms": fraction_below(rtts, 10.0),
        "min_ms": min(rtts),
        "median_ms": median(rtts),
        "non_lte_share": len(non_lte) / len(group),
    }
