"""Small statistics helpers shared by the analysis modules."""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np


def median(values: Sequence[float]) -> float:
    if not len(values):
        raise ValueError("median of empty sequence")
    return float(np.median(np.asarray(values, dtype=float)))


def percentile(values: Sequence[float], q: float) -> float:
    if not len(values):
        raise ValueError("percentile of empty sequence")
    return float(np.percentile(np.asarray(values, dtype=float), q))


def cdf(values: Sequence[float],
        max_x: float = None) -> Tuple[List[float], List[float]]:
    """Empirical CDF as (xs, fractions), optionally clipped at max_x
    the way the paper's plots clip at 400 ms."""
    array = np.sort(np.asarray(values, dtype=float))
    if array.size == 0:
        return [], []
    fractions = np.arange(1, array.size + 1) / array.size
    if max_x is not None:
        keep = array <= max_x
        array, fractions = array[keep], fractions[keep]
    return array.tolist(), fractions.tolist()


def fraction_below(values: Sequence[float], threshold: float) -> float:
    array = np.asarray(values, dtype=float)
    if array.size == 0:
        raise ValueError("fraction_below of empty sequence")
    return float((array < threshold).mean())
