"""Small statistics helpers shared by the analysis modules.

Two families live here:

* exact helpers (:func:`median`, :func:`percentile`, :func:`cdf`) that
  operate on fully materialized sequences, and
* streaming sketches (:class:`P2Quantile`, :class:`ReservoirSample`,
  :class:`StreamingCDF`, :class:`StreamingGroups`) that consume one
  value at a time in O(1)/O(k) memory, so the full-scale 5.25 M-record
  campaign can be analysed straight off JSONL shards without ever
  holding the dataset in RAM.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np


def median(values: Sequence[float]) -> float:
    if not len(values):
        raise ValueError("median of empty sequence")
    return float(np.median(np.asarray(values, dtype=float)))


def percentile(values: Sequence[float], q: float) -> float:
    if not len(values):
        raise ValueError("percentile of empty sequence")
    return float(np.percentile(np.asarray(values, dtype=float), q))


def cdf(values: Sequence[float],
        max_x: float = None) -> Tuple[List[float], List[float]]:
    """Empirical CDF as (xs, fractions), optionally clipped at max_x
    the way the paper's plots clip at 400 ms."""
    array = np.sort(np.asarray(values, dtype=float))
    if array.size == 0:
        return [], []
    fractions = np.arange(1, array.size + 1) / array.size
    if max_x is not None:
        keep = array <= max_x
        array, fractions = array[keep], fractions[keep]
    return array.tolist(), fractions.tolist()


def fraction_below(values: Sequence[float], threshold: float) -> float:
    array = np.asarray(values, dtype=float)
    if array.size == 0:
        raise ValueError("fraction_below of empty sequence")
    return float((array < threshold).mean())


# -- streaming sketches ------------------------------------------------------

class P2Quantile:
    """The P² (piecewise-parabolic) single-quantile estimator of Jain &
    Chlamtac (1985): five markers track the running quantile without
    storing observations.  Exact for the first five samples, then O(1)
    per update; on the campaign's heavy-tailed RTTs the median estimate
    lands well within 1 % of ``np.percentile``."""

    def __init__(self, q: float = 0.5):
        if not 0.0 < q < 1.0:
            raise ValueError("quantile must be in (0, 1)")
        self.q = q
        self.count = 0
        self._heights: List[float] = []
        self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
        self._desired = [1.0, 1 + 2 * q, 1 + 4 * q, 3 + 2 * q, 5.0]
        self._increments = [0.0, q / 2, q, (1 + q) / 2, 1.0]

    def add(self, value: float) -> None:
        value = float(value)
        self.count += 1
        heights = self._heights
        if len(heights) < 5:
            heights.append(value)
            heights.sort()
            return
        positions = self._positions
        # Which cell the observation falls in; clamp the extremes.
        if value < heights[0]:
            heights[0] = value
            cell = 0
        elif value >= heights[4]:
            if value > heights[4]:
                heights[4] = value
            cell = 3
        else:
            cell = 0
            while cell < 3 and value >= heights[cell + 1]:
                cell += 1
        for i in range(cell + 1, 5):
            positions[i] += 1
        for i in range(5):
            self._desired[i] += self._increments[i]
        # Adjust the three interior markers.
        for i in (1, 2, 3):
            delta = self._desired[i] - positions[i]
            if ((delta >= 1 and positions[i + 1] - positions[i] > 1)
                    or (delta <= -1
                        and positions[i - 1] - positions[i] < -1)):
                step = 1 if delta >= 1 else -1
                candidate = self._parabolic(i, step)
                if heights[i - 1] < candidate < heights[i + 1]:
                    heights[i] = candidate
                else:
                    heights[i] = self._linear(i, step)
                positions[i] += step

    def _parabolic(self, i: int, step: int) -> float:
        h, n = self._heights, self._positions
        return h[i] + step / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + step) * (h[i + 1] - h[i])
            / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - step) * (h[i] - h[i - 1])
            / (n[i] - n[i - 1]))

    def _linear(self, i: int, step: int) -> float:
        h, n = self._heights, self._positions
        return h[i] + step * (h[i + step] - h[i]) / (n[i + step] - n[i])

    def update_many(self, values: Iterable[float]) -> "P2Quantile":
        for value in values:
            self.add(value)
        return self

    def value(self) -> float:
        if not self._heights:
            raise ValueError("quantile of empty stream")
        if self.count <= 5:
            # Exact small-sample quantile (linear interpolation).
            rank = self.q * (len(self._heights) - 1)
            lo = int(rank)
            frac = rank - lo
            if lo >= len(self._heights) - 1:
                return self._heights[-1]
            return (self._heights[lo] * (1 - frac)
                    + self._heights[lo + 1] * frac)
        return self._heights[2]


class ReservoirSample:
    """Uniform fixed-size sample of a stream (Vitter's algorithm R)
    with a dedicated seeded RNG, so resamples are reproducible."""

    def __init__(self, capacity: int, seed: int = 0):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.count = 0
        self.values: List[float] = []
        self._rng = random.Random("reservoir:%d" % seed)

    def add(self, value: float) -> None:
        self.count += 1
        if len(self.values) < self.capacity:
            self.values.append(float(value))
            return
        slot = self._rng.randrange(self.count)
        if slot < self.capacity:
            self.values[slot] = float(value)


class StreamingCDF:
    """Histogram-backed empirical CDF over ``[0, max_x]``.

    Mirrors :func:`cdf`'s clipping semantics: fractions are of *all*
    samples (mass above ``max_x`` is counted, just not plotted), the
    way the paper's plots clip at 400 ms."""

    def __init__(self, max_x: float = 400.0, n_bins: int = 2000):
        if max_x <= 0 or n_bins <= 0:
            raise ValueError("max_x and n_bins must be positive")
        self.max_x = float(max_x)
        self.n_bins = n_bins
        self._width = self.max_x / n_bins
        self._bins = np.zeros(n_bins, dtype=np.int64)
        self.overflow = 0
        self.count = 0

    def add(self, value: float) -> None:
        self.count += 1
        if value > self.max_x:
            self.overflow += 1
            return
        index = min(int(value / self._width), self.n_bins - 1)
        self._bins[index] += 1

    def cdf(self) -> Tuple[List[float], List[float]]:
        """(xs, fractions) like :func:`cdf`; xs are bin upper edges of
        the non-empty bins."""
        if self.count == 0:
            return [], []
        cumulative = np.cumsum(self._bins)
        edges = (np.arange(1, self.n_bins + 1) * self._width)
        keep = self._bins > 0
        xs = edges[keep]
        fractions = cumulative[keep] / self.count
        return xs.tolist(), fractions.tolist()

    def fraction_below(self, threshold: float) -> float:
        if self.count == 0:
            raise ValueError("fraction_below of empty stream")
        if threshold > self.max_x:
            return (self.count - self.overflow) / self.count
        full_bins = int(threshold / self._width)
        return float(self._bins[:full_bins].sum()) / self.count

    def quantile(self, q: float) -> float:
        """Histogram quantile with in-bin linear interpolation: error
        is bounded by the bin width regardless of the distribution's
        shape (P² can drift a few percent on strongly multimodal
        mixtures like the per-ISP cellular RTT blend)."""
        if not 0.0 < q < 1.0:
            raise ValueError("quantile must be in (0, 1)")
        if self.count == 0:
            raise ValueError("quantile of empty stream")
        target = q * self.count
        if target > self.count - self.overflow:
            raise ValueError(
                "quantile %.3f lies beyond max_x=%g (overflow mass "
                "%.3f)" % (q, self.max_x, self.overflow / self.count))
        cumulative = 0
        for index in range(self.n_bins):
            in_bin = int(self._bins[index])
            if cumulative + in_bin >= target:
                frac = ((target - cumulative) / in_bin) if in_bin else 0
                return (index + frac) * self._width
            cumulative += in_bin
        return self.max_x


class StreamingGroups:
    """Group-by for streams: one sketch per key, built on demand.

    ``factory`` makes a fresh sketch (anything with ``add``); use
    :meth:`add` per record and read ``sketches``/:meth:`values` at the
    end.  Memory is O(#groups x sketch size), never O(#records)."""

    def __init__(self, factory: Callable[[], object]):
        self.factory = factory
        self.sketches: Dict[object, object] = {}
        self.counts: Dict[object, int] = {}

    def add(self, key: object, value: float) -> None:
        sketch = self.sketches.get(key)
        if sketch is None:
            sketch = self.sketches[key] = self.factory()
            self.counts[key] = 0
        sketch.add(value)
        self.counts[key] += 1

    def __len__(self) -> int:
        return len(self.sketches)

    def items(self):
        return self.sketches.items()
