"""Statistical comparison of measurement stores.

Used to validate the dataset substitution: the mechanical fleet's
distributions should be close to the statistical campaign's for the
same profiles, and re-seeded campaigns should be stable.  Distances are
plain Kolmogorov-Smirnov statistics over RTT samples, computed with
numpy (no scipy dependency needed for the statistic itself).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.core.records import MeasurementStore


def ks_distance(a: Sequence[float], b: Sequence[float]) -> float:
    """Two-sample Kolmogorov-Smirnov statistic (sup |F_a - F_b|)."""
    a = np.sort(np.asarray(a, dtype=float))
    b = np.sort(np.asarray(b, dtype=float))
    if a.size == 0 or b.size == 0:
        raise ValueError("empty sample")
    grid = np.concatenate([a, b])
    cdf_a = np.searchsorted(a, grid, side="right") / a.size
    cdf_b = np.searchsorted(b, grid, side="right") / b.size
    return float(np.abs(cdf_a - cdf_b).max())


def median_ratio(a: Sequence[float], b: Sequence[float]) -> float:
    """median(a) / median(b) -- scale agreement between two samples."""
    mb = float(np.median(np.asarray(b, dtype=float)))
    if mb == 0:
        raise ValueError("zero reference median")
    return float(np.median(np.asarray(a, dtype=float))) / mb


def compare_stores(a: MeasurementStore, b: MeasurementStore,
                   kinds: Tuple[str, ...] = ("TCP", "DNS")
                   ) -> Dict[str, Dict[str, float]]:
    """Per-kind KS distance + median ratio between two stores."""
    out: Dict[str, Dict[str, float]] = {}
    for kind in kinds:
        rtts_a = a.filter(lambda r: r.kind == kind).rtts()
        rtts_b = b.filter(lambda r: r.kind == kind).rtts()
        if not rtts_a or not rtts_b:
            continue
        out[kind] = {
            "ks": ks_distance(rtts_a, rtts_b),
            "median_ratio": median_ratio(rtts_a, rtts_b),
            "n_a": len(rtts_a),
            "n_b": len(rtts_b),
        }
    return out


def seed_stability(build, seeds: Sequence[int],
                   metric) -> Tuple[float, float, list]:
    """Run ``build(seed)`` per seed, apply ``metric`` to each result;
    returns (mean, max relative deviation, values)."""
    values = [metric(build(seed)) for seed in seeds]
    mean = float(np.mean(values))
    if mean == 0:
        raise ValueError("degenerate metric")
    max_dev = float(max(abs(v - mean) for v in values) / mean)
    return mean, max_dev, values
