"""Dataset coverage analyses: Figures 6, 7 and 8.

``dataset_statistics_stream`` / ``measurements_per_user_stream`` accept
record iterators so the §4.2.1 summary runs straight off JSONL shards;
memory is bounded by the number of distinct entities (devices, apps,
IPs), never the record count."""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.records import (
    MeasurementKind,
    MeasurementRecord,
    MeasurementStore,
)

# Figure 6's buckets (full-scale measurement counts).
BUCKETS: List[Tuple[str, float, float]] = [
    ("> 10K", 10000, float("inf")),
    ("5K - 10K", 5000, 10000),
    ("1K - 5K", 1000, 5000),
    ("100 - 1K", 100, 1000),
]


def bucket_counts(counts: Dict[str, int],
                  scale: float = 1.0) -> Dict[str, int]:
    """Histogram entity counts into Figure 6's buckets.  ``scale`` is
    the campaign scale; thresholds are applied to scale-corrected
    (full-scale-equivalent) counts."""
    out = {label: 0 for label, _lo, _hi in BUCKETS}
    for count in counts.values():
        full = count / scale
        for label, lo, hi in BUCKETS:
            if lo <= full < hi:
                out[label] += 1
                break
    return out


def measurements_per_user(store: MeasurementStore,
                          scale: float = 1.0) -> Dict[str, int]:
    """Figure 6(a): number of devices in each measurement-count bucket."""
    counts = Counter(r.device_id for r in store)
    return bucket_counts(counts, scale)


def measurements_per_app(store: MeasurementStore,
                         scale: float = 1.0) -> Dict[str, int]:
    """Figure 6(b): number of apps in each measurement-count bucket."""
    counts = Counter(r.app_package for r in store.tcp()
                     if r.app_package is not None)
    return bucket_counts(counts, scale)


def country_distribution(store: MeasurementStore,
                         top: int = 20) -> List[Tuple[str, int]]:
    """Figure 7: top user countries by number of distinct devices."""
    devices_by_country: Dict[str, set] = {}
    for record in store:
        devices_by_country.setdefault(record.country, set()).add(
            record.device_id)
    pairs = [(country, len(devices))
             for country, devices in devices_by_country.items()]
    pairs.sort(key=lambda item: (-item[1], item[0]))
    return pairs[:top]


def location_scatter(store: MeasurementStore
                     ) -> List[Tuple[float, float]]:
    """Figure 8: distinct measurement locations (lat, lon)."""
    seen = set()
    for record in store:
        if record.location is not None:
            seen.add(record.location)
    return sorted(seen)


def measurements_per_user_stream(records: Iterable[MeasurementRecord],
                                 scale: float = 1.0) -> Dict[str, int]:
    """Streaming Figure 6(a) over a record iterator."""
    counts: Counter = Counter()
    for record in records:
        counts[record.device_id] += 1
    return bucket_counts(counts, scale)


def dataset_statistics_stream(records: Iterable[MeasurementRecord]
                              ) -> Dict[str, int]:
    """Streaming §4.2.1 summary numbers: one pass, counters + entity
    sets only."""
    total = tcp = dns = 0
    devices: set = set()
    apps: set = set()
    countries: set = set()
    dst_ips: set = set()
    domains: set = set()
    dns_servers: set = set()
    for record in records:
        total += 1
        devices.add(record.device_id)
        countries.add(record.country)
        if record.kind == MeasurementKind.TCP:
            tcp += 1
            dst_ips.add(record.dst_ip)
            if record.app_package is not None:
                apps.add(record.app_package)
            if record.domain is not None:
                domains.add(record.domain)
        else:
            dns += 1
            dns_servers.add(record.dst_ip)
    return {
        "total": total,
        "tcp": tcp,
        "dns": dns,
        "devices": len(devices),
        "apps": len(apps),
        "countries": len(countries),
        "dst_ips": len(dst_ips),
        "domains": len(domains),
        "dns_servers": len(dns_servers),
    }


def dataset_statistics(store: MeasurementStore) -> Dict[str, int]:
    """The section 4.2.1 summary numbers."""
    tcp = store.tcp()
    dns = store.dns()
    return {
        "total": len(store),
        "tcp": len(tcp),
        "dns": len(dns),
        "devices": len(store.unique(lambda r: r.device_id)),
        "apps": len(tcp.unique(lambda r: r.app_package) - {None}),
        "countries": len(store.unique(lambda r: r.country)),
        "dst_ips": len(tcp.unique(lambda r: r.dst_ip)),
        "domains": len(tcp.unique(lambda r: r.domain) - {None}),
        "dns_servers": len(dns.unique(lambda r: r.dst_ip)),
    }
