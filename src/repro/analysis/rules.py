"""Shared case-study rule logic (section 4.2.2).

The offline analyses (:mod:`repro.analysis.casestudies`) and the
backend's online detector (:mod:`repro.backend.detector`) must agree on
what *counts* as each case study: how WhatsApp domains split into chat
vs CDN, which latency bands the paper's tables use, and the thresholds
that turn summary numbers into a verdict.  That logic lives here, once,
imported by both sides -- so a threshold tweak cannot desynchronise the
offline store-based analysis from the streaming backend.

This module imports nothing above the standard library: it is safe to
use from any layer.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional

# -- Case 1: WhatsApp domain taxonomy ----------------------------------------

#: Media domains on the Facebook CDN; everything else under
#: whatsapp.net is a SoftLayer-hosted chat domain (the slow majority).
WHATSAPP_CDN_PREFIXES = ("mme.", "mmg.", "pps.")

WHATSAPP_SUFFIX = "whatsapp.net"

CHAT = "chat"
CDN = "cdn"


def whatsapp_domain_class(domain: str) -> str:
    """``chat`` (SoftLayer) or ``cdn`` (Facebook CDN media)."""
    return CDN if domain.startswith(WHATSAPP_CDN_PREFIXES) else CHAT


def domain_matches_suffix(domain: Optional[str], suffix: str) -> bool:
    return domain is not None and (domain == suffix
                                   or domain.endswith("." + suffix))


#: Figure bands for the 20-most-accessed-networks table of Case 1.
NETWORK_BAND_EDGES = (100.0, 200.0, 300.0)
NETWORK_BAND_LABELS = ("<100ms", "100-200ms", "200-300ms", ">300ms")


def network_band(median_ms: float) -> str:
    """The Case 1 per-network band a chat-domain median falls in."""
    for edge, label in zip(NETWORK_BAND_EDGES, NETWORK_BAND_LABELS):
        if median_ms < edge:
            return label
    return NETWORK_BAND_LABELS[-1]


def jio_domain_bands(medians_ms: Iterable[float]) -> Dict[str, int]:
    """Case 2's cumulative per-domain bands (<100 / >200 / >300 /
    >400 ms)."""
    bands = {"<100ms": 0, ">200ms": 0, ">300ms": 0, ">400ms": 0}
    for med in medians_ms:
        if med < 100:
            bands["<100ms"] += 1
        if med > 200:
            bands[">200ms"] += 1
        if med > 300:
            bands[">300ms"] += 1
        if med > 400:
            bands[">400ms"] += 1
    return bands


# -- verdict thresholds -------------------------------------------------------

#: Case 1 fires when the chat-domain median exceeds this.
CHAT_DEGRADED_MEDIAN_MS = 200.0
#: ... and this share of chat domains has a median above 200 ms.
CHAT_DEGRADED_DOMAIN_SHARE = 0.75

#: Case 2 fires when an ISP's app median is this many times its DNS
#: median (slow core, fast local resolver -- Jio's signature) ...
ISP_ANOMALY_APP_DNS_RATIO = 3.0
#: ... and the app median is at least this high in absolute terms.
ISP_ANOMALY_MIN_APP_MEDIAN_MS = 180.0
#: ... corroborated by this share of comparable domains being faster
#: on other LTE networks,
ISP_ANOMALY_FASTER_ELSEWHERE_SHARE = 0.8
#: ... by at least this mean gap.
ISP_ANOMALY_MIN_GAP_MS = 80.0


def chat_degradation_verdict(chat_median_ms: float,
                             cdn_median_ms: Optional[float],
                             over_200_share: float,
                             network_bands: Mapping[str, int]) -> bool:
    """Case 1: the vast majority of chat domains perform poorly in most
    networks while the CDN media domains stay fast."""
    if chat_median_ms <= CHAT_DEGRADED_MEDIAN_MS:
        return False
    if over_200_share <= CHAT_DEGRADED_DOMAIN_SHARE:
        return False
    slow = (network_bands.get("200-300ms", 0)
            + network_bands.get(">300ms", 0))
    fast = network_bands.get("<100ms", 0)
    if slow <= fast:
        return False
    # The CDN contrast is evidence, not a hard requirement (a store
    # may contain no media samples).
    if cdn_median_ms is not None and cdn_median_ms >= chat_median_ms:
        return False
    return True


# -- coexistence: bulk transfer inflating foreground RTTs --------------------

#: The Android download-manager package -- the bulk transfers the
#: coexistence rule keys on run under this app (see
#: repro.phone.download_manager and docs/MODALITIES.md).
COEX_BULK_PACKAGE = "com.android.providers.downloads"
#: A network's TCP median must exceed its peers' merged median by this
#: factor for the contention verdict to fire.
COEX_RTT_INFLATION = 1.5
#: ... and the dataset must hold at least this many bulk-app
#: throughput samples (no bulk transfer, no coexistence story).
COEX_MIN_BULK_SAMPLES = 1


def coexistence_verdict(app_median_ms: float, peer_median_ms: float,
                        bulk_samples: int) -> bool:
    """Coexistence: a bulk transfer is active (throughput records from
    the download-manager package) *and* the affected network's TCP
    median is inflated well past its peers' -- self-inflicted
    contention, not a network fault."""
    if bulk_samples < COEX_MIN_BULK_SAMPLES:
        return False
    if peer_median_ms <= 0:
        return False
    return app_median_ms > COEX_RTT_INFLATION * peer_median_ms


# -- transparent proxy: SYN RTT diverging from app-layer RTT -----------------

#: A middlebox verdict needs the app-layer median to exceed the SYN
#: median by this factor.  Without a split-connection proxy both RTTs
#: span the same path and the ratio sits near 1 (server think time
#: only); behind one, the SYN terminates at the middlebox while the
#: response still crosses the full path.
PROXY_DIVERGENCE_RATIO = 2.0
#: ... and by at least this absolute gap, so sub-millisecond paths
#: with fixed processing delays cannot trip the ratio alone.
PROXY_MIN_GAP_MS = 25.0
#: ... over at least this many app-layer samples per operator.
PROXY_MIN_APP_SAMPLES = 6


def proxy_divergence_verdict(syn_median_ms: float,
                             app_median_ms: float,
                             app_samples: int) -> bool:
    """Transparent-proxy detection: the operator's SYN-RTT and
    app-layer-RTT distributions have split -- the SYN is answered by
    something much closer than whatever serves the response bytes."""
    if app_samples < PROXY_MIN_APP_SAMPLES:
        return False
    if syn_median_ms <= 0:
        return False
    if app_median_ms - syn_median_ms < PROXY_MIN_GAP_MS:
        return False
    return app_median_ms > PROXY_DIVERGENCE_RATIO * syn_median_ms


def isp_anomaly_verdict(app_median_ms: float, dns_median_ms: float,
                        comparable_domains: int,
                        domains_faster_elsewhere: int,
                        mean_gap_ms: float) -> bool:
    """Case 2: slow app path, fast local DNS, and the same domains are
    much faster on other LTE networks."""
    if dns_median_ms <= 0:
        return False
    if app_median_ms <= ISP_ANOMALY_APP_DNS_RATIO * dns_median_ms:
        return False
    if app_median_ms < ISP_ANOMALY_MIN_APP_MEDIAN_MS:
        return False
    if comparable_domains > 0:
        share = domains_faster_elsewhere / comparable_domains
        if share < ISP_ANOMALY_FASTER_ELSEWHERE_SHARE:
            return False
        if mean_gap_ms <= ISP_ANOMALY_MIN_GAP_MS:
            return False
    return True


__all__ = [
    "CDN",
    "CHAT",
    "CHAT_DEGRADED_DOMAIN_SHARE",
    "CHAT_DEGRADED_MEDIAN_MS",
    "COEX_BULK_PACKAGE",
    "COEX_MIN_BULK_SAMPLES",
    "COEX_RTT_INFLATION",
    "ISP_ANOMALY_APP_DNS_RATIO",
    "ISP_ANOMALY_FASTER_ELSEWHERE_SHARE",
    "ISP_ANOMALY_MIN_APP_MEDIAN_MS",
    "ISP_ANOMALY_MIN_GAP_MS",
    "NETWORK_BAND_EDGES",
    "NETWORK_BAND_LABELS",
    "PROXY_DIVERGENCE_RATIO",
    "PROXY_MIN_APP_SAMPLES",
    "PROXY_MIN_GAP_MS",
    "WHATSAPP_CDN_PREFIXES",
    "WHATSAPP_SUFFIX",
    "chat_degradation_verdict",
    "coexistence_verdict",
    "domain_matches_suffix",
    "isp_anomaly_verdict",
    "jio_domain_bands",
    "proxy_divergence_verdict",
    "network_band",
    "whatsapp_domain_class",
]
