"""MopEye reproduction: opportunistic per-app mobile network
performance monitoring (USENIX ATC 2017).

Subpackages:

* :mod:`repro.sim` -- discrete-event simulation kernel.
* :mod:`repro.netstack` -- TCP/IP/UDP/DNS wire formats and the
  user-space RFC 793 state machine.
* :mod:`repro.phone` -- Android substrate (TUN, VpnService, kernel
  sockets, /proc/net, NIO, apps).
* :mod:`repro.network` -- access links, routing fabric, servers.
* :mod:`repro.core` -- MopEye itself.
* :mod:`repro.baselines` -- tcpdump / MobiPerf / Haystack comparators.
* :mod:`repro.crowd` -- synthetic crowdsourcing campaign.
* :mod:`repro.analysis` -- evaluation tables and figures.
"""

__version__ = "1.0.0"
