"""MobiPerf-style HTTP ping (the Table 2 comparator).

MobiPerf v3.4.0's HTTP ping also derives RTT from the SYN/SYN-ACK
exchange, but §4.1.1 identifies three accuracy problems MopEye avoids:

1. the timing brackets a *high-level* HTTP call, not the socket
   syscall -- connection setup work runs inside the timed region;
2. the timestamp method has millisecond granularity;
3. completion is observed via event notification from a task executor,
   adding dispatch latency that grows with how long the measurement
   thread has been descheduled (longer RTT -> staler scheduler state),
   which is why Table 2's deviations grow from ~12 ms at 4 ms RTT to
   ~80 ms at 500 ms RTT.

Each mechanism is modelled explicitly below.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.phone.apps import App
from repro.sim.distributions import Uniform


class MobiPerf(App):
    """An active-measurement app issuing HTTP pings."""

    def __init__(self, device, package: str = "com.mobiperf",
                 rng: Optional[random.Random] = None):
        super().__init__(device, package, rng=rng)
        r = self.rng
        # (1) HTTP-stack setup inside the timed region.
        self.pre_cost = Uniform(3.0, 8.0).bind(r)
        # (3) executor dispatch after the socket completes: a fixed
        # component plus one that scales with the time spent blocked.
        self.post_fixed = Uniform(4.0, 9.0).bind(r)
        self.post_scale = Uniform(0.03, 0.16).bind(r)
        self.samples_ms: List[float] = []

    def http_ping(self, ip: str, port: int = 80):
        """Generator: one HTTP ping; returns the reported RTT in ms
        (ms-granularity, inflated) -- or None on failure."""
        quantize = self.device.costs.quantize_milli
        started = quantize(self.sim.now)           # (2) ms clock
        yield self.device.busy(self.pre_cost.sample(), "mobiperf")
        socket = self._new_socket()
        try:
            yield socket.connect(ip, port)
        except Exception:
            self.failures += 1
            return None
        true_wait = self.sim.now - started
        dispatch = self.post_fixed.sample() \
            + self.post_scale.sample() * true_wait
        yield self.device.busy(dispatch, "mobiperf")
        ended = quantize(self.sim.now)             # (2) ms clock
        socket.close()
        reported = ended - started
        self.samples_ms.append(reported)
        return reported

    def ping_run(self, ip: str, rounds: int = 10, port: int = 80,
                 gap_ms: float = 100.0):
        """Generator: a MobiPerf measurement task (mean of ``rounds``
        pings, matching the paper's methodology).  Returns the mean."""
        values = []
        for _ in range(rounds):
            value = yield from self.http_ping(ip, port)
            if value is not None:
                values.append(value)
            yield self.sim.timeout(gap_ms)
        if not values:
            return None
        return sum(values) / len(values)
