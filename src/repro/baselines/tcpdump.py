"""tcpdump: the wire-level reference measurement.

A passive tap on the internet fabric pairing each SYN with its SYN/ACK.
The paper uses tcpdump RTTs as ground truth for Table 2; deviations of
MopEye/MobiPerf are computed against these.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.netstack.ip import IPPacket, PROTO_TCP
from repro.netstack.tcp_segment import TCPSegment


class SynAckSample(Tuple):
    pass


class TcpdumpCapture:
    """Attach with ``internet.add_tap(capture.tap)``."""

    def __init__(self) -> None:
        # (src_ip, src_port, dst_ip, dst_port) -> SYN timestamp
        self._pending: Dict[Tuple[str, int, str, int], float] = {}
        # Completed handshakes: (four_tuple, syn_ts, rtt_ms)
        self.samples: List[Tuple[Tuple[str, int, str, int], float,
                                 float]] = []
        self.packets_seen = 0

    def tap(self, direction: str, packet: IPPacket,
            timestamp: float) -> None:
        self.packets_seen += 1
        if packet.protocol != PROTO_TCP:
            return
        try:
            segment = TCPSegment.decode(packet.payload)
        except Exception:
            return
        if direction == "up" and segment.is_syn:
            key = (packet.src_str, segment.src_port,
                   packet.dst_str, segment.dst_port)
            # First SYN wins (retransmissions measure from the start).
            self._pending.setdefault(key, timestamp)
        elif direction == "down" and segment.is_syn_ack:
            key = (packet.dst_str, segment.dst_port,
                   packet.src_str, segment.src_port)
            started = self._pending.pop(key, None)
            if started is not None:
                self.samples.append((key, started, timestamp - started))

    # -- views ------------------------------------------------------------
    def rtts(self, dst_ip: Optional[str] = None) -> List[float]:
        return [rtt for (key, _ts, rtt) in self.samples
                if dst_ip is None or key[2] == dst_ip]

    def mean_rtt(self, dst_ip: Optional[str] = None) -> Optional[float]:
        rtts = self.rtts(dst_ip)
        if not rtts:
            return None
        return sum(rtts) / len(rtts)

    def clear(self) -> None:
        self._pending.clear()
        self.samples.clear()
