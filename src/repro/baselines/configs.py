"""Baseline systems expressed as MopEye configurations.

The relay machinery is shared; what distinguishes Haystack, ToyVpn and
PrivacyGuard from MopEye is *which mechanisms they use*, and those are
exactly the config knobs.
"""

from __future__ import annotations

from repro.core.config import MopEyeConfig


def mopeye_default_config() -> MopEyeConfig:
    """The paper's shipped design."""
    return MopEyeConfig().validate()


def haystack_config() -> MopEyeConfig:
    """Haystack v1.0.0.8 (as compared in Tables 3 and 4):

    * adaptive sleep-based TUN reading ("adopts a similar idea" to
      ToyVpn's intelligent sleeping, section 3.1) -- the cause of its
      upload-throughput collapse;
    * cache-based packet-to-app mapping (section 3.3);
    * per-packet traffic content inspection (its purpose is privacy-leak
      detection), a CPU cost MopEye does not pay;
    * per-socket protect() (no addDisallowedApplication);
    * large resident footprint (148 MB observed in Table 4).
    """
    return MopEyeConfig(
        package="com.haystack",
        tun_read_mode="adaptive",
        adaptive_min_sleep_ms=1.6,
        adaptive_max_sleep_ms=40.0,
        poll_one_per_interval=True,
        mapping_mode="cache",
        protect_mode="protect",
        per_packet_inspection_ms=0.58,
        per_connection_buffer_bytes=1024 * 1024,
        base_memory_bytes=140 * 1024 * 1024,
    ).validate()


def toyvpn_config() -> MopEyeConfig:
    """The official SDK sample: 100 ms sleep before every read."""
    return MopEyeConfig(
        package="com.android.toyvpn",
        tun_read_mode="sleep",
        tun_read_sleep_ms=100.0,
        mapping_mode="off",
        protect_mode="protect",
    ).validate()


def privacyguard_config() -> MopEyeConfig:
    """PrivacyGuard: fixed 20 ms sleep interval (section 3.1)."""
    return MopEyeConfig(
        package="com.privacyguard",
        tun_read_mode="sleep",
        tun_read_sleep_ms=20.0,
        mapping_mode="cache",
        protect_mode="protect",
        per_packet_inspection_ms=0.2,
    ).validate()


def direct_write_config() -> MopEyeConfig:
    """Table 1 ablation: producers write the tun fd themselves."""
    return MopEyeConfig(write_scheme="directWrite").validate()


def old_put_config() -> MopEyeConfig:
    """Table 1 ablation: queueWrite with the classic wait/notify put."""
    return MopEyeConfig(write_scheme="queueWrite",
                        put_scheme="oldPut").validate()
