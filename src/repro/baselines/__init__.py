"""Comparator systems the paper evaluates against.

Each baseline implements the *mechanism* that makes it slower or less
accurate than MopEye, so evaluation outcomes are produced, not assumed:

* :mod:`~repro.baselines.tcpdump` -- the on-wire reference observer;
* :mod:`~repro.baselines.mobiperf` -- active HTTP-ping measurement with
  the timing-placement and clock-granularity weaknesses of §4.1.1;
* :mod:`~repro.baselines.configs` -- Haystack, ToyVpn and PrivacyGuard
  as MopEye configurations (polling reads, cache mapping, per-packet
  content inspection, per-socket protect), plus the Table 1 write-scheme
  variants.
"""

from repro.baselines.tcpdump import TcpdumpCapture
from repro.baselines.mobiperf import MobiPerf
from repro.baselines.configs import (
    direct_write_config,
    haystack_config,
    mopeye_default_config,
    old_put_config,
    privacyguard_config,
    toyvpn_config,
)

__all__ = [
    "MobiPerf",
    "TcpdumpCapture",
    "direct_write_config",
    "haystack_config",
    "mopeye_default_config",
    "old_put_config",
    "privacyguard_config",
    "toyvpn_config",
]
