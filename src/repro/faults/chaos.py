"""The chaos runner: one scenario, end to end, deterministically.

Builds one packet-level world per device (fleet-style: real
AndroidDevice + MopEye relay + servers placed at CRC-32-stable IPs),
installs a :class:`FaultInjector` wired to that world's components,
runs the app workload to completion, and streams the tagged
measurement records into JSON-lines shards -- one shard per device, so
the merged dataset bytes are identical no matter how many worker
processes ran.

Everything stochastic is string-seeded on ``(seed, device_id, ...)``,
the same discipline as ``crowd/sharding.py``; worker processes rebuild
their worlds from ``(scenario name, seed, device index)`` alone, so
fork and spawn start methods, pool scheduling, and ``PYTHONHASHSEED``
cannot change a byte of output.  The CI chaos job and the determinism
tests both lean on this.

No-hang guarantee: the workload races the scenario's ``duration_ms``
budget.  Per-connect stalls are bounded by a watchdog race (a revoked
VPN or crashed backend can strand one request, never the run), and a
workload that fails to finish inside the budget raises instead of
spinning -- a deadlock becomes a test failure, not a hung process.
"""

from __future__ import annotations

import dataclasses
import hashlib
import multiprocessing
import os
import random
import shutil
import tempfile
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.core import MopEyeService
from repro.core.persist import (
    dataset_digest,
    iter_jsonl_shards,
    list_shards,
    record_to_line,
    shard_path,
)
from repro.core.records import MeasurementRecord, MeasurementStore
from repro.core.uploader import MeasurementUploader
from repro.backend.ingest import IngestLoadModel
from repro.backend.rollups import RollupStore
from repro.backend.server import BackendServer
from repro.store.engine import StoreConfig
from repro.crowd.campaign import stable_ip_for_domain
from repro.faults.injector import FaultInjector
from repro.faults.ledger import GroundTruthLedger
from repro.faults.plan import FaultKind, FaultPlan
from repro.faults.scenarios import Scenario, SCENARIOS, get_scenario
from repro.middlebox.proxy import DEFAULT_INTERCEPT_PORTS, TransparentProxy
from repro.network import AccessLink, AppServer, DnsServer, DnsZone, Internet
from repro.phone import AndroidDevice, App
from repro.phone.device import ResolveError
from repro.sim import Constant, LogNormal, Simulator

#: Where the collector lives in backend-enabled scenarios.
COLLECTOR_IP = "203.0.113.50"

#: Upper bound on one connect+request exchange before the workload
#: abandons it (the socket may still complete in the background).
_CONNECT_WATCHDOG_MS = 60_000.0


@dataclass
class DeviceRun:
    """What one device world produced."""
    device_id: str
    records: List[MeasurementRecord]
    counts: Dict[str, Dict[str, int]]
    stats: Dict[str, int]
    #: Canonical snapshot of the backend's *recovered* rollup store
    #: (segments + WAL-replayed memtable), or None when the scenario
    #: has no backend.  Plain data so it crosses process boundaries.
    rollup: Optional[Dict[str, object]] = None


def _world_rng(seed: int, device_id: str, purpose: str) -> random.Random:
    return random.Random("chaos:%d:%s:%s" % (seed, device_id, purpose))


def run_device_world(scenario: Scenario, plan: FaultPlan, seed: int,
                     device_index: int,
                     cluster_nodes: Optional[int] = None) -> DeviceRun:
    """Build and run one device's world; pure function of
    ``(scenario, seed, device_index)``.  Cluster scenarios (or an
    explicit ``cluster_nodes`` override) delegate to the federated
    runner in :mod:`repro.cluster.runner`."""
    nodes = scenario.cluster_nodes if cluster_nodes is None \
        else int(cluster_nodes)
    if nodes:
        # Imported lazily: repro.cluster.runner imports this module.
        from repro.cluster.runner import run_cluster_device_world
        return run_cluster_device_world(scenario, plan, seed,
                                        device_index, nodes=nodes)
    device_id, operator = scenario.devices()[device_index]
    sim = Simulator()
    internet = Internet(sim)
    rng = _world_rng(seed, device_id, "world")
    oneway = LogNormal(max(0.5, operator.access_oneway_ms),
                       operator.sigma).bind(rng)
    link = AccessLink(sim, up_latency=oneway, down_latency=oneway,
                      network_type=operator.network_type,
                      operator=operator.name, rng=rng)
    device = AndroidDevice(sim, internet, link, sdk=23,
                           rng=_world_rng(seed, device_id, "device"))
    device.model = device_id
    zone = DnsZone()
    dns = DnsServer(sim, "8.8.8.8", zone,
                    processing_delay=Constant(0.2),
                    path_oneway=LogNormal(2.0, 0.2).bind(rng))
    internet.add_server(dns)
    servers: Dict[str, AppServer] = {}
    for spec in scenario.apps:
        ip = stable_ip_for_domain(spec.domain)
        server = AppServer(
            sim, [ip], name=spec.domain,
            path_oneway=LogNormal(max(0.25, spec.path_oneway_ms),
                                  spec.sigma).bind(rng),
            accept_delay=Constant(0.05),
            rng=_world_rng(seed, device_id, "server:%s" % spec.domain))
        internet.add_server(server)
        zone.add(spec.domain, ip)
        servers[spec.domain] = server
    service = MopEyeService(device, modalities=scenario.modalities,
                            app_rtt=scenario.app_rtt)
    service.start()
    # A transparent proxy exists only in worlds whose operator the
    # event scopes: clean-operator worlds never construct one, so
    # their packet schedules (and record bytes) stay identical to a
    # proxy-free run.  The proxy is built disabled; the injector flips
    # its ``enabled`` flag at the event's start time.
    proxy = None
    for event in plan:
        if event.kind == FaultKind.TRANSPARENT_PROXY and \
                event.scope.get("operator") in (None, operator.name):
            ports = tuple(
                int(p) for p in event.params.get(
                    "intercept_ports", DEFAULT_INTERCEPT_PORTS))
            proxy = TransparentProxy(
                sim, internet, intercept_ports=ports,
                bypass_ips=(COLLECTOR_IP,),
                rng=_world_rng(seed, device_id, "middlebox"),
                obs=service.obs)
            break
    backend = uploader = None
    backend_data_dir = None
    if scenario.with_backend:
        # Durable storage per world: every crash in this world now
        # genuinely drops the memtable and dedup cache, and restart
        # recovers them from WAL + segments alone.  Auto-flush is off
        # so segments never absorb mid-run state; checkpoints do
        # (every 50 records, two retained, a sharded WAL), which
        # exercises checkpoint recovery under real crashes -- records
        # folded into a checkpoint survive only as aggregates, so the
        # received mirror may trail the store counters, and the digest
        # parity check below is the proof that matters.
        backend_data_dir = tempfile.mkdtemp(prefix="mopeye-store-")
        backend = BackendServer(
            sim, [COLLECTOR_IP],
            path_oneway=LogNormal(8.0, 0.2).bind(rng),
            accept_delay=Constant(0.05),
            load=IngestLoadModel(base_ms=400.0, per_record_ms=5.0),
            data_dir=backend_data_dir,
            store_config=StoreConfig(flush_threshold_records=None,
                                     checkpoint_interval_records=50,
                                     wal_shards=2),
            rng=_world_rng(seed, device_id, "backend"))
        internet.add_server(backend)
        uploader = MeasurementUploader(
            service, COLLECTOR_IP,
            interval_ms=scenario.uploader_interval_ms,
            min_batch=scenario.uploader_min_batch,
            ack_timeout_ms=scenario.uploader_ack_timeout_ms,
            emit_aoi=scenario.modalities)
        uploader.start()
    injector = FaultInjector(sim, plan, device_id=device_id,
                             operator=operator.name, link=link,
                             servers=servers, dns=dns, service=service,
                             backend=backend, middlebox=proxy,
                             obs=service.obs)
    injector.install()

    apps = {spec.package: App(device, spec.package,
                              rng=_world_rng(seed, device_id,
                                             "app:%s" % spec.package))
            for spec in scenario.apps}
    wrng = _world_rng(seed, device_id, "workload")
    resolve_failures = [0]

    def one_connect(spec):
        try:
            yield from apps[spec.package].resolve_and_request(
                spec.domain, spec.port, b"GET / HTTP/1.1\r\n\r\n")
        except ResolveError:
            resolve_failures[0] += 1

    def workload():
        for index in range(scenario.connects):
            spec = scenario.apps[wrng.randrange(len(scenario.apps))]
            attempt = sim.process(one_connect(spec),
                                  name="connect-%d" % index)
            # Watchdog race: a torn-down relay can strand one request
            # (a recv() that will never complete); bound the damage.
            yield sim.any_of([attempt, sim.timeout(_CONNECT_WATCHDOG_MS)])
            yield sim.timeout(wrng.uniform(*scenario.think_ms))

    process = sim.process(workload(), name="chaos-workload")
    sim.run(until=scenario.duration_ms, stop_event=process)
    if not process.triggered:
        raise RuntimeError(
            "chaos workload for %s did not finish within the %.0f ms "
            "budget (deadlock?)" % (device_id, scenario.duration_ms))
    # A fault process can outlive the workload and keep producing
    # records (e.g. coex_bulk's download loop emits throughput/energy
    # flows until its window closes); drain to the plan horizon first
    # so the periodic uploader keeps shipping them, then flush.
    horizon = max([event.end_ms for event in plan] + [0.0])
    sim.run(until=max(sim.now, horizon + 5_000.0))
    if uploader is not None:
        uploader.stop()
        sim.run(until=sim.now + 15_000.0)
    else:
        sim.run(until=sim.now + 5_000.0)

    records = [dataclasses.replace(record, device_id=device_id)
               for record in service.store]
    stats: Dict[str, int] = {
        "records": len(records),
        "failure_records": sum(1 for r in records
                               if r.failure is not None),
        "app_failures": sum(app.failures for app in apps.values()),
        "resolve_failures": resolve_failures[0],
        "workloads_completed": 1,
        "vpn_revocations": device.vpn.revocations,
        "service_running": int(service.running),
    }
    if proxy is not None:
        # Fold the world's mbox.* counters into the cross-world stats
        # (the same registry the MiddleboxStats view reads).
        for short, metric in (
                ("mbox_intercepted_connects", "mbox.intercepted_connects"),
                ("mbox_split_connections", "mbox.split_connections"),
                ("mbox_upstream_failures", "mbox.upstream_failures"),
                ("mbox_dns_tcp_refused", "mbox.dns_tcp_refused"),
                ("mbox_rewritten_bytes", "mbox.rewritten_bytes"),
                ("mbox_bytes_up", "mbox.bytes_up"),
                ("mbox_bytes_down", "mbox.bytes_down")):
            stats[short] = int(service.obs.value(metric))
    if any(event.kind == FaultKind.NOISY_CLOCK for event in plan):
        stats["imperfect_quantised_samples"] = int(
            service.obs.value("imperfect.quantised_samples"))
        stats["imperfect_jitter_applied"] = int(
            service.obs.value("imperfect.jitter_applied"))
    rollup_snapshot = None
    if backend is not None:
        # Digest parity is the crash-recovery proof: the rollup store
        # materialised purely from disk (segments + WAL replay, live
        # memtable discarded by the recover() below) must equal a
        # store built fresh from the device's own records.
        backend.store.recover()
        recovered = backend.store.materialize()
        reference = RollupStore(config=backend.store.rollup_config)
        reference.add_all(service.store)
        stats.update({
            "backend_crashes": backend.crashes,
            "backend_recoveries": backend.recoveries,
            "backend_batches": backend.batches,
            "backend_duplicates": backend.duplicates,
            "backend_records": len(backend.received),
            "backend_rollup_matches_store":
                int(recovered.digest() == reference.digest()),
            "uploader_failures": uploader.failures,
            "uploader_ack_timeouts": uploader.ack_timeouts,
            "uploader_records_acked": uploader.uploaded,
            "store_records": len(service.store),
        })
        rollup_snapshot = recovered.snapshot()
        backend.store.close()
        shutil.rmtree(backend_data_dir, ignore_errors=True)
    return DeviceRun(device_id=device_id, records=records,
                     counts=injector.counts, stats=stats,
                     rollup=rollup_snapshot)


def _merge_counts(total: Dict[str, Dict[str, int]],
                  part: Dict[str, Dict[str, int]]) -> None:
    for event_id in sorted(part):
        entry = total.setdefault(event_id,
                                 {"activations": 0, "deactivations": 0})
        entry["activations"] += part[event_id].get("activations", 0)
        entry["deactivations"] += part[event_id].get("deactivations", 0)


def _merge_stats(total: Dict[str, int], part: Dict[str, int]) -> None:
    for key in sorted(part):
        total[key] = total.get(key, 0) + int(part[key])


def _merge_rollup(total: Optional[RollupStore],
                  snapshot: Optional[Dict[str, object]]
                  ) -> Optional[RollupStore]:
    if snapshot is None:
        return total
    store = RollupStore.from_snapshot(snapshot)
    if total is None:
        return store
    total.merge(store)
    return total


def _run_chaos_shard(task: Tuple[str, int, int, int, str,
                                 Optional[int]]
                     ) -> Tuple[int, int, str,
                                Dict[str, Dict[str, int]],
                                Dict[str, int],
                                Optional[Dict[str, object]]]:
    """Worker entry point: one contiguous device range -> one shard.
    Rebuilds everything from (scenario name, seed) so fork and spawn
    behave identically."""
    scenario_name, seed, device_lo, device_hi, path, cluster_nodes \
        = task
    scenario = get_scenario(scenario_name)
    plan = scenario.plan(seed)
    sha = hashlib.sha256()
    count = 0
    counts: Dict[str, Dict[str, int]] = {}
    stats: Dict[str, int] = {}
    rollup: Optional[RollupStore] = None
    with open(path, "w") as handle:
        for device_index in range(device_lo, device_hi):
            run = run_device_world(scenario, plan, seed, device_index,
                                   cluster_nodes=cluster_nodes)
            for record in run.records:
                line = record_to_line(record) + "\n"
                handle.write(line)
                sha.update(line.encode("utf-8"))
                count += 1
            _merge_counts(counts, run.counts)
            _merge_stats(stats, run.stats)
            rollup = _merge_rollup(rollup, run.rollup)
    return (device_lo, count, sha.hexdigest(), counts, stats,
            rollup.snapshot() if rollup is not None else None)


@dataclass
class ChaosResult:
    scenario_name: str
    seed: int
    shard_dir: str
    paths: List[str] = field(default_factory=list)
    records: int = 0
    plan: Optional[FaultPlan] = None
    ledger: Optional[GroundTruthLedger] = None
    stats: Dict[str, int] = field(default_factory=dict)
    #: The recovered backend rollup store merged across all device
    #: worlds (None for scenarios without a backend).
    rollups: Optional[RollupStore] = None

    def digest(self) -> str:
        """SHA-256 of the merged dataset bytes (device order)."""
        return dataset_digest(self.paths)

    def rollup_digest(self) -> Optional[str]:
        """Digest of the recovered backend rollups -- the quantity the
        storage CI job diffs across PYTHONHASHSEED values."""
        return None if self.rollups is None else self.rollups.digest()

    def iter_records(self) -> Iterator[MeasurementRecord]:
        return iter_jsonl_shards(self.paths)

    def load(self) -> MeasurementStore:
        store = MeasurementStore()
        for record in self.iter_records():
            store.add(record)
        return store


class ChaosRunner:
    """Run a scenario across a worker pool (one shard per device).

    ``workers=1`` runs inline; multi-worker runs require a registry
    scenario (workers regenerate it by name).  Output is byte-identical
    either way -- the determinism tests compare exactly this.
    """

    def __init__(self, scenario, seed: int = 0, workers: int = 1,
                 shard_dir: Optional[str] = None,
                 cluster_nodes: Optional[int] = None):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if isinstance(scenario, str):
            scenario = get_scenario(scenario)
        if workers > 1 and SCENARIOS.get(scenario.name) is not scenario:
            raise ValueError("multi-worker runs need a registry "
                             "scenario (workers rebuild it by name)")
        if cluster_nodes is not None:
            if cluster_nodes < 1:
                raise ValueError("cluster_nodes must be >= 1")
            if not scenario.cluster_nodes:
                raise ValueError(
                    "scenario %r is not a cluster scenario; "
                    "cluster_nodes only overrides the node count of "
                    "scenarios that declare one" % scenario.name)
        self.scenario: Scenario = scenario
        self.seed = seed
        self.workers = workers
        self.shard_dir = shard_dir
        self.cluster_nodes = cluster_nodes

    def run(self) -> ChaosResult:
        shard_dir = self.shard_dir or tempfile.mkdtemp(
            prefix="mopeye-chaos-")
        os.makedirs(shard_dir, exist_ok=True)
        for stale in list_shards(shard_dir):
            os.remove(stale)
        devices = self.scenario.devices()
        tasks = [(self.scenario.name, self.seed, index, index + 1,
                  shard_path(shard_dir, index), self.cluster_nodes)
                 for index in range(len(devices))]
        if self.workers == 1:
            outcomes = [self._run_inline(task) for task in tasks]
        else:
            methods = multiprocessing.get_all_start_methods()
            ctx = multiprocessing.get_context(
                "fork" if "fork" in methods else "spawn")
            with ctx.Pool(processes=self.workers) as pool:
                outcomes = pool.map(_run_chaos_shard, tasks)
        outcomes.sort(key=lambda outcome: outcome[0])
        plan = self.scenario.plan(self.seed)
        ledger = GroundTruthLedger.from_plan(plan)
        result = ChaosResult(scenario_name=self.scenario.name,
                             seed=self.seed, shard_dir=shard_dir,
                             plan=plan, ledger=ledger)
        rollup: Optional[RollupStore] = None
        for device_lo, count, _sha, counts, stats, snapshot in outcomes:
            result.paths.append(shard_path(shard_dir, device_lo))
            result.records += count
            ledger.record_counts(counts)
            _merge_stats(result.stats, stats)
            rollup = _merge_rollup(rollup, snapshot)
        result.rollups = rollup
        return result

    def _run_inline(self, task):
        """Single-process path: honours a non-registry Scenario object
        while sharing the exact serialisation code of the worker."""
        if SCENARIOS.get(self.scenario.name) is self.scenario:
            return _run_chaos_shard(task)
        _name, seed, device_lo, device_hi, path, cluster_nodes = task
        plan = self.scenario.plan(seed)
        sha = hashlib.sha256()
        count = 0
        counts: Dict[str, Dict[str, int]] = {}
        stats: Dict[str, int] = {}
        rollup: Optional[RollupStore] = None
        with open(path, "w") as handle:
            for device_index in range(device_lo, device_hi):
                run = run_device_world(self.scenario, plan, seed,
                                       device_index,
                                       cluster_nodes=cluster_nodes)
                for record in run.records:
                    line = record_to_line(record) + "\n"
                    handle.write(line)
                    sha.update(line.encode("utf-8"))
                    count += 1
                _merge_counts(counts, run.counts)
                _merge_stats(stats, run.stats)
                rollup = _merge_rollup(rollup, run.rollup)
        return (device_lo, count, sha.hexdigest(), counts, stats,
                rollup.snapshot() if rollup is not None else None)


__all__ = ["ChaosResult", "ChaosRunner", "DeviceRun", "run_device_world",
           "COLLECTOR_IP"]
