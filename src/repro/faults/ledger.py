"""The ground-truth ledger: what was actually injected, and when.

The plan says what *should* happen; the ledger records what *did*:
per-event activation/deactivation counts reported by the injectors
(one per device world), merged in device order.  Counts are plain
integer sums, so the merge is commutative and the ledger JSON is
byte-identical across 1-vs-N-worker runs -- the property the chaos
determinism tests (and the CI chaos job) assert.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List

from repro.faults.plan import FaultPlan


@dataclass
class LedgerEntry:
    """Ground truth for one fault event."""

    event_id: str
    kind: str
    start_ms: float
    end_ms: float
    scope: Dict[str, object]
    params: Dict[str, object]
    #: Device worlds in which the event's effect was applied.
    activations: int = 0
    deactivations: int = 0

    def to_dict(self) -> Dict[str, object]:
        return {"event_id": self.event_id, "kind": self.kind,
                "start_ms": self.start_ms, "end_ms": self.end_ms,
                "scope": dict(self.scope),
                "params": dict(self.params),
                "activations": self.activations,
                "deactivations": self.deactivations}


@dataclass
class GroundTruthLedger:
    seed: int
    entries: List[LedgerEntry] = field(default_factory=list)

    @classmethod
    def from_plan(cls, plan: FaultPlan) -> "GroundTruthLedger":
        return cls(seed=plan.seed, entries=[
            LedgerEntry(event_id=e.event_id, kind=e.kind,
                        start_ms=e.start_ms, end_ms=e.end_ms,
                        scope=dict(e.scope), params=dict(e.params))
            for e in plan.events])

    def entry(self, event_id: str) -> LedgerEntry:
        for entry in self.entries:
            if entry.event_id == event_id:
                return entry
        raise KeyError(event_id)

    def record_counts(self, counts: Dict[str, Dict[str, int]]) -> None:
        """Fold one injector's report (``{event_id: {"activations": n,
        "deactivations": n}}``) into the ledger.  Integer addition is
        commutative, so the fold order cannot change the result."""
        for event_id in sorted(counts):
            entry = self.entry(event_id)
            entry.activations += int(
                counts[event_id].get("activations", 0))
            entry.deactivations += int(
                counts[event_id].get("deactivations", 0))

    def by_kind(self, kind: str) -> List[LedgerEntry]:
        return [e for e in self.entries if e.kind == kind]

    def activated(self) -> List[LedgerEntry]:
        return [e for e in self.entries if e.activations > 0]

    # -- canonical JSON ------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        return {"seed": self.seed,
                "entries": [e.to_dict() for e in self.entries]}

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str) -> "GroundTruthLedger":
        data = json.loads(text)
        ledger = cls(seed=int(data["seed"]))
        for item in data.get("entries") or []:
            ledger.entries.append(LedgerEntry(
                event_id=str(item["event_id"]),
                kind=str(item["kind"]),
                start_ms=float(item["start_ms"]),
                end_ms=float(item["end_ms"]),
                scope=dict(item.get("scope") or {}),
                params=dict(item.get("params") or {}),
                activations=int(item.get("activations", 0)),
                deactivations=int(item.get("deactivations", 0))))
        return ledger

    def digest(self) -> str:
        return hashlib.sha256(self.to_json().encode()).hexdigest()

    def save(self, path: str) -> None:
        with open(path, "w") as handle:
            handle.write(self.to_json() + "\n")

    @classmethod
    def load(cls, path: str) -> "GroundTruthLedger":
        with open(path) as handle:
            return cls.from_json(handle.read())


__all__ = ["LedgerEntry", "GroundTruthLedger"]
