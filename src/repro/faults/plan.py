"""Fault plans: timed, scoped, seeded fault descriptions.

A :class:`FaultPlan` is pure data -- what goes wrong, when, and to
whom -- decoupled from *how* the effect is applied (the injector's
job).  Plans round-trip through canonical JSON byte-for-byte, so a
plan's digest identifies an experiment the same way a dataset digest
identifies its output.

Randomness discipline (same as ``crowd/sharding.py``): any stochastic
effect parameter draws from :func:`event_rng`, a ``random.Random``
string-seeded on ``(plan seed, event id, purpose)``.  String seeding
hashes through SHA-512, so streams are immune to ``PYTHONHASHSEED``
and identical across processes -- the property the 1-vs-N-worker
determinism tests assert.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional


class FaultKind:
    """What kind of thing breaks.  The injector maps each kind onto a
    component hook; ``faults/verify.py`` maps each onto the evidence
    the measurement pipeline should show."""

    BURST_LOSS = "burst_loss"        # Gilbert-Elliott loss on a link
    LATENCY_SPIKE = "latency_spike"  # extra one-way delay on a link
    SERVER_OUTAGE = "server_outage"  # AppServer refuse/blackhole/slow
    DNS_OUTAGE = "dns_outage"        # resolver blackhole/servfail
    VPN_REVOKE = "vpn_revoke"        # consent revoked; service restart
    BACKEND_CRASH = "backend_crash"  # collector crash/restart window
    HANDOVER = "handover"            # wifi<->LTE flip with a loss gap
    COLLECTOR_FAIL = "collector_fail"  # cluster node dies; failover
    NET_PARTITION = "net_partition"  # cluster node unreachable; heals
    NODE_JOIN = "node_join"          # standby node joins; rebalance
    COEX_BULK = "coex_bulk"          # bulk transfer contends with apps
    TRANSPARENT_PROXY = "transparent_proxy"  # split-connection middlebox
    NOISY_CLOCK = "noisy_clock"      # quantised/jittered device clock

    ALL = (BURST_LOSS, LATENCY_SPIKE, SERVER_OUTAGE, DNS_OUTAGE,
           VPN_REVOKE, BACKEND_CRASH, HANDOVER, COLLECTOR_FAIL,
           NET_PARTITION, NODE_JOIN, COEX_BULK, TRANSPARENT_PROXY,
           NOISY_CLOCK)


def event_rng(seed: int, event_id: str,
              purpose: str = "effect") -> random.Random:
    """The deterministic RNG stream for one event's stochastic effect
    parameters.  Distinct purposes (e.g. the up vs down direction of a
    burst-loss fault) get independent streams."""
    return random.Random("fault:%d:%s:%s" % (seed, event_id, purpose))


@dataclass
class FaultEvent:
    """One timed fault.

    ``scope`` names what is affected (``operator``, ``domain``,
    ``device``...); ``params`` holds kind-specific knobs (burst
    probabilities, outage mode, extra latency).  Both are flat
    JSON-serialisable dicts.
    """

    event_id: str
    kind: str
    start_ms: float
    duration_ms: float
    scope: Dict[str, object] = field(default_factory=dict)
    params: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self):
        if self.kind not in FaultKind.ALL:
            raise ValueError("unknown fault kind %r" % self.kind)
        if self.start_ms < 0:
            raise ValueError("start_ms must be >= 0")
        if self.duration_ms < 0:
            raise ValueError("duration_ms must be >= 0")

    @property
    def end_ms(self) -> float:
        return self.start_ms + self.duration_ms

    def to_dict(self) -> Dict[str, object]:
        return {"event_id": self.event_id, "kind": self.kind,
                "start_ms": self.start_ms,
                "duration_ms": self.duration_ms,
                "scope": dict(self.scope),
                "params": dict(self.params)}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FaultEvent":
        return cls(event_id=str(data["event_id"]),
                   kind=str(data["kind"]),
                   start_ms=float(data["start_ms"]),
                   duration_ms=float(data["duration_ms"]),
                   scope=dict(data.get("scope") or {}),
                   params=dict(data.get("params") or {}))


@dataclass
class FaultPlan:
    """A seed plus a sorted list of events with unique ids."""

    seed: int
    events: List[FaultEvent] = field(default_factory=list)

    def __post_init__(self):
        self.events = sorted(self.events,
                             key=lambda e: (e.start_ms, e.event_id))
        seen = set()
        for event in self.events:
            if event.event_id in seen:
                raise ValueError("duplicate event_id %r"
                                 % event.event_id)
            seen.add(event.event_id)

    def __iter__(self):
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)

    def event(self, event_id: str) -> Optional[FaultEvent]:
        for event in self.events:
            if event.event_id == event_id:
                return event
        return None

    def rng(self, event_id: str,
            purpose: str = "effect") -> random.Random:
        return event_rng(self.seed, event_id, purpose)

    # -- canonical JSON ------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        return {"seed": self.seed,
                "events": [e.to_dict() for e in self.events]}

    def to_json(self) -> str:
        """Canonical (byte-stable) serialisation: sorted keys, fixed
        separators, events in (start_ms, event_id) order."""
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FaultPlan":
        return cls(seed=int(data["seed"]),
                   events=[FaultEvent.from_dict(e)
                           for e in data.get("events") or []])

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))

    def digest(self) -> str:
        return hashlib.sha256(self.to_json().encode()).hexdigest()

    def save(self, path: str) -> None:
        with open(path, "w") as handle:
            handle.write(self.to_json() + "\n")

    @classmethod
    def load(cls, path: str) -> "FaultPlan":
        with open(path) as handle:
            return cls.from_json(handle.read())


__all__ = ["FaultKind", "FaultEvent", "FaultPlan", "event_rng"]
