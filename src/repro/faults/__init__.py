"""Deterministic fault injection with ground-truth labelling.

Three layers (see docs/FAULTS.md):

* :mod:`repro.faults.plan` -- :class:`FaultPlan` / :class:`FaultEvent`,
  JSON-round-trippable timed faults with per-event RNG streams;
  :mod:`repro.faults.scenarios` is the named preset library.
* :mod:`repro.faults.injector` -- applies events to live components
  (links, servers, the VPN service, the backend) at their sim times.
* :mod:`repro.faults.ledger` + :mod:`repro.faults.verify` -- the
  ground-truth record of what was injected, joined against the
  diagnosis/detector output to score precision and recall.

:mod:`repro.faults.chaos` runs a whole scenario end to end (the
``python -m repro chaos`` command).
"""

from repro.faults.plan import FaultEvent, FaultKind, FaultPlan, event_rng
from repro.faults.ledger import GroundTruthLedger
from repro.faults.injector import FaultInjector
from repro.faults.scenarios import (
    SCENARIOS,
    Scenario,
    get_scenario,
)
from repro.faults.chaos import ChaosResult, ChaosRunner
from repro.faults.verify import VerificationReport, verify_scenario

__all__ = [
    "FaultEvent", "FaultKind", "FaultPlan", "event_rng",
    "GroundTruthLedger", "FaultInjector",
    "SCENARIOS", "Scenario", "get_scenario",
    "ChaosResult", "ChaosRunner",
    "VerificationReport", "verify_scenario",
]
