"""Applies a :class:`FaultPlan` to one live device world.

One injector is built per world (the chaos runner builds one per
device), handed references to the components it may break, and
``install()``-ed before the workload starts.  Each applicable event
becomes a simulation process that sleeps until ``start_ms``, flips the
component's fault hook on, sleeps ``duration_ms``, and flips it off.
A ``duration_ms`` of 0 means "for the rest of the run".

Scope matching: link-layer faults (``burst_loss``, ``latency_spike``,
``handover``) and ``vpn_revoke`` apply only when the event's
``operator``/``device`` scope matches this world; ``server_outage``
applies when the scoped domain has a server here; ``dns_outage`` and
``backend_crash`` apply wherever a resolver/backend exists.  Because
every device world re-derives the same plan from the scenario seed,
a domain-scoped outage happens identically in all worlds -- it is one
server as far as the dataset is concerned.

Stochastic effect parameters draw from :func:`repro.faults.plan.event_rng`
streams keyed on ``(seed, event_id, purpose)``, never from a shared
RNG, so injection is deterministic per world regardless of how worlds
are batched across worker processes.

The injector reports ``{event_id: {"activations": n, "deactivations":
n}}`` for the ground-truth ledger; the ``faults.*`` registry metrics
mirror the same counts per world.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.faults.plan import FaultEvent, FaultKind, FaultPlan
from repro.network.link import NetworkType
from repro.obs import Observability


class FaultInjector:
    def __init__(self, sim, plan: FaultPlan, *,
                 device_id: Optional[str] = None,
                 operator: Optional[str] = None,
                 link=None,
                 servers: Optional[Dict[str, object]] = None,
                 dns=None,
                 service=None,
                 backend=None,
                 cluster=None,
                 middlebox=None,
                 obs: Optional[Observability] = None):
        self.sim = sim
        self.plan = plan
        self.device_id = device_id
        self.operator = operator
        self.link = link
        self.servers = servers or {}
        self.dns = dns
        self.service = service
        self.backend = backend
        #: A :class:`repro.cluster.coordinator.Coordinator` facade for
        #: the cluster fault kinds (None outside cluster worlds).
        self.cluster = cluster
        #: A :class:`repro.middlebox.TransparentProxy` (or the DNS
        #: variant) pre-installed disabled in this world; the
        #: ``transparent_proxy`` kind just flips its ``enabled`` flag.
        self.middlebox = middlebox
        #: Installed :class:`repro.middlebox.ImperfectClock` hooks,
        #: keyed by event id (``noisy_clock`` kind).
        self._clocks: Dict[str, object] = {}
        self.obs = obs or Observability(sim=sim)
        #: ``{event_id: {"activations": n, "deactivations": n}}`` --
        #: folded into the GroundTruthLedger after the run.
        self.counts: Dict[str, Dict[str, int]] = {}
        self._active = 0
        # Per-event run flags for the coexistence bulk-transfer loop:
        # deactivation flips the flag and the loop exits after the
        # download in flight completes.
        self._bulk_flags: Dict[str, list] = {}

    # -- installation --------------------------------------------------------
    def install(self) -> int:
        """Schedule a driver process per applicable event.  Returns the
        number installed."""
        installed = 0
        for event in self.plan:
            if not self._applies(event):
                continue
            self.sim.process(self._drive(event),
                             name="fault:%s" % event.event_id)
            self.obs.inc("faults.events_installed")
            installed += 1
        return installed

    def _applies(self, event: FaultEvent) -> bool:
        scope = event.scope
        if scope.get("device") is not None and \
                scope["device"] != self.device_id:
            return False
        if event.kind in (FaultKind.BURST_LOSS, FaultKind.LATENCY_SPIKE,
                          FaultKind.HANDOVER):
            if self.link is None:
                return False
            operator = scope.get("operator")
            return operator is None or operator == self.operator
        if event.kind == FaultKind.SERVER_OUTAGE:
            return scope.get("domain") in self.servers
        if event.kind == FaultKind.DNS_OUTAGE:
            return self.dns is not None
        if event.kind == FaultKind.VPN_REVOKE:
            if self.service is None:
                return False
            operator = scope.get("operator")
            return operator is None or operator == self.operator
        if event.kind == FaultKind.BACKEND_CRASH:
            return self.backend is not None
        if event.kind in (FaultKind.COLLECTOR_FAIL,
                          FaultKind.NET_PARTITION):
            # Only nodes the cluster actually runs: a fail scoped to
            # node-01 is a no-op in a --nodes 1 cluster, by design
            # (the digest invariant must hold with or without it).
            return self.cluster is not None and \
                self.cluster.is_active(str(event.scope.get("node")))
        if event.kind == FaultKind.NODE_JOIN:
            return self.cluster is not None and \
                self.cluster.is_standby(str(event.scope.get("node")))
        if event.kind == FaultKind.COEX_BULK:
            # Needs a live service (to host the DownloadManager) and a
            # link (the contention is on this device's access link).
            if self.service is None or self.link is None:
                return False
            operator = scope.get("operator")
            return operator is None or operator == self.operator
        if event.kind == FaultKind.TRANSPARENT_PROXY:
            # The chaos runner only builds a proxy in worlds whose
            # operator is in the event's scope, so clean-operator
            # worlds stay byte-identical to a proxy-free run.
            if self.middlebox is None:
                return False
            operator = scope.get("operator")
            return operator is None or operator == self.operator
        if event.kind == FaultKind.NOISY_CLOCK:
            if self.service is None:
                return False
            operator = scope.get("operator")
            return operator is None or operator == self.operator
        return False

    # -- the driver process --------------------------------------------------
    def _drive(self, event: FaultEvent):
        if event.start_ms > self.sim.now:
            yield self.sim.timeout(event.start_ms - self.sim.now)
        if event.kind == FaultKind.VPN_REVOKE:
            yield from self._drive_vpn_revoke(event)
            return
        if event.kind == FaultKind.HANDOVER:
            yield from self._drive_handover(event)
            return
        self._activate(event)
        self._mark(event, "activations")
        if event.duration_ms > 0:
            yield self.sim.timeout(event.duration_ms)
            self._deactivate(event)
            self._mark(event, "deactivations")

    def _activate(self, event: FaultEvent) -> None:
        params = event.params
        if event.kind == FaultKind.BURST_LOSS:
            self.link.set_burst_loss(
                float(params.get("p_enter", 0.3)),
                float(params.get("p_exit", 0.3)),
                loss_good=float(params.get("loss_good", 0.0)),
                loss_bad=float(params.get("loss_bad", 1.0)),
                up_rng=self.plan.rng(event.event_id,
                                     "burst:%s:up" % self.device_id),
                down_rng=self.plan.rng(event.event_id,
                                       "burst:%s:down" % self.device_id))
        elif event.kind == FaultKind.LATENCY_SPIKE:
            self.link.set_latency_spike(float(params.get("extra_ms", 100.0)))
        elif event.kind == FaultKind.SERVER_OUTAGE:
            self.servers[event.scope["domain"]].set_outage(
                str(params.get("mode", "refuse")),
                slow_ms=float(params.get("slow_ms", 0.0)))
        elif event.kind == FaultKind.DNS_OUTAGE:
            self.dns.set_outage(str(params.get("mode", "blackhole")))
        elif event.kind == FaultKind.BACKEND_CRASH:
            self.backend.crash(str(params.get("mode", "refuse")))
        elif event.kind == FaultKind.COLLECTOR_FAIL:
            self.cluster.fail_node(str(event.scope["node"]),
                                   str(params.get("mode", "refuse")))
        elif event.kind == FaultKind.NET_PARTITION:
            self.cluster.partition_node(
                str(event.scope["node"]),
                str(params.get("mode", "blackhole")))
        elif event.kind == FaultKind.NODE_JOIN:
            self.cluster.join_node(str(event.scope["node"]))
        elif event.kind == FaultKind.COEX_BULK:
            # Self-inflicted contention (docs/MODALITIES.md): a bulk
            # download app hammers the link while the foreground apps
            # keep measuring.  The queueing the bulk flow induces is
            # modelled directly as a latency spike on the access link;
            # the bulk app's own flows mark the cause in the dataset
            # (the detector keys on its throughput records).
            self.link.set_latency_spike(
                float(params.get("extra_ms", 80.0)))
            flag = [True]
            self._bulk_flags[event.event_id] = flag
            self.sim.process(
                self._bulk_transfer(event, flag),
                name="fault-bulk:%s" % event.event_id)
        elif event.kind == FaultKind.TRANSPARENT_PROXY:
            self.middlebox.enabled = True
        elif event.kind == FaultKind.NOISY_CLOCK:
            from repro.middlebox import install_imperfect_clock
            self._clocks[event.event_id] = install_imperfect_clock(
                self.service.device,
                quantum_ms=float(params.get("quantum_ms", 0.0)),
                jitter_ms=float(params.get("jitter_ms", 0.0)),
                rng=self.plan.rng(event.event_id,
                                  "clock:%s" % self.device_id),
                obs=self.obs)
        else:
            raise ValueError("no activator for %r" % event.kind)

    def _deactivate(self, event: FaultEvent) -> None:
        if event.kind == FaultKind.BURST_LOSS:
            self.link.clear_burst_loss()
        elif event.kind == FaultKind.LATENCY_SPIKE:
            self.link.clear_latency_spike()
        elif event.kind == FaultKind.SERVER_OUTAGE:
            self.servers[event.scope["domain"]].clear_outage()
        elif event.kind == FaultKind.DNS_OUTAGE:
            self.dns.clear_outage()
        elif event.kind == FaultKind.BACKEND_CRASH:
            self.backend.restart()
        elif event.kind == FaultKind.NET_PARTITION:
            self.cluster.heal_node(str(event.scope["node"]))
        elif event.kind == FaultKind.COEX_BULK:
            self.link.clear_latency_spike()
            flag = self._bulk_flags.pop(event.event_id, None)
            if flag is not None:
                flag[0] = False
        elif event.kind == FaultKind.TRANSPARENT_PROXY:
            self.middlebox.enabled = False
        elif event.kind == FaultKind.NOISY_CLOCK:
            clock = self._clocks.pop(event.event_id, None)
            if clock is not None:
                clock.uninstall()

    def _bulk_transfer(self, event: FaultEvent, flag: list):
        """The coexistence workload: repeated DownloadManager fetches
        from the scoped domain's server for as long as the event is
        active.  Runs through the relay like any app traffic, so the
        bulk app's flows land in the dataset as TPUT_* / ENERGY
        records under the DownloadManager package -- the ground-truth
        marker the shared coexistence rule keys on."""
        from repro.crowd.campaign import stable_ip_for_domain
        from repro.phone.download_manager import DownloadManager
        domain = str(event.params.get("domain", "bulk.example"))
        server_ip = str(event.params.get("server_ip",
                                         stable_ip_for_domain(domain)))
        manager = DownloadManager(self.service.device)
        rng = self.plan.rng(event.event_id,
                            "bulk:%s" % self.device_id)
        while flag[0]:
            yield manager.enqueue(server_ip, port=443)
            yield self.sim.timeout(rng.uniform(80.0, 240.0))

    def _drive_vpn_revoke(self, event: FaultEvent):
        """Consent revoked: the service tears itself down (via the
        ``on_revoked`` callback); we wait the teardown out, hold the
        VPN down for ``duration_ms``, then restart -- the no-hang path
        the watchdog test drives."""
        service = self.service
        if not service.running:
            return
        service.vpn.revoke()
        self._mark(event, "activations")
        stop = service.revoke_stop
        if stop is not None and not stop.triggered:
            yield stop
        if event.duration_ms > 0:
            yield self.sim.timeout(event.duration_ms)
        if not service.running:
            service.start()
        self._mark(event, "deactivations")

    def _drive_handover(self, event: FaultEvent):
        """A wifi<->cellular handover: a short radio gap where every
        packet is lost, then the link comes back as the other network
        type; after ``duration_ms`` the device hands back."""
        link = self.link
        params = event.params
        original = link.network_type
        to_type = str(params.get("to_type", NetworkType.LTE))
        gap_ms = float(params.get("gap_ms", 150.0))
        self._mark(event, "activations")
        link.set_burst_loss(1.0, 0.0, loss_good=1.0, loss_bad=1.0)
        yield self.sim.timeout(gap_ms)
        link.clear_burst_loss()
        link.network_type = to_type
        if event.duration_ms > 0:
            yield self.sim.timeout(event.duration_ms)
            link.set_burst_loss(1.0, 0.0, loss_good=1.0, loss_bad=1.0)
            yield self.sim.timeout(gap_ms)
            link.clear_burst_loss()
            link.network_type = original
            self._mark(event, "deactivations")

    # -- accounting ----------------------------------------------------------
    def _mark(self, event: FaultEvent, what: str) -> None:
        entry = self.counts.setdefault(
            event.event_id, {"activations": 0, "deactivations": 0})
        entry[what] += 1
        if what == "activations":
            self.obs.inc("faults.activated")
            self._active += 1
        else:
            self.obs.inc("faults.deactivated")
            self._active -= 1
        self.obs.set_gauge("faults.active", float(self._active))


__all__ = ["FaultInjector"]
