"""The chaos scenario library: named, self-contained experiments.

A :class:`Scenario` bundles a miniature world description (operators,
devices, apps) with the fault events injected into it.  The world
parameters live here rather than in the runner so that a scenario name
plus a seed fully determines the experiment -- ``python -m repro chaos
--scenario bursty_lte --seed 7`` is reproducible from the command line
alone.

Each preset is designed so the faults leave a *diagnosable* footprint
(see ``faults/verify.py``):

* ``bursty_lte``      -- Gilbert-Elliott loss on one LTE operator and a
  latency spike on a second, with a clean third as the peer baseline;
  connect RTTs inflate through SYN retransmission (paper section 4.1)
  and the operator diagnosis flags the access/core network.
* ``server_brownout`` -- slow-accept brownouts on two apps' servers
  (diagnosed SERVER_SIDE against healthy peers) plus a refuse window
  on a third (refused-connect failure records).
* ``dns_outage``      -- resolver blackhole window; timed-out relay
  queries become DNS failure records.  Small and fast: the CI chaos
  smoke job runs this one.
* ``handover_storm``  -- repeated wifi<->LTE flips with radio gaps;
  records carry both network types.
* ``backend_crash``   -- collector crash window under an active
  uploader; exercises ack-timeout, idempotent replay, and recovery.
* ``multi_crash``     -- two crash windows (refuse, then blackhole);
  each restart is a real WAL/segment recovery and the recovered
  rollups must digest-match the device's own records.
* ``vpn_flap``        -- VPN consent revoked twice mid-run; the relay
  tears down and restarts (the no-hang watchdog scenario).
* ``collector_failover`` -- cluster tier: one of three collector nodes
  dies; heartbeat detection, ring failover, dedup handoff.
* ``network_partition``  -- cluster tier: a node is unreachable for a
  window but alive; no failover, heal re-drives stranded uploads.
* ``rebalance_storm``    -- cluster tier: two standby nodes join;
  bounded key movement with live dedup handoff.
* ``coexistence``        -- a bulk download app inflates a foreground
  app's RTTs on one operator; runs with the beyond-RTT modality
  records enabled so the bulk transfer is visible as throughput
  evidence (docs/MODALITIES.md).
* ``transparent_proxy``  -- a split-connection middlebox on one
  operator answers SYNs locally on ports 80/443; SYN RTTs collapse to
  middlebox RTT while app-layer RTTs still span the full path, and
  the shared divergence rule flags the operator
  (docs/MIDDLEBOX.md).
* ``noisy_clock``        -- the device clock quantises every
  timestamp read to a coarse grid; both RTT kinds distort *together*,
  so the divergence rule must stay inert while the ablation
  quantifies the accuracy cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.faults.plan import FaultEvent, FaultKind, FaultPlan
from repro.network.link import NetworkType


@dataclass(frozen=True)
class ScenarioApp:
    """One app and the server behind it."""
    package: str
    domain: str
    path_oneway_ms: float = 10.0
    sigma: float = 0.2
    #: Destination port the app connects to.  443 by default; the
    #: middlebox scenarios put one app on a non-intercepted port to
    #: prove port-selectivity (docs/MIDDLEBOX.md).
    port: int = 443


@dataclass(frozen=True)
class ScenarioOperator:
    """One operator; the scenario runs ``devices`` phones on it."""
    name: str
    network_type: str = NetworkType.WIFI
    access_oneway_ms: float = 5.0
    sigma: float = 0.2
    devices: int = 2


def _slug(name: str) -> str:
    return name.lower().replace(" ", "-")


@dataclass(frozen=True)
class Scenario:
    name: str
    description: str
    operators: Tuple[ScenarioOperator, ...]
    apps: Tuple[ScenarioApp, ...]
    events: Tuple[FaultEvent, ...]
    connects: int = 30
    think_ms: Tuple[float, float] = (200.0, 800.0)
    #: Sim-time budget per device world; the no-hang watchdog bound.
    duration_ms: float = 3_600_000.0
    with_backend: bool = False
    uploader_interval_ms: float = 2_000.0
    uploader_min_batch: int = 4
    uploader_ack_timeout_ms: float = 3_000.0
    #: Collector nodes in the cluster tier (0 = classic single
    #: collector; >0 hands the world to ``repro.cluster.runner``).
    cluster_nodes: int = 0
    #: Standby nodes available for ``node_join`` rebalances.
    cluster_standby: int = 0
    cluster_vnodes: int = 32
    cluster_heartbeat_ms: float = 1_000.0
    cluster_miss_threshold: int = 3
    #: Emit the beyond-RTT modality records (throughput / energy from
    #: the relay, AoI from the uploader) -- see docs/MODALITIES.md.
    modalities: bool = False
    #: Emit app-layer RTT records (first request byte to first
    #: response byte) alongside the SYN RTTs -- the second half of the
    #: middlebox-divergence signal (docs/MIDDLEBOX.md).
    app_rtt: bool = False

    def plan(self, seed: int) -> FaultPlan:
        """The fault plan for one run.  Events are static data; the
        seed picks the per-event effect RNG streams."""
        return FaultPlan(seed=seed, events=list(self.events))

    def devices(self) -> List[Tuple[str, ScenarioOperator]]:
        """``(device_id, operator)`` in canonical (shardable) order."""
        out: List[Tuple[str, ScenarioOperator]] = []
        for operator in self.operators:
            for index in range(operator.devices):
                out.append(("chaos-%s-%02d" % (_slug(operator.name),
                                               index), operator))
        return out


def _bursty_lte() -> Scenario:
    return Scenario(
        name="bursty_lte",
        description="Burst loss on one LTE operator, latency spike on "
                    "another, third clean as the peer baseline.",
        operators=(
            ScenarioOperator("Jade LTE", NetworkType.LTE, 6.0),
            ScenarioOperator("Coral LTE", NetworkType.LTE, 6.0),
            ScenarioOperator("Slate LTE", NetworkType.LTE, 6.0),
        ),
        apps=(
            ScenarioApp("chat.pigeon", "pigeon.example", 9.0),
            ScenarioApp("cdn.lark", "lark.example", 11.0),
            ScenarioApp("video.heron", "heron.example", 10.0),
        ),
        events=(
            FaultEvent("e-burst", FaultKind.BURST_LOSS, 0.0, 0.0,
                       scope={"operator": "Slate LTE"},
                       params={"p_enter": 0.45, "p_exit": 0.25,
                               "loss_bad": 0.7, "loss_good": 0.0}),
            FaultEvent("e-spike", FaultKind.LATENCY_SPIKE, 0.0, 0.0,
                       scope={"operator": "Coral LTE"},
                       params={"extra_ms": 120.0}),
        ),
        connects=40,
        think_ms=(200.0, 1000.0),
    )


def _server_brownout() -> Scenario:
    return Scenario(
        name="server_brownout",
        description="Slow-accept brownout on two apps' servers plus a "
                    "refuse window on a third; one healthy operator.",
        operators=(
            ScenarioOperator("Basalt Wifi", NetworkType.WIFI, 4.0,
                             devices=3),
        ),
        apps=(
            ScenarioApp("shop.fennec", "fennec.example", 9.0),
            ScenarioApp("mail.oriole", "oriole.example", 10.0),
            ScenarioApp("maps.vireo", "vireo.example", 8.0),
            ScenarioApp("feed.tanager", "tanager.example", 11.0),
            ScenarioApp("play.siskin", "siskin.example", 10.0),
            ScenarioApp("news.egret", "egret.example", 9.0),
        ),
        events=(
            FaultEvent("e-brown-1", FaultKind.SERVER_OUTAGE, 0.0, 0.0,
                       scope={"domain": "fennec.example"},
                       params={"mode": "slow_accept", "slow_ms": 300.0}),
            FaultEvent("e-brown-2", FaultKind.SERVER_OUTAGE, 0.0, 0.0,
                       scope={"domain": "oriole.example"},
                       params={"mode": "slow_accept", "slow_ms": 350.0}),
            FaultEvent("e-refuse", FaultKind.SERVER_OUTAGE,
                       20_000.0, 40_000.0,
                       scope={"domain": "vireo.example"},
                       params={"mode": "refuse"}),
        ),
        connects=40,
        think_ms=(500.0, 3000.0),
    )


def _dns_outage() -> Scenario:
    return Scenario(
        name="dns_outage",
        description="Resolver blackhole window; relay DNS timeouts "
                    "become failure records.  (CI smoke scenario.)",
        operators=(
            ScenarioOperator("Quartz Wifi", NetworkType.WIFI, 4.0),
        ),
        apps=(
            ScenarioApp("web.plover", "plover.example", 9.0),
            ScenarioApp("mail.dunlin", "dunlin.example", 10.0),
        ),
        events=(
            FaultEvent("e-dns", FaultKind.DNS_OUTAGE,
                       10_000.0, 25_000.0,
                       scope={"server": "8.8.8.8"},
                       params={"mode": "blackhole"}),
        ),
        connects=30,
        think_ms=(400.0, 1500.0),
    )


def _handover_storm() -> Scenario:
    return Scenario(
        name="handover_storm",
        description="Repeated wifi<->LTE handovers with radio gaps.",
        operators=(
            ScenarioOperator("Cobalt Mobile", NetworkType.WIFI, 5.0),
        ),
        apps=(
            ScenarioApp("web.plover", "plover.example", 9.0),
            ScenarioApp("video.heron", "heron.example", 10.0),
            ScenarioApp("chat.pigeon", "pigeon.example", 9.0),
        ),
        events=tuple(
            FaultEvent("e-hand-%d" % index, FaultKind.HANDOVER,
                       6_000.0 * (index + 1), 4_000.0,
                       scope={"operator": "Cobalt Mobile"},
                       params={"to_type": NetworkType.LTE,
                               "gap_ms": 120.0})
            for index in range(3)),
        connects=40,
        think_ms=(200.0, 800.0),
    )


def _backend_crash() -> Scenario:
    return Scenario(
        name="backend_crash",
        description="Collector crash window under an active uploader; "
                    "ack-timeout, idempotent replay, recovery.",
        operators=(
            ScenarioOperator("Granite Wifi", NetworkType.WIFI, 4.0),
        ),
        apps=(
            ScenarioApp("web.plover", "plover.example", 9.0),
            ScenarioApp("mail.dunlin", "dunlin.example", 10.0),
        ),
        events=(
            FaultEvent("e-crash", FaultKind.BACKEND_CRASH,
                       12_000.0, 8_000.0,
                       scope={"server": "collector"},
                       params={"mode": "refuse"}),
        ),
        connects=40,
        think_ms=(200.0, 1000.0),
        with_backend=True,
    )


def _multi_crash() -> Scenario:
    return Scenario(
        name="multi_crash",
        description="Two collector crash windows (refuse then "
                    "blackhole) under an active uploader; every "
                    "restart is a WAL/segment recovery and the "
                    "recovered rollups must digest-match a store "
                    "built from the device records.",
        operators=(
            ScenarioOperator("Flint Wifi", NetworkType.WIFI, 4.0),
        ),
        apps=(
            ScenarioApp("web.plover", "plover.example", 9.0),
            ScenarioApp("mail.dunlin", "dunlin.example", 10.0),
        ),
        events=(
            FaultEvent("e-crash-1", FaultKind.BACKEND_CRASH,
                       10_000.0, 6_000.0,
                       scope={"server": "collector"},
                       params={"mode": "refuse"}),
            FaultEvent("e-crash-2", FaultKind.BACKEND_CRASH,
                       24_000.0, 6_000.0,
                       scope={"server": "collector"},
                       params={"mode": "blackhole"}),
        ),
        connects=45,
        think_ms=(200.0, 1000.0),
        with_backend=True,
    )


def _vpn_flap() -> Scenario:
    return Scenario(
        name="vpn_flap",
        description="VPN consent revoked twice mid-run; the relay "
                    "tears down and restarts without hanging.",
        operators=(
            ScenarioOperator("Opal Wifi", NetworkType.WIFI, 4.0),
        ),
        apps=(
            ScenarioApp("web.plover", "plover.example", 9.0),
            ScenarioApp("chat.pigeon", "pigeon.example", 9.0),
        ),
        events=(
            FaultEvent("e-flap-1", FaultKind.VPN_REVOKE,
                       8_000.0, 5_000.0, scope={}, params={}),
            FaultEvent("e-flap-2", FaultKind.VPN_REVOKE,
                       20_000.0, 4_000.0, scope={}, params={}),
        ),
        connects=40,
        think_ms=(300.0, 900.0),
    )


def _collector_failover() -> Scenario:
    return Scenario(
        name="collector_failover",
        description="One of three collector nodes dies mid-campaign; "
                    "heartbeats miss, the ring re-homes its devices, "
                    "dedup handoff absorbs replays, and the global "
                    "rollup digest must still equal a single-collector "
                    "run.",
        operators=(
            ScenarioOperator("Cinnabar Wifi", NetworkType.WIFI, 4.0,
                             devices=3),
            ScenarioOperator("Verdant Wifi", NetworkType.WIFI, 5.0,
                             devices=2),
        ),
        apps=(
            ScenarioApp("web.plover", "plover.example", 9.0),
            ScenarioApp("mail.dunlin", "dunlin.example", 10.0),
        ),
        events=(
            FaultEvent("e-node-fail", FaultKind.COLLECTOR_FAIL,
                       12_000.0, 0.0,
                       scope={"node": "node-01"},
                       params={"mode": "refuse"}),
        ),
        connects=35,
        think_ms=(300.0, 1200.0),
        with_backend=True,
        cluster_nodes=3,
    )


def _network_partition() -> Scenario:
    return Scenario(
        name="network_partition",
        description="One collector node is blackholed for a window "
                    "but never dies: heartbeats keep passing, no "
                    "failover fires, and the heal re-drives any "
                    "stranded uploads -- zero loss without movement.",
        operators=(
            ScenarioOperator("Cinnabar Wifi", NetworkType.WIFI, 4.0,
                             devices=3),
            ScenarioOperator("Verdant Wifi", NetworkType.WIFI, 5.0,
                             devices=2),
        ),
        apps=(
            ScenarioApp("web.plover", "plover.example", 9.0),
            ScenarioApp("mail.dunlin", "dunlin.example", 10.0),
        ),
        events=(
            FaultEvent("e-partition", FaultKind.NET_PARTITION,
                       10_000.0, 12_000.0,
                       scope={"node": "node-00"},
                       params={"mode": "blackhole"}),
        ),
        connects=35,
        think_ms=(300.0, 1200.0),
        with_backend=True,
        cluster_nodes=3,
    )


def _rebalance_storm() -> Scenario:
    return Scenario(
        name="rebalance_storm",
        description="Two standby collector nodes join mid-campaign; "
                    "each join must move only the keys the ring's "
                    "minimal-movement bound allows, with live dedup "
                    "handoff keeping replays idempotent.",
        operators=(
            ScenarioOperator("Cinnabar Wifi", NetworkType.WIFI, 4.0,
                             devices=3),
            ScenarioOperator("Verdant Wifi", NetworkType.WIFI, 5.0,
                             devices=2),
        ),
        apps=(
            ScenarioApp("web.plover", "plover.example", 9.0),
            ScenarioApp("mail.dunlin", "dunlin.example", 10.0),
        ),
        events=(
            FaultEvent("e-join-1", FaultKind.NODE_JOIN,
                       10_000.0, 0.0,
                       scope={"node": "node-03"}, params={}),
            FaultEvent("e-join-2", FaultKind.NODE_JOIN,
                       18_000.0, 0.0,
                       scope={"node": "node-04"}, params={}),
        ),
        connects=35,
        think_ms=(300.0, 1200.0),
        with_backend=True,
        cluster_nodes=3,
        cluster_standby=2,
    )


def _coexistence() -> Scenario:
    return Scenario(
        name="coexistence",
        description="A bulk download app saturates one operator's "
                    "access link while foreground apps keep "
                    "measuring: their connect RTTs inflate, and the "
                    "bulk app's own throughput records mark the "
                    "cause.  Runs with the modality records on "
                    "(docs/MODALITIES.md).",
        operators=(
            ScenarioOperator("Onyx Wifi", NetworkType.WIFI, 5.0,
                             devices=2),
            ScenarioOperator("Pearl Wifi", NetworkType.WIFI, 5.0,
                             devices=2),
        ),
        apps=(
            ScenarioApp("web.plover", "plover.example", 9.0),
            ScenarioApp("chat.pigeon", "pigeon.example", 9.0),
        ),
        events=(
            FaultEvent("e-coex", FaultKind.COEX_BULK,
                       5_000.0, 45_000.0,
                       scope={"operator": "Onyx Wifi"},
                       params={"domain": "plover.example",
                               "extra_ms": 60.0}),
        ),
        connects=30,
        think_ms=(300.0, 1200.0),
        with_backend=True,
        modalities=True,
    )


def _transparent_proxy() -> Scenario:
    return Scenario(
        name="transparent_proxy",
        description="A split-connection middlebox on one operator "
                    "answers SYNs at middlebox RTT on ports 80/443 "
                    "and relays the bytes upstream itself.  SYN RTTs "
                    "collapse while app-layer RTTs still span the "
                    "full path; the shared divergence rule flags the "
                    "operator (docs/MIDDLEBOX.md).  One app sits on "
                    "a non-intercepted port as the in-scenario "
                    "port-selectivity control.",
        operators=(
            ScenarioOperator("Ferrite Wifi", NetworkType.WIFI, 4.0,
                             devices=2),
            ScenarioOperator("Lumen Wifi", NetworkType.WIFI, 4.0,
                             devices=2),
        ),
        apps=(
            ScenarioApp("web.plover", "plover.example", 25.0),
            ScenarioApp("chat.pigeon", "pigeon.example", 25.0),
            ScenarioApp("news.egret", "egret.example", 25.0,
                        port=8443),
        ),
        events=(
            FaultEvent("e-proxy", FaultKind.TRANSPARENT_PROXY,
                       0.0, 0.0,
                       scope={"operator": "Ferrite Wifi"},
                       params={"intercept_ports": [80, 443]}),
        ),
        connects=36,
        think_ms=(300.0, 1200.0),
        with_backend=True,
        app_rtt=True,
    )


def _noisy_clock() -> Scenario:
    return Scenario(
        name="noisy_clock",
        description="The device clock quantises every timestamp read "
                    "to a 5 ms grid -- no middlebox anywhere.  Both "
                    "RTT kinds distort together, so the divergence "
                    "rule must stay inert; the imperfection ablation "
                    "quantifies the per-source accuracy cost "
                    "(docs/MIDDLEBOX.md).",
        operators=(
            ScenarioOperator("Topaz Wifi", NetworkType.WIFI, 4.0,
                             devices=2),
        ),
        apps=(
            ScenarioApp("web.plover", "plover.example", 10.0),
            ScenarioApp("chat.pigeon", "pigeon.example", 9.0),
        ),
        events=(
            FaultEvent("e-clock", FaultKind.NOISY_CLOCK, 0.0, 0.0,
                       scope={},
                       params={"quantum_ms": 5.0, "jitter_ms": 0.0}),
        ),
        connects=30,
        think_ms=(300.0, 1200.0),
        with_backend=True,
        app_rtt=True,
    )


def _build_registry() -> Dict[str, Scenario]:
    scenarios = [_bursty_lte(), _server_brownout(), _dns_outage(),
                 _handover_storm(), _backend_crash(), _multi_crash(),
                 _vpn_flap(), _collector_failover(),
                 _network_partition(), _rebalance_storm(),
                 _coexistence(), _transparent_proxy(), _noisy_clock()]
    return {scenario.name: scenario for scenario in scenarios}


SCENARIOS: Dict[str, Scenario] = _build_registry()


def get_scenario(name: str) -> Scenario:
    try:
        return SCENARIOS[name]
    except KeyError:
        raise KeyError("unknown scenario %r (have: %s)"
                       % (name, ", ".join(sorted(SCENARIOS))))


__all__ = ["Scenario", "ScenarioApp", "ScenarioOperator", "SCENARIOS",
           "get_scenario"]
