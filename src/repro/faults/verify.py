"""Close the loop: join the ground-truth ledger against the pipeline.

Each activated ledger entry is checked for the evidence the
measurement/diagnosis pipeline *should* show if the injection worked
and the analysis localises it correctly:

* ``server_outage``/slow-accept -> :func:`diagnose_app` flags the app
  SERVER_SIDE (slow vs healthy peers on the same networks);
* ``server_outage``/refuse or blackhole -> refused/timed-out connect
  failure records for the scoped domain inside the fault window;
* ``burst_loss``/``latency_spike`` -> the operator diagnosis flags the
  access or core network (burst loss inflates connect RTT through SYN
  retransmission but not the surviving DNS samples -> CORE; a latency
  spike inflates both -> ACCESS);
* ``dns_outage`` -> DNS timeout failure records inside the window;
* ``handover`` -> records on both network types for the operator;
* ``vpn_revoke`` -> a measurement gap in the down-window, the service
  running again afterwards, records after recovery;
* ``backend_crash`` -> upload failures/ack-timeouts during the crash
  and a fully re-synced uploader afterwards;
* ``transparent_proxy`` -> the shared divergence rule fires on the
  proxied operator's raw SYN vs app-layer RTTs;
* ``noisy_clock`` -> the imperfect-clock counters fired and quantised
  SYN RTTs sit on the configured grid.

Recall is the fraction of activated faults whose evidence shows up;
precision is the fraction of non-healthy diagnosis findings explained
by some injected fault.  The closed-loop tests assert recall >= 0.9
for the link- and server-fault presets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import statistics

from repro.analysis import rules
from repro.analysis.diagnosis import (
    Finding,
    Verdict,
    diagnose_all,
    diagnose_app,
    diagnose_operator,
)
from repro.core.records import FailureKind, MeasurementKind
from repro.faults.ledger import GroundTruthLedger, LedgerEntry
from repro.faults.plan import FaultKind
from repro.faults.scenarios import Scenario, get_scenario

#: Evidence may trail the fault window (a SYN sent just before the
#: window closes fails just after it).
_WINDOW_SLACK_MS = 2_000.0


@dataclass
class EntryCheck:
    """One activated fault, and whether its evidence was found."""
    event_id: str
    kind: str
    matched: bool
    evidence: str


@dataclass
class VerificationReport:
    scenario_name: str
    seed: int
    checks: List[EntryCheck] = field(default_factory=list)
    findings: List[Finding] = field(default_factory=list)
    unexplained: List[str] = field(default_factory=list)

    @property
    def recall(self) -> float:
        if not self.checks:
            return 1.0
        return sum(1 for c in self.checks if c.matched) / len(self.checks)

    @property
    def precision(self) -> float:
        total = len(self.findings)
        if total == 0:
            return 1.0
        return (total - len(self.unexplained)) / total

    def recall_for(self, *kinds: str) -> float:
        checks = [c for c in self.checks if c.kind in kinds]
        if not checks:
            return 1.0
        return sum(1 for c in checks if c.matched) / len(checks)

    def summary(self) -> str:
        lines = ["%s seed=%d: recall %.2f precision %.2f"
                 % (self.scenario_name, self.seed, self.recall,
                    self.precision)]
        for check in self.checks:
            lines.append("  [%s] %s (%s): %s"
                         % ("ok" if check.matched else "MISS",
                            check.event_id, check.kind, check.evidence))
        for subject in self.unexplained:
            lines.append("  [??] unexplained finding: %s" % subject)
        return "\n".join(lines)


def _failures_in_window(records, entry: LedgerEntry, kind: str,
                        failure: str, domain: Optional[str] = None
                        ) -> int:
    end = (entry.end_ms if entry.end_ms > entry.start_ms
           else float("inf"))
    return sum(
        1 for r in records
        if r.kind == kind and r.failure == failure
        and (domain is None or r.domain == domain)
        and entry.start_ms <= r.timestamp_ms <= end + _WINDOW_SLACK_MS)


def verify_scenario(result, scenario: Optional[Scenario] = None,
                    min_samples: int = 12,
                    slow_factor: float = 1.6) -> VerificationReport:
    """Score a :class:`~repro.faults.chaos.ChaosResult` against its
    ledger.  ``min_samples`` is scaled for the preset worlds (a few
    devices), not the paper's 200-sample crowd threshold."""
    scenario = scenario or get_scenario(result.scenario_name)
    ledger: GroundTruthLedger = result.ledger
    stats = result.stats
    store = result.load()
    records = list(store)
    package_of_domain = {spec.domain: spec.package
                         for spec in scenario.apps}
    report = VerificationReport(scenario_name=result.scenario_name,
                                seed=result.seed)
    report.findings = diagnose_all(store, min_samples=min_samples,
                                   slow_factor=slow_factor, top=50)

    for entry in ledger.activated():
        matched, evidence = _check_entry(
            entry, store, records, stats, scenario, package_of_domain,
            min_samples, slow_factor)
        report.checks.append(EntryCheck(
            event_id=entry.event_id, kind=entry.kind,
            matched=matched, evidence=evidence))

    # Precision: every non-healthy finding should trace to a fault.
    explained_operators = {
        e.scope.get("operator") for e in ledger.activated()
        if e.kind in (FaultKind.BURST_LOSS, FaultKind.LATENCY_SPIKE,
                      FaultKind.HANDOVER, FaultKind.COEX_BULK,
                      FaultKind.TRANSPARENT_PROXY,
                      FaultKind.NOISY_CLOCK)}
    explained_apps = {
        package_of_domain.get(e.scope.get("domain"))
        for e in ledger.activated()
        if e.kind == FaultKind.SERVER_OUTAGE}
    # The bulk-transfer app is the coexistence fault's own traffic:
    # any finding about it (or about apps pinned to the congested
    # operator) traces straight to the injection.
    if any(e.kind == FaultKind.COEX_BULK for e in ledger.activated()):
        explained_apps.add(rules.COEX_BULK_PACKAGE)
    # A split-connection proxy corrupts the comparative baselines: the
    # proxied operator's SYN median collapses to middlebox RTT, so
    # clean *operators* look inflated by contrast, and apps on
    # non-intercepted ports look slow next to their proxied peers.
    # Both trace straight to the injection.
    proxy_events = [e for e in ledger.activated()
                    if e.kind == FaultKind.TRANSPARENT_PROXY]
    if proxy_events:
        explained_operators.update(
            f.subject for f in report.findings if f.kind == "operator")
        intercepted = set()
        for e in proxy_events:
            intercepted.update(
                int(p) for p in e.params.get("intercept_ports",
                                             (80, 443)))
        explained_apps.update(spec.package for spec in scenario.apps
                              if spec.port not in intercepted)
    for finding in report.findings:
        if finding.kind == "operator" and \
                finding.subject in explained_operators:
            continue
        if finding.kind == "app" and finding.subject in explained_apps:
            continue
        report.unexplained.append(
            "%s %s -> %s" % (finding.kind, finding.subject,
                             finding.verdict))
    return report


def _check_entry(entry: LedgerEntry, store, records, stats,
                 scenario: Scenario, package_of_domain,
                 min_samples: int, slow_factor: float):
    if entry.kind in (FaultKind.BURST_LOSS, FaultKind.LATENCY_SPIKE):
        operator = entry.scope.get("operator")
        finding = diagnose_operator(store, operator,
                                    min_samples=min_samples,
                                    slow_factor=slow_factor)
        expect = (Verdict.ACCESS_NETWORK, Verdict.CORE_NETWORK)
        return (finding.verdict in expect,
                "operator %s diagnosed %s" % (operator, finding.verdict))

    if entry.kind == FaultKind.SERVER_OUTAGE:
        domain = entry.scope.get("domain")
        mode = str(entry.params.get("mode", "refuse"))
        if mode == "slow_accept":
            package = package_of_domain.get(domain)
            finding = diagnose_app(store, package,
                                   min_samples=min_samples,
                                   slow_factor=slow_factor)
            return (finding.verdict == Verdict.SERVER_SIDE,
                    "app %s diagnosed %s" % (package, finding.verdict))
        failure = (FailureKind.REFUSED if mode == "refuse"
                   else FailureKind.TIMEOUT)
        hits = _failures_in_window(records, entry, MeasurementKind.TCP,
                                   failure, domain=domain)
        return (hits > 0, "%d %s failure records for %s in window"
                % (hits, failure, domain))

    if entry.kind == FaultKind.DNS_OUTAGE:
        hits = _failures_in_window(records, entry, MeasurementKind.DNS,
                                   FailureKind.TIMEOUT)
        return (hits > 0,
                "%d DNS timeout failure records in window" % hits)

    if entry.kind == FaultKind.HANDOVER:
        operator = entry.scope.get("operator")
        types = {r.network_type for r in records
                 if r.operator == operator}
        return (len(types) >= 2,
                "operator %s records carry network types %s"
                % (operator, sorted(types)))

    if entry.kind == FaultKind.VPN_REVOKE:
        revoked = stats.get("vpn_revocations", 0)
        recovered = (stats.get("service_running", 0)
                     == stats.get("workloads_completed", 0))
        # The relay is down inside the window: no samples should start
        # there (teardown slack on the leading edge).
        gap_lo = entry.start_ms + _WINDOW_SLACK_MS
        in_gap = sum(1 for r in records
                     if gap_lo <= r.timestamp_ms <= entry.end_ms)
        after = sum(1 for r in records
                    if r.timestamp_ms > entry.end_ms)
        ok = revoked >= entry.activations and recovered \
            and in_gap == 0 and after > 0
        return (ok, "revocations=%d recovered=%s gap_records=%d "
                "records_after=%d" % (revoked, recovered, in_gap, after))

    if entry.kind == FaultKind.BACKEND_CRASH:
        crashes = stats.get("backend_crashes", 0)
        recoveries = stats.get("backend_recoveries", 0)
        disrupted = (stats.get("uploader_failures", 0)
                     + stats.get("uploader_ack_timeouts", 0))
        resynced = (stats.get("uploader_records_acked", 0)
                    == stats.get("store_records", -1))
        # Recovery ground truth: every crash was followed by a real
        # WAL/segment recovery, and every device world's recovered
        # rollup store digest-matched a store built straight from its
        # own records (the in-memory state was discarded at crash).
        recovered = (recoveries > 0
                     and stats.get("backend_rollup_matches_store", -1)
                     == stats.get("workloads_completed", 0))
        ok = crashes > 0 and disrupted > 0 and resynced and recovered
        return (ok, "crashes=%d recoveries=%d upload_disruptions=%d "
                "resynced=%s rollups_recovered=%s"
                % (crashes, recoveries, disrupted, resynced, recovered))

    if entry.kind == FaultKind.COEX_BULK:
        # The evidence is the *shared* coexistence rule over the raw
        # records: bulk-app throughput samples present, and the
        # faulted operator's TCP median inflated past the merged
        # peers' median (repro.analysis.rules.coexistence_verdict --
        # the same function the online detector applies to rollups).
        operator = entry.scope.get("operator")
        bulk = sum(1 for r in records
                   if r.kind in (MeasurementKind.TPUT_UP,
                                 MeasurementKind.TPUT_DOWN)
                   and r.app_package == rules.COEX_BULK_PACKAGE)
        faulted = [r.rtt_ms for r in records
                   if r.kind == MeasurementKind.TCP
                   and r.failure is None and r.operator == operator]
        peers = [r.rtt_ms for r in records
                 if r.kind == MeasurementKind.TCP
                 and r.failure is None and r.operator != operator]
        if not faulted or not peers:
            return (False, "no TCP samples to compare (faulted=%d "
                    "peer=%d)" % (len(faulted), len(peers)))
        median = statistics.median(faulted)
        peer_median = statistics.median(peers)
        verdict = rules.coexistence_verdict(median, peer_median, bulk)
        return (verdict, "operator %s median %.1f ms vs peers %.1f ms "
                "with %d bulk throughput samples"
                % (operator, median, peer_median, bulk))

    if entry.kind == FaultKind.TRANSPARENT_PROXY:
        # The evidence is the *shared* divergence rule over the raw
        # records: the proxied operator's SYN-RTT median has split
        # from its app-layer-RTT median
        # (repro.analysis.rules.proxy_divergence_verdict -- the same
        # function ProxyDivergenceRule applies to rollups online).
        operator = entry.scope.get("operator")
        syn = [r.rtt_ms for r in records
               if r.kind == MeasurementKind.TCP
               and r.failure is None and r.operator == operator]
        app = [r.rtt_ms for r in records
               if r.kind == MeasurementKind.APP_RTT
               and r.operator == operator]
        if not syn or not app:
            return (False, "no RTT samples to compare (syn=%d app=%d)"
                    % (len(syn), len(app)))
        syn_median = statistics.median(syn)
        app_median = statistics.median(app)
        verdict = rules.proxy_divergence_verdict(
            syn_median, app_median, len(app))
        return (verdict, "operator %s syn median %.1f ms vs app-layer "
                "median %.1f ms over %d app samples"
                % (operator, syn_median, app_median, len(app)))

    if entry.kind == FaultKind.NOISY_CLOCK:
        # The clock hook charges every distorted read to a counter, so
        # the evidence is direct: each configured imperfection source
        # fired at least once, and (for quantisation) the recorded
        # successful SYN RTTs actually sit on the configured grid --
        # RTT = end - start with both ends quantised to the same
        # quantum is itself a quantum multiple.
        quantum = float(entry.params.get("quantum_ms", 0.0))
        jitter = float(entry.params.get("jitter_ms", 0.0))
        quantised = stats.get("imperfect_quantised_samples", 0)
        jittered = stats.get("imperfect_jitter_applied", 0)
        ok = (quantum <= 0 or quantised > 0) \
            and (jitter <= 0 or jittered > 0)
        on_grid = True
        if quantum > 0 and jitter <= 0:
            end = (entry.end_ms if entry.end_ms > entry.start_ms
                   else float("inf"))
            rtts = [r.rtt_ms for r in records
                    if r.kind == MeasurementKind.TCP
                    and r.failure is None
                    and entry.start_ms <= r.timestamp_ms <= end]
            on_grid = all(
                abs(rtt / quantum - round(rtt / quantum)) < 1e-9
                for rtt in rtts)
            ok = ok and bool(rtts) and on_grid
        return (ok, "quantised_reads=%d jitter_applied=%d "
                "rtts_on_%.1fms_grid=%s"
                % (quantised, jittered, quantum, on_grid))

    # The cluster.* counters are scenario-global (one coordinator
    # timeline per world, all events folded together), while a ledger
    # entry counts only its own activations -- scale by how many
    # same-kind events the scenario injects.
    peers = sum(1 for e in scenario.events if e.kind == entry.kind)

    if entry.kind == FaultKind.COLLECTOR_FAIL:
        failovers = stats.get("cluster_failovers", 0)
        rehomed = stats.get("uploader_rehomes", 0)
        worlds = stats.get("workloads_completed", 0)
        # Failovers observed == failures injected (each device world
        # re-derives the same coordinator timeline, so both sides sum
        # across worlds), with zero record loss and the global merged
        # rollup digest-matching a single-collector reference.
        observed = (failovers == entry.activations * peers
                    and failovers > 0)
        zero_loss = stats.get("cluster_zero_loss", -1) == worlds
        merged_ok = (stats.get("cluster_rollup_matches_reference", -1)
                     == worlds)
        resynced = (stats.get("uploader_records_acked", 0)
                    == stats.get("store_records", -1))
        ok = observed and zero_loss and merged_ok and resynced
        return (ok, "failovers=%d/%d rehomed_uploaders=%d "
                "zero_loss=%s merged_matches_reference=%s resynced=%s"
                % (failovers, entry.activations * peers, rehomed,
                   zero_loss, merged_ok, resynced))

    if entry.kind == FaultKind.NET_PARTITION:
        partitions = stats.get("cluster_partitions", 0)
        heals = stats.get("cluster_heals", 0)
        worlds = stats.get("workloads_completed", 0)
        # A partition is NOT a failure: the coordinator must observe
        # it and heal it without a single failover firing.
        observed = (partitions == entry.activations * peers
                    and partitions > 0
                    and heals == entry.deactivations * peers)
        no_failover = stats.get("cluster_failovers", 0) == 0
        zero_loss = stats.get("cluster_zero_loss", -1) == worlds
        merged_ok = (stats.get("cluster_rollup_matches_reference", -1)
                     == worlds)
        resynced = (stats.get("uploader_records_acked", 0)
                    == stats.get("store_records", -1))
        ok = observed and no_failover and zero_loss and merged_ok \
            and resynced
        return (ok, "partitions=%d/%d heals=%d/%d no_failover=%s "
                "zero_loss=%s merged_matches_reference=%s resynced=%s"
                % (partitions, entry.activations * peers, heals,
                   entry.deactivations * peers, no_failover, zero_loss,
                   merged_ok, resynced))

    if entry.kind == FaultKind.NODE_JOIN:
        joins = stats.get("cluster_joins", 0)
        worlds = stats.get("workloads_completed", 0)
        # The coordinator raises outright if a join moves a key the
        # ring's minimal-movement bound forbids, so reaching this
        # check at all implies the bound held in every world.
        observed = joins == entry.activations * peers and joins > 0
        zero_loss = stats.get("cluster_zero_loss", -1) == worlds
        merged_ok = (stats.get("cluster_rollup_matches_reference", -1)
                     == worlds)
        ok = observed and zero_loss and merged_ok
        return (ok, "joins=%d/%d keys_moved=%d dedup_handoffs=%d "
                "zero_loss=%s merged_matches_reference=%s"
                % (joins, entry.activations * peers,
                   stats.get("cluster_keys_moved", 0),
                   stats.get("cluster_dedup_handoffs", 0), zero_loss,
                   merged_ok))

    return (False, "no evidence rule for kind %r" % entry.kind)


__all__ = ["EntryCheck", "VerificationReport", "verify_scenario"]
