"""DNS message encode/decode (RFC 1035 subset).

MopEye measures DNS RTT between the UDP ``send()`` of a query and the
``receive()`` of its reply (section 2.4), and relays the messages
verbatim.  The codec supports what mobile stub resolvers actually emit:
A/AAAA questions, A/CNAME answers, and name-compression pointers on
decode.
"""

from __future__ import annotations

import struct
from typing import List, Optional, Tuple

from repro.netstack.ip import ip_to_int, ip_to_str

QTYPE_A = 1
QTYPE_CNAME = 5
QTYPE_AAAA = 28
QCLASS_IN = 1

RCODE_NOERROR = 0
RCODE_SERVFAIL = 2
RCODE_NXDOMAIN = 3

_FLAG_QR = 0x8000
_FLAG_RD = 0x0100
_FLAG_RA = 0x0080

_HEADER = struct.Struct("!HHHHHH")
MAX_LABEL_LEN = 63
MAX_NAME_LEN = 255


class DNSError(ValueError):
    """Raised for malformed DNS wire data or invalid names."""


def encode_name(name: str) -> bytes:
    """Encode a domain name as length-prefixed labels."""
    name = name.rstrip(".")
    if not name:
        return b"\x00"
    if len(name) > MAX_NAME_LEN:
        raise DNSError("name too long: %r" % name)
    out = bytearray()
    for label in name.split("."):
        if not label:
            raise DNSError("empty label in %r" % name)
        encoded = label.encode("ascii")
        if len(encoded) > MAX_LABEL_LEN:
            raise DNSError("label too long: %r" % label)
        out.append(len(encoded))
        out.extend(encoded)
    out.append(0)
    return bytes(out)


def decode_name(data: bytes, offset: int) -> Tuple[str, int]:
    """Decode a (possibly compressed) name; returns (name, next offset)."""
    labels: List[str] = []
    jumps = 0
    next_offset: Optional[int] = None
    while True:
        if offset >= len(data):
            raise DNSError("truncated name")
        length = data[offset]
        if length & 0xC0 == 0xC0:  # compression pointer
            if offset + 1 >= len(data):
                raise DNSError("truncated compression pointer")
            pointer = ((length & 0x3F) << 8) | data[offset + 1]
            if next_offset is None:
                next_offset = offset + 2
            offset = pointer
            jumps += 1
            if jumps > 64:
                raise DNSError("compression pointer loop")
            continue
        if length & 0xC0:
            raise DNSError("reserved label type 0x%02x" % length)
        offset += 1
        if length == 0:
            break
        if offset + length > len(data):
            raise DNSError("truncated label")
        labels.append(data[offset:offset + length].decode("ascii"))
        offset += length
    name = ".".join(labels)
    return name, (next_offset if next_offset is not None else offset)


class DNSQuestion:
    def __init__(self, name: str, qtype: int = QTYPE_A,
                 qclass: int = QCLASS_IN):
        self.name = name.rstrip(".").lower()
        self.qtype = qtype
        self.qclass = qclass

    def encode(self) -> bytes:
        return encode_name(self.name) + struct.pack("!HH", self.qtype,
                                                    self.qclass)

    def __repr__(self) -> str:
        return "<DNSQuestion %s type=%d>" % (self.name, self.qtype)

    def __eq__(self, other) -> bool:
        return (isinstance(other, DNSQuestion)
                and (self.name, self.qtype, self.qclass)
                == (other.name, other.qtype, other.qclass))

    def __hash__(self) -> int:
        return hash((self.name, self.qtype, self.qclass))


class DNSResourceRecord:
    def __init__(self, name: str, rtype: int, ttl: int, rdata: bytes):
        self.name = name.rstrip(".").lower()
        self.rtype = rtype
        self.ttl = ttl
        self.rdata = rdata

    @classmethod
    def a_record(cls, name: str, address: str,
                 ttl: int = 300) -> "DNSResourceRecord":
        return cls(name, QTYPE_A, ttl,
                   struct.pack("!I", ip_to_int(address)))

    @classmethod
    def cname_record(cls, name: str, target: str,
                     ttl: int = 300) -> "DNSResourceRecord":
        return cls(name, QTYPE_CNAME, ttl, encode_name(target))

    @property
    def address(self) -> str:
        if self.rtype != QTYPE_A or len(self.rdata) != 4:
            raise DNSError("not an A record")
        return ip_to_str(struct.unpack("!I", self.rdata)[0])

    def encode(self) -> bytes:
        return (encode_name(self.name)
                + struct.pack("!HHIH", self.rtype, QCLASS_IN, self.ttl,
                              len(self.rdata))
                + self.rdata)

    def __repr__(self) -> str:
        return "<DNSRR %s type=%d %dB>" % (self.name, self.rtype,
                                           len(self.rdata))


class DNSMessage:
    """A query or response with questions and answer records."""

    def __init__(self, txid: int, is_response: bool = False,
                 rcode: int = RCODE_NOERROR,
                 questions: Optional[List[DNSQuestion]] = None,
                 answers: Optional[List[DNSResourceRecord]] = None,
                 recursion_desired: bool = True):
        self.txid = txid & 0xFFFF
        self.is_response = is_response
        self.rcode = rcode
        self.questions = questions or []
        self.answers = answers or []
        self.recursion_desired = recursion_desired

    @classmethod
    def query(cls, txid: int, name: str,
              qtype: int = QTYPE_A) -> "DNSMessage":
        return cls(txid, questions=[DNSQuestion(name, qtype)])

    def response(self, answers: List[DNSResourceRecord],
                 rcode: int = RCODE_NOERROR) -> "DNSMessage":
        """Build the response message for this query."""
        return DNSMessage(self.txid, is_response=True, rcode=rcode,
                          questions=list(self.questions), answers=answers)

    def encode(self) -> bytes:
        flags = 0
        if self.is_response:
            flags |= _FLAG_QR | _FLAG_RA
        if self.recursion_desired:
            flags |= _FLAG_RD
        flags |= self.rcode & 0x0F
        header = _HEADER.pack(self.txid, flags, len(self.questions),
                              len(self.answers), 0, 0)
        body = b"".join(q.encode() for q in self.questions)
        body += b"".join(a.encode() for a in self.answers)
        return header + body

    @classmethod
    def decode(cls, data: bytes) -> "DNSMessage":
        if len(data) < _HEADER.size:
            raise DNSError("truncated DNS header (%d bytes)" % len(data))
        txid, flags, qdcount, ancount, _ns, _ar = _HEADER.unpack(
            data[:_HEADER.size])
        offset = _HEADER.size
        questions = []
        for _ in range(qdcount):
            name, offset = decode_name(data, offset)
            if offset + 4 > len(data):
                raise DNSError("truncated question")
            qtype, qclass = struct.unpack("!HH", data[offset:offset + 4])
            offset += 4
            questions.append(DNSQuestion(name, qtype, qclass))
        answers = []
        for _ in range(ancount):
            name, offset = decode_name(data, offset)
            if offset + 10 > len(data):
                raise DNSError("truncated resource record")
            rtype, _rclass, ttl, rdlength = struct.unpack(
                "!HHIH", data[offset:offset + 10])
            offset += 10
            if offset + rdlength > len(data):
                raise DNSError("truncated rdata")
            answers.append(DNSResourceRecord(
                name, rtype, ttl, data[offset:offset + rdlength]))
            offset += rdlength
        return cls(txid, is_response=bool(flags & _FLAG_QR),
                   rcode=flags & 0x0F, questions=questions, answers=answers,
                   recursion_desired=bool(flags & _FLAG_RD))

    def __repr__(self) -> str:
        kind = "response" if self.is_response else "query"
        return "<DNSMessage %s txid=%d q=%d a=%d>" % (
            kind, self.txid, len(self.questions), len(self.answers))
