"""User-space TCP/IP wire formats and state machine.

MopEye cannot use raw sockets (no root) and cannot see the kernel TCB
for its external sockets, so it terminates every app connection against
its *own* TCP implementation (section 2.3).  This package is that
implementation: bytes-level IPv4/TCP/UDP/DNS codecs with real Internet
checksums, plus the RFC 793 state machine used for the internal (tunnel)
side of each spliced connection.
"""

from repro.netstack.checksum import internet_checksum
from repro.netstack.ip import (
    IPPacket,
    PacketError,
    PROTO_TCP,
    PROTO_UDP,
    ip_to_int,
    ip_to_str,
)
from repro.netstack.tcp_segment import (
    ACK,
    FIN,
    PSH,
    RST,
    SYN,
    URG,
    TCPSegment,
)
from repro.netstack.udp_datagram import UDPDatagram
from repro.netstack.dns import (
    DNSError,
    DNSMessage,
    DNSQuestion,
    DNSResourceRecord,
    QTYPE_A,
    QTYPE_AAAA,
    RCODE_NOERROR,
    RCODE_NXDOMAIN,
)
from repro.netstack.tcp_state import TCPState, TCPStateMachine, TCPStateError

__all__ = [
    "ACK",
    "DNSError",
    "DNSMessage",
    "DNSQuestion",
    "DNSResourceRecord",
    "FIN",
    "IPPacket",
    "PSH",
    "PacketError",
    "PROTO_TCP",
    "PROTO_UDP",
    "QTYPE_A",
    "QTYPE_AAAA",
    "RCODE_NOERROR",
    "RCODE_NXDOMAIN",
    "RST",
    "SYN",
    "TCPSegment",
    "TCPState",
    "TCPStateError",
    "TCPStateMachine",
    "UDPDatagram",
    "URG",
    "internet_checksum",
    "ip_to_int",
    "ip_to_str",
]
