"""UDP datagram encode/decode (RFC 768)."""

from __future__ import annotations

import struct
from typing import Union

from repro.netstack.checksum import internet_checksum, verify_checksum
from repro.netstack.ip import PacketError, ip_to_int, pseudo_header, PROTO_UDP

_HEADER = struct.Struct("!HHHH")
UDP_HEADER_LEN = 8


class UDPDatagram:
    def __init__(self, src_port: int, dst_port: int, payload: bytes = b""):
        for port in (src_port, dst_port):
            if not 0 <= port <= 0xFFFF:
                raise PacketError("bad port %r" % port)
        self.src_port = src_port
        self.dst_port = dst_port
        self.payload = payload

    @property
    def length(self) -> int:
        return UDP_HEADER_LEN + len(self.payload)

    def encode(self, src_ip: Union[str, int], dst_ip: Union[str, int]) -> bytes:
        header_wo = _HEADER.pack(self.src_port, self.dst_port,
                                 self.length, 0)
        pseudo = pseudo_header(ip_to_int(src_ip), ip_to_int(dst_ip),
                               PROTO_UDP, self.length)
        checksum = internet_checksum(pseudo + header_wo + self.payload)
        if checksum == 0:
            checksum = 0xFFFF  # RFC 768: zero is "no checksum"
        header = _HEADER.pack(self.src_port, self.dst_port,
                              self.length, checksum)
        return header + self.payload

    @classmethod
    def decode(cls, data: bytes, src_ip: Union[str, int] = 0,
               dst_ip: Union[str, int] = 0,
               verify: bool = False) -> "UDPDatagram":
        if len(data) < UDP_HEADER_LEN:
            raise PacketError("truncated UDP header (%d bytes)" % len(data))
        src_port, dst_port, length, checksum = _HEADER.unpack(
            data[:UDP_HEADER_LEN])
        if length < UDP_HEADER_LEN or length > len(data):
            raise PacketError("bad UDP length %d" % length)
        if verify and checksum != 0:
            pseudo = pseudo_header(ip_to_int(src_ip), ip_to_int(dst_ip),
                                   PROTO_UDP, length)
            if not verify_checksum(pseudo + data[:length]):
                raise PacketError("UDP checksum mismatch")
        return cls(src_port, dst_port, data[UDP_HEADER_LEN:length])

    def __repr__(self) -> str:
        return "<UDPDatagram %d->%d %dB>" % (
            self.src_port, self.dst_port, len(self.payload))
