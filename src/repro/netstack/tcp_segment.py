"""TCP segment encode/decode with MSS option support.

MopEye's user-space stack sets MSS to 1460 in its SYN/ACK and advertises
a 65,535-byte receive window (section 3.4); those fields are first-class
here so the tuning experiments can toggle them.
"""

from __future__ import annotations

import struct
from typing import Optional, Union

from repro.netstack.checksum import internet_checksum, verify_checksum
from repro.netstack.ip import PacketError, ip_to_int, pseudo_header, PROTO_TCP

FIN = 0x01
SYN = 0x02
RST = 0x04
PSH = 0x08
ACK = 0x10
URG = 0x20

_FLAG_NAMES = [(SYN, "SYN"), (ACK, "ACK"), (FIN, "FIN"), (RST, "RST"),
               (PSH, "PSH"), (URG, "URG")]

_HEADER = struct.Struct("!HHIIBBHHH")
TCP_HEADER_LEN = 20
OPT_END = 0
OPT_NOP = 1
OPT_MSS = 2


class TCPSegment:
    """A TCP segment; ``mss`` is carried as a header option when set."""

    def __init__(self, src_port: int, dst_port: int, seq: int, ack: int,
                 flags: int, window: int = 65535, payload: bytes = b"",
                 mss: Optional[int] = None):
        for port in (src_port, dst_port):
            if not 0 <= port <= 0xFFFF:
                raise PacketError("bad port %r" % port)
        self.src_port = src_port
        self.dst_port = dst_port
        self.seq = seq & 0xFFFFFFFF
        self.ack = ack & 0xFFFFFFFF
        self.flags = flags
        self.window = window & 0xFFFF
        self.payload = payload
        self.mss = mss

    # -- flag helpers ------------------------------------------------------
    @property
    def is_syn(self) -> bool:
        return bool(self.flags & SYN) and not (self.flags & ACK)

    @property
    def is_syn_ack(self) -> bool:
        return bool(self.flags & SYN) and bool(self.flags & ACK)

    @property
    def is_fin(self) -> bool:
        return bool(self.flags & FIN)

    @property
    def is_rst(self) -> bool:
        return bool(self.flags & RST)

    @property
    def is_pure_ack(self) -> bool:
        """ACK with no payload and no SYN/FIN/RST -- MopEye discards
        these instead of relaying them (section 2.3)."""
        return (self.flags & ACK) and not self.payload and not (
            self.flags & (SYN | FIN | RST))

    @property
    def flag_names(self) -> str:
        names = [name for bit, name in _FLAG_NAMES if self.flags & bit]
        return "|".join(names) or "none"

    def _options(self) -> bytes:
        if self.mss is None:
            return b""
        # MSS option (kind=2, len=4) padded to a 4-byte boundary.
        return struct.pack("!BBH", OPT_MSS, 4, self.mss)

    # -- wire format -------------------------------------------------------
    def encode(self, src_ip: Union[str, int], dst_ip: Union[str, int]) -> bytes:
        options = self._options()
        data_offset = (TCP_HEADER_LEN + len(options)) // 4
        header_wo = _HEADER.pack(
            self.src_port, self.dst_port, self.seq, self.ack,
            data_offset << 4, self.flags, self.window, 0, 0)
        body = header_wo + options + self.payload
        pseudo = pseudo_header(ip_to_int(src_ip), ip_to_int(dst_ip),
                               PROTO_TCP, len(body))
        checksum = internet_checksum(pseudo + body)
        header = _HEADER.pack(
            self.src_port, self.dst_port, self.seq, self.ack,
            data_offset << 4, self.flags, self.window, checksum, 0)
        return header + options + self.payload

    @classmethod
    def decode(cls, data: bytes, src_ip: Union[str, int] = 0,
               dst_ip: Union[str, int] = 0,
               verify: bool = False) -> "TCPSegment":
        if len(data) < TCP_HEADER_LEN:
            raise PacketError("truncated TCP header (%d bytes)" % len(data))
        (src_port, dst_port, seq, ack, offset_byte, flags, window,
         _checksum, _urgent) = _HEADER.unpack(data[:TCP_HEADER_LEN])
        data_offset = (offset_byte >> 4) * 4
        if data_offset < TCP_HEADER_LEN or data_offset > len(data):
            raise PacketError("bad TCP data offset %d" % data_offset)
        if verify:
            pseudo = pseudo_header(ip_to_int(src_ip), ip_to_int(dst_ip),
                                   PROTO_TCP, len(data))
            if not verify_checksum(pseudo + data):
                raise PacketError("TCP checksum mismatch")
        mss = cls._parse_mss(data[TCP_HEADER_LEN:data_offset])
        payload = data[data_offset:]
        return cls(src_port, dst_port, seq, ack, flags, window=window,
                   payload=payload, mss=mss)

    @staticmethod
    def _parse_mss(options: bytes) -> Optional[int]:
        i = 0
        while i < len(options):
            kind = options[i]
            if kind == OPT_END:
                break
            if kind == OPT_NOP:
                i += 1
                continue
            if i + 1 >= len(options):
                raise PacketError("truncated TCP option")
            length = options[i + 1]
            if length < 2 or i + length > len(options):
                raise PacketError("bad TCP option length %d" % length)
            if kind == OPT_MSS:
                if length != 4:
                    raise PacketError("bad MSS option length %d" % length)
                return struct.unpack("!H", options[i + 2:i + 4])[0]
            i += length
        return None

    def __repr__(self) -> str:
        return "<TCPSegment %d->%d %s seq=%d ack=%d %dB>" % (
            self.src_port, self.dst_port, self.flag_names, self.seq,
            self.ack, len(self.payload))
