"""RFC 793 TCP state machine for the internal (tunnel) connections.

MopEye terminates each app's TCP connection itself: the app's kernel
stack talks to *this* state machine through the TUN device, while the
data is relayed over a regular socket to the real server (section 2.3).
The machine therefore plays the passive-open (server) role, with the
MopEye-specific simplifications of section 3.4:

* no congestion or flow control -- the VPN tunnel cannot lose or
  reorder packets, so data is emitted without waiting for ACKs;
* pure ACKs from the app are discarded, not relayed;
* MSS is announced as 1460 and the receive window as 65,535 bytes.

The machine is a pure object: feed it segments, collect the segments it
wants transmitted.  All timing lives in the relay layer so the same
machine is reusable by baselines with different timing behaviour.
"""

from __future__ import annotations

from typing import List, Optional

from repro.netstack.tcp_segment import (
    ACK,
    FIN,
    PSH,
    RST,
    SYN,
    TCPSegment,
)

_MOD = 1 << 32


def seq_add(seq: int, delta: int) -> int:
    return (seq + delta) % _MOD


def seq_lt(a: int, b: int) -> bool:
    """True when sequence number ``a`` is before ``b`` (RFC 793 3.3)."""
    return ((a - b) % _MOD) > (_MOD >> 1)


class TCPState:
    CLOSED = "CLOSED"
    LISTEN = "LISTEN"
    SYN_RECEIVED = "SYN_RECEIVED"
    ESTABLISHED = "ESTABLISHED"
    FIN_WAIT_1 = "FIN_WAIT_1"
    FIN_WAIT_2 = "FIN_WAIT_2"
    CLOSE_WAIT = "CLOSE_WAIT"
    LAST_ACK = "LAST_ACK"
    CLOSING = "CLOSING"
    TIME_WAIT = "TIME_WAIT"


class TCPStateError(Exception):
    """Raised when a segment is illegal in the current state."""


class TCPStateMachine:
    """Passive-open TCP endpoint for one spliced connection.

    The four-tuple is from the *app's* point of view: ``local`` is the
    app's source address, ``remote`` the server the app thinks it is
    talking to (MopEye spoofs the server's address on the tunnel).
    """

    def __init__(self, local_ip: str, local_port: int, remote_ip: str,
                 remote_port: int, isn: int = 1000, mss: int = 1460,
                 window: int = 65535):
        self.local_ip = local_ip
        self.local_port = local_port
        self.remote_ip = remote_ip
        self.remote_port = remote_port
        self.state = TCPState.LISTEN
        self.mss = mss
        self.window = window
        # Our side (MopEye acting as the server).
        self.snd_iss = isn % _MOD
        self.snd_nxt = self.snd_iss
        # App side.
        self.rcv_irs: Optional[int] = None
        self.rcv_nxt: Optional[int] = None
        self.peer_mss: Optional[int] = None
        self.fin_sent = False
        self.fin_received = False

    # -- helpers -----------------------------------------------------------
    def _segment(self, flags: int, payload: bytes = b"",
                 mss: Optional[int] = None) -> TCPSegment:
        """A segment from MopEye (spoofed server) toward the app."""
        return TCPSegment(
            src_port=self.remote_port, dst_port=self.local_port,
            seq=self.snd_nxt, ack=self.rcv_nxt or 0,
            flags=flags, window=self.window, payload=payload, mss=mss)

    # -- handshake -----------------------------------------------------------
    def on_syn(self, segment: TCPSegment) -> None:
        """Record the app's SYN.  The SYN/ACK is *not* produced here:
        MopEye completes the internal handshake only after the external
        connect() succeeds (section 2.3)."""
        if self.state != TCPState.LISTEN:
            raise TCPStateError("SYN in state %s" % self.state)
        if not segment.is_syn:
            raise TCPStateError("expected a pure SYN, got %s"
                                % segment.flag_names)
        self.rcv_irs = segment.seq
        self.rcv_nxt = seq_add(segment.seq, 1)
        self.peer_mss = segment.mss
        self.state = TCPState.SYN_RECEIVED

    def make_syn_ack(self) -> TCPSegment:
        if self.state != TCPState.SYN_RECEIVED:
            raise TCPStateError("SYN/ACK in state %s" % self.state)
        segment = self._segment(SYN | ACK, mss=self.mss)
        self.snd_nxt = seq_add(self.snd_nxt, 1)
        return segment

    def make_rst(self) -> TCPSegment:
        """Refuse the connection (external connect failed)."""
        segment = self._segment(RST | ACK)
        self.state = TCPState.CLOSED
        return segment

    def on_handshake_ack(self, segment: TCPSegment) -> None:
        if self.state != TCPState.SYN_RECEIVED:
            raise TCPStateError("handshake ACK in state %s" % self.state)
        if segment.ack != self.snd_nxt:
            raise TCPStateError(
                "bad handshake ACK %d, expected %d"
                % (segment.ack, self.snd_nxt))
        self.state = TCPState.ESTABLISHED

    # -- data ---------------------------------------------------------------
    def on_data(self, segment: TCPSegment) -> bytes:
        """Accept in-order payload from the app; returns the bytes to be
        written to the external socket.  Out-of-order data cannot occur
        on the point-to-point tunnel, so it is an error."""
        if self.state not in (TCPState.ESTABLISHED, TCPState.FIN_WAIT_1,
                              TCPState.FIN_WAIT_2, TCPState.SYN_RECEIVED):
            raise TCPStateError("data in state %s" % self.state)
        if self.state == TCPState.SYN_RECEIVED:
            # Data riding on the handshake ACK.
            self.state = TCPState.ESTABLISHED
        if segment.seq != self.rcv_nxt:
            raise TCPStateError(
                "out-of-order tunnel segment: seq=%d expected=%d"
                % (segment.seq, self.rcv_nxt))
        self.rcv_nxt = seq_add(self.rcv_nxt, len(segment.payload))
        return segment.payload

    def make_ack(self) -> TCPSegment:
        return self._segment(ACK)

    def deliver(self, data: bytes) -> List[TCPSegment]:
        """Chunk server data into MSS-sized segments toward the app,
        advancing snd_nxt immediately (no ACK clocking, section 3.4)."""
        if self.state not in (TCPState.ESTABLISHED, TCPState.CLOSE_WAIT):
            raise TCPStateError("deliver in state %s" % self.state)
        segments = []
        for start in range(0, len(data), self.mss):
            chunk = data[start:start + self.mss]
            flags = ACK | (PSH if start + self.mss >= len(data) else 0)
            segment = self._segment(flags, payload=chunk)
            self.snd_nxt = seq_add(self.snd_nxt, len(chunk))
            segments.append(segment)
        return segments

    # -- teardown -------------------------------------------------------------
    def on_fin(self, segment: TCPSegment) -> TCPSegment:
        """App closed its write side; ACK it (section 2.3: 'updates the
        TCP state to half closed and generates an ACK packet')."""
        if self.state == TCPState.ESTABLISHED:
            self.state = TCPState.CLOSE_WAIT
        elif self.state == TCPState.FIN_WAIT_1:
            self.state = TCPState.CLOSING
        elif self.state == TCPState.FIN_WAIT_2:
            self.state = TCPState.TIME_WAIT
        else:
            raise TCPStateError("FIN in state %s" % self.state)
        self.fin_received = True
        payload_len = len(segment.payload)
        self.rcv_nxt = seq_add(self.rcv_nxt, payload_len + 1)
        return self.make_ack()

    def make_fin(self) -> TCPSegment:
        """Server closed; send FIN toward the app."""
        if self.state == TCPState.ESTABLISHED:
            self.state = TCPState.FIN_WAIT_1
        elif self.state == TCPState.CLOSE_WAIT:
            self.state = TCPState.LAST_ACK
        else:
            raise TCPStateError("cannot send FIN in state %s" % self.state)
        self.fin_sent = True
        segment = self._segment(FIN | ACK)
        self.snd_nxt = seq_add(self.snd_nxt, 1)
        return segment

    def on_fin_ack(self, segment: TCPSegment) -> None:
        """App acknowledged our FIN."""
        if segment.ack != self.snd_nxt:
            return  # ACK for older data; ignore
        if self.state == TCPState.FIN_WAIT_1:
            self.state = TCPState.FIN_WAIT_2
        elif self.state == TCPState.CLOSING:
            self.state = TCPState.TIME_WAIT
        elif self.state == TCPState.LAST_ACK:
            self.state = TCPState.CLOSED

    def on_rst(self, _segment: Optional[TCPSegment] = None) -> None:
        self.state = TCPState.CLOSED

    # -- views ------------------------------------------------------------------
    @property
    def is_established(self) -> bool:
        return self.state == TCPState.ESTABLISHED

    @property
    def is_closed(self) -> bool:
        return self.state in (TCPState.CLOSED, TCPState.TIME_WAIT)

    @property
    def four_tuple(self) -> tuple:
        return (self.local_ip, self.local_port,
                self.remote_ip, self.remote_port)

    def __repr__(self) -> str:
        return "<TCPStateMachine %s:%d<->%s:%d %s>" % (
            self.local_ip, self.local_port, self.remote_ip,
            self.remote_port, self.state)
