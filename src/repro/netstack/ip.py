"""IPv4 packet encode/decode.

The TUN device is "essentially a virtual point-to-point IP link"
(section 2.2), so everything MopEye reads from the tunnel is a raw IPv4
packet.  This module builds and parses those packets at the byte level,
including header checksums, so the relay code is exercised against real
wire formats rather than convenience objects.
"""

from __future__ import annotations

import struct
from typing import Union

from repro.netstack.checksum import internet_checksum, verify_checksum

PROTO_TCP = 6
PROTO_UDP = 17

_HEADER = struct.Struct("!BBHHHBBH4s4s")
IP_HEADER_LEN = 20


class PacketError(ValueError):
    """Raised when bytes do not parse as the expected protocol."""


def ip_to_int(address: Union[str, int]) -> int:
    """Dotted-quad (or already-int) address to a 32-bit integer."""
    if isinstance(address, int):
        if not 0 <= address <= 0xFFFFFFFF:
            raise PacketError("address out of range: %r" % address)
        return address
    parts = address.split(".")
    if len(parts) != 4:
        raise PacketError("bad IPv4 address %r" % address)
    value = 0
    for part in parts:
        try:
            octet = int(part)
        except ValueError:
            raise PacketError("bad IPv4 address %r" % address) from None
        if not 0 <= octet <= 255:
            raise PacketError("bad IPv4 address %r" % address)
        value = (value << 8) | octet
    return value


def ip_to_str(address: Union[str, int]) -> str:
    """32-bit integer (or already-str) address to dotted quad."""
    if isinstance(address, str):
        ip_to_int(address)  # validate
        return address
    return "%d.%d.%d.%d" % (
        (address >> 24) & 0xFF,
        (address >> 16) & 0xFF,
        (address >> 8) & 0xFF,
        address & 0xFF,
    )


class IPPacket:
    """A parsed or to-be-encoded IPv4 packet (no options support)."""

    def __init__(self, src: Union[str, int], dst: Union[str, int],
                 protocol: int, payload: bytes, ttl: int = 64,
                 identification: int = 0):
        self.src = ip_to_int(src)
        self.dst = ip_to_int(dst)
        self.protocol = protocol
        self.payload = payload
        self.ttl = ttl
        self.identification = identification & 0xFFFF

    # -- convenience -----------------------------------------------------
    @property
    def src_str(self) -> str:
        return ip_to_str(self.src)

    @property
    def dst_str(self) -> str:
        return ip_to_str(self.dst)

    @property
    def total_length(self) -> int:
        return IP_HEADER_LEN + len(self.payload)

    # -- wire format -----------------------------------------------------
    def encode(self) -> bytes:
        version_ihl = (4 << 4) | 5
        header_wo_checksum = _HEADER.pack(
            version_ihl, 0, self.total_length, self.identification,
            0, self.ttl, self.protocol, 0,
            struct.pack("!I", self.src), struct.pack("!I", self.dst))
        checksum = internet_checksum(header_wo_checksum)
        header = _HEADER.pack(
            version_ihl, 0, self.total_length, self.identification,
            0, self.ttl, self.protocol, checksum,
            struct.pack("!I", self.src), struct.pack("!I", self.dst))
        return header + self.payload

    @classmethod
    def decode(cls, data: bytes, verify: bool = True) -> "IPPacket":
        if len(data) < IP_HEADER_LEN:
            raise PacketError("truncated IP header (%d bytes)" % len(data))
        (version_ihl, _tos, total_length, identification, _frag, ttl,
         protocol, _checksum, src_raw, dst_raw) = _HEADER.unpack(
            data[:IP_HEADER_LEN])
        version = version_ihl >> 4
        if version != 4:
            raise PacketError("not IPv4 (version=%d)" % version)
        ihl = (version_ihl & 0x0F) * 4
        if ihl < IP_HEADER_LEN:
            raise PacketError("bad IHL %d" % ihl)
        if total_length > len(data):
            raise PacketError(
                "truncated packet: header says %d, have %d"
                % (total_length, len(data)))
        if verify and not verify_checksum(data[:ihl]):
            raise PacketError("IP header checksum mismatch")
        payload = data[ihl:total_length]
        src = struct.unpack("!I", src_raw)[0]
        dst = struct.unpack("!I", dst_raw)[0]
        packet = cls(src, dst, protocol, payload, ttl=ttl,
                     identification=identification)
        return packet

    def __repr__(self) -> str:
        proto = {PROTO_TCP: "TCP", PROTO_UDP: "UDP"}.get(
            self.protocol, str(self.protocol))
        return "<IPPacket %s -> %s %s %dB>" % (
            self.src_str, self.dst_str, proto, len(self.payload))


def pseudo_header(src: int, dst: int, protocol: int, length: int) -> bytes:
    """TCP/UDP checksum pseudo-header (RFC 793 / RFC 768)."""
    return struct.pack("!IIBBH", src, dst, 0, protocol, length)
