"""RFC 1071 Internet checksum."""

from __future__ import annotations


def internet_checksum(data: bytes) -> int:
    """One's-complement sum of 16-bit words, per RFC 1071.

    Odd-length input is padded with a zero byte, as the RFC specifies.
    Returns the 16-bit checksum value to place in a header (i.e. the
    complement of the running sum).
    """
    if len(data) % 2:
        data = data + b"\x00"
    total = 0
    for i in range(0, len(data), 2):
        total += (data[i] << 8) | data[i + 1]
    # Fold carries.
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF


def verify_checksum(data: bytes) -> bool:
    """True when ``data`` (including its checksum field) sums to zero."""
    if len(data) % 2:
        data = data + b"\x00"
    total = 0
    for i in range(0, len(data), 2):
        total += (data[i] << 8) | data[i + 1]
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return total == 0xFFFF
