"""The metric and span catalog: the single source of truth for names.

Every metric the system can emit is declared here, with its type, unit
and emitting module; :class:`~repro.obs.registry.MetricsRegistry`
refuses to create an instrument whose name is not in the catalog.  That
makes drift impossible in both directions: code cannot emit an
undocumented metric (the registry raises), and the documentation test
(`tests/test_obs_docs.py`) diffs ``docs/OBSERVABILITY.md`` against this
catalog, so a stale doc fails CI.

``volatile=True`` marks metrics whose value depends on wall-clock time
or host speed (e.g. ``crowd.records_per_sec``).  They are excluded from
deterministic snapshots so the snapshot byte-identity contract (same
seed => same bytes, regardless of ``PYTHONHASHSEED`` or machine) holds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

COUNTER = "counter"
GAUGE = "gauge"
HISTOGRAM = "histogram"


@dataclass(frozen=True)
class MetricSpec:
    name: str
    kind: str                    # counter | gauge | histogram
    unit: str                    # "packets", "ms", "records", ...
    module: str                  # emitting module (dotted path)
    help: str
    volatile: bool = False       # wall-clock dependent; excluded from
                                 # deterministic snapshots
    max_x: float = 1000.0        # histogram domain upper edge
    n_bins: int = 2000           # histogram bin count


@dataclass(frozen=True)
class SpanSpec:
    name: str
    module: str
    help: str


def _m(name: str, kind: str, unit: str, module: str, help: str,
       volatile: bool = False, max_x: float = 1000.0,
       n_bins: int = 2000) -> Tuple[str, MetricSpec]:
    return name, MetricSpec(name=name, kind=kind, unit=unit,
                            module=module, help=help, volatile=volatile,
                            max_x=max_x, n_bins=n_bins)


CATALOG: Dict[str, MetricSpec] = dict([
    # -- relay-wide counters (the old RelayStats bag) ----------------------
    _m("relay.syn_packets", COUNTER, "packets", "repro.core.main_worker",
       "SYNs captured from the tunnel; each starts a TcpClient."),
    _m("relay.pure_acks_discarded", COUNTER, "packets",
       "repro.core.relay_tcp",
       "Pure ACKs from the app, discarded per section 2.3."),
    _m("relay.orphan_packets", COUNTER, "packets",
       "repro.core.main_worker",
       "Non-SYN tunnel segments with no live TcpClient."),
    _m("relay.parse_errors", COUNTER, "packets",
       "repro.core.main_worker",
       "Tunnel packets whose TCP/UDP payload failed to decode."),
    _m("relay.state_errors", COUNTER, "packets",
       "repro.core.main_worker",
       "Segments rejected by the user-space TCP state machine."),
    _m("relay.connect_failures", COUNTER, "connections",
       "repro.core.relay_tcp",
       "External connect() refused or timed out; app got a RST."),
    _m("relay.packets_to_tunnel", COUNTER, "packets",
       "repro.core.service",
       "Packets written toward the app, TCP and UDP alike (every "
       "producer funnels through MopEyeService.emit_packet)."),
    _m("relay.bytes_up", COUNTER, "bytes", "repro.core.relay_tcp",
       "App payload bytes relayed outward (tunnel -> external socket) "
       "across all TCP connections."),
    _m("relay.bytes_down", COUNTER, "bytes", "repro.core.relay_tcp",
       "Server payload bytes relayed inward (external socket -> "
       "tunnel) across all TCP connections."),
    # -- TunReader (section 3.1) -------------------------------------------
    _m("tun_reader.packets_read", COUNTER, "packets",
       "repro.core.tun_reader",
       "Packets retrieved from the tun fd and enqueued for MainWorker."),
    _m("tun_reader.poll_rounds", COUNTER, "rounds",
       "repro.core.tun_reader",
       "Poll iterations (sleep/adaptive ToyVpn-style modes only)."),
    _m("tun_reader.empty_polls", COUNTER, "rounds",
       "repro.core.tun_reader",
       "Poll iterations that found no packet (wasted wakeups)."),
    _m("tun_reader.read_wait_ms", HISTOGRAM, "ms",
       "repro.core.tun_reader",
       "Sim time spent blocked in one tun read() (blocking mode)."),
    # -- MainWorker (sections 2.3, 3.2) ------------------------------------
    _m("main_worker.loops", COUNTER, "iterations",
       "repro.core.main_worker",
       "Selector-loop iterations completed."),
    _m("main_worker.socket_events", COUNTER, "events",
       "repro.core.main_worker",
       "Socket readiness events handled (read + write)."),
    _m("main_worker.tunnel_packets", COUNTER, "packets",
       "repro.core.main_worker",
       "Tunnel packets drained from the read queue and dispatched."),
    _m("main_worker.events_per_loop", HISTOGRAM, "events",
       "repro.core.main_worker",
       "Socket events handled per selector-loop iteration.",
       max_x=64.0, n_bins=64),
    _m("main_worker.queue_depth", HISTOGRAM, "packets",
       "repro.core.main_worker",
       "Tunnel read-queue depth observed at each drain.",
       max_x=256.0, n_bins=256),
    # -- connect / RTT (sections 2.4, 4.1.1) -------------------------------
    _m("tcp.connect_rtt_ms", HISTOGRAM, "ms", "repro.core.relay_tcp",
       "The RTT samples themselves: blocking connect() durations "
       "bracketed by timestamps (Table 2's accuracy argument)."),
    # -- packet-to-app mapping (section 3.3, Figure 5) ---------------------
    _m("mapping.requests", COUNTER, "requests", "repro.core.mapping",
       "Mapping requests served (one per measured connection)."),
    _m("mapping.parses", COUNTER, "parses", "repro.core.mapping",
       "/proc/net/tcp6|tcp parses actually performed."),
    _m("mapping.served_by_peer", COUNTER, "requests",
       "repro.core.mapping",
       "Requests resolved from a concurrent thread's snapshot (the "
       "lazy mapper's 67.8% mitigation path)."),
    _m("mapping.wait_naps", COUNTER, "naps", "repro.core.mapping",
       "50 ms naps taken while another thread was parsing."),
    _m("mapping.unmapped", COUNTER, "requests", "repro.core.mapping",
       "Four-tuples never resolved to a UID."),
    _m("mapping.overhead_ms", HISTOGRAM, "ms", "repro.core.mapping",
       "CPU cost charged per mapping request (Figure 5(b)).",
       max_x=100.0, n_bins=1000),
    # -- TunWriter (section 3.5.1, Table 1) --------------------------------
    _m("tun_writer.packets_written", COUNTER, "packets",
       "repro.core.tun_writer",
       "Packets written to the tun fd (queueWrite consumer or "
       "directWrite producers)."),
    _m("tun_writer.packets_dropped", COUNTER, "packets",
       "repro.core.tun_writer",
       "Packets enqueued after stop() and never written."),
    _m("tun_writer.sleep_count", COUNTER, "rounds",
       "repro.core.tun_writer",
       "newPut spin rounds: empty checks the consumer made instead of "
       "parking in wait() (the section 3.5.1 sleep counter)."),
    _m("tun_writer.queue_depth", HISTOGRAM, "packets",
       "repro.core.tun_writer",
       "Write-queue occupancy observed at each producer put.",
       max_x=256.0, n_bins=256),
    _m("tun_writer.put_cost_ms", HISTOGRAM, "ms",
       "repro.core.tun_writer",
       "Producer-side enqueue cost per put (Table 1's oldPut/newPut "
       "contrast).", max_x=50.0, n_bins=1000),
    _m("tun_writer.write_cost_ms", HISTOGRAM, "ms",
       "repro.core.tun_writer",
       "Consumer-side tun write() syscall cost.", max_x=50.0,
       n_bins=1000),
    _m("tun_writer.direct_write_ms", HISTOGRAM, "ms",
       "repro.core.tun_writer",
       "End-to-end producer write cost under directWrite, lock "
       "contention included (Table 1's worst column).", max_x=50.0,
       n_bins=1000),
    # -- UDP relay (section 2.4) -------------------------------------------
    _m("udp_relay.datagrams", COUNTER, "datagrams",
       "repro.core.relay_udp",
       "UDP datagrams captured from the tunnel and relayed outward."),
    _m("udp_relay.replies", COUNTER, "datagrams",
       "repro.core.relay_udp",
       "Server replies forwarded back into the tunnel."),
    _m("udp_relay.timeouts", COUNTER, "datagrams",
       "repro.core.relay_udp",
       "Relayed datagrams that never got a reply within the timeout."),
    _m("udp_relay.dns_measured", COUNTER, "queries",
       "repro.core.relay_udp",
       "Port-53 round trips recorded as DNS measurements."),
    _m("udp_relay.bytes_up", COUNTER, "bytes", "repro.core.relay_udp",
       "UDP payload bytes relayed outward (tunnel -> server)."),
    _m("udp_relay.bytes_down", COUNTER, "bytes",
       "repro.core.relay_udp",
       "UDP payload bytes forwarded back into the tunnel."),
    # -- cellular RRC state machine (docs/MODALITIES.md) -------------------
    _m("rrc.dwell_idle_ms", COUNTER, "ms", "repro.network.rrc",
       "Sim time the radio spent in IDLE (no radio resources)."),
    _m("rrc.dwell_low_ms", COUNTER, "ms", "repro.network.rrc",
       "Sim time the radio spent in LOW (FACH / connected-DRX)."),
    _m("rrc.dwell_high_ms", COUNTER, "ms", "repro.network.rrc",
       "Sim time the radio spent in HIGH (DCH / RRC_CONNECTED "
       "active)."),
    _m("rrc.tail_ms", COUNTER, "ms", "repro.network.rrc",
       "Sim time the radio lingered in a powered state after its last "
       "activity (the inactivity-timer tail that dominates cellular "
       "energy)."),
    # -- uploader ----------------------------------------------------------
    _m("uploader.batches", COUNTER, "batches", "repro.core.uploader",
       "Upload batches fully or partly acknowledged."),
    _m("uploader.records_acked", COUNTER, "records",
       "repro.core.uploader",
       "Measurement records acknowledged by the collector."),
    _m("uploader.failures", COUNTER, "batches", "repro.core.uploader",
       "Upload attempts that failed (connect error or bad response)."),
    _m("uploader.short_acks", COUNTER, "batches",
       "repro.core.uploader",
       "Batches the collector part-ACKed; the tail is retried next "
       "interval (the retry tail)."),
    _m("uploader.deferred_cellular", COUNTER, "intervals",
       "repro.core.uploader",
       "Upload intervals skipped because the device was on cellular."),
    _m("uploader.ack_latency_ms", HISTOGRAM, "ms",
       "repro.core.uploader",
       "connect() to ACK-received latency per upload batch.",
       max_x=5000.0, n_bins=1000),
    _m("uploader.busy_backoffs", COUNTER, "batches",
       "repro.core.uploader",
       "Batches rejected with BUSY; the uploader backed off with "
       "jitter and will retry the same (device_id, batch_seq)."),
    _m("uploader.ack_timeouts", COUNTER, "batches",
       "repro.core.uploader",
       "Uploads abandoned after the ACK deadline passed (lost payload "
       "or lost ACK); retried idempotently next interval."),
    _m("uploader.final_flush", COUNTER, "batches",
       "repro.core.uploader",
       "Batches pushed by the shutdown flush in stop(), below "
       "min_batch included."),
    _m("uploader.stale_acks", COUNTER, "batches",
       "repro.core.uploader",
       "ACKs discarded because a concurrent attempt already consumed "
       "the batch (periodic upload racing the shutdown flush); "
       "counting them would over-advance the cursor."),
    _m("uploader.rehomes", COUNTER, "rehomes",
       "repro.core.uploader",
       "Times the cluster coordinator pointed this uploader at a new "
       "home collector (failover or rebalance); the in-flight batch "
       "travels to the new node verbatim."),
    _m("uploader.aoi_records", COUNTER, "records",
       "repro.core.uploader",
       "Age-of-information records emitted at ACK time (one per "
       "acknowledged non-AoI record when emit_aoi is on)."),
    # -- collection backend ------------------------------------------------
    _m("backend.batches", COUNTER, "batches", "repro.backend.ingest",
       "Upload batches accepted and ingested (duplicates excluded)."),
    _m("backend.records_ingested", COUNTER, "records",
       "repro.backend.ingest",
       "Measurement records ingested into the rollup store."),
    _m("backend.malformed_headers", COUNTER, "requests",
       "repro.backend.server",
       "Requests whose PUSH/PUSH2 header failed to parse (ACK 0)."),
    _m("backend.malformed_lines", COUNTER, "batches",
       "repro.backend.ingest",
       "Batches truncated at a malformed JSON line; the ACK covers "
       "only the valid prefix."),
    _m("backend.duplicate_batches", COUNTER, "batches",
       "repro.backend.ingest",
       "Batches replayed with a known (device_id, batch_seq); the "
       "cached ACK was returned without re-ingesting."),
    _m("backend.busy_rejections", COUNTER, "batches",
       "repro.backend.ingest",
       "Batches shed with BUSY because the ingest backlog exceeded "
       "the load threshold."),
    _m("backend.rate_limited", COUNTER, "batches",
       "repro.backend.ingest",
       "Batches shed with BUSY because the per-device token bucket "
       "was empty."),
    _m("backend.batch_records", HISTOGRAM, "records",
       "repro.backend.ingest",
       "Records per accepted batch.", max_x=2000.0, n_bins=2000),
    _m("backend.ingest_delay_ms", HISTOGRAM, "ms",
       "repro.backend.ingest",
       "Sim-time processing delay charged per accepted batch (the "
       "backlog model's per-batch cost).", max_x=2000.0, n_bins=2000),
    _m("backend.rollup_groups", GAUGE, "groups",
       "repro.backend.rollups",
       "Distinct (table, key) histogram groups currently held."),
    _m("backend.detector_evaluations", COUNTER, "evaluations",
       "repro.backend.detector",
       "Detector rule evaluations performed against live rollups."),
    _m("backend.detector_findings", COUNTER, "findings",
       "repro.backend.detector",
       "Case-study findings raised by the online detector."),
    _m("backend.ingest_records_per_sec", GAUGE, "records/s",
       "repro.backend.ingest",
       "Wall-clock ingest throughput of the last offline ingest run.",
       volatile=True),
    _m("backend.ingest_merge_wall_ms", GAUGE, "ms",
       "repro.backend.ingest",
       "Parent-side wall-clock time the last shard-parallel ingest "
       "spent accumulating and finalising worker packs (the serial "
       "fraction that used to scale with worker count).",
       volatile=True),
    _m("backend.ingest_worker_wall_ms", HISTOGRAM, "ms",
       "repro.backend.ingest",
       "Per-worker wall-clock time of the last shard-parallel ingest "
       "(straggler spread shows up as histogram width).",
       max_x=120000.0, n_bins=1200, volatile=True),
    # -- storage engine ----------------------------------------------------
    _m("store.wal_appends", COUNTER, "frames", "repro.store.wal",
       "WAL frames made durable by a group commit."),
    _m("store.wal_bytes", COUNTER, "bytes", "repro.store.wal",
       "Framed bytes written to the WAL (header + payload)."),
    _m("store.wal_fsyncs", COUNTER, "fsyncs", "repro.store.wal",
       "Group commits issued; each is one modelled fsync barrier."),
    _m("store.wal_commit_cost_ms", HISTOGRAM, "ms", "repro.store.wal",
       "Modelled sim-time cost per group commit (FsyncModel); charged "
       "to the batch ACK.", max_x=500.0, n_bins=1000),
    _m("store.wal_replayed_frames", COUNTER, "frames",
       "repro.store.engine",
       "Valid WAL frames replayed into the memtable by recovery."),
    _m("store.wal_replayed_records", COUNTER, "records",
       "repro.store.engine",
       "Measurement records rebuilt from WAL replay."),
    _m("store.wal_torn_tails", COUNTER, "tails", "repro.store.engine",
       "Recoveries that found a torn or corrupt WAL tail and "
       "truncated it at the last valid frame."),
    _m("store.flushes", COUNTER, "flushes", "repro.store.engine",
       "Memtable freezes into an immutable segment (WAL restarts "
       "empty afterwards)."),
    _m("store.segment_flush_bytes", COUNTER, "bytes",
       "repro.store.engine",
       "Bytes written by memtable flushes (compaction rewrites "
       "excluded)."),
    _m("store.segment_writes", COUNTER, "segments",
       "repro.store.segments",
       "Segment files written, flushes and compaction rewrites "
       "combined."),
    _m("store.compactions", COUNTER, "compactions",
       "repro.store.engine",
       "Tiered compactions: N segments merged into one."),
    _m("store.segments_quarantined", COUNTER, "segments",
       "repro.store.engine",
       "Segments that failed checksum validation during recovery and "
       "were moved to quarantine/ instead of being served."),
    _m("store.retention_windows_evicted", COUNTER, "windows",
       "repro.store.engine",
       "Distinct rollup windows dropped by the retention pass for "
       "exceeding the configured horizon."),
    _m("store.recoveries", COUNTER, "recoveries", "repro.store.engine",
       "Crash recoveries completed (initial cold opens excluded)."),
    _m("store.segments", GAUGE, "segments", "repro.store.engine",
       "Live segment files currently in the manifest."),
    _m("store.segment_bytes", GAUGE, "bytes", "repro.store.engine",
       "Total on-disk size of live segments."),
    _m("store.memtable_records", GAUGE, "records",
       "repro.store.engine",
       "Records currently held only by the memtable (durable in the "
       "WAL, not yet in a segment)."),
    _m("store.recovery_replay_wall_ms", GAUGE, "ms",
       "repro.store.engine",
       "Wall-clock time of the last recovery replay.", volatile=True),
    _m("store.checkpoints", COUNTER, "checkpoints",
       "repro.store.checkpoint",
       "Checkpoint files written (memtable snapshots that bound WAL "
       "replay at recovery)."),
    _m("store.checkpoint_bytes", COUNTER, "bytes",
       "repro.store.checkpoint",
       "Bytes written by checkpoint snapshots (tmp+rename writes, "
       "quarantined files included)."),
    _m("store.checkpoint_records", GAUGE, "records",
       "repro.store.engine",
       "Records covered by the most recent checkpoint snapshot."),
    _m("store.checkpoints_quarantined", COUNTER, "checkpoints",
       "repro.store.engine",
       "Checkpoints that failed validation during recovery and were "
       "moved to quarantine/; recovery fell back to the previous "
       "checkpoint (or a full WAL replay)."),
    _m("store.wal_rotations", COUNTER, "rotations",
       "repro.store.engine",
       "WAL generation seals: the active generation was closed and a "
       "fresh one opened (checkpoint or flush)."),
    _m("store.wal_files", GAUGE, "files", "repro.store.engine",
       "WAL files currently on disk across generations and shards."),
    _m("store.blocks_read", COUNTER, "blocks", "repro.store.segments",
       "Segment blocks fetched on the read path (block-cache hits "
       "included: a hit still serves that block to the query)."),
    _m("store.blocks_pruned", COUNTER, "blocks",
       "repro.store.segments",
       "Candidate blocks skipped because their zone-map [min, max] "
       "key range cannot intersect the query."),
    _m("store.cache.hits", COUNTER, "blocks",
       "repro.store.blockcache",
       "Block-cache lookups served from a cached decoded block."),
    _m("store.cache.misses", COUNTER, "blocks",
       "repro.store.blockcache",
       "Block-cache lookups that fell through to a disk read + "
       "decode."),
    _m("store.cache.evictions", COUNTER, "blocks",
       "repro.store.blockcache",
       "Decoded blocks evicted from the LRU end to fit the byte "
       "budget."),
    _m("store.cache.bytes", GAUGE, "bytes", "repro.store.blockcache",
       "Decoded payload bytes currently resident in the block cache."),
    _m("store.cache.entries", GAUGE, "blocks",
       "repro.store.blockcache",
       "Decoded blocks currently resident in the block cache."),
    # -- serving tier (the query engine over the store) --------------------
    _m("serve.snapshots", COUNTER, "views", "repro.serve.engine",
       "Snapshot read views opened (each pins the segment list and a "
       "memtable copy for its lifetime)."),
    _m("serve.queries", COUNTER, "queries", "repro.serve.engine",
       "Queries answered by read views: panels, tables, and "
       "dashboard-style views alike."),
    _m("serve.query_latency_ms", HISTOGRAM, "ms",
       "repro.serve.workload",
       "Wall-clock latency of one dashboard panel query.",
       volatile=True, max_x=1000.0, n_bins=2000),
    # -- access link (loss / latency faults land here) ---------------------
    _m("link.packets_dropped", COUNTER, "packets", "repro.network.link",
       "Packets lost on a link direction, i.i.d. and burst losses "
       "combined."),
    _m("link.burst_drops", COUNTER, "packets", "repro.network.link",
       "Packets lost by the Gilbert-Elliott burst model specifically "
       "(subset of link.packets_dropped)."),
    _m("link.latency_extra_ms", GAUGE, "ms", "repro.network.link",
       "Extra one-way latency currently injected on a link direction "
       "(0 when no latency-spike fault is active)."),
    # -- cluster tier (coordinator + global merge) -------------------------
    _m("cluster.heartbeats", COUNTER, "probes",
       "repro.cluster.coordinator",
       "Heartbeat probes the coordinator sent to active collector "
       "nodes (one per node per interval)."),
    _m("cluster.heartbeat_misses", COUNTER, "probes",
       "repro.cluster.coordinator",
       "Heartbeat probes a failed node did not answer; "
       "miss_threshold consecutive misses drive a failover."),
    _m("cluster.failovers", COUNTER, "failovers",
       "repro.cluster.coordinator",
       "Failed nodes removed from the ring with their devices "
       "re-homed to ring successors."),
    _m("cluster.rebalances", COUNTER, "joins",
       "repro.cluster.coordinator",
       "Standby nodes joined into the ring (each join's key movement "
       "is checked against the ring's minimal-movement bound)."),
    _m("cluster.partitions", COUNTER, "partitions",
       "repro.cluster.coordinator",
       "Network partitions observed by the coordinator (node "
       "unreachable for uploads but alive -- never a failover)."),
    _m("cluster.devices_rehomed", COUNTER, "devices",
       "repro.cluster.coordinator",
       "Device uploaders pointed at a new home collector by "
       "failovers and rebalances."),
    _m("cluster.keys_moved", COUNTER, "keys",
       "repro.cluster.coordinator",
       "Placement keys whose home node changed across all membership "
       "changes (== devices_rehomed unless a device world never "
       "instantiated the key)."),
    _m("cluster.dedup_handoffs", COUNTER, "batches",
       "repro.cluster.coordinator",
       "Batch identities ((device, seq) -> acked) seeded into a "
       "successor's dedup cache during failover (from the dead "
       "node's disk) or join (from the old owner, live)."),
    _m("cluster.nodes", GAUGE, "nodes", "repro.cluster.coordinator",
       "Active collector nodes currently in the ring."),
    _m("cluster.epoch", GAUGE, "epochs", "repro.cluster.coordinator",
       "Config epoch last pushed to the fleet (bumped on every "
       "membership change)."),
    _m("cluster.merge_wall_ms", GAUGE, "ms", "repro.cluster.merge",
       "Wall-clock time of the last global rollup merge.",
       volatile=True),
    # -- middlebox (repro.middlebox, docs/MIDDLEBOX.md) --------------------
    _m("mbox.intercepted_connects", COUNTER, "connections",
       "repro.middlebox.proxy",
       "SYNs to intercepted ports answered locally by the transparent "
       "proxy (each becomes a split connection attempt)."),
    _m("mbox.split_connections", COUNTER, "connections",
       "repro.middlebox.proxy",
       "Upstream halves successfully opened to the real server; the "
       "two halves are spliced from then on."),
    _m("mbox.upstream_failures", COUNTER, "connections",
       "repro.middlebox.proxy",
       "Upstream connects that failed after the SYN was already "
       "answered locally; the client gets a late RST."),
    _m("mbox.rewritten_bytes", COUNTER, "bytes",
       "repro.middlebox.proxy",
       "Response-stream bytes emitted by the rewrite hook when it "
       "changed the payload."),
    _m("mbox.dns_tcp_refused", COUNTER, "connections",
       "repro.middlebox.proxy",
       "DNS-over-TCP SYNs on intercepted ports refused with RST (the "
       "split proxy does not speak DNS; never a silent drop)."),
    _m("mbox.dns_intercepted", COUNTER, "queries",
       "repro.middlebox.proxy",
       "UDP DNS queries answered locally by the DNS interception "
       "variant, spoofing the resolver."),
    _m("mbox.bytes_up", COUNTER, "bytes", "repro.middlebox.proxy",
       "Client payload bytes forwarded to upstream connections."),
    _m("mbox.bytes_down", COUNTER, "bytes", "repro.middlebox.proxy",
       "Server payload bytes spliced back toward clients (after any "
       "rewriting)."),
    _m("mbox.divergence_findings", COUNTER, "findings",
       "repro.backend.detector",
       "Proxy-divergence verdicts raised by the online detector "
       "(SYN-RTT vs app-layer-RTT distributions split)."),
    # -- measurement imperfections (repro.middlebox.imperfect) -------------
    _m("imperfect.quantised_samples", COUNTER, "reads",
       "repro.middlebox.imperfect",
       "Clock reads floored to the configured N-ms tick."),
    _m("imperfect.jitter_applied", COUNTER, "reads",
       "repro.middlebox.imperfect",
       "Clock reads delayed by seeded scheduling jitter."),
    # -- fault injection ---------------------------------------------------
    _m("faults.events_installed", COUNTER, "events",
       "repro.faults.injector",
       "Fault events scheduled by an injector (scope matched)."),
    _m("faults.activated", COUNTER, "events", "repro.faults.injector",
       "Fault events whose start time fired and whose effect was "
       "applied."),
    _m("faults.deactivated", COUNTER, "events",
       "repro.faults.injector",
       "Fault events whose duration elapsed and whose effect was "
       "reverted."),
    _m("faults.active", GAUGE, "events", "repro.faults.injector",
       "Fault events currently in effect."),
    # -- sharded crowd campaign --------------------------------------------
    _m("crowd.records_generated", COUNTER, "records",
       "repro.crowd.sharding",
       "Measurement records generated by the campaign."),
    _m("crowd.shards_completed", COUNTER, "shards",
       "repro.crowd.sharding",
       "Shard files fully written and checksummed."),
    _m("crowd.shard_records", HISTOGRAM, "records",
       "repro.crowd.sharding",
       "Records per shard (load-balance quality of plan_shards).",
       max_x=4_000_000.0, n_bins=4000),
    _m("crowd.shard_elapsed_s", HISTOGRAM, "s", "repro.crowd.sharding",
       "Wall-clock seconds per shard generation.", volatile=True,
       max_x=600.0, n_bins=600),
    _m("crowd.records_per_sec", GAUGE, "records/s",
       "repro.crowd.sharding",
       "Wall-clock generation throughput of the last campaign run.",
       volatile=True),
])


def _s(name: str, module: str, help: str) -> Tuple[str, SpanSpec]:
    return name, SpanSpec(name=name, module=module, help=help)


SPANS: Dict[str, SpanSpec] = dict([
    _s("tun_reader.read", "repro.core.tun_reader",
       "One blocking tun read(): idle wait for the next app packet."),
    _s("main_worker.select", "repro.core.main_worker",
       "MainWorker parked in select(), waiting for socket readiness "
       "or a TunReader wakeup."),
    _s("main_worker.loop", "repro.core.main_worker",
       "One selector-loop iteration: socket events then tunnel "
       "drain.  Parent of socket_event and tunnel_packet spans."),
    _s("main_worker.socket_event", "repro.core.main_worker",
       "Handling one socket readiness key (write flush / read drain)."),
    _s("main_worker.tunnel_packet", "repro.core.main_worker",
       "Parsing and dispatching one captured tunnel packet."),
    _s("tcp.connect", "repro.core.relay_tcp",
       "The blocking external connect(); its duration is the RTT "
       "sample (rtt_ms attribute on success)."),
    _s("mapping.map", "repro.core.mapping",
       "One packet-to-app mapping request (lazy naps included)."),
    _s("tun_writer.write", "repro.core.tun_writer",
       "One consumer-side tun write in queueWrite mode."),
    _s("tun_writer.park", "repro.core.tun_writer",
       "TunWriter parked in wait() after exhausting its sleep "
       "counter (idle)."),
    _s("udp_relay.relay", "repro.core.relay_udp",
       "One UDP relay round trip, DNS measurement included."),
    _s("uploader.upload", "repro.core.uploader",
       "One batch upload: connect, push, wait for ACK."),
])


def spec_for(name: str) -> MetricSpec:
    try:
        return CATALOG[name]
    except KeyError:
        raise KeyError(
            "metric %r is not in repro.obs.catalog.CATALOG; add it "
            "there (and to docs/OBSERVABILITY.md) first" % name)


__all__ = ["CATALOG", "SPANS", "MetricSpec", "SpanSpec", "spec_for",
           "COUNTER", "GAUGE", "HISTOGRAM"]
