"""The metrics registry: counters, gauges, sim-time histograms.

Design constraints (see docs/OBSERVABILITY.md):

* **Catalog-enforced names.**  Creating an instrument whose name is not
  declared in :mod:`repro.obs.catalog` raises, so every emitted metric
  is documented by construction.
* **Deterministic snapshots.**  ``snapshot()`` walks metrics in sorted
  name order and ``to_json()`` serialises with sorted keys, so two runs
  with the same seed produce byte-identical output regardless of
  ``PYTHONHASHSEED`` -- the same contract the PR-1 dataset digest
  relies on.  Wall-clock-dependent metrics are declared ``volatile``
  in the catalog and excluded unless explicitly requested.
* **No upper-layer imports.**  The histogram is a fixed-bin sketch with
  the same clipping semantics as ``analysis.stats.StreamingCDF`` (all
  mass counted, overflow tracked separately, quantiles interpolated
  within a bin), re-implemented here dependency-free so ``repro.obs``
  stays importable from every layer (it needs nothing but the
  standard library; even the sim clock is injected).
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Tuple, Union

from repro.obs.catalog import (
    COUNTER,
    GAUGE,
    HISTOGRAM,
    MetricSpec,
    spec_for,
)


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("spec", "value")

    def __init__(self, spec: MetricSpec):
        self.spec = spec
        self.value = 0

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError("counter %s cannot decrease" % self.spec.name)
        self.value += n

    def snapshot(self) -> dict:
        return {"type": COUNTER, "unit": self.spec.unit,
                "value": self.value}


class Gauge:
    """A value that can move both ways (queue depth, throughput)."""

    __slots__ = ("spec", "value")

    def __init__(self, spec: MetricSpec):
        self.spec = spec
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def snapshot(self) -> dict:
        return {"type": GAUGE, "unit": self.spec.unit,
                "value": self.value}


class Histogram:
    """Fixed-bin sketch over ``[0, max_x]``.

    Mirrors ``analysis.stats.StreamingCDF``: every observation is
    counted (mass above ``max_x`` lands in ``overflow``), quantiles
    interpolate linearly within a bin, so the quantile error is bounded
    by one bin width whatever the distribution's shape.  Bins are a
    sparse dict -- relay histograms touch a handful of bins out of
    thousands.
    """

    __slots__ = ("spec", "count", "total", "overflow", "_width", "_bins")

    def __init__(self, spec: MetricSpec):
        self.spec = spec
        self.count = 0
        self.total = 0.0
        self.overflow = 0
        self._width = spec.max_x / spec.n_bins
        self._bins: Dict[int, int] = {}

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value > self.spec.max_x:
            self.overflow += 1
            return
        index = min(int(value / self._width), self.spec.n_bins - 1)
        self._bins[index] = self._bins.get(index, 0) + 1

    @property
    def bin_width(self) -> float:
        return self._width

    def quantile(self, q: float) -> float:
        if not 0.0 < q < 1.0:
            raise ValueError("quantile must be in (0, 1)")
        if self.count == 0:
            raise ValueError("quantile of empty histogram %s"
                             % self.spec.name)
        target = q * self.count
        if target > self.count - self.overflow:
            raise ValueError(
                "quantile %.3f of %s lies beyond max_x=%g (overflow "
                "mass %.3f)" % (q, self.spec.name, self.spec.max_x,
                                self.overflow / self.count))
        cumulative = 0
        for index in sorted(self._bins):
            in_bin = self._bins[index]
            if cumulative + in_bin >= target:
                frac = (target - cumulative) / in_bin
                return (index + frac) * self._width
            cumulative += in_bin
        return self.spec.max_x

    def fraction_above(self, threshold: float) -> float:
        """Share of observations strictly above ``threshold`` (how
        Table 1 reports '>1 ms' write shares)."""
        if self.count == 0:
            raise ValueError("fraction_above of empty histogram %s"
                             % self.spec.name)
        if threshold >= self.spec.max_x:
            return self.overflow / self.count
        below = sum(n for index, n in self._bins.items()
                    if (index + 1) * self._width <= threshold)
        return 1.0 - below / self.count

    def snapshot(self) -> dict:
        return {"type": HISTOGRAM, "unit": self.spec.unit,
                "count": self.count, "sum": self.total,
                "overflow": self.overflow, "max_x": self.spec.max_x,
                "bin_width": self._width,
                "bins": [[index, self._bins[index]]
                         for index in sorted(self._bins)]}


Metric = Union[Counter, Gauge, Histogram]

_KIND_CLASS = {COUNTER: Counter, GAUGE: Gauge, HISTOGRAM: Histogram}


class MetricsRegistry:
    """All instruments of one observability scope.

    Instruments are created lazily on first use, from their catalog
    spec; a snapshot therefore contains exactly the metrics the run
    actually touched (which is itself deterministic for a seeded run).
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}

    def _get(self, name: str, kind: str) -> Metric:
        metric = self._metrics.get(name)
        if metric is None:
            spec = spec_for(name)
            if spec.kind != kind:
                raise TypeError(
                    "metric %s is declared a %s, requested as %s"
                    % (name, spec.kind, kind))
            metric = self._metrics[name] = _KIND_CLASS[kind](spec)
        elif not isinstance(metric, _KIND_CLASS[kind]):
            raise TypeError(
                "metric %s already exists with a different type" % name)
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, COUNTER)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, GAUGE)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, HISTOGRAM)

    # -- reading -----------------------------------------------------------
    def value(self, name: str) -> float:
        """Current value (0 if the instrument was never touched);
        histograms report their observation count."""
        metric = self._metrics.get(name)
        if metric is None:
            spec_for(name)  # still validate the name
            return 0
        if isinstance(metric, Histogram):
            return metric.count
        return metric.value

    def names(self) -> List[str]:
        """Sorted names of every instrument touched so far."""
        return sorted(self._metrics)

    # -- snapshots ---------------------------------------------------------
    def snapshot(self, include_volatile: bool = False) -> dict:
        return {name: self._metrics[name].snapshot()
                for name in sorted(self._metrics)
                if include_volatile
                or not self._metrics[name].spec.volatile}

    def to_json(self, include_volatile: bool = False) -> str:
        """Canonical JSON: sorted keys, fixed separators -- the byte
        representation the determinism contract is stated over."""
        return json.dumps(self.snapshot(include_volatile),
                          sort_keys=True, indent=1,
                          separators=(",", ": "))


__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]
