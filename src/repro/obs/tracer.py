"""Span-based tracing keyed on simulation time.

A span brackets a region of *virtual* time: ``start()`` stamps the sim
clock, ``end()`` stamps it again, and the difference is where simulated
time went -- across ``yield`` points, which is the whole point: a
``tcp.connect`` span covers the blocking connect() including every wait
inside it, so its duration *is* the RTT sample (Table 2).

Nesting is tracked per simulated thread: the kernel runs one
:class:`~repro.sim.kernel.Process` at a time, and the tracer keeps an
open-span stack per process, so spans opened by interleaved processes
(MainWorker vs. a socket-connect thread) never corrupt each other's
parentage.  Span ids are assigned in start order and spans are emitted
in end order -- both deterministic for a seeded run, so a trace file is
byte-identical across runs and ``PYTHONHASHSEED`` values.

A disabled tracer (the default) costs one attribute check per
instrumentation point: ``start()`` returns a shared null span and
``end()`` returns immediately, so the relay hot path can be
instrumented unconditionally.
"""

from __future__ import annotations

import json
from typing import Any, Callable, Dict, List, Optional


class Span:
    """One completed or open region of simulated time."""

    __slots__ = ("span_id", "name", "process", "parent_id", "start_ms",
                 "end_ms", "attrs")

    def __init__(self, span_id: int, name: str, process: str,
                 parent_id: Optional[int], start_ms: float,
                 attrs: Dict[str, Any]):
        self.span_id = span_id
        self.name = name
        self.process = process
        self.parent_id = parent_id
        self.start_ms = start_ms
        self.end_ms: Optional[float] = None
        self.attrs = attrs

    @property
    def duration_ms(self) -> float:
        if self.end_ms is None:
            raise ValueError("span %s is still open" % self.name)
        return self.end_ms - self.start_ms

    def to_dict(self) -> dict:
        return {"span_id": self.span_id, "parent_id": self.parent_id,
                "name": self.name, "process": self.process,
                "start_ms": self.start_ms, "end_ms": self.end_ms,
                "dur_ms": self.duration_ms, "attrs": self.attrs}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<Span %d %s %s>" % (self.span_id, self.name,
                                    "open" if self.end_ms is None
                                    else "%.3fms" % self.duration_ms)


class _NullSpan:
    """Returned by a disabled tracer; absorbs attribute writes."""

    __slots__ = ("attrs",)

    def __init__(self) -> None:
        self.attrs: Dict[str, Any] = {}


_NULL_SPAN = _NullSpan()


class Tracer:
    """Collects spans against an injected clock.

    ``clock`` returns the current sim time in ms; ``current_process``
    returns the running kernel process (or None outside the event
    loop).  Both are injected so this module imports nothing above the
    standard library -- binding to a live simulator happens in
    :class:`repro.obs.Observability`.
    """

    def __init__(self, clock: Optional[Callable[[], float]] = None,
                 current_process: Optional[Callable[[], object]] = None,
                 enabled: bool = False):
        self.enabled = enabled
        self._clock = clock or (lambda: 0.0)
        self._current_process = current_process or (lambda: None)
        self._next_id = 0
        self._stacks: Dict[Optional[object], List[Span]] = {}
        self.spans: List[Span] = []     # completed, in end order

    # -- span lifecycle ----------------------------------------------------
    def start(self, name: str, **attrs: Any):
        if not self.enabled:
            return _NULL_SPAN
        process = self._current_process()
        stack = self._stacks.setdefault(process, [])
        parent_id = stack[-1].span_id if stack else None
        span = Span(self._next_id, name,
                    getattr(process, "name", None) or "main",
                    parent_id, self._clock(), attrs)
        self._next_id += 1
        stack.append(span)
        return span

    def end(self, span, **attrs: Any) -> None:
        if span is _NULL_SPAN or not self.enabled:
            return
        span.attrs.update(attrs)
        span.end_ms = self._clock()
        stack = self._stacks.get(self._current_process())
        if stack and span in stack:
            # Normally the top of the stack; tolerate out-of-order ends.
            stack.remove(span)
        self.spans.append(span)

    class _SpanContext:
        __slots__ = ("tracer", "span")

        def __init__(self, tracer: "Tracer", span):
            self.tracer = tracer
            self.span = span

        def __enter__(self):
            return self.span

        def __exit__(self, exc_type, exc, tb):
            self.tracer.end(self.span)
            return False

    def span(self, name: str, **attrs: Any) -> "_SpanContext":
        """Context manager form, for regions without yields across
        sibling spans."""
        return Tracer._SpanContext(self, self.start(name, **attrs))

    # -- output ------------------------------------------------------------
    def to_jsonl(self) -> str:
        return "".join(json.dumps(span.to_dict(), sort_keys=True,
                                  separators=(",", ":")) + "\n"
                       for span in self.spans)

    def dump(self, path: str) -> int:
        """Write the trace as JSON lines; returns the span count."""
        with open(path, "w") as handle:
            handle.write(self.to_jsonl())
        return len(self.spans)


__all__ = ["Span", "Tracer"]
