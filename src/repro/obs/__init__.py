"""repro.obs -- the sim-time-aware observability layer.

One facade, :class:`Observability`, bundles the two instruments every
layer reports through:

* a :class:`~repro.obs.registry.MetricsRegistry` of counters, gauges
  and fixed-bin histograms whose names are enforced against
  :mod:`repro.obs.catalog` (and therefore against
  ``docs/OBSERVABILITY.md``);
* a :class:`~repro.obs.tracer.Tracer` producing spans keyed on
  simulation time.

The facade is injectable -- :class:`~repro.core.service.MopEyeService`
creates its own unless handed one, so concurrent services (fleet runs,
A/B benches) never share counters -- and a process-wide default exists
for code with no service in scope (the crowd campaign, the CLI).

Layering: this package imports only the standard library.  The sim
clock and active-process accessor are *injected* (``Observability(sim)``
binds them), so ``repro.obs`` sits next to ``repro.sim`` at the bottom
of the import graph and every layer above may depend on it.
"""

from __future__ import annotations

import json
from typing import Any, Optional

from repro.obs.catalog import CATALOG, SPANS, MetricSpec, SpanSpec
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.tracer import Span, Tracer


class Observability:
    """Registry + tracer bound to one scope (usually one service)."""

    def __init__(self, sim=None, trace: bool = False):
        self.sim = sim
        self.registry = MetricsRegistry()
        #: Identity labels stamped onto snapshots (``{"node_id":
        #: "node-02"}``).  Empty by default -- and an empty dict keeps
        #: snapshot/to_json byte-identical to the unlabelled layout,
        #: so only multi-node scopes pay the extra key.
        self.labels: dict = {}
        if sim is not None:
            clock = lambda: sim.now                      # noqa: E731
            current = lambda: sim._active_process        # noqa: E731
        else:
            clock = current = None
        self.tracer = Tracer(clock=clock, current_process=current,
                             enabled=trace)

    # -- metric conveniences (the forms instrumentation sites use) --------
    def inc(self, name: str, n: int = 1) -> None:
        self.registry.counter(name).inc(n)

    def set_gauge(self, name: str, value: float) -> None:
        self.registry.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        self.registry.histogram(name).observe(value)

    def value(self, name: str) -> float:
        return self.registry.value(name)

    # -- tracer conveniences ----------------------------------------------
    def start_span(self, name: str, **attrs: Any):
        if name not in SPANS:
            raise KeyError(
                "span %r is not declared in repro.obs.catalog; add it "
                "there and to docs/OBSERVABILITY.md" % name)
        return self.tracer.start(name, **attrs)

    def end_span(self, span, **attrs: Any) -> None:
        self.tracer.end(span, **attrs)

    def span(self, name: str, **attrs: Any):
        if name not in SPANS:
            raise KeyError(
                "span %r is not declared in repro.obs.catalog; add it "
                "there and to docs/OBSERVABILITY.md" % name)
        return self.tracer.span(name, **attrs)

    # -- snapshots ---------------------------------------------------------
    def snapshot(self, include_volatile: bool = False) -> dict:
        snap = self.registry.snapshot(include_volatile)
        if self.labels:
            snap["_labels"] = {key: self.labels[key]
                               for key in sorted(self.labels)}
        return snap

    def to_json(self, include_volatile: bool = False) -> str:
        if not self.labels:
            return self.registry.to_json(include_volatile)
        return json.dumps(self.snapshot(include_volatile),
                          sort_keys=True, indent=1,
                          separators=(",", ": "))


_default: Optional[Observability] = None


def get_default() -> Observability:
    """The process-wide scope, for code with no service in hand."""
    global _default
    if _default is None:
        _default = Observability()
    return _default


def reset_default() -> None:
    """Drop the process-wide scope (tests use this for isolation)."""
    global _default
    _default = None


__all__ = [
    "CATALOG",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricSpec",
    "MetricsRegistry",
    "Observability",
    "SPANS",
    "Span",
    "SpanSpec",
    "Tracer",
    "get_default",
    "reset_default",
]
