"""Simulated dashboard workload: a fan-out of percentile panels.

Models what MopEye's crowdsourcing dashboard does all day: viewers
open per-app and per-ISP percentile panels, and interest is heavily
skewed -- a handful of popular apps (WhatsApp, the browser) soak up
most of the queries.  Popularity is a Zipf distribution over the
app/operator catalog ranked by measurement volume, sampled by
inverse-CDF from ``random.Random(seed)`` so the same seed issues the
same query sequence whatever the host or ``PYTHONHASHSEED``.

``run()`` returns a deterministic report -- panel counts, a digest of
every panel's canonical JSON, blocks read/pruned, cache hit rate --
so two runs can be byte-diffed in CI.  Wall-clock latency percentiles
are volatile by nature and only included when asked
(``include_latency=True``; the benchmark does, the CI diff does not).

``verify_against_scan()`` recomputes a sample of panels by full scan
and asserts byte-identical results with strictly fewer blocks read on
the pruned side: the tentpole invariant, run by the tests and
``tools/perf_guards.py``.
"""

from __future__ import annotations

import hashlib
import json
import random
import time
from bisect import bisect_left
from typing import Dict, List, Optional, Tuple

from repro.obs import Observability
from repro.serve.engine import QueryError, ReadView

#: Zipf exponent: rank-r popularity proportional to 1 / r**s.
DEFAULT_ZIPF_S = 1.2
#: Share of panels that are per-app (the rest are per-ISP).
DEFAULT_APP_SHARE = 0.7


def _canonical(value: object) -> str:
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def _zipf_cdf(n: int, s: float) -> List[float]:
    weights = [1.0 / (rank ** s) for rank in range(1, n + 1)]
    total = sum(weights)
    cdf = []
    acc = 0.0
    for weight in weights:
        acc += weight / total
        cdf.append(acc)
    return cdf


def _percentile(sorted_values: List[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1,
                int(q * (len(sorted_values) - 1) + 0.5))
    return sorted_values[index]


class DashboardWorkload:
    """A deterministic stream of panel queries against one view."""

    def __init__(self, view: ReadView, seed: int = 0,
                 panels: int = 64, zipf_s: float = DEFAULT_ZIPF_S,
                 app_share: float = DEFAULT_APP_SHARE,
                 obs: Optional[Observability] = None) -> None:
        self.view = view
        self.seed = int(seed)
        self.panels = max(0, int(panels))
        self.zipf_s = float(zipf_s)
        self.app_share = float(app_share)
        self.obs = obs if obs is not None else view.obs
        self.latencies_ms: List[float] = []
        self._apps, self._operators = self._catalog()

    def _catalog(self) -> Tuple[List[str], List[str]]:
        """Subjects ranked by measurement volume (rank 1 = most
        measured = most queried).  One full scan of the two tables --
        the dashboard's directory load -- which also warms the block
        cache."""
        app_volume: Dict[str, int] = {}
        for key, hist in self.view._scan_table("app").items():
            _window, app, _kind = key
            app_volume[app] = app_volume.get(app, 0) + hist.count
        operator_volume: Dict[str, int] = {}
        for key, hist in self.view._scan_table("network").items():
            _window, operator, _tech, _kind = key
            operator_volume[operator] = \
                operator_volume.get(operator, 0) + hist.count
        rank = lambda volume: sorted(  # noqa: E731
            volume, key=lambda name: (-volume[name], name))
        return rank(app_volume), rank(operator_volume)

    def _pick(self, names: List[str], cdf: List[float],
              rng: random.Random) -> str:
        return names[bisect_left(cdf, rng.random())]

    def run(self, include_latency: bool = False) -> Dict[str, object]:
        """Issue the panel stream; returns the deterministic report
        (plus volatile latency percentiles when asked)."""
        rng = random.Random(self.seed)
        app_cdf = _zipf_cdf(len(self._apps), self.zipf_s)
        operator_cdf = _zipf_cdf(len(self._operators), self.zipf_s)
        sha = hashlib.sha256()
        self.latencies_ms = []
        app_panels = 0
        network_panels = 0
        start = self.view.stats.copy()
        for _ in range(self.panels):
            use_app = bool(self._apps) and (
                not self._operators
                or rng.random() < self.app_share)
            began = time.perf_counter()
            if use_app:
                result = self.view.app_panel(
                    self._pick(self._apps, app_cdf, rng))
                app_panels += 1
            else:
                result = self.view.network_panel(
                    self._pick(self._operators, operator_cdf, rng))
                network_panels += 1
            elapsed_ms = (time.perf_counter() - began) * 1000.0
            self.latencies_ms.append(elapsed_ms)
            if self.obs is not None:
                self.obs.observe("serve.query_latency_ms", elapsed_ms)
            sha.update(_canonical(result).encode())
        delta = self.view.stats.delta_since(start)
        looked_up = delta.cache_hits + delta.cache_misses
        report: Dict[str, object] = {
            "panels": self.panels,
            "app_panels": app_panels,
            "network_panels": network_panels,
            "seed": self.seed,
            "apps_ranked": len(self._apps),
            "operators_ranked": len(self._operators),
            "results_digest": sha.hexdigest(),
            "blocks": {"read": delta.blocks_read,
                       "pruned": delta.blocks_pruned},
            "cache": {
                "hits": delta.cache_hits,
                "misses": delta.cache_misses,
                "hit_rate": (round(delta.cache_hits / looked_up, 4)
                             if looked_up else None),
            },
        }
        if include_latency:
            ordered = sorted(self.latencies_ms)
            report["latency_ms"] = {
                "p50": round(_percentile(ordered, 0.5), 3),
                "p99": round(_percentile(ordered, 0.99), 3),
                "max": round(ordered[-1], 3) if ordered else 0.0,
            }
        return report

    def verify_against_scan(self, sample: int = 8
                            ) -> Dict[str, object]:
        """Recompute up to ``sample`` app and operator panels by full
        scan and compare: pruned and scanned answers must serialise
        byte-identically, and the pruned side must read strictly
        fewer blocks.  Raises :class:`QueryError` on any mismatch."""
        checked = 0
        pruned_blocks = 0
        scan_blocks = 0
        subjects = \
            [("app", app) for app in self._apps[:sample]] + \
            [("network", operator)
             for operator in self._operators[:sample]]
        for panel_kind, subject in subjects:
            before = self.view.stats.copy()
            if panel_kind == "app":
                pruned = self.view.app_panel(subject)
            else:
                pruned = self.view.network_panel(subject)
            mid = self.view.stats.copy()
            if panel_kind == "app":
                scanned = self.view.app_panel(subject, scan=True)
            else:
                scanned = self.view.network_panel(subject, scan=True)
            after = self.view.stats.copy()
            if _canonical(pruned) != _canonical(scanned):
                raise QueryError(
                    "pruned %s panel for %r diverged from its full "
                    "scan" % (panel_kind, subject))
            pruned_blocks += mid.delta_since(before).blocks_read
            scan_blocks += after.delta_since(mid).blocks_read
            checked += 1
        return {"panels_checked": checked,
                "pruned_blocks_read": pruned_blocks,
                "scan_blocks_read": scan_blocks}


__all__ = ["DEFAULT_APP_SHARE", "DEFAULT_ZIPF_S", "DashboardWorkload"]
