"""Snapshot-isolated query engine over a :class:`StoreEngine`.

The dashboard problem: MopEye's backend serves per-app / per-ISP
percentile comparisons to many concurrent viewers while ingestion
keeps flushing, compacting and retiring segments underneath them.  A
query that reads "whatever the engine has right now" can tear -- half
its rows from a pre-compaction segment, half from the merged
replacement.  This module gives every query a **pinned view** instead:

* :meth:`QueryEngine.snapshot` opens one
  :class:`~repro.store.segments.SegmentReader` per live segment and
  deep-clones the memtable.  The readers hold open file descriptors,
  so even after compaction or retention *unlinks* a segment file the
  pinned bytes keep serving (POSIX semantics); the memtable clone is
  immune to concurrent ingest by construction.  A
  :class:`ReadView` therefore answers every query from exactly the
  state that existed at snapshot time -- flush, compaction and
  retention racing the reader cannot tear a result.
* Point and prefix queries go through the segment zone maps
  (``footer.blocks[].min/max``), opening only the blocks that can
  match -- strictly fewer than a scan, with byte-identical results
  (``scan=True`` on every panel recomputes the answer the slow way
  for exactly that assertion).
* All readers of one engine share a byte-budgeted
  :class:`~repro.store.blockcache.BlockCache`, so a fan-out of panels
  over the same hot windows decodes each block once.

Anything wrong with the underlying files -- a segment quarantined
mid-read, a block failing its CRC -- surfaces as :class:`QueryError`
with the file named, never a crash or a silently partial answer.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.backend import query as backend_query
from repro.backend.rollups import (
    Key,
    MergeHist,
    RollupStore,
    log_bin_value,
)
from repro.core.records import MeasurementKind
from repro.obs import Observability
from repro.store.blockcache import DEFAULT_CACHE_BYTES, BlockCache
from repro.store.segments import ReadStats, SegmentCorruption

#: The CLI query surface, in display order.  ``tests/test_query_docs``
#: enforces that docs/QUERY.md documents exactly these views, both
#: directions.
VIEWS: Dict[str, str] = {
    "summary": "record counts, per-table group sizes, windows, digest "
               "and meta for the whole state",
    "apps": "per-app RTT table merged across windows, by volume",
    "networks": "per-(operator, technology) app-vs-DNS median table",
    "windows": "per-window volume and app-RTT median time series",
    "cases": "detector findings persisted with the state",
    "table": "raw rows of one rollup table (pick with --name)",
    "panel": "pruned per-app (--app) or per-ISP (--operator) "
             "percentile panel; app panels add throughput, energy "
             "and AoI sections when modality rollups are present",
    "dashboard": "simulated dashboard fan-out of Zipf-popular panels "
                 "(--panels, --seed, --latency)",
}
VIEW_ORDER: Tuple[str, ...] = tuple(VIEWS)


class QueryError(Exception):
    """A query could not be answered cleanly (unreadable or corrupt
    segment, quarantined file).  The message names the file."""


def _quantiles(hist: MergeHist) -> Dict[str, float]:
    return {"median_ms": round(hist.median(), 2),
            "p90_ms": round(hist.quantile(0.9), 2),
            "p99_ms": round(hist.quantile(0.99), 2)}


# Modality tables aggregate on the shared log grid; their quantile
# indices must decode through log_bin_value, and each carries its own
# unit (KB/s, mJ, staleness ms) -- see docs/MODALITIES.md.
MODALITY_UNITS = {"app_throughput": "kb_s",
                  "app_energy": "mj",
                  "aoi": "ms"}


def _log_quantiles(hist: MergeHist, unit: str) -> Dict[str, float]:
    return {"median_%s" % unit:
                round(log_bin_value(hist.quantile_index(0.5)), 3),
            "p90_%s" % unit:
                round(log_bin_value(hist.quantile_index(0.9)), 3),
            "p99_%s" % unit:
                round(log_bin_value(hist.quantile_index(0.99)), 3)}


def _log_summary(hist: MergeHist, unit: str
                 ) -> Optional[Dict[str, object]]:
    """count/median/p90 summary of a log-grid modality histogram
    (throughput, energy, AoI) -- quantile indices decoded through
    :func:`log_bin_value` instead of the linear RTT grid."""
    if hist.count == 0:
        return None
    return {
        "count": hist.count,
        "median_%s" % unit:
            round(log_bin_value(hist.quantile_index(0.5)), 3),
        "p90_%s" % unit:
            round(log_bin_value(hist.quantile_index(0.9)), 3),
    }


class ReadView:
    """One pinned, immutable snapshot of the rollup state.

    Scan views (:meth:`summary`, :meth:`apps`, :meth:`networks`,
    :meth:`window_series`, :meth:`cases`, :meth:`table_rows`) answer
    from a lazily materialised merge of every pinned segment plus the
    memtable clone -- byte-compatible with the pre-serving-tier CLI.
    Pruned views (:meth:`app_panel`, :meth:`network_panel`) answer
    from zone-mapped point/prefix reads instead, opening only the
    blocks that can match; pass ``scan=True`` to recompute the same
    panel by full scan (the byte-identity check the tests and perf
    guard run).

    Views must be closed (or used as context managers): close()
    releases the pinned file descriptors.
    """

    def __init__(self, readers: List, memtable: RollupStore,
                 meta: Optional[Dict[str, object]] = None,
                 findings: Optional[List[dict]] = None,
                 stats: Optional[ReadStats] = None,
                 obs: Optional[Observability] = None,
                 inject_findings: bool = False) -> None:
        self.readers = list(readers)
        self.memtable = memtable
        self.meta: Dict[str, object] = dict(meta or {})
        self.findings: List[dict] = list(findings or [])
        self.stats = stats if stats is not None else ReadStats()
        self.obs = obs
        self._inject_findings = inject_findings
        self._materialized: Optional[RollupStore] = None
        self._scanned: Dict[str, Dict[Key, MergeHist]] = {}
        self._closed = False

    @classmethod
    def from_rollups(cls, rollups: RollupStore) -> "ReadView":
        """A view over an in-memory / JSON-state store (no segments,
        nothing to pin -- the store is already immutable to us)."""
        return cls(readers=[], memtable=rollups, meta=rollups.meta)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for reader in self.readers:
            reader.close()

    def __enter__(self) -> "ReadView":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # -- bookkeeping ---------------------------------------------------

    def _count_query(self) -> None:
        if self.obs is not None:
            self.obs.inc("serve.queries")

    # -- the merged whole (scan views) ---------------------------------

    def materialize(self) -> RollupStore:
        """Segments (seq order) + memtable merged into one store;
        cached -- the view is immutable, so once is enough."""
        if self._materialized is None:
            merged = RollupStore(config=self.memtable.config,
                                 meta=self.meta)
            try:
                for reader in self.readers:
                    merged.merge(reader.to_store())
            except SegmentCorruption as exc:
                raise QueryError(str(exc))
            merged.merge(self.memtable)
            if self._inject_findings and \
                    "findings" not in merged.meta:
                merged.meta["findings"] = list(self.findings)
            self._materialized = merged
        return self._materialized

    def summary(self) -> Dict[str, object]:
        self._count_query()
        return backend_query.summary(self.materialize())

    def apps(self, top: Optional[int] = 20) -> List[Dict[str, object]]:
        self._count_query()
        return backend_query.apps(self.materialize(), top=top)

    def networks(self, top: Optional[int] = 20
                 ) -> List[Dict[str, object]]:
        self._count_query()
        return backend_query.networks(self.materialize(), top=top)

    def window_series(self) -> List[Dict[str, object]]:
        self._count_query()
        return backend_query.windows(self.materialize())

    def cases(self) -> List[Dict[str, object]]:
        self._count_query()
        return backend_query.cases(self.materialize())

    def table_rows(self, name: str, top: Optional[int] = None
                   ) -> List[Dict[str, object]]:
        """Raw rows of one rollup table, highest volume first."""
        if name not in RollupStore.TABLES:
            raise QueryError("unknown table %r; tables are %s"
                             % (name, ", ".join(RollupStore.TABLES)))
        self._count_query()
        unit = MODALITY_UNITS.get(name)
        summarize = (_quantiles if unit is None
                     else lambda hist: _log_quantiles(hist, unit))
        rows = [dict([("key", list(key)), ("count", hist.count)],
                     **summarize(hist))
                for key, hist in self._scan_table(name).items()]
        rows.sort(key=lambda row: (-row["count"], row["key"]))
        return rows[:top] if top is not None else rows

    # -- pruned primitives ---------------------------------------------

    def windows(self) -> List[int]:
        """Every rollup window in the view, from footer metadata alone
        where possible (zero block reads for v2 segments)."""
        seen = set(self.memtable.windows())
        for reader in self.readers:
            listed = reader.windows()
            if listed is None:          # v1 footer: derive by scan
                for table in ("network", "app"):
                    for key, _hist in reader.iter_table(table):
                        seen.add(int(key[0]))
            else:
                seen.update(listed)
        return sorted(seen)

    def get(self, table: str, key: Key) -> Optional[MergeHist]:
        """Point read merged across every pinned segment plus the
        memtable; zone maps mean at most one block per segment."""
        merged: Optional[MergeHist] = None
        try:
            for reader in self.readers:
                hist = reader.get(table, key)
                if hist is not None:
                    if merged is None:
                        merged = MergeHist()
                    merged.merge(hist)
        except SegmentCorruption as exc:
            raise QueryError(str(exc))
        hist = self.memtable.tables[table].get(tuple(key))
        if hist is not None:
            if merged is None:
                merged = MergeHist()
            merged.merge(hist)
        return merged

    def get_many(self, table: str, keys: List[Key]
                 ) -> Dict[Key, MergeHist]:
        """Batched point reads merged across segments + memtable:
        each segment walks its zone maps once, opening every
        candidate block at most once for the whole key set."""
        out: Dict[Key, MergeHist] = {}

        def _fold(key: Key, hist: MergeHist) -> None:
            merged = out.get(key)
            if merged is None:
                merged = out[key] = MergeHist()
            merged.merge(hist)

        try:
            for reader in self.readers:
                for key, hist in reader.get_many(table, keys).items():
                    _fold(key, hist)
        except SegmentCorruption as exc:
            raise QueryError(str(exc))
        for key in set(map(tuple, keys)):
            hist = self.memtable.tables[table].get(key)
            if hist is not None:
                _fold(key, hist)
        return out

    def scan_prefix(self, table: str, prefix_parts: Tuple[str, ...]
                    ) -> Dict[Key, MergeHist]:
        """Prefix range merged across segments + memtable, opening
        only the blocks whose zone map intersects the prefix."""
        return self.scan_prefixes(table, [tuple(prefix_parts)])

    def scan_prefixes(self, table: str,
                      prefixes: List[Tuple[str, ...]]
                      ) -> Dict[Key, MergeHist]:
        """Rows matching any of the (equal-length) prefixes, merged
        across segments + memtable in one batched pass per segment."""
        out: Dict[Key, MergeHist] = {}
        if not prefixes:
            return out
        wanted = {tuple(prefix) for prefix in prefixes}
        n = len(next(iter(wanted)))

        def _fold(key: Key, hist: MergeHist) -> None:
            merged = out.get(key)
            if merged is None:
                merged = out[key] = MergeHist()
            merged.merge(hist)

        try:
            for reader in self.readers:
                for key, hist in reader.scan_prefixes(
                        table, sorted(wanted)):
                    _fold(key, hist)
        except SegmentCorruption as exc:
            raise QueryError(str(exc))
        for key, hist in self.memtable.tables[table].items():
            if key[:n] in wanted:
                _fold(key, hist)
        return out

    def _scan_table(self, name: str,
                    cached: bool = True) -> Dict[Key, MergeHist]:
        """The whole table merged across segments + memtable (reads
        every block).  Cached per view by default; ``cached=False``
        re-reads every block -- the honest cost a ``scan=True`` panel
        is charged, so the pruned-vs-scan blocks-read comparison
        compares real work."""
        if cached:
            scanned = self._scanned.get(name)
            if scanned is not None:
                return scanned
        scanned = {}
        try:
            for reader in self.readers:
                for key, hist in reader.iter_table(name):
                    merged = scanned.get(key)
                    if merged is None:
                        merged = scanned[key] = MergeHist()
                    merged.merge(hist)
        except SegmentCorruption as exc:
            raise QueryError(str(exc))
        for key, hist in self.memtable.tables[name].items():
            merged = scanned.get(key)
            if merged is None:
                merged = scanned[key] = MergeHist()
            merged.merge(hist)
        self._scanned[name] = scanned
        return scanned

    # -- dashboard panels ----------------------------------------------

    def app_panel(self, app: str, scan: bool = False
                  ) -> Dict[str, object]:
        """Per-window RTT percentiles for one app (MopEye section 5's
        per-app comparison), plus the app's modality summaries --
        per-direction throughput, attributed energy, and the device
        fleet's age-of-information (docs/MODALITIES.md).  Pruned by
        default: batched point/prefix reads across all windows, so
        each segment opens every candidate block at most once."""
        self._count_query()
        windows = self.windows()
        keys = [(str(window), app, MeasurementKind.TCP)
                for window in windows]
        tput_keys = [(str(window), app, kind)
                     for window in windows
                     for kind in (MeasurementKind.TPUT_UP,
                                  MeasurementKind.TPUT_DOWN)]
        energy_keys = [(str(window), app) for window in windows]
        aoi_prefixes = [(str(window),) for window in windows]
        if scan:
            source = self._scan_table("app", cached=False)
            hits = {key: source[key] for key in keys
                    if key in source}
            tput_source = self._scan_table("app_throughput",
                                           cached=False)
            tput_hits = {key: tput_source[key] for key in tput_keys
                         if key in tput_source}
            energy_source = self._scan_table("app_energy",
                                             cached=False)
            energy_hits = {key: energy_source[key]
                           for key in energy_keys
                           if key in energy_source}
            wanted = set(aoi_prefixes)
            aoi_hits = {key: hist for key, hist
                        in self._scan_table("aoi",
                                            cached=False).items()
                        if key[:1] in wanted}
        else:
            hits = self.get_many("app", keys)
            tput_hits = self.get_many("app_throughput", tput_keys)
            energy_hits = self.get_many("app_energy", energy_keys)
            aoi_hits = self.scan_prefixes("aoi", aoi_prefixes) \
                if aoi_prefixes else {}
        rows: List[Dict[str, object]] = []
        overall = MergeHist()
        for window in windows:
            hist = hits.get((str(window), app, MeasurementKind.TCP))
            if hist is None or hist.count == 0:
                continue
            rows.append(dict([("window", window),
                              ("count", hist.count)],
                             **_quantiles(hist)))
            overall.merge(hist)
        up = MergeHist()
        down = MergeHist()
        for key, hist in tput_hits.items():
            (up if key[2] == MeasurementKind.TPUT_UP
             else down).merge(hist)
        energy = MergeHist()
        for hist in energy_hits.values():
            energy.merge(hist)
        aoi = MergeHist()
        for hist in aoi_hits.values():
            aoi.merge(hist)
        return {
            "panel": "app",
            "app": app,
            "windows": rows,
            "overall": (dict([("count", overall.count)],
                             **_quantiles(overall))
                        if overall.count else None),
            "throughput": {"up": _log_summary(up, "kb_s"),
                           "down": _log_summary(down, "kb_s")},
            "energy": _log_summary(energy, "mj"),
            "aoi": _log_summary(aoi, "ms"),
        }

    def network_panel(self, operator: str, scan: bool = False
                      ) -> Dict[str, object]:
        """Per-window app-vs-DNS medians and a per-technology
        breakdown for one operator (the per-ISP comparison).  Pruned
        by default: one batched prefix pass covering every window, so
        each segment opens every candidate block at most once."""
        self._count_query()
        windows = self.windows()
        prefixes = [(str(window), operator) for window in windows]
        if scan:
            source = self._scan_table("network", cached=False)
            wanted = set(prefixes)
            hits = {key: hist for key, hist in source.items()
                    if key[:2] in wanted}
        else:
            hits = self.scan_prefixes("network", prefixes) \
                if prefixes else {}
        rows: List[Dict[str, object]] = []
        by_tech: Dict[str, MergeHist] = {}
        overall = MergeHist()
        app_layer = MergeHist()
        for window in windows:
            prefix = (str(window), operator)
            matches = {key: hist for key, hist in hits.items()
                       if key[:2] == prefix}
            if not matches:
                continue
            tcp = MergeHist()
            dns = MergeHist()
            for key, hist in matches.items():
                _window, _operator, tech, kind = key
                if kind == MeasurementKind.TCP:
                    tcp.merge(hist)
                    merged = by_tech.get(tech)
                    if merged is None:
                        merged = by_tech[tech] = MergeHist()
                    merged.merge(hist)
                    overall.merge(hist)
                elif kind == MeasurementKind.DNS:
                    dns.merge(hist)
                elif kind == MeasurementKind.APP_RTT:
                    app_layer.merge(hist)
            rows.append({
                "window": window,
                "count": tcp.count + dns.count,
                "app_median_ms": (round(tcp.median(), 2)
                                  if tcp.count else None),
                "app_p99_ms": (round(tcp.quantile(0.99), 2)
                               if tcp.count else None),
                "dns_median_ms": (round(dns.median(), 2)
                                  if dns.count else None),
            })
        # The middlebox tell (docs/MIDDLEBOX.md): SYN RTT vs app-layer
        # RTT for this operator.  Null when the relay never emitted
        # APP_RTT records (every pre-middlebox state).
        app_rtt = None
        if app_layer.count and overall.count:
            syn_median = overall.median()
            app_median = app_layer.median()
            app_rtt = {
                "count": app_layer.count,
                "median_ms": round(app_median, 2),
                "syn_median_ms": round(syn_median, 2),
                "divergence_ratio": (round(app_median / syn_median, 3)
                                     if syn_median else None),
            }
        return {
            "panel": "network",
            "operator": operator,
            "windows": rows,
            "app_rtt": app_rtt,
            "technologies": [
                dict([("technology", tech),
                      ("count", by_tech[tech].count)],
                     **_quantiles(by_tech[tech]))
                for tech in sorted(by_tech)],
            "overall": (dict([("count", overall.count)],
                             **_quantiles(overall))
                        if overall.count else None),
        }


class QueryEngine:
    """Query front-end over one :class:`StoreEngine`: a shared block
    cache plus snapshot factories."""

    def __init__(self, engine, cache_bytes: int = DEFAULT_CACHE_BYTES,
                 obs: Optional[Observability] = None) -> None:
        self.engine = engine
        self.obs = obs if obs is not None else engine.obs
        self.cache = BlockCache(cache_bytes, obs=self.obs)

    def snapshot(self) -> ReadView:
        """Pin the current state: open readers over the live segments
        and deep-clone the memtable.  Raises :class:`QueryError` if a
        listed segment cannot be opened."""
        stats = ReadStats()
        try:
            readers = self.engine.segment_readers(
                cache=self.cache, obs=self.obs, stats=stats)
        except SegmentCorruption as exc:
            raise QueryError(str(exc))
        if self.obs is not None:
            self.obs.inc("serve.snapshots")
        return ReadView(
            readers=readers,
            memtable=self.engine.memtable.clone(),
            meta=self.engine.meta,
            findings=self.engine.findings,
            stats=stats,
            obs=self.obs,
            inject_findings=True)


__all__ = ["QueryEngine", "QueryError", "ReadView", "VIEWS",
           "VIEW_ORDER"]
