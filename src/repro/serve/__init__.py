"""repro.serve: the read-path serving tier over :mod:`repro.store`.

Dashboard-style queries (per-app / per-ISP percentile panels) over a
live storage engine, with the three properties a real serving tier
needs: **snapshot isolation** (a query pins the segment list and a
memtable clone, so concurrent flush/compaction/retention cannot tear
its result), **zone-map pruning** (point and range reads open only
the segment blocks whose key range can match, byte-identical to a
full scan), and a shared **LRU block cache**.  See ``docs/QUERY.md``
for the operator guide.
"""

from repro.serve.engine import (
    VIEW_ORDER,
    VIEWS,
    QueryEngine,
    QueryError,
    ReadView,
)
from repro.serve.workload import DashboardWorkload

__all__ = [
    "DashboardWorkload",
    "QueryEngine",
    "QueryError",
    "ReadView",
    "VIEWS",
    "VIEW_ORDER",
]
