"""Generator-based discrete-event simulation kernel.

The kernel provides four primitives:

* :class:`Simulator` -- the event loop with a virtual clock.
* :class:`Event` -- a one-shot occurrence that processes can wait on.
* :class:`Timeout` -- an event that fires after a virtual delay.
* :class:`Process` -- a generator coroutine driven by the events it
  yields.  Processes model the paper's threads (TunReader, TunWriter,
  MainWorker, socket-connect threads, app threads, servers).

Determinism: events scheduled for the same instant fire in schedule
order (a monotonically increasing sequence number breaks ties), so a
seeded run is fully reproducible.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, List, Optional


class SimulationError(Exception):
    """Raised for kernel misuse (double trigger, run-time underflow...)."""


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`.

    Mirrors ``Thread.interrupt()`` semantics in the paper: the victim
    process receives the exception at its current wait point.  A process
    blocked on a non-interruptible event (e.g. the blocking TUN read of
    section 3.1) simply never reaches a wait point where the interrupt
    can be delivered -- the kernel models that by only delivering
    interrupts at yield points, exactly the behaviour MopEye had to work
    around with a dummy packet.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


PENDING = object()


class Event:
    """A one-shot event; processes yield it to wait for it to trigger."""

    def __init__(self, sim: "Simulator", name: str = ""):
        self.sim = sim
        self.name = name
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._ok = True

    # -- state ---------------------------------------------------------
    @property
    def triggered(self) -> bool:
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        if not self.triggered:
            raise SimulationError("event %r has not been triggered" % self.name)
        return self._ok

    @property
    def value(self) -> Any:
        if self._value is PENDING:
            raise SimulationError("event %r has no value yet" % self.name)
        return self._value

    # -- triggering ----------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        if self.triggered:
            raise SimulationError("event %r already triggered" % self.name)
        self._value = value
        self._ok = True
        self.sim._post(self)
        return self

    def fail(self, exc: BaseException) -> "Event":
        if self.triggered:
            raise SimulationError("event %r already triggered" % self.name)
        if not isinstance(exc, BaseException):
            raise SimulationError("fail() needs an exception instance")
        self._value = exc
        self._ok = False
        self.sim._post(self)
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "triggered" if self.triggered else "pending"
        return "<Event %s %s>" % (self.name or hex(id(self)), state)


class Timeout(Event):
    """An event that triggers ``delay`` units of virtual time from now.

    The value is held aside until the scheduler pops the event, so a
    pending timeout correctly reports ``triggered == False``.
    """

    def __init__(self, sim: "Simulator", delay: float, value: Any = None,
                 name: str = "timeout"):
        if delay < 0:
            raise SimulationError("negative delay %r" % delay)
        super().__init__(sim, name)
        self._delayed_value = value
        sim._schedule(self, delay)


class AnyOf(Event):
    """Triggers when the first of ``events`` triggers.

    The value is a dict mapping the triggered events to their values
    (only those triggered by the time this composite is processed).
    Used by the Selector emulation to wait on socket readiness *or* a
    wakeup, matching section 3.2.
    """

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim, "any_of")
        self.events = list(events)
        if not self.events:
            self.succeed({})
            return
        for event in self.events:
            if event.triggered:
                if not self.triggered:
                    self.succeed(self._collect())
                break
            event.callbacks.append(self._check)

    def _collect(self) -> dict:
        return {e: e._value for e in self.events if e.triggered and e._ok}

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            self.fail(event._value)
        else:
            self.succeed(self._collect())


class AllOf(Event):
    """Triggers when every one of ``events`` has triggered."""

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim, "all_of")
        self.events = list(events)
        self._remaining = 0
        for event in self.events:
            if event.triggered:
                if not event._ok:
                    self.fail(event._value)
                    return
            else:
                self._remaining += 1
                event.callbacks.append(self._check)
        if self._remaining == 0 and not self.triggered:
            self.succeed({e: e._value for e in self.events})

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed({e: e._value for e in self.events})


class Process(Event):
    """A generator coroutine driven by the events it yields.

    A process is itself an event: it triggers with the generator's
    return value when the generator finishes, so processes can wait for
    each other (``yield other_process``) the way the paper's main thread
    joins its temporary socket-connect threads.
    """

    def __init__(self, sim: "Simulator",
                 generator: Generator[Event, Any, Any],
                 name: str = "process"):
        super().__init__(sim, name)
        if not hasattr(generator, "send"):
            raise SimulationError(
                "Process needs a generator, got %r" % (generator,))
        self._generator = generator
        self._target: Optional[Event] = None
        self._interrupts: List[Interrupt] = []
        # Bootstrap: resume once at the current time.
        bootstrap = Event(sim, "init:%s" % name)
        bootstrap._value = None
        bootstrap._ok = True
        bootstrap.callbacks = []
        bootstrap.callbacks.append(self._resume)
        sim._schedule(bootstrap, 0)

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its wait point."""
        if self.triggered:
            return
        self._interrupts.append(Interrupt(cause))
        target = self._target
        if target is not None and not target.triggered:
            # Detach from the event we were waiting on and resume now.
            try:
                target.callbacks.remove(self._resume)
            except (ValueError, AttributeError):
                pass
            self._target = None
            kick = Event(self.sim, "interrupt:%s" % self.name)
            kick._value = None
            kick._ok = True
            kick.callbacks = [self._resume]
            self.sim._schedule(kick, 0)

    def _resume(self, event: Event) -> None:
        if self.triggered:
            return
        self._target = None
        self.sim._active_process = self
        try:
            while True:
                if self._interrupts:
                    exc = self._interrupts.pop(0)
                    next_event = self._generator.throw(exc)
                elif event is not None and not event._ok:
                    next_event = self._generator.throw(event._value)
                else:
                    send_value = None if event is None else event._value
                    next_event = self._generator.send(send_value)
                # The generator yielded: decide whether to wait or spin.
                if not isinstance(next_event, Event):
                    raise SimulationError(
                        "process %s yielded non-event %r"
                        % (self.name, next_event))
                if next_event.triggered:
                    event = next_event
                    continue
                next_event.callbacks.append(self._resume)
                self._target = next_event
                return
        except StopIteration as stop:
            self.succeed(stop.value)
        except Interrupt:
            # Interrupt escaped the generator: treat as termination.
            self.succeed(None)
        except BaseException as exc:  # noqa: BLE001 - propagate to waiters
            if self.callbacks:
                self.fail(exc)
            else:
                raise
        finally:
            self.sim._active_process = None


class Simulator:
    """The event loop: a priority queue of (time, seq, event)."""

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: List[tuple] = []
        self._seq = 0
        self._active_process: Optional[Process] = None

    # -- factory helpers -------------------------------------------------
    def event(self, name: str = "") -> Event:
        return Event(self, name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, generator: Generator[Event, Any, Any],
                name: str = "process") -> Process:
        return Process(self, generator, name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    # -- scheduling -------------------------------------------------------
    def _schedule(self, event: Event, delay: float) -> None:
        heapq.heappush(self._heap, (self.now + delay, self._seq, event))
        self._seq += 1

    def _post(self, event: Event) -> None:
        """Queue an already-triggered event for callback processing."""
        self._schedule(event, 0)

    # -- running ----------------------------------------------------------
    def step(self) -> None:
        when, _seq, event = heapq.heappop(self._heap)
        if when < self.now:
            raise SimulationError("time went backwards")
        self.now = when
        if event._value is PENDING:
            # A scheduled trigger (Timeout) firing now.
            event._value = getattr(event, "_delayed_value", None)
            event._ok = True
        callbacks = event.callbacks
        event.callbacks = None
        if callbacks:
            for callback in callbacks:
                callback(event)

    def run(self, until: Optional[float] = None,
            stop_event: Optional[Event] = None) -> Any:
        """Run until the heap drains, ``until`` is reached, or
        ``stop_event`` triggers.  Returns the stop event's value."""
        while self._heap:
            if stop_event is not None and stop_event.processed:
                return stop_event.value
            when = self._heap[0][0]
            if until is not None and when > until:
                self.now = until
                return None
            self.step()
        if until is not None and until > self.now:
            self.now = until
        if stop_event is not None and stop_event.triggered:
            return stop_event.value
        return None
