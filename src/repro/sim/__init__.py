"""Discrete-event simulation kernel.

Everything in the reproduction runs on virtual time provided by this
package: Android "threads" are :class:`~repro.sim.kernel.Process`
coroutines, syscalls are modelled as timed events, and the network is a
set of scheduled deliveries.  The kernel is deliberately SimPy-like
(generator-based processes yielding events) but written from scratch so
that the repository has no dependency beyond the standard library and
numpy/scipy for statistics.
"""

from repro.sim.kernel import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Simulator,
    Timeout,
)
from repro.sim.queues import (
    BlockingQueue,
    QueueClosed,
    Semaphore,
    Signal,
    WaitNotifyQueue,
)
from repro.sim.distributions import (
    Constant,
    Distribution,
    Empirical,
    Exponential,
    LogNormal,
    Mixture,
    Normal,
    Shifted,
    Uniform,
)

__all__ = [
    "AllOf",
    "AnyOf",
    "BlockingQueue",
    "Constant",
    "Distribution",
    "Empirical",
    "Event",
    "Exponential",
    "Interrupt",
    "LogNormal",
    "Mixture",
    "Normal",
    "Process",
    "QueueClosed",
    "Semaphore",
    "Shifted",
    "Signal",
    "SimulationError",
    "Simulator",
    "Timeout",
    "Uniform",
    "WaitNotifyQueue",
]
