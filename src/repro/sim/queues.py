"""Synchronisation primitives for simulated threads.

Two queue flavours are provided:

* :class:`BlockingQueue` -- an idealised FIFO used where queueing cost
  is not the object of study (e.g. packet hand-off inside the network
  fabric).
* :class:`WaitNotifyQueue` -- a Java-monitor-style queue whose ``put``
  charges the producer a monitor-enter/notify cost, and whose blocked
  consumer resumes only after a scheduling wakeup delay.  This is the
  mechanism behind the *oldPut* numbers of Table 1: "most of the
  overheads between 1~5ms are due to the queue's wait-notify delay".
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, List, Optional

from repro.sim.kernel import Event, SimulationError, Simulator
from repro.sim.distributions import Constant, Distribution


class QueueClosed(Exception):
    """Raised to consumers when a closed queue drains empty."""


class Signal:
    """A re-armable level event, the kernel analogue of
    ``Selector.wakeup()``: waiting on a signalled Signal returns
    immediately and clears it; signalling with no waiter latches."""

    def __init__(self, sim: Simulator, name: str = "signal"):
        self.sim = sim
        self.name = name
        self._latched = False
        self._waiters: List[Event] = []

    @property
    def latched(self) -> bool:
        return self._latched

    def set(self) -> None:
        if self._waiters:
            waiters, self._waiters = self._waiters, []
            for waiter in waiters:
                if not waiter.triggered:
                    waiter.succeed()
        else:
            self._latched = True

    def wait(self) -> Event:
        event = self.sim.event("wait:%s" % self.name)
        if self._latched:
            self._latched = False
            event.succeed()
        else:
            self._waiters.append(event)
        return event

    def clear(self) -> None:
        self._latched = False


class BlockingQueue:
    """Unbounded FIFO with event-based blocking ``get``."""

    def __init__(self, sim: Simulator, name: str = "queue"):
        self.sim = sim
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._closed = False

    def __len__(self) -> int:
        return len(self._items)

    @property
    def closed(self) -> bool:
        return self._closed

    def put(self, item: Any) -> None:
        if self._closed:
            raise SimulationError("put on closed queue %s" % self.name)
        while self._getters:
            getter = self._getters.popleft()
            if not getter.triggered:
                getter.succeed(item)
                return
        self._items.append(item)

    def try_get(self) -> Optional[Any]:
        """Non-blocking get; None when empty."""
        if self._items:
            return self._items.popleft()
        return None

    def get(self) -> Event:
        event = self.sim.event("get:%s" % self.name)
        if self._items:
            event.succeed(self._items.popleft())
        elif self._closed:
            event.fail(QueueClosed(self.name))
        else:
            self._getters.append(event)
        return event

    def close(self) -> None:
        self._closed = True
        while self._getters:
            getter = self._getters.popleft()
            if not getter.triggered:
                getter.fail(QueueClosed(self.name))


class WaitNotifyQueue:
    """FIFO with Java ``synchronized``/``wait``/``notify`` cost model.

    ``put`` returns an event that triggers once the producer has paid
    the enqueue cost; when a consumer is parked in ``wait()`` the
    producer additionally pays ``notify_cost`` and the consumer resumes
    after ``wakeup_delay`` (thread re-scheduling latency).  ``last_put_cost``
    exposes the producer-side cost of the most recent put so benchmarks
    can histogram it the way Table 1 does.
    """

    def __init__(self, sim: Simulator,
                 append_cost: Optional[Distribution] = None,
                 notify_cost: Optional[Distribution] = None,
                 wakeup_delay: Optional[Distribution] = None,
                 name: str = "monitor-queue"):
        self.sim = sim
        self.name = name
        self.append_cost = append_cost or Constant(0.0)
        self.notify_cost = notify_cost or Constant(0.0)
        self.wakeup_delay = wakeup_delay or Constant(0.0)
        self._items: Deque[Any] = deque()
        self._waiter: Optional[Event] = None
        self._closed = False
        self.last_put_cost = 0.0

    def __len__(self) -> int:
        return len(self._items)

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def has_waiter(self) -> bool:
        return self._waiter is not None

    def put(self, item: Any) -> Event:
        """Enqueue; the returned event triggers when the producer may
        continue (i.e. after its enqueue + notify cost)."""
        if self._closed:
            raise SimulationError("put on closed queue %s" % self.name)
        cost = self.append_cost.sample()
        self._items.append(item)
        if self._waiter is not None:
            cost += self.notify_cost.sample()
            waiter, self._waiter = self._waiter, None
            delay = self.wakeup_delay.sample()
            wake = self.sim.timeout(delay)
            wake.callbacks.append(
                lambda _evt, w=waiter: None if w.triggered else w.succeed())
        self.last_put_cost = cost
        return self.sim.timeout(cost)

    def try_get(self) -> Optional[Any]:
        if self._items:
            return self._items.popleft()
        return None

    def wait(self) -> Event:
        """Park the (single) consumer until a producer notifies."""
        if self._waiter is not None:
            raise SimulationError(
                "queue %s already has a parked consumer" % self.name)
        event = self.sim.event("wait:%s" % self.name)
        if self._items:
            event.succeed()
        elif self._closed:
            event.fail(QueueClosed(self.name))
        else:
            self._waiter = event
        return event

    def close(self) -> None:
        self._closed = True
        if self._waiter is not None and not self._waiter.triggered:
            self._waiter.fail(QueueClosed(self.name))
            self._waiter = None


class Semaphore:
    """Counting semaphore with FIFO wakeup order."""

    def __init__(self, sim: Simulator, value: int = 1, name: str = "sem"):
        if value < 0:
            raise SimulationError("semaphore value must be >= 0")
        self.sim = sim
        self.name = name
        self._value = value
        self._waiters: Deque[Event] = deque()

    @property
    def value(self) -> int:
        return self._value

    def acquire(self) -> Event:
        event = self.sim.event("acquire:%s" % self.name)
        if self._value > 0:
            self._value -= 1
            event.succeed()
        else:
            self._waiters.append(event)
        return event

    def release(self) -> None:
        while self._waiters:
            waiter = self._waiters.popleft()
            if not waiter.triggered:
                waiter.succeed()
                return
        self._value += 1
