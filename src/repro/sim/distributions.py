"""Seedable latency/cost distributions.

Cost models throughout the reproduction (syscall costs, proc-parse
overheads, wait-notify delays, access-link RTTs) are expressed as
:class:`Distribution` objects so that each experiment documents its
parameters explicitly and every run is reproducible from a seed.

All units are milliseconds of virtual time unless a caller says
otherwise; distributions are unit-agnostic.
"""

from __future__ import annotations

import bisect
import random
from typing import List, Optional, Sequence, Tuple


class Distribution:
    """Base class: a samplable non-negative random variable."""

    def __init__(self, rng: Optional[random.Random] = None):
        self.rng = rng or random.Random(0)

    def reseed(self, seed: int) -> None:
        self.rng = random.Random(seed)

    def bind(self, rng: random.Random) -> "Distribution":
        """Share a caller-provided RNG stream (for joint determinism)."""
        self.rng = rng
        return self

    def sample(self) -> float:
        raise NotImplementedError

    def sample_many(self, n: int) -> List[float]:
        return [self.sample() for _ in range(n)]


class Constant(Distribution):
    """Degenerate distribution; always returns ``value``."""

    def __init__(self, value: float):
        super().__init__()
        if value < 0:
            raise ValueError("constant cost must be non-negative")
        self.value = float(value)

    def sample(self) -> float:
        return self.value

    def __repr__(self) -> str:
        return "Constant(%g)" % self.value


class Uniform(Distribution):
    def __init__(self, low: float, high: float,
                 rng: Optional[random.Random] = None):
        super().__init__(rng)
        if low > high or low < 0:
            raise ValueError("need 0 <= low <= high")
        self.low = float(low)
        self.high = float(high)

    def sample(self) -> float:
        return self.rng.uniform(self.low, self.high)

    def __repr__(self) -> str:
        return "Uniform(%g, %g)" % (self.low, self.high)


class Normal(Distribution):
    """Gaussian truncated at ``floor`` (default 0) from below."""

    def __init__(self, mean: float, std: float, floor: float = 0.0,
                 rng: Optional[random.Random] = None):
        super().__init__(rng)
        if std < 0:
            raise ValueError("std must be non-negative")
        self.mean = float(mean)
        self.std = float(std)
        self.floor = float(floor)

    def sample(self) -> float:
        return max(self.floor, self.rng.gauss(self.mean, self.std))

    def __repr__(self) -> str:
        return "Normal(%g, %g)" % (self.mean, self.std)


class LogNormal(Distribution):
    """Log-normal parameterised by the *target* median and sigma.

    Latency tails in the wild are heavy; log-normal matches the shapes
    the paper reports for proc parsing and DNS RTTs far better than a
    Gaussian.  ``median`` is the distribution median (exp(mu)).
    """

    def __init__(self, median: float, sigma: float, shift: float = 0.0,
                 rng: Optional[random.Random] = None):
        super().__init__(rng)
        if median <= 0 or sigma < 0:
            raise ValueError("median must be > 0 and sigma >= 0")
        import math
        self.median = float(median)
        self.sigma = float(sigma)
        self.shift = float(shift)
        self._mu = math.log(median)

    def sample(self) -> float:
        return self.shift + self.rng.lognormvariate(self._mu, self.sigma)

    def __repr__(self) -> str:
        return "LogNormal(median=%g, sigma=%g, shift=%g)" % (
            self.median, self.sigma, self.shift)


class Exponential(Distribution):
    def __init__(self, mean: float, rng: Optional[random.Random] = None):
        super().__init__(rng)
        if mean <= 0:
            raise ValueError("mean must be positive")
        self.mean = float(mean)

    def sample(self) -> float:
        return self.rng.expovariate(1.0 / self.mean)

    def __repr__(self) -> str:
        return "Exponential(%g)" % self.mean


class Shifted(Distribution):
    """``base + offset`` -- e.g. a propagation floor under jitter."""

    def __init__(self, base: Distribution, offset: float):
        super().__init__(base.rng)
        self.base = base
        self.offset = float(offset)

    def bind(self, rng: random.Random) -> "Distribution":
        self.base.bind(rng)
        return super().bind(rng)

    def sample(self) -> float:
        return self.offset + self.base.sample()

    def __repr__(self) -> str:
        return "Shifted(%r, +%g)" % (self.base, self.offset)


class Mixture(Distribution):
    """Weighted mixture of component distributions.

    Used for bimodal costs such as "fast path usually, occasional
    millisecond spike" (selector register(), notify delay) and for
    populations that mix LTE and non-LTE samples (Figure 11's Cricket
    and U.S. Cellular models).
    """

    def __init__(self, components: Sequence[Tuple[float, Distribution]],
                 rng: Optional[random.Random] = None):
        super().__init__(rng)
        if not components:
            raise ValueError("mixture needs at least one component")
        weights = [w for w, _ in components]
        if any(w < 0 for w in weights) or sum(weights) <= 0:
            raise ValueError("weights must be non-negative, sum > 0")
        self.components = [dist for _, dist in components]
        total = float(sum(weights))
        cumulative = []
        acc = 0.0
        for weight in weights:
            acc += weight / total
            cumulative.append(acc)
        self._cumulative = cumulative

    def bind(self, rng: random.Random) -> "Distribution":
        for dist in self.components:
            dist.bind(rng)
        return super().bind(rng)

    def sample(self) -> float:
        u = self.rng.random()
        index = bisect.bisect_left(self._cumulative, u)
        index = min(index, len(self.components) - 1)
        return self.components[index].sample()

    def __repr__(self) -> str:
        return "Mixture(%d components)" % len(self.components)


class Empirical(Distribution):
    """Resamples (with linear interpolation) from observed values."""

    def __init__(self, samples: Sequence[float],
                 rng: Optional[random.Random] = None):
        super().__init__(rng)
        if not samples:
            raise ValueError("need at least one sample")
        self.samples = sorted(float(s) for s in samples)

    def sample(self) -> float:
        u = self.rng.random() * (len(self.samples) - 1)
        lo = int(u)
        if lo >= len(self.samples) - 1:
            return self.samples[-1]
        frac = u - lo
        return self.samples[lo] * (1 - frac) + self.samples[lo + 1] * frac

    def __repr__(self) -> str:
        return "Empirical(n=%d)" % len(self.samples)
