"""Deterministic measurement-imperfection layer (docs/MIDDLEBOX.md).

Hoque et al. show that in-situ RTT measurement on Android suffers two
systematic error sources beyond the network itself: **timer
quantisation** (a coarse clock floors every timestamp to its tick) and
**scheduler jitter** (the thread reading the clock runs late by a
scheduling delay).  :class:`ImperfectClock` reproduces both on the
*observed* timeline only -- it wraps the device cost model's
``quantize_nano`` timestamp path, so simulation scheduling is
untouched and two runs that differ only in the imperfection settings
align event for event.  That is what makes the per-source ablation
(quantisation vs jitter vs both) exact: same connects, same wire RTTs,
different recorded values.

Jitter draws come from a string-seeded RNG stream passed in by the
caller (the fault injector uses the event's own stream), so the noise
is byte-identical across worker counts and PYTHONHASHSEED.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.obs import Observability


class ImperfectClock:
    """Wraps a device cost model's timestamp quantisation.

    ``quantum_ms > 0`` floors every observed timestamp to N-ms ticks
    (MobiPerf-style millisecond clocks are ``quantum_ms=1.0``);
    ``jitter_ms > 0`` adds a non-negative uniform scheduling delay to
    each clock read before quantisation.  Either alone composes with
    any scenario; both model a cheap handset.
    """

    def __init__(self, costs, quantum_ms: float = 0.0,
                 jitter_ms: float = 0.0,
                 rng: Optional[random.Random] = None,
                 obs: Optional[Observability] = None):
        if quantum_ms < 0 or jitter_ms < 0:
            raise ValueError("imperfection magnitudes must be >= 0")
        self.costs = costs
        self.quantum_ms = quantum_ms
        self.jitter_ms = jitter_ms
        self.rng = rng or random.Random(0)
        self.obs = obs or Observability()
        self._original = None

    def install(self) -> None:
        """Replace ``costs.quantize_nano`` with the imperfect read.
        Idempotent; :meth:`uninstall` restores the original."""
        if self._original is not None:
            return
        self._original = self.costs.quantize_nano
        self.costs.quantize_nano = self.read

    def uninstall(self) -> None:
        if self._original is None:
            return
        self.costs.quantize_nano = self._original
        self._original = None

    @property
    def installed(self) -> bool:
        return self._original is not None

    def read(self, t_ms: float) -> float:
        """One imperfect clock read: scheduling delay, then the coarse
        tick floor (falling back to the true nano granularity when no
        quantum is configured)."""
        if self.jitter_ms > 0:
            t_ms = t_ms + self.rng.uniform(0.0, self.jitter_ms)
            self.obs.inc("imperfect.jitter_applied")
        if self.quantum_ms > 0:
            self.obs.inc("imperfect.quantised_samples")
            return int(t_ms / self.quantum_ms) * self.quantum_ms
        original = self._original
        if original is not None:
            return original(t_ms)
        return t_ms

    def __repr__(self) -> str:
        return "<ImperfectClock quantum=%gms jitter=%gms %s>" % (
            self.quantum_ms, self.jitter_ms,
            "installed" if self.installed else "detached")


def install_imperfect_clock(device, quantum_ms: float,
                            jitter_ms: float,
                            rng: Optional[random.Random] = None,
                            obs: Optional[Observability] = None
                            ) -> ImperfectClock:
    """Build and install an :class:`ImperfectClock` on ``device``'s
    cost model; returns it so the caller can ``uninstall()`` later."""
    clock = ImperfectClock(device.costs, quantum_ms=quantum_ms,
                           jitter_ms=jitter_ms, rng=rng, obs=obs)
    clock.install()
    return clock
