"""Middlebox simulation: transparent proxies and measurement
imperfections (docs/MIDDLEBOX.md).

The network is allowed to lie here the way real networks lie: a
split-connection proxy answers SYNs at middlebox RTT
(:class:`TransparentProxy`), a DNS interceptor answers queries the
resolver never sees (:class:`DnsInterceptor`), and an imperfect device
clock distorts the recorded timestamps (:class:`ImperfectClock`).
Detection lives in :mod:`repro.analysis.rules` /
:mod:`repro.backend.detector`; the chaos scenarios
``transparent_proxy`` and ``noisy_clock`` close the loop against the
ground-truth ledger.
"""

from typing import Optional

from repro.middlebox.ablation import (
    imperfection_variants,
    run_imperfection_ablation,
)
from repro.middlebox.imperfect import (
    ImperfectClock,
    install_imperfect_clock,
)
from repro.middlebox.proxy import (
    DEFAULT_INTERCEPT_PORTS,
    DnsInterceptor,
    TransparentProxy,
)
from repro.obs import Observability


class MiddleboxStats:
    """Read-only view of the catalog-enforced ``mbox.*`` counters
    (the ``RelayStats`` pattern; see docs/OBSERVABILITY.md)."""

    _FIELDS = {
        "intercepted_connects": "mbox.intercepted_connects",
        "split_connections": "mbox.split_connections",
        "upstream_failures": "mbox.upstream_failures",
        "rewritten_bytes": "mbox.rewritten_bytes",
        "dns_tcp_refused": "mbox.dns_tcp_refused",
        "dns_intercepted": "mbox.dns_intercepted",
        "bytes_up": "mbox.bytes_up",
        "bytes_down": "mbox.bytes_down",
        "divergence_findings": "mbox.divergence_findings",
    }

    def __init__(self, obs: Optional[Observability] = None):
        self._obs = obs or Observability()

    def __getattr__(self, name: str) -> int:
        metric = MiddleboxStats._FIELDS.get(name)
        if metric is None:
            raise AttributeError(name)
        return int(self._obs.value(metric))

    def __repr__(self) -> str:
        return "<MiddleboxStats %s>" % " ".join(
            "%s=%d" % (field, getattr(self, field))
            for field in sorted(self._FIELDS))


class ImperfectStats:
    """Read-only view of the ``imperfect.*`` counters."""

    _FIELDS = {
        "quantised_samples": "imperfect.quantised_samples",
        "jitter_applied": "imperfect.jitter_applied",
    }

    def __init__(self, obs: Optional[Observability] = None):
        self._obs = obs or Observability()

    def __getattr__(self, name: str) -> int:
        metric = ImperfectStats._FIELDS.get(name)
        if metric is None:
            raise AttributeError(name)
        return int(self._obs.value(metric))

    def __repr__(self) -> str:
        return "<ImperfectStats %s>" % " ".join(
            "%s=%d" % (field, getattr(self, field))
            for field in sorted(self._FIELDS))


__all__ = [
    "DEFAULT_INTERCEPT_PORTS",
    "DnsInterceptor",
    "ImperfectClock",
    "ImperfectStats",
    "MiddleboxStats",
    "TransparentProxy",
    "imperfection_variants",
    "install_imperfect_clock",
    "run_imperfection_ablation",
]
