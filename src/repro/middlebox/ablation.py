"""Imperfection ablation: the Table-2-style accuracy cost per source.

The paper argues MopEye's RTT accuracy survives the measurement
pipeline because the timing brackets exactly the socket call; this
module quantifies what each *clock* imperfection costs on top of that.
It reruns one scenario under four imperfection variants --

* ``none``          -- the imperfect-clock events stripped out,
* ``quantisation``  -- timestamp reads snapped to the quantum grid,
* ``jitter``        -- seeded scheduling jitter added to each read,
* ``both``          -- quantisation and jitter composed,

and reports the mean absolute RTT error of each variant against the
``none`` baseline, per record kind.  The imperfect clock distorts only
*recorded values* (:mod:`repro.middlebox.imperfect` wraps the cost
model's ``quantize_nano``, never the simulator schedule), so every
variant produces the same record stream event for event and the error
is a clean pairwise join -- no matching heuristics.

Everything is string-seeded, so the ablation output is byte-stable
across runs, workers, and ``PYTHONHASHSEED``; the determinism test
asserts exactly that.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from repro.faults.plan import FaultEvent, FaultKind
from repro.faults.scenarios import Scenario, get_scenario

#: The ablation's variant names, in report order.
VARIANTS = ("none", "quantisation", "jitter", "both")

#: Record kinds the error report covers (the two RTT kinds the
#: divergence rule compares).
ABLATED_KINDS = ("TCP", "APP_RTT")


def _clock_params(scenario: Scenario) -> Dict[str, float]:
    """The quantum/jitter magnitudes of the scenario's clock events
    (the first noisy-clock event wins; presets carry exactly one)."""
    for event in scenario.events:
        if event.kind == FaultKind.NOISY_CLOCK:
            return {
                "quantum_ms": float(event.params.get("quantum_ms", 0.0)),
                "jitter_ms": float(event.params.get("jitter_ms", 0.0)),
            }
    return {"quantum_ms": 0.0, "jitter_ms": 0.0}


def imperfection_variants(scenario: Scenario,
                          quantum_ms: Optional[float] = None,
                          jitter_ms: Optional[float] = None
                          ) -> Dict[str, Scenario]:
    """Four copies of ``scenario`` differing only in their noisy-clock
    events.  Magnitudes default to the scenario's own event params
    (``noisy_clock`` carries a quantum; jitter defaults to 1 ms when
    the scenario declares none, so the jitter variants measure
    something)."""
    base = _clock_params(scenario)
    quantum = base["quantum_ms"] if quantum_ms is None else quantum_ms
    jitter = jitter_ms if jitter_ms is not None \
        else (base["jitter_ms"] or 1.0)
    others = tuple(e for e in scenario.events
                   if e.kind != FaultKind.NOISY_CLOCK)

    def with_clock(name: str, q: float, j: float) -> Scenario:
        events = others
        if q > 0 or j > 0:
            events = others + (FaultEvent(
                "e-ablate-clock", FaultKind.NOISY_CLOCK, 0.0, 0.0,
                scope={},
                params={"quantum_ms": q, "jitter_ms": j}),)
        return dataclasses.replace(
            scenario, name="%s@%s" % (scenario.name, name),
            events=events)

    return {
        "none": with_clock("none", 0.0, 0.0),
        "quantisation": with_clock("quantisation", quantum, 0.0),
        "jitter": with_clock("jitter", 0.0, jitter),
        "both": with_clock("both", quantum, jitter),
    }


def _rtts_by_kind(result) -> Dict[str, List[Tuple[float, float]]]:
    """``{kind: [(timestamp, rtt)]}`` for successful RTT records, in
    shard order (the pairwise-join axis)."""
    out: Dict[str, List[Tuple[float, float]]] = {
        kind: [] for kind in ABLATED_KINDS}
    for record in result.iter_records():
        if record.failure is None and record.kind in out:
            out[record.kind].append((record.timestamp_ms,
                                     record.rtt_ms))
    return out


def run_imperfection_ablation(scenario="noisy_clock", seed: int = 0,
                              quantum_ms: Optional[float] = None,
                              jitter_ms: Optional[float] = None
                              ) -> Dict[str, object]:
    """Run all four variants and report per-source accuracy deltas.

    Returns a JSON-ready dict: per-variant record censuses plus
    ``deltas[variant][kind]`` = mean absolute RTT error (ms) against
    the imperfection-free baseline, with ``max_abs_ms`` alongside.
    Raises if a variant's record stream stops aligning with the
    baseline -- that would mean the clock hook leaked into scheduling.
    """
    # Imported lazily: repro.faults.chaos imports this package.
    from repro.faults.chaos import ChaosRunner
    if isinstance(scenario, str):
        scenario = get_scenario(scenario)
    variants = imperfection_variants(scenario, quantum_ms=quantum_ms,
                                     jitter_ms=jitter_ms)
    streams: Dict[str, Dict[str, List[Tuple[float, float]]]] = {}
    report: Dict[str, object] = {
        "scenario": scenario.name, "seed": seed,
        "variants": {}, "deltas": {}}
    for name in VARIANTS:
        result = ChaosRunner(variants[name], seed=seed,
                             workers=1).run()
        streams[name] = _rtts_by_kind(result)
        report["variants"][name] = {
            "records": result.records,
            "digest": result.digest(),
            "samples": {kind: len(streams[name][kind])
                        for kind in ABLATED_KINDS},
        }
    base = streams["none"]
    for name in VARIANTS:
        deltas: Dict[str, Dict[str, float]] = {}
        for kind in ABLATED_KINDS:
            ref, var = base[kind], streams[name][kind]
            if len(ref) != len(var):
                raise RuntimeError(
                    "variant %r changed the %s record stream "
                    "(%d vs %d samples): the imperfect clock must "
                    "distort values, never scheduling"
                    % (name, kind, len(var), len(ref)))
            errors = [abs(v[1] - r[1]) for r, v in zip(ref, var)]
            deltas[kind] = {
                "mean_abs_ms": (sum(errors) / len(errors)
                                if errors else 0.0),
                "max_abs_ms": max(errors) if errors else 0.0,
                "samples": len(errors),
            }
        report["deltas"][name] = deltas
    return report


__all__ = ["ABLATED_KINDS", "VARIANTS", "imperfection_variants",
           "run_imperfection_ablation"]
