"""Transparent split-connection proxy (docs/MIDDLEBOX.md).

Real carriers put Performance-Enhancing Proxies in the TCP path: the
SYN is terminated near the client and the proxy opens its own upstream
connection, so a SYN/SYN-ACK RTT measures the *middlebox*, not the
server -- exactly the confound Zhang & Choffnes detect from
unprivileged devices.  :class:`TransparentProxy` reproduces that lie
at the packet level:

* **client side** -- it claims uplink TCP packets to intercepted ports
  (``Internet.send_from_device`` asks via :meth:`wants`), answers the
  SYN locally with the same passive RFC 793 machine the app servers
  use, and spoofs the real server's address on every reply;
* **upstream side** -- it implements the device protocol
  (``source_ip_for``/``allocate_port``/``register_socket``/
  ``transmit``/``deliver_from_network``) so it can drive an ordinary
  :class:`~repro.phone.ktcp.KernelTcpSocket` to the real server and
  splice bytes between the two halves, optionally rewriting the
  response stream.

Policies: interception is port-selective (default 80/443), per-IP
bypassable (collector uploads must never be proxied), and togglable at
runtime -- the fault injector flips :attr:`enabled`, so an installed
but disabled proxy cannot move a byte.  UDP is explicitly out of
scope: :meth:`wants` never claims a non-TCP packet (DNS interception
is the separate :class:`DnsInterceptor` variant).  DNS-over-TCP on an
intercepted port is refused with RST -- the client gets a clean
``refused`` failure record, never a silent drop.

Determinism: the proxy draws ISNs and nothing else from its own
string-seeded RNG stream and its link/path latencies are constants, so
placing one in a world leaves every other world's draw sequence -- and
every clean operator's shard digest -- untouched.
"""

from __future__ import annotations

import random
from typing import Dict, Optional, Tuple

from repro.netstack.ip import IPPacket, PROTO_TCP, PROTO_UDP
from repro.netstack.tcp_segment import ACK, RST, SYN, TCPSegment
from repro.netstack.tcp_state import (
    TCPState,
    TCPStateError,
    TCPStateMachine,
)
from repro.netstack.udp_datagram import UDPDatagram
from repro.network.link import AccessLink
from repro.obs import Observability
from repro.phone.ktcp import (
    ConnectionRefused,
    ConnectTimeout,
    KernelTcpSocket,
    NetworkUnreachable,
)
from repro.sim.distributions import Constant
from repro.sim.kernel import Simulator

SYN_ACK_FLAGS = SYN | ACK

#: Default interception policy: web ports only, the classic PEP shape.
DEFAULT_INTERCEPT_PORTS = (80, 443)

#: Default middlebox placement: one hop past the access network, so
#: the SYN RTT collapses to roughly the access RTT.
DEFAULT_PROXY_ONEWAY_MS = 0.3
DEFAULT_ACCEPT_DELAY_MS = 0.05

_FlowKey = Tuple[str, int, str, int]


class _ProxyFlow:
    """One intercepted connection: client-side machine + upstream
    socket, spliced."""

    def __init__(self, machine: TCPStateMachine, server_ip: str,
                 server_port: int):
        self.machine = machine
        self.server_ip = server_ip
        self.server_port = server_port
        self.sock: Optional[KernelTcpSocket] = None
        #: Client bytes buffered until the upstream connect completes.
        self.pending = bytearray()
        self.established = False
        self.client_fin = False
        self.closed = False
        self.bytes_up = 0
        self.bytes_down = 0


class TransparentProxy:
    """A split-connection middlebox attachable per operator world."""

    def __init__(self, sim: Simulator, internet, *,
                 ip: str = "198.51.100.1",
                 intercept_ports=DEFAULT_INTERCEPT_PORTS,
                 bypass_ips=(),
                 oneway_ms: float = DEFAULT_PROXY_ONEWAY_MS,
                 accept_delay_ms: float = DEFAULT_ACCEPT_DELAY_MS,
                 rewrite=None,
                 rng: Optional[random.Random] = None,
                 obs: Optional[Observability] = None,
                 name: str = "mbox"):
        self.sim = sim
        self.internet = internet
        self.ip = ip
        self.ips = [ip]
        self.name = name
        self.intercept_ports = set(intercept_ports)
        self.bypass_ips = set(bypass_ips)
        self.path_oneway = Constant(oneway_ms)
        self.accept_delay = Constant(accept_delay_ms)
        #: Optional response-rewriting hook: ``bytes -> bytes`` applied
        #: to the upstream byte stream before it is spliced back.
        self.rewrite = rewrite
        self.rng = rng or random.Random(0)
        self.obs = obs or Observability(sim=sim)
        #: Inert until a fault event enables interception.
        self.enabled = False
        self._flows: Dict[_FlowKey, _ProxyFlow] = {}
        # -- device-protocol state (upstream side) --------------------
        # Constant-latency private link: the upstream hop must never
        # share queue or RNG state with the device's access link.
        self.link = AccessLink(sim, up_latency=Constant(0.0),
                               down_latency=Constant(0.0),
                               operator=name)
        self._next_port = 20000
        self._sockets: Dict[int, KernelTcpSocket] = {}
        internet.attach_device(self)
        internet.install_middlebox(self)

    # -- interception policy -----------------------------------------
    def wants(self, packet: IPPacket, server) -> bool:
        """Claim an uplink TCP packet headed for an intercepted port.
        Non-TCP traffic is out of scope by construction."""
        if not self.enabled or server is None:
            return False
        if packet.protocol != PROTO_TCP:
            return False
        if packet.dst_str in self.bypass_ips:
            return False
        try:
            segment = TCPSegment.decode(packet.payload)
        except Exception:
            return False
        return segment.dst_port in self.intercept_ports

    def path_oneway_ms(self) -> float:
        return self.path_oneway.sample()

    # -- client side (server role, like AppServer) -------------------
    def receive(self, packet: IPPacket) -> None:
        if packet.protocol != PROTO_TCP:
            return
        segment = TCPSegment.decode(packet.payload)
        key = (packet.src_str, segment.src_port,
               packet.dst_str, segment.dst_port)
        if segment.is_syn:
            if segment.dst_port == 53:
                # DNS-over-TCP on an intercepted port: the split proxy
                # does not speak it.  Refuse with RST so the client
                # records a clean `refused` failure -- never a silent
                # drop (docs/MIDDLEBOX.md).
                self.obs.inc("mbox.dns_tcp_refused")
                self._refuse(key, segment)
                return
            existing = self._flows.get(key)
            if existing is not None:
                if existing.machine.state == TCPState.SYN_RECEIVED:
                    self._retransmit_syn_ack(key, existing.machine)
                return
            self._accept(key, segment)
            return
        flow = self._flows.get(key)
        if flow is None:
            return
        try:
            self._process_segment(key, flow, segment)
        except TCPStateError:
            pass  # stale duplicate; real stacks drop these

    def _refuse(self, key: _FlowKey, segment: TCPSegment) -> None:
        rst = TCPSegment(segment.dst_port, segment.src_port,
                         seq=0, ack=(segment.seq + 1) & 0xFFFFFFFF,
                         flags=RST | ACK)
        self._transmit(key, rst)

    def _retransmit_syn_ack(self, key: _FlowKey,
                            machine: TCPStateMachine) -> None:
        duplicate = TCPSegment(
            src_port=machine.remote_port, dst_port=machine.local_port,
            seq=machine.snd_iss, ack=machine.rcv_nxt or 0,
            flags=SYN_ACK_FLAGS, window=machine.window,
            mss=machine.mss)
        self._transmit(key, duplicate)

    def _accept(self, key: _FlowKey, segment: TCPSegment) -> None:
        client_ip, client_port, server_ip, server_port = key
        machine = TCPStateMachine(
            local_ip=client_ip, local_port=client_port,
            remote_ip=server_ip, remote_port=server_port,
            isn=self.rng.randrange(1 << 32))
        machine.on_syn(segment)
        flow = self._flows[key] = _ProxyFlow(machine, server_ip,
                                             server_port)
        self.obs.inc("mbox.intercepted_connects")
        # Answer the SYN locally -- this is the lie being modelled:
        # the client's connect() returns at middlebox RTT.
        delay = self.sim.timeout(self.accept_delay.sample())
        delay.callbacks.append(
            lambda _evt: self._transmit(key, machine.make_syn_ack()))
        # Open the upstream half concurrently.
        self.sim.process(self._upstream(key, flow),
                         name="%s-upstream" % self.name)

    def _process_segment(self, key: _FlowKey, flow: _ProxyFlow,
                         segment: TCPSegment) -> None:
        machine = flow.machine
        if segment.is_rst:
            machine.on_rst(segment)
            flow.closed = True
            if flow.sock is not None:
                flow.sock.abort()
            self._flows.pop(key, None)
            return
        if segment.is_fin:
            self._transmit(key, machine.on_fin(segment))
            flow.client_fin = True
            if flow.established and not flow.pending \
                    and flow.sock is not None:
                flow.sock.close()
            return
        if machine.state == TCPState.SYN_RECEIVED:
            if segment.payload:
                self._client_bytes(key, flow, machine.on_data(segment))
            else:
                machine.on_handshake_ack(segment)
            return
        if segment.payload:
            data = machine.on_data(segment)
            self._transmit(key, machine.make_ack())
            self._client_bytes(key, flow, data)
        elif machine.fin_sent:
            machine.on_fin_ack(segment)
            if machine.is_closed:
                self._flows.pop(key, None)

    def _client_bytes(self, key: _FlowKey, flow: _ProxyFlow,
                      data: bytes) -> None:
        flow.bytes_up += len(data)
        self.obs.inc("mbox.bytes_up", len(data))
        if flow.established and flow.sock is not None:
            flow.sock.send(data)
        else:
            flow.pending.extend(data)

    def _transmit(self, key: _FlowKey, segment: TCPSegment) -> None:
        """Reply toward the client, spoofing the real server's IP."""
        client_ip, _client_port, server_ip, _server_port = key
        packet = IPPacket(server_ip, client_ip, PROTO_TCP,
                          segment.encode(server_ip, client_ip))
        self.internet.send_to_device(packet, from_server=self)

    # -- upstream side (device role) ---------------------------------
    def _upstream(self, key: _FlowKey, flow: _ProxyFlow):
        sock = KernelTcpSocket(self, uid=0, isn_rng=self.rng)
        flow.sock = sock
        try:
            yield sock.connect(flow.server_ip, flow.server_port)
        except (ConnectionRefused, ConnectTimeout,
                NetworkUnreachable):
            self.obs.inc("mbox.upstream_failures")
            if not flow.closed and not flow.machine.is_closed:
                self._transmit(key, flow.machine.make_rst())
            flow.closed = True
            self._flows.pop(key, None)
            return
        flow.established = True
        self.obs.inc("mbox.split_connections")
        if flow.pending:
            sock.send(bytes(flow.pending))
            flow.pending.clear()
        if flow.client_fin:
            sock.close()
        while True:
            data = yield sock.recv()
            if not data:
                break
            data = self._apply_rewrite(data)
            if flow.closed:
                return
            flow.bytes_down += len(data)
            self.obs.inc("mbox.bytes_down", len(data))
            for out in flow.machine.deliver(data):
                self._transmit(key, out)
        if flow.closed:
            return
        if sock.reset_received:
            if not flow.machine.is_closed:
                self._transmit(key, flow.machine.make_rst())
            flow.closed = True
            self._flows.pop(key, None)
        elif flow.machine.state in (TCPState.ESTABLISHED,
                                    TCPState.CLOSE_WAIT):
            self._transmit(key, flow.machine.make_fin())

    def _apply_rewrite(self, data: bytes) -> bytes:
        if self.rewrite is None:
            return data
        out = self.rewrite(data)
        if out != data:
            self.obs.inc("mbox.rewritten_bytes", len(out))
        return out

    # -- device protocol (for KernelTcpSocket) -----------------------
    def source_ip_for(self, _sock) -> str:
        return self.ip

    def allocate_port(self) -> int:
        port = self._next_port
        self._next_port += 1
        if self._next_port >= 40000:
            self._next_port = 20000
        return port

    def register_socket(self, sock) -> None:
        self._sockets[sock.local_port] = sock

    def unregister_socket(self, sock) -> None:
        self._sockets.pop(sock.local_port, None)

    def transmit(self, _sock, packet: IPPacket) -> None:
        self.internet.send_from_device(self, packet)

    def deliver_from_network(self, packet: IPPacket) -> None:
        if packet.protocol != PROTO_TCP:
            return
        segment = TCPSegment.decode(packet.payload)
        sock = self._sockets.get(segment.dst_port)
        if sock is None:
            return
        if sock.remote_ip not in (None, packet.src_str):
            return
        if sock.remote_port not in (None, segment.src_port):
            return
        sock.handle_segment(segment)

    def deliver_unreachable(self, packet: IPPacket) -> None:
        segment = TCPSegment.decode(packet.payload)
        sock = self._sockets.get(segment.src_port)
        if sock is not None:
            sock.on_unreachable()

    def __repr__(self) -> str:
        return "<TransparentProxy %s %s ports=%s enabled=%s>" % (
            self.name, self.ip, sorted(self.intercept_ports),
            self.enabled)


class DnsInterceptor:
    """DNS-level interception variant: answers UDP/53 queries locally
    from a zone snapshot at middlebox RTT, spoofing the resolver's
    address.  TCP is untouched -- the complement of
    :class:`TransparentProxy`."""

    def __init__(self, sim: Simulator, internet, zone, *,
                 ip: str = "198.51.100.2",
                 oneway_ms: float = DEFAULT_PROXY_ONEWAY_MS,
                 processing_ms: float = 0.2,
                 obs: Optional[Observability] = None,
                 name: str = "dns-mbox"):
        self.sim = sim
        self.internet = internet
        self.zone = zone
        self.ip = ip
        self.ips = [ip]
        self.name = name
        self.path_oneway = Constant(oneway_ms)
        self.processing_delay = Constant(processing_ms)
        self.obs = obs or Observability(sim=sim)
        self.enabled = False
        internet.install_middlebox(self)

    def wants(self, packet: IPPacket, server) -> bool:
        if not self.enabled or server is None:
            return False
        if packet.protocol != PROTO_UDP:
            return False
        try:
            datagram = UDPDatagram.decode(packet.payload)
        except Exception:
            return False
        return datagram.dst_port == 53

    def path_oneway_ms(self) -> float:
        return self.path_oneway.sample()

    def receive(self, packet: IPPacket) -> None:
        from repro.netstack.dns import (
            DNSMessage,
            DNSResourceRecord,
            RCODE_NXDOMAIN,
        )
        if packet.protocol != PROTO_UDP:
            return
        datagram = UDPDatagram.decode(packet.payload)
        try:
            query = DNSMessage.decode(datagram.payload)
        except Exception:
            return
        if query.is_response or not query.questions:
            return
        self.obs.inc("mbox.dns_intercepted")
        question = query.questions[0]
        address = self.zone.lookup(question.name)
        if address is None:
            response = query.response([], rcode=RCODE_NXDOMAIN)
        else:
            response = query.response(
                [DNSResourceRecord.a_record(question.name, address)])
        reply = UDPDatagram(datagram.dst_port, datagram.src_port,
                            response.encode())
        out = IPPacket(packet.dst_str, packet.src_str, PROTO_UDP,
                       reply.encode(packet.dst_str, packet.src_str))
        delay = self.sim.timeout(self.processing_delay.sample())
        delay.callbacks.append(
            lambda _evt: self.internet.send_to_device(out,
                                                      from_server=self))

    def __repr__(self) -> str:
        return "<DnsInterceptor %s %s enabled=%s>" % (
            self.name, self.ip, self.enabled)
