"""MeasurementUploader: ships collected records to the backend.

The deployed MopEye uploaded crowdsourced measurements periodically;
uploading itself must not distort the measurements, so the uploader

* batches records and uploads only every ``interval_ms``;
* by default uploads only while the device is on WiFi (no cellular
  data cost for volunteers, and no radio-promotion interference);
* uses MopEye's own UID, whose traffic bypasses the tunnel via the
  section 3.5.2 exemption -- uploads never appear as app measurements.

Protocol v2 (see docs/BACKEND.md): every batch carries the device id
and a batch sequence number (``PUSH2 <nbytes> <seq> <device_id>``), so
the backend can deduplicate replays.  That makes three failure paths
safe to retry with the *same* payload and sequence number:

* connect failure -- nothing reached the backend;
* ACK timeout -- the payload or the ACK was lost; the backend may have
  ingested the batch, and the replay returns the cached ACK;
* ``BUSY <retry_ms>`` -- the backend shed the batch; the uploader backs
  off for the hinted time plus deterministic jitter.

Only after an ACK (full or short) is the in-flight batch discarded;
changed content always travels under a fresh sequence number, keeping
the (device_id, seq) -> payload mapping stable, which is what the
dedup cache's idempotency relies on.
"""

from __future__ import annotations

import json
import random
from typing import Optional, Tuple

from repro.core.persist import _record_to_dict
from repro.core.records import MeasurementKind, MeasurementRecord
from repro.network.link import NetworkType
from repro.phone.ktcp import (
    ConnectionRefused,
    ConnectTimeout,
    NetworkUnreachable,
)
from repro.sim.kernel import Event


class MeasurementUploader:
    def __init__(self, service, collector_ip: str,
                 collector_port: int = 443,
                 interval_ms: float = 60_000.0,
                 min_batch: int = 10,
                 wifi_only: bool = True,
                 ack_timeout_ms: float = 10_000.0,
                 max_batch: Optional[int] = None,
                 isn_rng: Optional[random.Random] = None,
                 emit_aoi: bool = False):
        self.service = service
        self.device = service.device
        self.sim = service.sim
        self.collector_ip = collector_ip
        self.collector_port = collector_port
        self.interval_ms = interval_ms
        self.min_batch = min_batch
        self.wifi_only = wifi_only
        self.ack_timeout_ms = ack_timeout_ms
        #: Cap on records per batch (None = everything pending).
        self.max_batch = max_batch
        #: Age-of-information modality (docs/MODALITIES.md): when on,
        #: each ACK emits one AOI record per acknowledged measurement,
        #: carrying creation-to-ACK staleness in ``rtt_ms``.  Off by
        #: default -- ACK timing depends on the collector deployment
        #: (e.g. it varies with cluster node count), so worlds whose
        #: digests must be invariant to that leave it off.
        self.emit_aoi = emit_aoi
        self.obs = service.obs
        self.device_id = self.device.model
        self._cursor = 0           # store index of first un-uploaded
        self._seq = 0              # next batch sequence number
        # (seq, payload, count) retained verbatim across failed
        # attempts; cleared on any ACK.
        self._inflight: Optional[Tuple[int, bytes, int]] = None
        # The records behind the in-flight payload, kept so an ACK can
        # compute each one's staleness without re-parsing the payload.
        self._inflight_records: Optional[list] = None
        self._backoff_until = 0.0
        # Deterministic jitter stream, keyed on the device identity.
        self._rng = random.Random("uploader|%s" % self.device_id)
        # Optional dedicated ISN stream for upload sockets.  In cluster
        # worlds the number of upload connects varies with node count
        # (failover refusals, retries); drawing those ISNs from the
        # shared device stream would shift later measurement-side
        # draws and break the digest invariant across --nodes.
        self._isn_rng = isn_rng
        self.running = False
        self._thread: Optional[Event] = None
        self._flush_active = False

    # Registry-backed views of the upload counters.
    @property
    def uploaded(self) -> int:
        """Records acknowledged by the collector."""
        return int(self.obs.value("uploader.records_acked"))

    @property
    def batches(self) -> int:
        return int(self.obs.value("uploader.batches"))

    @property
    def failures(self) -> int:
        return int(self.obs.value("uploader.failures"))

    @property
    def short_acks(self) -> int:
        """Batches the collector part-ACKed."""
        return int(self.obs.value("uploader.short_acks"))

    @property
    def deferred_cellular(self) -> int:
        return int(self.obs.value("uploader.deferred_cellular"))

    @property
    def busy_backoffs(self) -> int:
        return int(self.obs.value("uploader.busy_backoffs"))

    @property
    def ack_timeouts(self) -> int:
        return int(self.obs.value("uploader.ack_timeouts"))

    @property
    def final_flushes(self) -> int:
        return int(self.obs.value("uploader.final_flush"))

    @property
    def rehomes(self) -> int:
        """Times the home collector changed under this uploader."""
        return int(self.obs.value("uploader.rehomes"))

    def start(self) -> None:
        if self.running:
            raise RuntimeError("uploader already running")
        self.running = True
        self._thread = self.sim.process(self._run(), name="uploader")

    def stop(self) -> None:
        """Stop the periodic thread and flush what remains.

        Without the flush, records below ``min_batch`` at shutdown
        would be stranded forever (the volunteer uninstalls, the tail
        of their data never ships).  The flush ignores ``min_batch``
        but still honours ``wifi_only``: shutdown does not justify
        cellular spend."""
        self.running = False
        self._flush_active = True
        self.sim.process(self._final_flush(), name="uploader-flush")

    def rehome(self, collector_ip: str) -> None:
        """Point the uploader at a new home collector.

        The coordinator calls this when the device's placement changes
        (failover or rebalance).  The in-flight batch, if any, is NOT
        rebuilt: ``_next_batch`` returns it verbatim and the next
        attempt connects to the new address, so the batch travels
        under its original ``(device_id, seq)`` identity and the
        successor's (handed-off) dedup cache absorbs a replay of
        anything the dead node already ingested.  Re-homing to the
        *same* address is a pure ``kick()`` -- how a healed partition
        re-drives a stranded shutdown flush."""
        if collector_ip != self.collector_ip:
            self.collector_ip = collector_ip
            self.obs.inc("uploader.rehomes")
        self.kick()

    def kick(self) -> None:
        """Re-drive the shutdown flush if it gave up.

        ``_final_flush`` deliberately stops on no-progress (backend
        down); when the cluster re-homes or heals after that, the
        stranded tail must ship or the global-vs-single digest
        invariant breaks.  No-op while the periodic thread or a flush
        is still active -- they will pick the records up themselves."""
        if self.running or self._flush_active:
            return
        if self._inflight is None and not self._pending():
            return
        self._flush_active = True
        self.sim.process(self._final_flush(), name="uploader-kick")

    # -- internals -----------------------------------------------------------
    def _pending(self) -> list:
        return self.service.store.since(self._cursor)

    def _run(self):
        while self.running:
            yield self.sim.timeout(self.interval_ms)
            if not self.running:
                return
            if self.sim.now < self._backoff_until:
                continue
            if self._inflight is None and \
                    len(self._pending()) < self.min_batch:
                continue
            if self.wifi_only and \
                    self.device.link.network_type != NetworkType.WIFI:
                self.obs.inc("uploader.deferred_cellular")
                continue
            yield from self._upload()

    def _final_flush(self):
        try:
            if self.wifi_only and \
                    self.device.link.network_type != NetworkType.WIFI:
                self.obs.inc("uploader.deferred_cellular")
                return
            while self._inflight is not None or self._pending():
                before = self._cursor
                had_inflight = self._inflight is not None
                self.obs.inc("uploader.final_flush")
                yield from self._upload()
                if self._cursor == before and \
                        (had_inflight or self._inflight is not None):
                    # No progress (backend down or shedding): records
                    # stay in the store; a future start() or a cluster
                    # kick() retries them.
                    return
        finally:
            self._flush_active = False

    def _next_batch(self) -> Optional[Tuple[int, bytes, int]]:
        """The batch to send: the in-flight one verbatim, or a fresh
        payload under a fresh sequence number."""
        if self._inflight is not None:
            return self._inflight
        records = self._pending()
        if not records:
            return None
        if self.max_batch is not None:
            records = records[:self.max_batch]
        payload = "\n".join(
            json.dumps(_record_to_dict(record))
            for record in records).encode() + b"\n"
        self._inflight = (self._seq, payload, len(records))
        self._inflight_records = list(records)
        self._seq += 1
        return self._inflight

    def _emit_aoi(self, acked_records: list) -> None:
        """Record the age-of-information of just-ACKed measurements.

        Each acknowledged record contributes one AOI sample: the time
        between its creation and the collector's acknowledgement --
        the staleness the serving tier would observe had it been
        queried an instant before the upload landed.  AOI records
        themselves are skipped (they are created at ACK time, so their
        staleness is the *next* upload's latency, and recursing would
        keep the store from ever draining at shutdown).
        """
        now = self.sim.now
        link = self.device.link
        for record in acked_records:
            if record.kind == MeasurementKind.AOI:
                continue
            self.service.store.add(MeasurementRecord(
                kind=MeasurementKind.AOI,
                rtt_ms=max(0.0, now - record.timestamp_ms),
                timestamp_ms=now,
                app_package=record.app_package,
                network_type=link.network_type,
                operator=link.operator,
                device_id=self.device_id))
            self.obs.inc("uploader.aoi_records")

    def _upload(self):
        obs = self.obs
        batch = self._next_batch()
        if batch is None:
            return
        seq, payload, count = batch
        socket = self.device.create_tcp_socket(self.service.uid,
                                               isn_rng=self._isn_rng)
        span = obs.start_span("uploader.upload", records=count, seq=seq)
        started = self.sim.now
        try:
            yield socket.connect(self.collector_ip,
                                 self.collector_port)
        except (ConnectionRefused, ConnectTimeout,
                NetworkUnreachable) as exc:
            obs.inc("uploader.failures")
            obs.end_span(span, outcome=type(exc).__name__)
            return
        socket.send(b"PUSH2 %d %d %s\n" % (
            len(payload), seq, self.device_id.encode("utf-8")))
        socket.send(payload)
        # Nothing in the simulated stacks retransmits data, so a lost
        # payload or ACK would park this process forever; race the
        # recv against a deadline and retry idempotently.
        recv = socket.recv()
        deadline = self.sim.timeout(self.ack_timeout_ms)
        fired = yield self.sim.any_of([recv, deadline])
        if recv not in fired:
            socket.abort()
            obs.inc("uploader.ack_timeouts")
            obs.inc("uploader.failures")
            obs.end_span(span, outcome="ack_timeout")
            return
        response = fired[recv]
        socket.close()
        obs.observe("uploader.ack_latency_ms", self.sim.now - started)
        if response.startswith(b"ACK"):
            if self._inflight is None or self._inflight[0] != seq:
                # A concurrent attempt (periodic upload racing the
                # shutdown flush) already consumed this batch's ACK --
                # the collector deduplicated the replay, so counting
                # this one too would over-advance the cursor.
                obs.inc("uploader.stale_acks")
                obs.end_span(span, outcome="stale_ack")
                return
            try:
                acked = int(response.split()[1])
            except (IndexError, ValueError):
                acked = count
            # Advance only past what the collector acknowledged: a
            # short ACK leaves the unacked tail pending, so the next
            # interval retries it instead of silently dropping it.
            acked = max(0, min(acked, count))
            acked_records = (self._inflight_records or [])[:acked]
            self._cursor += acked
            self._inflight = None
            self._inflight_records = None
            obs.inc("uploader.records_acked", acked)
            obs.inc("uploader.batches")
            if acked < count:
                obs.inc("uploader.short_acks")
            if self.emit_aoi:
                self._emit_aoi(acked_records)
            obs.end_span(span, acked=acked)
        elif response.startswith(b"BUSY"):
            try:
                retry_ms = float(response.split()[1])
            except (IndexError, ValueError):
                retry_ms = self.interval_ms
            # Hinted wait plus up to 50% deterministic jitter, so a
            # fleet sharing one hint does not stampede back in step.
            self._backoff_until = self.sim.now + retry_ms * (
                1.0 + 0.5 * self._rng.random())
            obs.inc("uploader.busy_backoffs")
            obs.end_span(span, outcome="busy", retry_ms=retry_ms)
        else:
            obs.inc("uploader.failures")
            obs.end_span(span, outcome="bad_response")
