"""MeasurementUploader: ships collected records to the backend.

The deployed MopEye uploaded crowdsourced measurements periodically;
uploading itself must not distort the measurements, so the uploader

* batches records and uploads only every ``interval_ms``;
* by default uploads only while the device is on WiFi (no cellular
  data cost for volunteers, and no radio-promotion interference);
* uses MopEye's own UID, whose traffic bypasses the tunnel via the
  section 3.5.2 exemption -- uploads never appear as app measurements.
"""

from __future__ import annotations

import json
from typing import Optional

from repro.core.persist import _record_to_dict
from repro.network.link import NetworkType
from repro.phone.ktcp import ConnectionRefused, ConnectTimeout
from repro.sim.kernel import Event


class MeasurementUploader:
    def __init__(self, service, collector_ip: str,
                 collector_port: int = 443,
                 interval_ms: float = 60_000.0,
                 min_batch: int = 10,
                 wifi_only: bool = True):
        self.service = service
        self.device = service.device
        self.sim = service.sim
        self.collector_ip = collector_ip
        self.collector_port = collector_port
        self.interval_ms = interval_ms
        self.min_batch = min_batch
        self.wifi_only = wifi_only
        self.obs = service.obs
        self._cursor = 0           # store index of first un-uploaded
        self.running = False
        self._thread: Optional[Event] = None

    # Registry-backed views of the upload counters.
    @property
    def uploaded(self) -> int:
        """Records acknowledged by the collector."""
        return int(self.obs.value("uploader.records_acked"))

    @property
    def batches(self) -> int:
        return int(self.obs.value("uploader.batches"))

    @property
    def failures(self) -> int:
        return int(self.obs.value("uploader.failures"))

    @property
    def short_acks(self) -> int:
        """Batches the collector part-ACKed."""
        return int(self.obs.value("uploader.short_acks"))

    @property
    def deferred_cellular(self) -> int:
        return int(self.obs.value("uploader.deferred_cellular"))

    def start(self) -> None:
        if self.running:
            raise RuntimeError("uploader already running")
        self.running = True
        self._thread = self.sim.process(self._run(), name="uploader")

    def stop(self) -> None:
        self.running = False

    # -- internals -----------------------------------------------------------
    def _pending(self) -> list:
        return self.service.store.since(self._cursor)

    def _run(self):
        while self.running:
            yield self.sim.timeout(self.interval_ms)
            if not self.running:
                return
            pending = self._pending()
            if len(pending) < self.min_batch:
                continue
            if self.wifi_only and \
                    self.device.link.network_type != NetworkType.WIFI:
                self.obs.inc("uploader.deferred_cellular")
                continue
            yield from self._upload(pending)

    def _upload(self, records):
        obs = self.obs
        payload = "\n".join(
            json.dumps(_record_to_dict(record))
            for record in records).encode() + b"\n"
        socket = self.device.create_tcp_socket(self.service.uid)
        span = obs.start_span("uploader.upload", records=len(records))
        started = self.sim.now
        try:
            yield socket.connect(self.collector_ip,
                                 self.collector_port)
        except (ConnectionRefused, ConnectTimeout) as exc:
            obs.inc("uploader.failures")
            obs.end_span(span, outcome=type(exc).__name__)
            return
        socket.send(b"PUSH %d\n" % len(payload))
        socket.send(payload)
        response = yield socket.recv()
        socket.close()
        obs.observe("uploader.ack_latency_ms", self.sim.now - started)
        if response.startswith(b"ACK"):
            try:
                acked = int(response.split()[1])
            except (IndexError, ValueError):
                acked = len(records)
            # Advance only past what the collector acknowledged: a
            # short ACK leaves the unacked tail pending, so the next
            # interval retries it instead of silently dropping it.
            acked = max(0, min(acked, len(records)))
            self._cursor += acked
            obs.inc("uploader.records_acked", acked)
            obs.inc("uploader.batches")
            if acked < len(records):
                obs.inc("uploader.short_acks")
            obs.end_span(span, acked=acked)
        else:
            obs.inc("uploader.failures")
            obs.end_span(span, outcome="bad_response")
