"""TunWriter: dispatching packets to the VPN tunnel (section 3.5.1).

Two write schemes:

* **queueWrite** (the design): producers enqueue, a dedicated TunWriter
  thread performs the actual tun writes, so a slow write never stalls
  MainWorker.  The enqueue itself uses either the classic *oldPut*
  (park in ``wait()`` whenever the queue is empty -- producers then pay
  the notify + wakeup cost) or the paper's *newPut* sleep-counter scheme
  (the consumer spins through a counter's worth of checks before
  parking, so producers almost never pay the notify path).

* **directWrite**: every producer writes the shared tun fd itself,
  paying fd contention and scheduler interference -- Table 1's worst
  column.
"""

from __future__ import annotations

from typing import List

from repro.netstack.ip import IPPacket
from repro.sim.queues import QueueClosed, WaitNotifyQueue


class TunWriter:
    """The dedicated tunnel-writing thread plus the producer API."""

    def __init__(self, service):
        self.service = service
        self.device = service.device
        self.sim = service.sim
        self.config = service.config
        self.obs = service.obs
        costs = self.device.costs
        self.queue = WaitNotifyQueue(
            self.sim,
            append_cost=costs.enqueue,
            notify_cost=costs.monitor_notify,
            wakeup_delay=costs.monitor_wakeup_delay,
            name="tun-write-queue")
        self.running = False
        # Table 1 instrumentation: the raw per-event samples stay as
        # lists (the benches histogram them their own way); counts and
        # sketch summaries live in the registry.
        self.put_costs_ms: List[float] = []
        self.write_costs_ms: List[float] = []
        self.direct_write_costs_ms: List[float] = []

    @property
    def packets_written(self) -> int:
        return int(self.obs.value("tun_writer.packets_written"))

    @property
    def packets_dropped(self) -> int:
        """Enqueued after stop(), never written."""
        return int(self.obs.value("tun_writer.packets_dropped"))

    # -- producer side ---------------------------------------------------
    def emit(self, packet: IPPacket):
        """Generator: hand one packet to the tunnel under the configured
        scheme; the producer pays exactly the cost the scheme implies."""
        if self.config.write_scheme == "directWrite":
            yield from self._direct_write(packet)
        else:
            self.obs.observe("tun_writer.queue_depth", len(self.queue))
            yield self.queue.put(packet)
            self.put_costs_ms.append(self.queue.last_put_cost)
            self.obs.observe("tun_writer.put_cost_ms",
                             self.queue.last_put_cost)

    def _direct_write(self, packet: IPPacket):
        tun = self.service.tun
        start = self.sim.now
        yield tun.write_lock.acquire()
        try:
            # Contended-fd cost model: multiple writer threads share the
            # one tun fd (section 3.5.1's directWrite problem).
            cost = self.device.costs.tun_write_contended.sample()
            yield self.device.busy(cost, "mopeye.tunwrite")
            tun.write(packet)
            self.obs.inc("tun_writer.packets_written")
        finally:
            tun.write_lock.release()
        self.direct_write_costs_ms.append(self.sim.now - start)
        self.obs.observe("tun_writer.direct_write_ms",
                         self.sim.now - start)

    # -- consumer thread ---------------------------------------------------------
    def run(self):
        """Generator: the TunWriter thread body (queueWrite only).

        Shutdown contract: every packet enqueued before the ``_STOP``
        sentinel is still written (FIFO order guarantees they drain
        first); anything that races in after the sentinel is counted in
        ``packets_dropped``."""
        self.running = True
        try:
            if self.config.put_scheme == "oldPut":
                yield from self._run_old_put()
            else:
                yield from self._run_new_put()
        finally:
            self.running = False
            self._count_leftover_drops()

    def _count_leftover_drops(self):
        while True:
            packet = self.queue.try_get()
            if packet is None:
                return
            if packet is not _STOP:
                self.obs.inc("tun_writer.packets_dropped")

    def _write_one(self, packet: IPPacket):
        span = self.obs.start_span("tun_writer.write")
        cost = self.device.costs.tun_write_syscall.sample()
        yield self.device.busy(cost, "mopeye.tunwriter")
        self.service.tun.write(packet)
        self.obs.inc("tun_writer.packets_written")
        self.write_costs_ms.append(cost)
        self.obs.observe("tun_writer.write_cost_ms", cost)
        self.obs.end_span(span)

    def _run_old_put(self):
        """Classic consumer: park in wait() the moment the queue runs
        dry.  Producers then pay notify costs on nearly every put.

        Loops until the _STOP sentinel (not a ``running`` flag): an
        eager flag check would abandon packets enqueued before stop()."""
        while True:
            packet = self.queue.try_get()
            if packet is None:
                park = self.obs.start_span("tun_writer.park")
                try:
                    yield self.queue.wait()
                except QueueClosed:
                    self.obs.end_span(park, outcome="closed")
                    return
                self.obs.end_span(park)
                continue
            if packet is _STOP:
                return
            yield from self._write_one(packet)

    def _run_new_put(self):
        """Section 3.5.1's sleep-counter consumer: keep checking for a
        threshold's worth of rounds before parking, so the fast path
        never touches the monitor."""
        counter = 0
        threshold = self.config.put_counter_threshold
        while True:
            packet = self.queue.try_get()
            if packet is not None:
                if packet is _STOP:
                    return
                counter //= 2
                yield from self._write_one(packet)
                continue
            counter += 1
            if counter >= threshold:
                park = self.obs.start_span("tun_writer.park")
                try:
                    yield self.queue.wait()
                except QueueClosed:
                    self.obs.end_span(park, outcome="closed")
                    return
                self.obs.end_span(park)
                counter = 0
            else:
                # One more spin round: a cheap check, then yield.
                self.obs.inc("tun_writer.sleep_count")
                self.device.cpu.charge("mopeye.tunwriter",
                                       0.0005)
                yield self.sim.timeout(self.config.spin_check_interval_ms)

    def stop(self):
        """Generator: terminate the writer thread.  In queueWrite mode
        the sentinel rides the FIFO behind any queued packets, so the
        consumer drains them before exiting (and flips ``running``
        itself); directWrite has no consumer thread to wind down."""
        if self.config.write_scheme == "queueWrite":
            yield self.queue.put(_STOP)
        else:
            self.running = False


class _Stop:
    def __repr__(self):
        return "<TunWriter STOP sentinel>"


_STOP = _Stop()
