"""Packet-to-app mapping (section 3.3).

MopEye attributes each SYN to an app by matching the connection's
four-tuple against ``/proc/net/tcp6|tcp`` rows, which carry the owning
UID.  Parsing those files costs 5-15+ ms (Figure 5(a)), so the *lazy*
mapper (a) defers the work to the temporary socket-connect threads, off
the relay's critical path, and (b) lets a single parsing thread serve
all concurrent threads: everyone else naps in 50 ms slices and re-checks
the shared snapshot.

The eager mapper is the pre-optimisation behaviour (one parse per SYN,
in the data path); the cache mapper is the Haystack-style alternative
whose endpoint cache can *misattribute* connections when two apps talk
to the same server endpoint -- the reason MopEye rejects it.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.phone.procfs import build_uid_map, parse_proc_net

FourTuple = Tuple[str, int, str, int]


class MappingStats:
    """Per-mapper accounting for Figure 5."""

    def __init__(self) -> None:
        self.threads = 0            # mapping requests served
        self.parses = 0             # /proc/net parses actually performed
        self.served_by_peer = 0     # threads that found a peer's snapshot
        self.wait_naps = 0          # 50 ms naps taken while waiting
        self.unmapped = 0           # four-tuples never resolved
        self.overheads_ms: List[float] = []  # CPU cost per request

    @property
    def mitigation_rate(self) -> float:
        """Share of requests that avoided a parse (67.8 % in the paper)."""
        if self.threads == 0:
            return 0.0
        return 1.0 - (self.parses / self.threads)


class _BaseMapper:
    def __init__(self, device, config):
        self.device = device
        self.sim = device.sim
        self.config = config
        self.stats = MappingStats()
        self._package_cache: Dict[int, Optional[str]] = {}

    def _parse_proc(self) -> Dict[FourTuple, int]:
        """Read and parse /proc/net/tcp6 + tcp.  The caller charges the
        parse cost; this does the actual work against real proc text."""
        entries = parse_proc_net(self.device.procfs.read("tcp6"))
        entries += parse_proc_net(self.device.procfs.read("tcp"))
        return build_uid_map(entries)

    def _package_for(self, uid: Optional[int]):
        """Generator: UID -> package name with a local cache."""
        if uid is None:
            return None
        if uid not in self._package_cache:
            cost = self.device.costs.uid_lookup.sample()
            yield self.device.busy(cost, "mopeye.mapping")
            self._package_cache[uid] = self.device.packages.name_for_uid(uid)
        return self._package_cache[uid]

    def map_connection(self, four_tuple: FourTuple):
        raise NotImplementedError


class EagerMapper(_BaseMapper):
    """One proc parse per SYN, inline (the Figure 5(a) baseline)."""

    def map_connection(self, four_tuple: FourTuple):
        self.stats.threads += 1
        cost = self.device.costs.proc_parse.sample()
        yield self.device.busy(cost, "mopeye.mapping")
        self.stats.parses += 1
        self.stats.overheads_ms.append(cost)
        uid = self._parse_proc().get(four_tuple)
        if uid is None:
            self.stats.unmapped += 1
        package = yield from self._package_for(uid)
        return uid, package


class LazyMapper(_BaseMapper):
    """The section 3.3 design: deferred, single-parser mapping."""

    def __init__(self, device, config):
        super().__init__(device, config)
        self._parsing = False
        self._snapshot: Dict[FourTuple, int] = {}
        self._snapshot_version = 0

    def map_connection(self, four_tuple: FourTuple):
        self.stats.threads += 1
        spent = 0.0
        parsed_here = False
        seen_version = -1
        while True:
            uid = self._snapshot.get(four_tuple)
            if uid is not None:
                if not parsed_here:
                    self.stats.served_by_peer += 1
                break
            if parsed_here and seen_version == self._snapshot_version:
                # We parsed and the tuple still is not there: give up.
                uid = None
                break
            if not self._parsing:
                self._parsing = True
                cost = self.device.costs.proc_parse.sample()
                try:
                    yield self.device.busy(cost, "mopeye.mapping")
                    snapshot = self._parse_proc()
                finally:
                    self._parsing = False
                self._snapshot = snapshot
                self._snapshot_version += 1
                seen_version = self._snapshot_version
                self.stats.parses += 1
                spent += cost
                parsed_here = True
                continue
            # Someone else is parsing: nap and re-check their result.
            self.stats.wait_naps += 1
            yield self.sim.timeout(self.config.lazy_wait_slice_ms)
        if uid is None:
            self.stats.unmapped += 1
        self.stats.overheads_ms.append(spent)
        package = yield from self._package_for(uid)
        return uid, package


class CacheMapper(_BaseMapper):
    """Endpoint-keyed cache (Haystack-style).  Fast, but attributes a
    connection to whichever app *first* used the endpoint -- wrong when
    e.g. the Facebook app and Chrome hit the same server IP:port."""

    def __init__(self, device, config):
        super().__init__(device, config)
        self._endpoint_cache: Dict[Tuple[str, int], int] = {}
        self.hits = 0

    def map_connection(self, four_tuple: FourTuple):
        self.stats.threads += 1
        endpoint = (four_tuple[2], four_tuple[3])
        cached = self._endpoint_cache.get(endpoint)
        if cached is not None:
            self.hits += 1
            self.stats.overheads_ms.append(0.0)
            package = yield from self._package_for(cached)
            return cached, package
        cost = self.device.costs.proc_parse.sample()
        yield self.device.busy(cost, "mopeye.mapping")
        self.stats.parses += 1
        self.stats.overheads_ms.append(cost)
        uid = self._parse_proc().get(four_tuple)
        if uid is None:
            self.stats.unmapped += 1
        else:
            self._endpoint_cache[endpoint] = uid
        package = yield from self._package_for(uid)
        return uid, package


class NullMapper(_BaseMapper):
    """Mapping disabled (mapping_mode='off')."""

    def map_connection(self, four_tuple: FourTuple):
        self.stats.threads += 1
        self.stats.overheads_ms.append(0.0)
        return None, None
        yield  # pragma: no cover - makes this a generator


def make_mapper(device, config):
    mode = config.mapping_mode
    if mode == "lazy":
        return LazyMapper(device, config)
    if mode == "eager":
        return EagerMapper(device, config)
    if mode == "cache":
        return CacheMapper(device, config)
    if mode == "off":
        return NullMapper(device, config)
    raise ValueError("unknown mapping mode %r" % mode)
