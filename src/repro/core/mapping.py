"""Packet-to-app mapping (section 3.3).

MopEye attributes each SYN to an app by matching the connection's
four-tuple against ``/proc/net/tcp6|tcp`` rows, which carry the owning
UID.  Parsing those files costs 5-15+ ms (Figure 5(a)), so the *lazy*
mapper (a) defers the work to the temporary socket-connect threads, off
the relay's critical path, and (b) lets a single parsing thread serve
all concurrent threads: everyone else naps in 50 ms slices and re-checks
the shared snapshot.

The eager mapper is the pre-optimisation behaviour (one parse per SYN,
in the data path); the cache mapper is the Haystack-style alternative
whose endpoint cache can *misattribute* connections when two apps talk
to the same server endpoint -- the reason MopEye rejects it.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.obs import Observability
from repro.phone.procfs import build_uid_map, parse_proc_net

FourTuple = Tuple[str, int, str, int]


class MappingStats:
    """Per-mapper accounting for Figure 5: a view over the registry's
    ``mapping.*`` counters plus the raw per-request overhead samples
    (the benches CDF those directly)."""

    _FIELDS = {
        "threads": "mapping.requests",        # mapping requests served
        "parses": "mapping.parses",           # /proc/net parses performed
        "served_by_peer": "mapping.served_by_peer",
        "wait_naps": "mapping.wait_naps",     # 50 ms naps while waiting
        "unmapped": "mapping.unmapped",       # never resolved
    }

    def __init__(self, obs: Optional[Observability] = None):
        self._obs = obs or Observability()
        self.overheads_ms: List[float] = []   # CPU cost per request

    def __getattr__(self, name: str) -> int:
        metric = MappingStats._FIELDS.get(name)
        if metric is None:
            raise AttributeError(name)
        return int(self._obs.value(metric))

    @property
    def mitigation_rate(self) -> float:
        """Share of requests that avoided a parse (67.8 % in the paper)."""
        if self.threads == 0:
            return 0.0
        return 1.0 - (self.parses / self.threads)


class _BaseMapper:
    def __init__(self, device, config, obs: Optional[Observability] = None):
        self.device = device
        self.sim = device.sim
        self.config = config
        self.obs = obs or Observability(sim=device.sim)
        self.stats = MappingStats(self.obs)
        self._package_cache: Dict[int, Optional[str]] = {}

    def _record_overhead(self, cost_ms: float) -> None:
        self.stats.overheads_ms.append(cost_ms)
        self.obs.observe("mapping.overhead_ms", cost_ms)

    def _parse_proc(self) -> Dict[FourTuple, int]:
        """Read and parse /proc/net/tcp6 + tcp.  The caller charges the
        parse cost; this does the actual work against real proc text."""
        entries = parse_proc_net(self.device.procfs.read("tcp6"))
        entries += parse_proc_net(self.device.procfs.read("tcp"))
        return build_uid_map(entries)

    def _package_for(self, uid: Optional[int]):
        """Generator: UID -> package name with a local cache."""
        if uid is None:
            return None
        if uid not in self._package_cache:
            cost = self.device.costs.uid_lookup.sample()
            yield self.device.busy(cost, "mopeye.mapping")
            self._package_cache[uid] = self.device.packages.name_for_uid(uid)
        return self._package_cache[uid]

    def map_connection(self, four_tuple: FourTuple):
        raise NotImplementedError


class EagerMapper(_BaseMapper):
    """One proc parse per SYN, inline (the Figure 5(a) baseline)."""

    def map_connection(self, four_tuple: FourTuple):
        self.obs.inc("mapping.requests")
        span = self.obs.start_span("mapping.map", mode="eager")
        cost = self.device.costs.proc_parse.sample()
        yield self.device.busy(cost, "mopeye.mapping")
        self.obs.inc("mapping.parses")
        self._record_overhead(cost)
        uid = self._parse_proc().get(four_tuple)
        if uid is None:
            self.obs.inc("mapping.unmapped")
        package = yield from self._package_for(uid)
        self.obs.end_span(span, uid=uid)
        return uid, package


class LazyMapper(_BaseMapper):
    """The section 3.3 design: deferred, single-parser mapping."""

    def __init__(self, device, config, obs=None):
        super().__init__(device, config, obs)
        self._parsing = False
        self._snapshot: Dict[FourTuple, int] = {}
        self._snapshot_version = 0

    def map_connection(self, four_tuple: FourTuple):
        self.obs.inc("mapping.requests")
        span = self.obs.start_span("mapping.map", mode="lazy")
        spent = 0.0
        parsed_here = False
        seen_version = -1
        while True:
            uid = self._snapshot.get(four_tuple)
            if uid is not None:
                if not parsed_here:
                    self.obs.inc("mapping.served_by_peer")
                break
            if parsed_here and seen_version == self._snapshot_version:
                # We parsed and the tuple still is not there: give up.
                uid = None
                break
            if not self._parsing:
                self._parsing = True
                cost = self.device.costs.proc_parse.sample()
                try:
                    yield self.device.busy(cost, "mopeye.mapping")
                    snapshot = self._parse_proc()
                finally:
                    self._parsing = False
                self._snapshot = snapshot
                self._snapshot_version += 1
                seen_version = self._snapshot_version
                self.obs.inc("mapping.parses")
                spent += cost
                parsed_here = True
                continue
            # Someone else is parsing: nap and re-check their result.
            self.obs.inc("mapping.wait_naps")
            yield self.sim.timeout(self.config.lazy_wait_slice_ms)
        if uid is None:
            self.obs.inc("mapping.unmapped")
        self._record_overhead(spent)
        package = yield from self._package_for(uid)
        self.obs.end_span(span, uid=uid, parsed=parsed_here)
        return uid, package


class CacheMapper(_BaseMapper):
    """Endpoint-keyed cache (Haystack-style).  Fast, but attributes a
    connection to whichever app *first* used the endpoint -- wrong when
    e.g. the Facebook app and Chrome hit the same server IP:port."""

    def __init__(self, device, config, obs=None):
        super().__init__(device, config, obs)
        self._endpoint_cache: Dict[Tuple[str, int], int] = {}
        self.hits = 0

    def map_connection(self, four_tuple: FourTuple):
        self.obs.inc("mapping.requests")
        span = self.obs.start_span("mapping.map", mode="cache")
        endpoint = (four_tuple[2], four_tuple[3])
        cached = self._endpoint_cache.get(endpoint)
        if cached is not None:
            self.hits += 1
            self._record_overhead(0.0)
            package = yield from self._package_for(cached)
            self.obs.end_span(span, uid=cached)
            return cached, package
        cost = self.device.costs.proc_parse.sample()
        yield self.device.busy(cost, "mopeye.mapping")
        self.obs.inc("mapping.parses")
        self._record_overhead(cost)
        uid = self._parse_proc().get(four_tuple)
        if uid is None:
            self.obs.inc("mapping.unmapped")
        else:
            self._endpoint_cache[endpoint] = uid
        package = yield from self._package_for(uid)
        self.obs.end_span(span, uid=uid)
        return uid, package


class NullMapper(_BaseMapper):
    """Mapping disabled (mapping_mode='off')."""

    def map_connection(self, four_tuple: FourTuple):
        self.obs.inc("mapping.requests")
        self._record_overhead(0.0)
        return None, None
        yield  # pragma: no cover - makes this a generator


def make_mapper(device, config, obs: Optional[Observability] = None):
    mode = config.mapping_mode
    if mode == "lazy":
        return LazyMapper(device, config, obs)
    if mode == "eager":
        return EagerMapper(device, config, obs)
    if mode == "cache":
        return CacheMapper(device, config, obs)
    if mode == "off":
        return NullMapper(device, config, obs)
    raise ValueError("unknown mapping mode %r" % mode)
