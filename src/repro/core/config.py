"""Configuration knobs for MopEye and its ablations.

Defaults are the paper's final design; each alternative value is a
mechanism the paper measured against (Tables 1-4, Figure 5) or a
baseline system's behaviour (ToyVpn, PrivacyGuard, Haystack).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class MopEyeConfig:
    package: str = "com.mopeye"

    # -- section 3.1: TUN packet retrieval ---------------------------------
    # "blocking": the paper's zero-delay design (fcntl/reflection/API).
    # "sleep": fixed-interval polling (ToyVpn=100 ms, PrivacyGuard=20 ms).
    # "adaptive": ToyVpn's "intelligent" sleeping (stop sleeping on
    # consecutive reads), also used by Haystack.
    tun_read_mode: str = "blocking"
    tun_read_sleep_ms: float = 100.0
    adaptive_min_sleep_ms: float = 0.1
    adaptive_max_sleep_ms: float = 25.0
    # Haystack-style pollers sleep between *every* read instead of
    # draining bursts, which throttles the uplink (Table 3).
    poll_one_per_interval: bool = False

    # -- section 3.5.1: dispatching packets to the tunnel --------------------
    # "queueWrite": dedicated TunWriter thread (the design).
    # "directWrite": every producer writes the shared tun fd itself.
    write_scheme: str = "queueWrite"
    # "newPut": spin-counter enqueue; "oldPut": classic wait/notify.
    put_scheme: str = "newPut"
    # newPut sleep-counter threshold (checks before parking in wait()).
    # 600 x 0.05 ms ~= 30 ms of checking -- enough to ride out a normal
    # request/response RTT without touching the monitor.
    put_counter_threshold: int = 600
    spin_check_interval_ms: float = 0.05

    # -- section 3.3: packet-to-app mapping ------------------------------------
    # "lazy" (the design), "eager" (per-SYN parse in the data path),
    # "cache" (Haystack-style endpoint cache; can misattribute), "off".
    mapping_mode: str = "lazy"
    lazy_wait_slice_ms: float = 50.0  # helper threads' sleep period

    # -- section 3.4: user-space TCP tuning ---------------------------------------
    mss: int = 1460
    window: int = 65535

    # -- section 3.5.2: socket exemption --------------------------------------------
    # "disallow": addDisallowedApplication at init (Android 5.0+).
    # "protect": per-socket protect() in the socket-connect thread.
    # "auto": disallow when the SDK allows it, else protect.
    protect_mode: str = "auto"

    # -- section 2.4: measurement --------------------------------------------------------
    # "blocking_thread": temporary blocking-mode socket-connect thread
    # (accurate).  "selector": non-blocking connect completed via the
    # main selector loop (the inaccurate alternative MopEye avoids).
    connect_mode: str = "blocking_thread"
    # DNS measurement on UDP port 53 relays.
    measure_dns: bool = True

    # -- inspection overhead (zero for MopEye; Haystack pays this) -------------------
    per_packet_inspection_ms: float = 0.0
    per_connection_buffer_bytes: int = 2 * 65535
    base_memory_bytes: int = 12 * 1024 * 1024

    def validate(self) -> "MopEyeConfig":
        allowed = {
            "tun_read_mode": ("blocking", "sleep", "adaptive"),
            "write_scheme": ("queueWrite", "directWrite"),
            "put_scheme": ("newPut", "oldPut"),
            "mapping_mode": ("lazy", "eager", "cache", "off"),
            "protect_mode": ("auto", "disallow", "protect"),
            "connect_mode": ("blocking_thread", "selector"),
        }
        for attr, values in allowed.items():
            if getattr(self, attr) not in values:
                raise ValueError("%s must be one of %s, got %r"
                                 % (attr, values, getattr(self, attr)))
        if self.mss <= 0 or self.window <= 0:
            raise ValueError("mss and window must be positive")
        return self
