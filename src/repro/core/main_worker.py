"""MainWorker: the single packet-processing thread (sections 2.3, 3.2).

One thread monitors both the socket selector and the tunnel read queue:
TunReader issues ``Selector.wakeup()`` whenever it enqueues a packet, so
a pending ``select()`` returns and the worker interleaves checking
socket events with draining tunnel packets.
"""

from __future__ import annotations

from repro.netstack.ip import IPPacket, PacketError, PROTO_TCP, PROTO_UDP
from repro.netstack.tcp_segment import TCPSegment
from repro.netstack.tcp_state import TCPStateError
from repro.netstack.udp_datagram import UDPDatagram


class MainWorker:
    def __init__(self, service):
        self.service = service
        self.device = service.device
        self.sim = service.sim
        self.running = False
        self.loops = 0
        self.tunnel_packets = 0
        self.socket_events = 0

    def run(self):
        """Generator: the MainWorker thread body."""
        self.running = True
        service = self.service
        selector = service.selector
        read_queue = service.tun_reader.read_queue
        while self.running:
            keys = yield selector.select_process()
            if not self.running:
                return
            self.loops += 1
            cost = self.device.costs.selector_select.sample()
            yield self.device.busy(cost, "mopeye.worker")
            # Interleave the two event sources (section 3.2): handle a
            # batch of socket events, then drain the tunnel queue.
            for key in keys:
                self.socket_events += 1
                client = key.attachment
                if client is None:
                    continue
                # Interleave write and read events (section 2.3): the
                # write event flushes the tunnel data buffered for the
                # socket; the read event drains server data.
                if key.channel.write_requested:
                    yield from client.handle_socket_writable()
                if key.channel.readable:
                    yield from client.handle_socket_readable()
            # 'selector' connect-mode ablation: notice completed
            # connects from the worker loop (the inaccurate way).
            if service.config.connect_mode == "selector":
                yield from self._poll_pending_connects()
            while True:
                packet = read_queue.try_get()
                if packet is None:
                    break
                yield from self._handle_tunnel_packet(packet)

    def _poll_pending_connects(self):
        for client in list(self.service.clients.values()):
            if client.rtt_ms is None and not client.registered \
                    and client.channel.is_connected \
                    and client.connect_started_at is not None:
                # The timestamp is taken *here*, in the worker loop --
                # inflated by however long the worker spent on other
                # events since the SYN/ACK actually arrived (the
                # inaccuracy MopEye's blocking-thread design avoids).
                quantize = self.device.costs.quantize_milli
                client.rtt_ms = (quantize(self.sim.now)
                                 - quantize(client.connect_started_at))
                yield from client._finish_measurement()

    def _handle_tunnel_packet(self, packet: IPPacket):
        """Generator: parse and dispatch one captured IP packet."""
        service = self.service
        self.tunnel_packets += 1
        cost = self.device.costs.packet_parse.sample()
        yield self.device.busy(cost, "mopeye.worker")
        if packet.protocol == PROTO_TCP:
            try:
                segment = TCPSegment.decode(packet.payload)
            except PacketError:
                service.stats.parse_errors += 1
                return
            yield from self._handle_tcp(packet, segment)
        elif packet.protocol == PROTO_UDP:
            try:
                datagram = UDPDatagram.decode(packet.payload)
            except PacketError:
                service.stats.parse_errors += 1
                return
            service.spawn_udp_relay(packet, datagram)
        # Other protocols are dropped (MopEye relays TCP and UDP).

    def _handle_tcp(self, packet: IPPacket, segment: TCPSegment):
        service = self.service
        four_tuple = (packet.src_str, segment.src_port,
                      packet.dst_str, segment.dst_port)
        if segment.is_syn:
            if four_tuple in service.clients:
                return  # SYN retransmission; connect is in progress
            service.stats.syn_packets += 1
            client = service.new_client(four_tuple, segment)
            service.spawn_connect_thread(client)
            return
        client = service.clients.get(four_tuple)
        if client is None:
            service.stats.orphan_packets += 1
            return
        try:
            yield from client.handle_tunnel_segment(segment)
        except TCPStateError:
            service.stats.state_errors += 1

    def stop(self) -> None:
        self.running = False
        self.service.selector.wakeup()
