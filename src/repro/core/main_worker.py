"""MainWorker: the single packet-processing thread (sections 2.3, 3.2).

One thread monitors both the socket selector and the tunnel read queue:
TunReader issues ``Selector.wakeup()`` whenever it enqueues a packet, so
a pending ``select()`` returns and the worker interleaves checking
socket events with draining tunnel packets.
"""

from __future__ import annotations

from repro.netstack.ip import IPPacket, PacketError, PROTO_TCP, PROTO_UDP
from repro.netstack.tcp_segment import TCPSegment
from repro.netstack.tcp_state import TCPStateError
from repro.netstack.udp_datagram import UDPDatagram


class MainWorker:
    def __init__(self, service):
        self.service = service
        self.device = service.device
        self.sim = service.sim
        self.obs = service.obs
        self.running = False

    # Registry-backed views of the loop counters.
    @property
    def loops(self) -> int:
        return int(self.obs.value("main_worker.loops"))

    @property
    def tunnel_packets(self) -> int:
        return int(self.obs.value("main_worker.tunnel_packets"))

    @property
    def socket_events(self) -> int:
        return int(self.obs.value("main_worker.socket_events"))

    def run(self):
        """Generator: the MainWorker thread body."""
        self.running = True
        service = self.service
        obs = self.obs
        selector = service.selector
        read_queue = service.tun_reader.read_queue
        while self.running:
            select_span = obs.start_span("main_worker.select")
            keys = yield selector.select_process()
            obs.end_span(select_span, keys=len(keys))
            if not self.running:
                return
            loop_span = obs.start_span("main_worker.loop")
            obs.inc("main_worker.loops")
            cost = self.device.costs.selector_select.sample()
            yield self.device.busy(cost, "mopeye.worker")
            # Interleave the two event sources (section 3.2): handle a
            # batch of socket events, then drain the tunnel queue.
            events_handled = 0
            for key in keys:
                events_handled += 1
                obs.inc("main_worker.socket_events")
                client = key.attachment
                if client is None:
                    continue
                event_span = obs.start_span("main_worker.socket_event")
                # Interleave write and read events (section 2.3): the
                # write event flushes the tunnel data buffered for the
                # socket; the read event drains server data.
                if key.channel.write_requested:
                    yield from client.handle_socket_writable()
                if key.channel.readable:
                    yield from client.handle_socket_readable()
                obs.end_span(event_span)
            obs.observe("main_worker.events_per_loop", events_handled)
            # 'selector' connect-mode ablation: notice completed
            # connects from the worker loop (the inaccurate way).
            if service.config.connect_mode == "selector":
                yield from self._poll_pending_connects()
            obs.observe("main_worker.queue_depth", len(read_queue))
            drained = 0
            while True:
                packet = read_queue.try_get()
                if packet is None:
                    break
                drained += 1
                yield from self._handle_tunnel_packet(packet)
            obs.end_span(loop_span, events=events_handled,
                         tunnel_packets=drained)

    def _poll_pending_connects(self):
        for client in list(self.service.clients.values()):
            if client.rtt_ms is None and not client.registered \
                    and client.channel.is_connected \
                    and client.connect_started_at is not None:
                # The timestamp is taken *here*, in the worker loop --
                # inflated by however long the worker spent on other
                # events since the SYN/ACK actually arrived (the
                # inaccuracy MopEye's blocking-thread design avoids).
                quantize = self.device.costs.quantize_milli
                client.rtt_ms = (quantize(self.sim.now)
                                 - quantize(client.connect_started_at))
                self.obs.observe("tcp.connect_rtt_ms", client.rtt_ms)
                yield from client._finish_measurement()

    def _handle_tunnel_packet(self, packet: IPPacket):
        """Generator: parse and dispatch one captured IP packet."""
        service = self.service
        obs = self.obs
        obs.inc("main_worker.tunnel_packets")
        span = obs.start_span("main_worker.tunnel_packet",
                              protocol=packet.protocol)
        cost = self.device.costs.packet_parse.sample()
        yield self.device.busy(cost, "mopeye.worker")
        if packet.protocol == PROTO_TCP:
            try:
                segment = TCPSegment.decode(packet.payload)
            except PacketError:
                obs.inc("relay.parse_errors")
                obs.end_span(span, outcome="parse_error")
                return
            yield from self._handle_tcp(packet, segment)
        elif packet.protocol == PROTO_UDP:
            try:
                datagram = UDPDatagram.decode(packet.payload)
            except PacketError:
                obs.inc("relay.parse_errors")
                obs.end_span(span, outcome="parse_error")
                return
            service.spawn_udp_relay(packet, datagram)
        # Other protocols are dropped (MopEye relays TCP and UDP).
        obs.end_span(span)

    def _handle_tcp(self, packet: IPPacket, segment: TCPSegment):
        service = self.service
        four_tuple = (packet.src_str, segment.src_port,
                      packet.dst_str, segment.dst_port)
        if segment.is_syn:
            if four_tuple in service.clients:
                return  # SYN retransmission; connect is in progress
            self.obs.inc("relay.syn_packets")
            client = service.new_client(four_tuple, segment)
            service.spawn_connect_thread(client)
            return
        client = service.clients.get(four_tuple)
        if client is None:
            self.obs.inc("relay.orphan_packets")
            return
        try:
            yield from client.handle_tunnel_segment(segment)
        except TCPStateError:
            self.obs.inc("relay.state_errors")

    def stop(self) -> None:
        self.running = False
        self.service.selector.wakeup()
