"""MopEye: opportunistic per-app RTT measurement (the paper's core).

:class:`~repro.core.service.MopEyeService` wires the three threads of
Figure 4 -- TunReader, TunWriter, MainWorker -- plus the temporary
socket-connect threads, over the phone substrate.  Every design choice
the paper evaluates is a :class:`~repro.core.config.MopEyeConfig` knob,
so the ablation benches toggle exactly one mechanism at a time.
"""

from repro.core.config import MopEyeConfig
from repro.core.records import (
    FlowRecord,
    MeasurementKind,
    MeasurementRecord,
    MeasurementStore,
)
from repro.core.persist import (
    dataset_digest,
    iter_jsonl,
    iter_jsonl_shards,
    list_shards,
    load_csv,
    load_jsonl,
    merge_shards,
    save_csv,
    save_jsonl,
    save_jsonl_shards,
)
from repro.core.uploader import MeasurementUploader
from repro.core.mapping import (
    CacheMapper,
    EagerMapper,
    LazyMapper,
    MappingStats,
)
from repro.core.service import MopEyeService, RelayStats

__all__ = [
    "CacheMapper",
    "EagerMapper",
    "FlowRecord",
    "LazyMapper",
    "MappingStats",
    "MeasurementKind",
    "MeasurementUploader",
    "MeasurementRecord",
    "MeasurementStore",
    "MopEyeConfig",
    "MopEyeService",
    "RelayStats",
    "dataset_digest",
    "iter_jsonl",
    "iter_jsonl_shards",
    "list_shards",
    "load_csv",
    "load_jsonl",
    "merge_shards",
    "save_csv",
    "save_jsonl",
    "save_jsonl_shards",
]
