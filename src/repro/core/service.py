"""MopEyeService: lifecycle and wiring of the Figure 4 architecture.

``start()`` installs the app, establishes the VPN (one-time user
consent), applies the section 3.5.2 exemption, and launches the three
core threads.  ``stop()`` tears them down -- including the section 3.1
dummy-packet trick needed to release a blocked TunReader.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.config import MopEyeConfig
from repro.core.main_worker import MainWorker
from repro.core.mapping import make_mapper
from repro.core.records import (
    FailureKind,
    FlowRecord,
    MeasurementKind,
    MeasurementRecord,
    MeasurementStore,
)
from repro.core.relay_tcp import FourTuple, TcpClient
from repro.core.relay_udp import UdpRelay
from repro.core.tun_reader import TunReader
from repro.core.tun_writer import TunWriter
from repro.netstack.ip import IPPacket, PROTO_UDP
from repro.netstack.tcp_segment import TCPSegment
from repro.netstack.udp_datagram import UDPDatagram
from repro.obs import Observability
from repro.phone.nio import Selector
from repro.phone.vpn import VpnService


class RelayStats:
    """Read-only view of the relay-wide counters, kept for the
    evaluation harness's ``service.stats.x`` surface.  The counters
    themselves live in the service's metrics registry -- there is
    exactly one stats mechanism (see docs/OBSERVABILITY.md)."""

    _FIELDS = {
        "syn_packets": "relay.syn_packets",
        "pure_acks_discarded": "relay.pure_acks_discarded",
        "orphan_packets": "relay.orphan_packets",
        "parse_errors": "relay.parse_errors",
        "state_errors": "relay.state_errors",
        "connect_failures": "relay.connect_failures",
        "packets_to_tunnel": "relay.packets_to_tunnel",
        "udp_datagrams": "udp_relay.datagrams",
        "bytes_up": "relay.bytes_up",
        "bytes_down": "relay.bytes_down",
        "udp_bytes_up": "udp_relay.bytes_up",
        "udp_bytes_down": "udp_relay.bytes_down",
    }

    def __init__(self, obs: Optional[Observability] = None):
        self._obs = obs or Observability()

    def __getattr__(self, name: str) -> int:
        metric = RelayStats._FIELDS.get(name)
        if metric is None:
            raise AttributeError(name)
        return int(self._obs.value(metric))

    def __repr__(self) -> str:
        return "<RelayStats %s>" % " ".join(
            "%s=%d" % (field, getattr(self, field))
            for field in sorted(self._FIELDS))


class MopEyeService:
    """The measurement app.  One instance per device."""

    def __init__(self, device, config: Optional[MopEyeConfig] = None,
                 store: Optional[MeasurementStore] = None,
                 dummy_server_ip: Optional[str] = None,
                 obs: Optional[Observability] = None,
                 modalities: bool = False,
                 app_rtt: bool = False):
        self.device = device
        self.sim = device.sim
        self.config = (config or MopEyeConfig()).validate()
        self.store = store or MeasurementStore()
        #: When on, flow close emits the beyond-RTT modality records
        #: (per-direction throughput + attributed energy) alongside
        #: the FlowRecord (docs/MODALITIES.md).  Off by default so the
        #: record stream is unchanged for RTT-only experiments.
        self.modalities = modalities
        #: When on, the relay emits an APP_RTT record per connection
        #: (first request byte to first response byte) alongside the
        #: SYN RTT -- the dual-RTT view the middlebox divergence rule
        #: compares (docs/MIDDLEBOX.md).  Off by default so the record
        #: stream is unchanged for SYN-only experiments.
        self.app_rtt = app_rtt
        self.obs = obs or Observability(sim=self.sim)
        self.stats = RelayStats(self.obs)
        self.vpn = VpnService(device, self.config.package)
        self.uid = self.vpn.owner_uid
        self.selector = Selector(device)
        self.tun_reader = TunReader(self)
        self.tun_writer = TunWriter(self)
        self.main_worker = MainWorker(self)
        self.udp_relay = UdpRelay(self)
        self.mapper = make_mapper(device, self.config, obs=self.obs)
        self.clients: Dict[FourTuple, TcpClient] = {}
        self.flows: List[FlowRecord] = []
        self.domain_of_ip: Dict[str, str] = {}
        self.tun = None
        self.per_socket_protect = False
        self.dummy_server_ip = dummy_server_ip
        self.running = False
        self._threads: List[object] = []
        self.started_at: Optional[float] = None
        #: Process event of the teardown triggered by a VPN revoke;
        #: waiters (the fault injector) yield it before restarting.
        self.revoke_stop = None
        self.vpn.on_revoked = self._on_vpn_revoked

    # -- lifecycle -----------------------------------------------------------
    def start(self) -> None:
        """Establish the VPN and launch TunReader/TunWriter/MainWorker.
        Callable again after stop(): a restart gets fresh thread and
        selector state (counters, being registry-backed, continue)."""
        if self.running:
            raise RuntimeError("MopEye already running")
        if self.started_at is not None:
            # Restart after a stop (e.g. VPN revoke): the old thread
            # generators have exited; rebuild them and drop relay state
            # tied to the torn-down tunnel.
            self.selector = Selector(self.device)
            self.tun_reader = TunReader(self)
            self.tun_writer = TunWriter(self)
            self.main_worker = MainWorker(self)
            self.udp_relay = UdpRelay(self)
            self.clients.clear()
        builder = self.vpn.new_builder()
        self.tun = builder.set_mtu(1500).add_address(
            self.device.tun_address).establish()
        mode = self.config.protect_mode
        if mode == "auto":
            mode = ("disallow"
                    if self.device.sdk >= VpnService.ADD_DISALLOWED_MIN_SDK
                    else "protect")
        if mode == "disallow":
            # One-time call at initialisation (section 3.5.2).
            self.vpn.add_disallowed_application(self.config.package)
            self.per_socket_protect = False
        else:
            self.per_socket_protect = True
        if self.config.tun_read_mode == "blocking":
            # Switch the tun fd to blocking at initialisation (§3.1).
            self.tun_reader.configure_blocking_mode()
        self.running = True
        self.started_at = self.sim.now
        self.device.cpu.started_at = self.sim.now
        self._threads = [
            self.sim.process(self.tun_reader.run(), name="TunReader"),
            self.sim.process(self.main_worker.run(), name="MainWorker"),
        ]
        if self.config.write_scheme == "queueWrite":
            self._threads.append(
                self.sim.process(self.tun_writer.run(), name="TunWriter"))

    def stop(self):
        """Generator: orderly shutdown (run as a process)."""
        if not self.running:
            return
        self.running = False
        self.tun_reader.stop()
        self.main_worker.stop()
        yield from self.tun_writer.stop()
        if self.config.tun_read_mode == "blocking":
            # Release the blocked read() with a dummy packet (§3.1).
            if not self.per_socket_protect:
                # Android 5.0+: MopEye's own packets bypass the tunnel,
                # so trigger another app's request via DownloadManager.
                if self.dummy_server_ip is not None:
                    from repro.phone.download_manager import DownloadManager
                    DownloadManager(self.device).enqueue(
                        self.dummy_server_ip)
            else:
                # Pre-5.0: MopEye can send the dummy packet itself.
                socket = self.device.create_udp_socket(self.uid)
                socket.sendto(b"dummy", "203.0.113.1", 9)
                socket.close()
        # Give threads a moment to observe the flags.
        yield self.sim.timeout(1.0)
        self.vpn.stop()

    def _on_vpn_revoked(self) -> None:
        """The system revoked VPN consent (another VPN app started, or
        the user killed it): tear down like onRevoke() -> onDestroy()."""
        if not self.running:
            return
        self.revoke_stop = self.sim.process(self.stop(),
                                            name="vpn-revoke-stop")

    # -- client management ------------------------------------------------------
    def new_client(self, four_tuple: FourTuple,
                   syn: TCPSegment) -> TcpClient:
        client = TcpClient(self, four_tuple, syn)
        self.clients[four_tuple] = client
        return client

    def remove_client(self, client: TcpClient) -> None:
        self.clients.pop(client.four_tuple, None)

    def spawn_connect_thread(self, client: TcpClient) -> None:
        self.sim.process(client.socket_connect_thread(),
                         name="socket-connect")

    def spawn_udp_relay(self, packet: IPPacket,
                        datagram: UDPDatagram) -> None:
        self.sim.process(self.udp_relay.relay_thread(packet, datagram),
                         name="udp-relay")

    # -- tunnel output --------------------------------------------------------------
    def emit_tunnel_segment(self, client: TcpClient,
                            segment: TCPSegment):
        """Generator: encode a state-machine segment into an IP packet
        toward the app and dispatch it under the write scheme."""
        local_ip = client.machine.local_ip
        remote_ip = client.machine.remote_ip
        cost = self.device.costs.packet_build.sample()
        yield self.device.busy(cost, "mopeye.worker")
        packet = IPPacket(remote_ip, local_ip, 6,
                          segment.encode(remote_ip, local_ip))
        yield from self.emit_packet(packet)

    def emit_packet(self, packet: IPPacket):
        """Generator: dispatch one finished packet to the tunnel.
        Every producer -- TCP state machine and UDP relay alike --
        funnels through here, so ``relay.packets_to_tunnel`` counts
        both (the UDP path used to be missed)."""
        self.obs.inc("relay.packets_to_tunnel")
        yield from self.tun_writer.emit(packet)

    # -- measurement records -----------------------------------------------------------
    def record_tcp(self, client: TcpClient) -> None:
        link = self.device.link
        self.store.add(MeasurementRecord(
            kind=MeasurementKind.TCP,
            rtt_ms=client.rtt_ms,
            timestamp_ms=self.sim.now,
            app_package=client.app_package,
            app_uid=client.app_uid,
            dst_ip=client.four_tuple[2],
            dst_port=client.four_tuple[3],
            domain=self.domain_of_ip.get(client.four_tuple[2]),
            network_type=link.network_type,
            operator=link.operator,
            device_id=self.device.model))

    def record_app_rtt(self, client: TcpClient,
                       rtt_ms: float) -> None:
        """App-layer RTT for one relayed connection: first request
        byte written to first response byte read.  Behind a
        split-connection proxy this still spans the full path while
        the SYN RTT only reaches the middlebox -- the divergence the
        detection rule measures (docs/MIDDLEBOX.md)."""
        if not self.app_rtt:
            return
        link = self.device.link
        self.store.add(MeasurementRecord(
            kind=MeasurementKind.APP_RTT,
            rtt_ms=rtt_ms,
            timestamp_ms=self.sim.now,
            app_package=client.app_package,
            app_uid=client.app_uid,
            dst_ip=client.four_tuple[2],
            dst_port=client.four_tuple[3],
            domain=self.domain_of_ip.get(client.four_tuple[2]),
            network_type=link.network_type,
            operator=link.operator,
            device_id=self.device.model))

    def record_tcp_failure(self, client: TcpClient,
                           failure: str) -> None:
        """The external connect() failed: persist the failure kind and
        the time-to-failure (in rtt_ms) so diagnosis can tell refused
        from timed-out from unreachable destinations."""
        link = self.device.link
        started = client.connect_started_at
        elapsed = (self.sim.now - started
                   if started is not None else 0.0)
        self.store.add(MeasurementRecord(
            kind=MeasurementKind.TCP,
            rtt_ms=max(0.0, elapsed),
            timestamp_ms=self.sim.now,
            app_package=client.app_package,
            app_uid=client.app_uid,
            dst_ip=client.four_tuple[2],
            dst_port=client.four_tuple[3],
            domain=self.domain_of_ip.get(client.four_tuple[2]),
            network_type=link.network_type,
            operator=link.operator,
            device_id=self.device.model,
            failure=failure))

    def record_flow(self, client: TcpClient) -> None:
        """Beyond-RTT metrics: per-connection traffic summary."""
        flow = FlowRecord(
            app_package=client.app_package,
            dst_ip=client.four_tuple[2],
            dst_port=client.four_tuple[3],
            domain=self.domain_of_ip.get(client.four_tuple[2]),
            bytes_up=client.bytes_up,
            bytes_down=client.bytes_down,
            opened_at_ms=client.opened_at,
            duration_ms=self.sim.now - client.opened_at)
        self.flows.append(flow)
        if self.modalities:
            self._record_modalities(client, flow)

    def _record_modalities(self, client: TcpClient,
                           flow: FlowRecord) -> None:
        """Emit the flow's throughput and energy modality records.

        ``rtt_ms`` carries the sample value: bytes moved per
        millisecond of flow lifetime (== KB/s) for the per-direction
        throughput kinds, attributed millijoules for ENERGY.  Energy
        joins the relay's byte counters against the battery constants
        and -- when the device link is RRC-aware -- the promotions the
        flow triggered (see repro.phone.battery.flow_energy_mj).
        """
        from repro.phone.battery import flow_energy_mj
        link = self.device.link
        now = self.sim.now
        common = dict(
            timestamp_ms=now,
            app_package=client.app_package,
            app_uid=client.app_uid,
            dst_ip=client.four_tuple[2],
            dst_port=client.four_tuple[3],
            domain=flow.domain,
            network_type=link.network_type,
            operator=link.operator,
            device_id=self.device.model)
        if flow.duration_ms > 0:
            if flow.bytes_up:
                self.store.add(MeasurementRecord(
                    kind=MeasurementKind.TPUT_UP,
                    rtt_ms=flow.bytes_up / flow.duration_ms,
                    **common))
            if flow.bytes_down:
                self.store.add(MeasurementRecord(
                    kind=MeasurementKind.TPUT_DOWN,
                    rtt_ms=flow.bytes_down / flow.duration_ms,
                    **common))
        promos_full = promos_partial = 0
        machine = getattr(link, "machine", None)
        if machine is not None and \
                client.rrc_promos_at_open is not None:
            full_at_open, partial_at_open = client.rrc_promos_at_open
            promos_full = max(0, machine.promotions_full - full_at_open)
            promos_partial = max(
                0, machine.promotions_partial - partial_at_open)
        energy = flow_energy_mj(
            link.network_type, flow.total_bytes,
            duration_ms=flow.duration_ms,
            promotions_full=promos_full,
            promotions_partial=promos_partial)
        if energy > 0:
            self.store.add(MeasurementRecord(
                kind=MeasurementKind.ENERGY, rtt_ms=energy, **common))

    def record_dns(self, rtt_ms: float, server_ip: str,
                   domain: Optional[str]) -> None:
        link = self.device.link
        self.store.add(MeasurementRecord(
            kind=MeasurementKind.DNS,
            rtt_ms=rtt_ms,
            timestamp_ms=self.sim.now,
            dst_ip=server_ip,
            dst_port=53,
            domain=domain,
            network_type=link.network_type,
            operator=link.operator,
            device_id=self.device.model))

    def record_dns_failure(self, elapsed_ms: float, server_ip: str,
                           domain: Optional[str]) -> None:
        """A relayed DNS query got no reply within the relay deadline:
        persist a timeout-tagged DNS record (rtt_ms = time waited)."""
        link = self.device.link
        self.store.add(MeasurementRecord(
            kind=MeasurementKind.DNS,
            rtt_ms=max(0.0, elapsed_ms),
            timestamp_ms=self.sim.now,
            dst_ip=server_ip,
            dst_port=53,
            domain=domain,
            network_type=link.network_type,
            operator=link.operator,
            device_id=self.device.model,
            failure=FailureKind.TIMEOUT))

    # -- resource accounting (Table 4) ----------------------------------------------------
    def cpu_utilisation(self) -> float:
        elapsed = self.sim.now - (self.started_at or 0.0)
        busy = (self.device.cpu.total("mopeye")
                + self.device.cpu.total("vpn")
                + self.device.cpu.total("selector")
                + self.device.cpu.total("inspection"))
        return busy / elapsed if elapsed > 0 else 0.0

    def memory_bytes(self) -> int:
        return (self.config.base_memory_bytes
                + len(self.clients)
                * self.config.per_connection_buffer_bytes)
