"""TunReader: zero-delay packet retrieval from the VPN tunnel (§3.1).

Three retrieval modes:

* **blocking** -- the paper's design.  The tun fd is switched to
  blocking mode (via the SDK API on Android 5.0+, via the
  ``IoUtils.setBlocking`` reflection shim below 5.0) and a dedicated
  thread sits in ``read()``.  Retrieval delay is zero, CPU is idle when
  there is no traffic, but the thread can only be stopped by pushing a
  dummy packet through the tunnel.
* **sleep** -- ToyVpn (100 ms) / PrivacyGuard (20 ms): poll, then sleep
  a fixed interval.  Retrieval delay averages half the interval.
* **adaptive** -- ToyVpn's "intelligent" variant, also Haystack's:
  shrink the interval on consecutive reads, grow it when idle.
"""

from __future__ import annotations

from repro.phone.tun import TunError
from repro.sim.queues import BlockingQueue


class TunReader:
    def __init__(self, service):
        self.service = service
        self.device = service.device
        self.sim = service.sim
        self.config = service.config
        self.obs = service.obs
        self.read_queue = BlockingQueue(self.sim, name="tun-read-queue")
        self.running = False

    # Registry-backed views of the paper's §3.1 ablation counters.
    @property
    def packets_read(self) -> int:
        return int(self.obs.value("tun_reader.packets_read"))

    @property
    def poll_rounds(self) -> int:
        return int(self.obs.value("tun_reader.poll_rounds"))

    @property
    def empty_polls(self) -> int:
        return int(self.obs.value("tun_reader.empty_polls"))

    def configure_blocking_mode(self) -> str:
        """Switch the tun fd to blocking mode using the best mechanism
        the device's Android version offers; returns which one."""
        tun = self.service.tun
        if self.device.sdk >= tun.BLOCKING_API_MIN_SDK:
            tun.set_blocking_via_api(True)
            return "api"
        # Pre-5.0: the public API cannot do it -- use the reflection
        # shim (fcntl at the native level would work identically).
        tun.set_blocking_via_reflection(True)
        return "reflection"

    def run(self):
        """Generator: the TunReader thread body."""
        self.running = True
        if self.config.tun_read_mode == "blocking":
            yield from self._run_blocking()
        else:
            yield from self._run_polling()

    def _enqueue(self, packet) -> None:
        self.obs.inc("tun_reader.packets_read")
        cost = self.device.costs.enqueue.sample()
        self.device.cpu.charge("mopeye.tunreader", cost)
        self.read_queue.put(packet)
        # Section 3.2: wake MainWorker's selector so one thread can
        # monitor sockets and the tunnel queue together.
        self.service.selector.wakeup()

    def _run_blocking(self):
        self.configure_blocking_mode()
        tun = self.service.tun
        while self.running:
            span = self.obs.start_span("tun_reader.read")
            started = self.sim.now
            try:
                packet = yield tun.read()
            except TunError:
                self.obs.end_span(span, outcome="fd_closed")
                return  # fd closed
            self.obs.observe("tun_reader.read_wait_ms",
                             self.sim.now - started)
            self.obs.end_span(span, outcome="packet")
            cost = self.device.costs.tun_read_syscall.sample()
            yield self.device.busy(cost, "mopeye.tunreader")
            if not self.running:
                # Released by the dummy packet; drop it and exit.
                return
            self._enqueue(packet)

    def _run_polling(self):
        tun = self.service.tun
        adaptive = self.config.tun_read_mode == "adaptive"
        interval = (self.config.adaptive_min_sleep_ms if adaptive
                    else self.config.tun_read_sleep_ms)
        while self.running:
            self.obs.inc("tun_reader.poll_rounds")
            cost = self.device.costs.tun_read_syscall.sample()
            yield self.device.busy(cost, "mopeye.tunreader")
            try:
                packet = tun.try_read()
            except TunError:
                return
            if packet is not None:
                self._enqueue(packet)
                if adaptive:
                    interval = self.config.adaptive_min_sleep_ms
                if self.config.poll_one_per_interval:
                    # Haystack-style: one read per poll interval.
                    yield self.sim.timeout(interval)
                # Otherwise keep draining while packets flow.
                continue
            self.obs.inc("tun_reader.empty_polls")
            if adaptive:
                interval = min(interval * 2,
                               self.config.adaptive_max_sleep_ms)
            yield self.sim.timeout(interval)

    def stop(self) -> None:
        self.running = False
