"""Measurement records and the store MopEye uploads from.

A record is one opportunistic RTT sample: a TCP connect measured via
SYN/SYN-ACK, or a DNS query/response pair.  The store doubles as the
schema of the crowdsourcing dataset (section 4.2), so the analysis
pipeline runs identically over live-relay output and synthesised data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Iterator, List, Optional


class MeasurementKind:
    TCP = "TCP"
    DNS = "DNS"
    #: Measurement modalities beyond RTT (docs/MODALITIES.md).  A
    #: throughput sample is per-direction -- bytes moved through the
    #: relay divided by flow duration, in KB/s -- so up and down are
    #: distinct kinds and roll up into distinct histogram rows.
    TPUT_UP = "TPUT_UP"
    TPUT_DOWN = "TPUT_DOWN"
    #: Per-flow energy attribution in millijoules: radio per-byte cost
    #: plus RRC promotion/tail energy (see repro.phone.battery).
    ENERGY = "ENERGY"
    #: Age-of-information: how stale a record was (ms) when the
    #: collector acknowledged it, emitted by the uploader at ACK time.
    AOI = "AOI"

    #: Application-layer RTT: first request byte written to first
    #: response byte read on the relayed connection.  A transparent
    #: split-connection proxy terminates the SYN near the client --
    #: the SYN RTT then measures the middlebox, not the server -- but
    #: the response still has to cross the full path, so SYN-RTT vs
    #: APP_RTT divergence is the middlebox signature
    #: (docs/MIDDLEBOX.md).
    APP_RTT = "APP_RTT"

    #: The post-RTT modalities added by the `repro.modalities` work;
    #: rtt_ms carries the sample value (KB/s, mJ, or ms -- the record
    #: schema stays 14 fields wide so every persisted dataset still
    #: round-trips).
    MODALITIES = (TPUT_UP, TPUT_DOWN, ENERGY, AOI)

    ALL = (TCP, DNS) + MODALITIES + (APP_RTT,)


class FailureKind:
    """Why a measured connect/query produced no RTT sample.

    ``timeout``: SYN retransmissions exhausted, or no DNS reply within
    the relay deadline.  ``refused``: the peer answered the SYN with
    RST.  ``unreachable``: the network reported no route to the
    destination.
    """

    TIMEOUT = "timeout"
    REFUSED = "refused"
    UNREACHABLE = "unreachable"

    ALL = (TIMEOUT, REFUSED, UNREACHABLE)


@dataclass(frozen=True)
class MeasurementRecord:
    kind: str                  # MeasurementKind
    rtt_ms: float
    timestamp_ms: float
    app_package: Optional[str] = None
    app_uid: Optional[int] = None
    dst_ip: str = ""
    dst_port: int = 0
    domain: Optional[str] = None
    network_type: str = "WIFI"
    operator: str = "unknown"
    country: str = "unknown"
    device_id: str = "local"
    #: None for a successful RTT sample; a FailureKind string when the
    #: connect/query failed (rtt_ms then holds the time-to-failure).
    failure: Optional[str] = None
    location: Optional[tuple] = None  # (lat, lon)

    def __post_init__(self):
        if self.rtt_ms < 0:
            raise ValueError("negative RTT %r" % self.rtt_ms)
        if self.kind not in MeasurementKind.ALL:
            raise ValueError("unknown measurement kind %r" % self.kind)
        if self.failure is not None and \
                self.failure not in FailureKind.ALL:
            raise ValueError("unknown failure kind %r" % self.failure)


@dataclass(frozen=True)
class FlowRecord:
    """Per-connection traffic summary -- the paper's "more metrics
    beyond RTT" future work: upload/download volume and flow duration
    per app, collected from the relay's own byte counters."""

    app_package: Optional[str]
    dst_ip: str
    dst_port: int
    domain: Optional[str]
    bytes_up: int
    bytes_down: int
    opened_at_ms: float
    duration_ms: float

    @property
    def total_bytes(self) -> int:
        return self.bytes_up + self.bytes_down

    def throughput_mbps(self) -> float:
        if self.duration_ms <= 0:
            return 0.0
        return (self.total_bytes * 8) / (self.duration_ms * 1000.0)


class MeasurementStore:
    """An appendable collection of records with the query helpers the
    analysis layer uses."""

    def __init__(self) -> None:
        self._records: List[MeasurementRecord] = []

    def add(self, record: MeasurementRecord) -> None:
        self._records.append(record)

    def extend(self, records: Iterable[MeasurementRecord]) -> None:
        self._records.extend(records)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[MeasurementRecord]:
        return iter(self._records)

    def since(self, index: int) -> List[MeasurementRecord]:
        """Records appended at or after ``index`` -- an O(tail) view
        for incremental consumers (the uploader's cursor), instead of
        copying the whole store every poll."""
        return self._records[index:]

    # -- filtering ----------------------------------------------------------
    def filter(self, predicate: Callable[[MeasurementRecord], bool]
               ) -> "MeasurementStore":
        out = MeasurementStore()
        out._records = [r for r in self._records if predicate(r)]
        return out

    def tcp(self) -> "MeasurementStore":
        """Successful TCP samples only: failure records carry a
        time-to-failure, not an RTT, and would poison every median."""
        return self.filter(lambda r: r.kind == MeasurementKind.TCP
                           and r.failure is None)

    def dns(self) -> "MeasurementStore":
        return self.filter(lambda r: r.kind == MeasurementKind.DNS
                           and r.failure is None)

    def failures(self, kind: Optional[str] = None) -> "MeasurementStore":
        """Failure-tagged records, optionally one FailureKind only."""
        if kind is None:
            return self.filter(lambda r: r.failure is not None)
        return self.filter(lambda r: r.failure == kind)

    def for_app(self, package: str) -> "MeasurementStore":
        return self.filter(lambda r: r.app_package == package)

    def for_network_type(self, *types: str) -> "MeasurementStore":
        wanted = set(types)
        return self.filter(lambda r: r.network_type in wanted)

    def for_operator(self, operator: str) -> "MeasurementStore":
        return self.filter(lambda r: r.operator == operator)

    def for_domain_suffix(self, suffix: str) -> "MeasurementStore":
        suffix = suffix.lstrip("*").lstrip(".")
        return self.filter(
            lambda r: r.domain is not None
            and (r.domain == suffix or r.domain.endswith("." + suffix)))

    # -- aggregates -----------------------------------------------------------
    def rtts(self) -> List[float]:
        return [r.rtt_ms for r in self._records]

    def group_by(self, key: Callable[[MeasurementRecord], object]
                 ) -> Dict[object, "MeasurementStore"]:
        groups: Dict[object, MeasurementStore] = {}
        for record in self._records:
            groups.setdefault(key(record), MeasurementStore()).add(record)
        return groups

    def by_app(self) -> Dict[Optional[str], "MeasurementStore"]:
        return self.group_by(lambda r: r.app_package)

    def by_operator(self) -> Dict[str, "MeasurementStore"]:
        return self.group_by(lambda r: r.operator)

    def by_domain(self) -> Dict[Optional[str], "MeasurementStore"]:
        return self.group_by(lambda r: r.domain)

    def by_device(self) -> Dict[str, "MeasurementStore"]:
        return self.group_by(lambda r: r.device_id)

    def unique(self, key: Callable[[MeasurementRecord], object]) -> set:
        return {key(r) for r in self._records}
