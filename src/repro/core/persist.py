"""Dataset persistence: export/import measurement stores.

The crowdsourced dataset outlives any single process, so the store
round-trips through JSON-lines (schema-preserving) and CSV (for
spreadsheet/pandas consumers).
"""

from __future__ import annotations

import csv
import json
from typing import Optional

from repro.core.records import MeasurementRecord, MeasurementStore

_FIELDS = ["kind", "rtt_ms", "timestamp_ms", "app_package", "app_uid",
           "dst_ip", "dst_port", "domain", "network_type", "operator",
           "country", "device_id", "location"]


def _record_to_dict(record: MeasurementRecord) -> dict:
    out = {field: getattr(record, field) for field in _FIELDS}
    if record.location is not None:
        out["location"] = [record.location[0], record.location[1]]
    return out


def _record_from_dict(data: dict) -> MeasurementRecord:
    location = data.get("location")
    if location is not None:
        location = (float(location[0]), float(location[1]))
    return MeasurementRecord(
        kind=data["kind"],
        rtt_ms=float(data["rtt_ms"]),
        timestamp_ms=float(data["timestamp_ms"]),
        app_package=data.get("app_package") or None,
        app_uid=(int(data["app_uid"])
                 if data.get("app_uid") not in (None, "") else None),
        dst_ip=data.get("dst_ip", ""),
        dst_port=int(data.get("dst_port") or 0),
        domain=data.get("domain") or None,
        network_type=data.get("network_type", "WIFI"),
        operator=data.get("operator", "unknown"),
        country=data.get("country", "unknown"),
        device_id=data.get("device_id", "local"),
        location=location)


def save_jsonl(store: MeasurementStore, path: str) -> int:
    """Write one JSON object per line; returns the record count."""
    count = 0
    with open(path, "w") as handle:
        for record in store:
            handle.write(json.dumps(_record_to_dict(record)) + "\n")
            count += 1
    return count


def load_jsonl(path: str,
               store: Optional[MeasurementStore] = None
               ) -> MeasurementStore:
    store = store or MeasurementStore()
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                store.add(_record_from_dict(json.loads(line)))
    return store


def save_csv(store: MeasurementStore, path: str) -> int:
    count = 0
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(_FIELDS[:-1] + ["lat", "lon"])
        for record in store:
            row = [getattr(record, field) for field in _FIELDS[:-1]]
            if record.location is not None:
                row += [record.location[0], record.location[1]]
            else:
                row += ["", ""]
            writer.writerow(row)
            count += 1
    return count


def load_csv(path: str,
             store: Optional[MeasurementStore] = None
             ) -> MeasurementStore:
    store = store or MeasurementStore()
    with open(path, newline="") as handle:
        for row in csv.DictReader(handle):
            lat, lon = row.pop("lat", ""), row.pop("lon", "")
            if lat and lon:
                row["location"] = [lat, lon]
            else:
                row["location"] = None
            store.add(_record_from_dict(row))
    return store
