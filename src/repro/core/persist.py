"""Dataset persistence: export/import measurement stores.

The crowdsourced dataset outlives any single process, so the store
round-trips through JSON-lines (schema-preserving) and CSV (for
spreadsheet/pandas consumers).  The JSON-lines path also works in a
streaming regime for the sharded full-scale campaign: writers accept
any record iterable, :func:`iter_jsonl` / :func:`iter_jsonl_shards`
yield records lazily, and :func:`save_jsonl_shards` splits a stream
across numbered shard files so no step ever materializes the 5.25 M
record dataset in memory.
"""

from __future__ import annotations

import csv
import glob
import hashlib
import json
import os
from typing import Iterable, Iterator, List, Optional, Sequence, Union

from repro.core.records import (
    MeasurementKind,
    MeasurementRecord,
    MeasurementStore,
)

_FIELDS = ["kind", "rtt_ms", "timestamp_ms", "app_package", "app_uid",
           "dst_ip", "dst_port", "domain", "network_type", "operator",
           "country", "device_id", "failure", "location"]

SHARD_PATTERN = "shard-%05d.jsonl"


def _normalize_kind(kind) -> str:
    """Collapse whatever ``kind`` the caller stored (a plain string, an
    ``Enum`` member, bytes from a wire protocol) onto the canonical
    :class:`MeasurementKind` string, so a round-trip through disk always
    compares equal to the original record."""
    kind = getattr(kind, "value", kind)
    if isinstance(kind, bytes):
        kind = kind.decode("utf-8", "replace")
    kind = str(kind).strip().upper()
    if kind not in MeasurementKind.ALL:
        raise ValueError("unknown measurement kind %r" % kind)
    return kind


def _record_to_dict(record: MeasurementRecord) -> dict:
    # Spelled out (not a getattr loop): this is the sharded campaign's
    # serialization hot path, run 5.25 M times at full scale.
    kind = record.kind
    if kind not in MeasurementKind.ALL:
        kind = _normalize_kind(kind)
    location = record.location
    return {
        "kind": kind,
        "rtt_ms": record.rtt_ms,
        "timestamp_ms": record.timestamp_ms,
        "app_package": record.app_package,
        "app_uid": record.app_uid,
        "dst_ip": record.dst_ip,
        "dst_port": record.dst_port,
        "domain": record.domain,
        "network_type": record.network_type,
        "operator": record.operator,
        "country": record.country,
        "device_id": record.device_id,
        "failure": record.failure,
        "location": (None if location is None
                     else [location[0], location[1]]),
    }


def _record_from_dict(data: dict) -> MeasurementRecord:
    location = data.get("location")
    if location is not None:
        location = (float(location[0]), float(location[1]))
    return MeasurementRecord(
        kind=_normalize_kind(data["kind"]),
        rtt_ms=float(data["rtt_ms"]),
        timestamp_ms=float(data["timestamp_ms"]),
        app_package=data.get("app_package") or None,
        app_uid=(int(data["app_uid"])
                 if data.get("app_uid") not in (None, "") else None),
        dst_ip=data.get("dst_ip", ""),
        dst_port=int(data.get("dst_port") or 0),
        domain=data.get("domain") or None,
        network_type=data.get("network_type", "WIFI"),
        operator=data.get("operator", "unknown"),
        country=data.get("country", "unknown"),
        device_id=data.get("device_id", "local"),
        failure=data.get("failure") or None,
        location=location)


def record_to_line(record: MeasurementRecord) -> str:
    """The canonical one-line JSON serialization (no trailing newline).
    Canonical means byte-stable: the same record always serializes to
    the same bytes, which is what shard digests compare."""
    return json.dumps(_record_to_dict(record))


def save_jsonl(records: Union[MeasurementStore,
                              Iterable[MeasurementRecord]],
               path: str) -> int:
    """Write one JSON object per line; returns the record count.
    Accepts a store or any record iterable (streaming-friendly)."""
    count = 0
    with open(path, "w") as handle:
        for record in records:
            handle.write(record_to_line(record) + "\n")
            count += 1
    return count


def iter_jsonl(path: str) -> Iterator[MeasurementRecord]:
    """Stream records from a JSON-lines file without loading it."""
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                yield _record_from_dict(json.loads(line))


def load_jsonl(path: str,
               store: Optional[MeasurementStore] = None
               ) -> MeasurementStore:
    store = store or MeasurementStore()
    for record in iter_jsonl(path):
        store.add(record)
    return store


# -- sharded JSON-lines ------------------------------------------------------

def shard_path(directory: str, index: int) -> str:
    return os.path.join(directory, SHARD_PATTERN % index)


def list_shards(directory: str) -> List[str]:
    """Shard files under ``directory`` in shard-index order."""
    return sorted(glob.glob(os.path.join(directory, "shard-*.jsonl")))


def save_jsonl_shards(records: Iterable[MeasurementRecord],
                      directory: str,
                      shard_size: int = 500_000) -> List[str]:
    """Split a record stream across numbered shard files of at most
    ``shard_size`` records each; returns the shard paths in order."""
    if shard_size <= 0:
        raise ValueError("shard_size must be positive")
    os.makedirs(directory, exist_ok=True)
    paths: List[str] = []
    handle = None
    in_shard = 0
    try:
        for record in records:
            if handle is None or in_shard >= shard_size:
                if handle is not None:
                    handle.close()
                paths.append(shard_path(directory, len(paths)))
                handle = open(paths[-1], "w")
                in_shard = 0
            handle.write(record_to_line(record) + "\n")
            in_shard += 1
    finally:
        if handle is not None:
            handle.close()
    if not paths:
        # An empty dataset still yields one (empty) shard so readers
        # have something to open.
        paths.append(shard_path(directory, 0))
        open(paths[0], "w").close()
    return paths


def iter_jsonl_shards(shards: Union[str, Sequence[str]]
                      ) -> Iterator[MeasurementRecord]:
    """Stream records from shard files in order.  ``shards`` is either
    a directory (all ``shard-*.jsonl`` inside, sorted) or an explicit
    path sequence."""
    paths = list_shards(shards) if isinstance(shards, str) else shards
    for path in paths:
        yield from iter_jsonl(path)


def dataset_digest(shards: Union[str, Sequence[str]]) -> str:
    """SHA-256 over the concatenated shard bytes, in shard order.  Two
    runs produced the same dataset iff their digests match -- the
    property the determinism suite asserts across worker counts and
    ``PYTHONHASHSEED`` values."""
    paths = list_shards(shards) if isinstance(shards, str) else shards
    digest = hashlib.sha256()
    for path in paths:
        with open(path, "rb") as handle:
            for chunk in iter(lambda: handle.read(1 << 20), b""):
                digest.update(chunk)
    return digest.hexdigest()


def merge_shards(shards: Union[str, Sequence[str]],
                 out_path: str) -> int:
    """Concatenate shard files (in shard order) into one JSON-lines
    dataset; returns the merged record count.  Byte concatenation keeps
    the merge deterministic and independent of worker scheduling."""
    paths = list_shards(shards) if isinstance(shards, str) else shards
    count = 0
    with open(out_path, "wb") as out:
        for path in paths:
            with open(path, "rb") as handle:
                for chunk in iter(lambda: handle.read(1 << 20), b""):
                    count += chunk.count(b"\n")
                    out.write(chunk)
    return count


def save_csv(store: Union[MeasurementStore,
                          Iterable[MeasurementRecord]],
             path: str) -> int:
    count = 0
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(_FIELDS[:-1] + ["lat", "lon"])
        for record in store:
            row = [getattr(record, field) for field in _FIELDS[:-1]]
            row[0] = _normalize_kind(record.kind)
            if record.location is not None:
                row += [record.location[0], record.location[1]]
            else:
                row += ["", ""]
            writer.writerow(row)
            count += 1
    return count


def load_csv(path: str,
             store: Optional[MeasurementStore] = None
             ) -> MeasurementStore:
    store = store or MeasurementStore()
    with open(path, newline="") as handle:
        for row in csv.DictReader(handle):
            lat, lon = row.pop("lat", ""), row.pop("lon", "")
            if lat and lon:
                row["location"] = [lat, lon]
            else:
                row["location"] = None
            store.add(_record_from_dict(row))
    return store
