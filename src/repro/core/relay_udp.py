"""UDP relay and DNS measurement (section 2.4).

Every UDP packet from the tunnel is relayed; only DNS (port 53) is
measured.  The whole DNS processing -- parsing, socket initialisation,
send, blocking receive -- runs in a temporary thread so it never blocks
MainWorker, and the RTT is the time between the ``send()`` and
``receive()`` socket calls, timestamped immediately around them.

The relay also learns domain -> address bindings from the answers it
forwards, which is how TCP measurements get their ``domain`` label.
"""

from __future__ import annotations

from repro.core.records import MeasurementKind, MeasurementRecord
from repro.netstack.dns import DNSMessage, QTYPE_A
from repro.netstack.ip import IPPacket, PROTO_UDP
from repro.netstack.udp_datagram import UDPDatagram
from repro.sim.kernel import AnyOf

_UDP_REPLY_TIMEOUT_MS = 5000.0


class UdpRelay:
    def __init__(self, service):
        self.service = service
        self.device = service.device
        self.sim = service.sim
        self.obs = service.obs

    # Registry-backed views.
    @property
    def relayed(self) -> int:
        return int(self.obs.value("udp_relay.replies"))

    @property
    def dns_measured(self) -> int:
        return int(self.obs.value("udp_relay.dns_measured"))

    @property
    def timeouts(self) -> int:
        return int(self.obs.value("udp_relay.timeouts"))

    def relay_thread(self, packet: IPPacket, datagram: UDPDatagram):
        """Generator: the temporary per-query relay thread."""
        service = self.service
        costs = self.device.costs
        # Count the captured datagram itself: the TCP path counts every
        # packet it touches, the UDP path historically counted none.
        self.obs.inc("udp_relay.datagrams")
        self.obs.inc("udp_relay.bytes_up", len(datagram.payload))
        span = self.obs.start_span("udp_relay.relay",
                                   dst_port=datagram.dst_port)
        is_dns = datagram.dst_port == 53 and service.config.measure_dns
        if is_dns:
            yield self.device.busy(costs.dns_parse.sample(), "mopeye.dns")
        yield self.device.busy(costs.dns_socket_init.sample(),
                               "mopeye.dns")
        socket = self.device.create_udp_socket(service.uid)
        if service.per_socket_protect:
            yield service.vpn.protect(socket)
        start = costs.quantize_nano(self.sim.now)
        socket.sendto(datagram.payload, packet.dst_str, datagram.dst_port)
        reply = socket.recvfrom()
        timer = self.sim.timeout(_UDP_REPLY_TIMEOUT_MS)
        yield AnyOf(self.sim, [reply, timer])
        if not reply.triggered:
            socket.close()
            self.obs.inc("udp_relay.timeouts")
            if is_dns:
                # Persist the missing answer as a timeout-tagged DNS
                # record: a resolver outage is measurement evidence,
                # not just a dropped sample.
                end = costs.quantize_nano(self.sim.now)
                service.record_dns_failure(
                    end - start, packet.dst_str,
                    self._query_name(datagram.payload))
            self.obs.end_span(span, outcome="timeout")
            return
        end = costs.quantize_nano(self.sim.now)
        payload, (src_ip, src_port) = reply.value
        socket.close()
        self.obs.inc("udp_relay.replies")
        self.obs.inc("udp_relay.bytes_down", len(payload))
        domain = None
        if is_dns:
            domain = self._learn_bindings(payload)
            self.obs.inc("udp_relay.dns_measured")
            service.record_dns(end - start, packet.dst_str, domain)
        # Forward the reply into the tunnel (server -> app direction).
        response = UDPDatagram(datagram.dst_port, datagram.src_port,
                               payload)
        out = IPPacket(packet.dst_str, packet.src_str, PROTO_UDP,
                       response.encode(packet.dst_str, packet.src_str))
        yield from service.emit_packet(out)
        self.obs.end_span(span, rtt_ms=(end - start) if is_dns else None)

    @staticmethod
    def _query_name(payload: bytes):
        """The question name of an outgoing DNS query (best effort)."""
        try:
            message = DNSMessage.decode(payload)
        except Exception:
            return None
        return (message.questions[0].name
                if message.questions else None)

    def _learn_bindings(self, payload: bytes):
        """Record domain -> IP bindings from a DNS answer so later TCP
        measurements can be labelled with the server domain."""
        try:
            message = DNSMessage.decode(payload)
        except Exception:
            return None
        domain = (message.questions[0].name
                  if message.questions else None)
        for answer in message.answers:
            if answer.rtype == QTYPE_A:
                try:
                    self.service.domain_of_ip[answer.address] = \
                        answer.name if not domain else domain
                except Exception:
                    continue
        return domain
