"""UDP relay and DNS measurement (section 2.4).

Every UDP packet from the tunnel is relayed; only DNS (port 53) is
measured.  The whole DNS processing -- parsing, socket initialisation,
send, blocking receive -- runs in a temporary thread so it never blocks
MainWorker, and the RTT is the time between the ``send()`` and
``receive()`` socket calls, timestamped immediately around them.

The relay also learns domain -> address bindings from the answers it
forwards, which is how TCP measurements get their ``domain`` label.
"""

from __future__ import annotations

from repro.core.records import MeasurementKind, MeasurementRecord
from repro.netstack.dns import DNSMessage, QTYPE_A
from repro.netstack.ip import IPPacket, PROTO_UDP
from repro.netstack.udp_datagram import UDPDatagram
from repro.sim.kernel import AnyOf

_UDP_REPLY_TIMEOUT_MS = 5000.0


class UdpRelay:
    def __init__(self, service):
        self.service = service
        self.device = service.device
        self.sim = service.sim
        self.relayed = 0
        self.dns_measured = 0
        self.timeouts = 0

    def relay_thread(self, packet: IPPacket, datagram: UDPDatagram):
        """Generator: the temporary per-query relay thread."""
        service = self.service
        costs = self.device.costs
        is_dns = datagram.dst_port == 53 and service.config.measure_dns
        if is_dns:
            yield self.device.busy(costs.dns_parse.sample(), "mopeye.dns")
        yield self.device.busy(costs.dns_socket_init.sample(),
                               "mopeye.dns")
        socket = self.device.create_udp_socket(service.uid)
        if service.per_socket_protect:
            yield service.vpn.protect(socket)
        start = costs.quantize_nano(self.sim.now)
        socket.sendto(datagram.payload, packet.dst_str, datagram.dst_port)
        reply = socket.recvfrom()
        timer = self.sim.timeout(_UDP_REPLY_TIMEOUT_MS)
        yield AnyOf(self.sim, [reply, timer])
        if not reply.triggered:
            socket.close()
            self.timeouts += 1
            return
        end = costs.quantize_nano(self.sim.now)
        payload, (src_ip, src_port) = reply.value
        socket.close()
        self.relayed += 1
        domain = None
        if is_dns:
            domain = self._learn_bindings(payload)
            self.dns_measured += 1
            service.record_dns(end - start, packet.dst_str, domain)
        # Forward the reply into the tunnel (server -> app direction).
        response = UDPDatagram(datagram.dst_port, datagram.src_port,
                               payload)
        out = IPPacket(packet.dst_str, packet.src_str, PROTO_UDP,
                       response.encode(packet.dst_str, packet.src_str))
        yield from service.emit_packet(out)

    def _learn_bindings(self, payload: bytes):
        """Record domain -> IP bindings from a DNS answer so later TCP
        measurements can be labelled with the server domain."""
        try:
            message = DNSMessage.decode(payload)
        except Exception:
            return None
        domain = (message.questions[0].name
                  if message.questions else None)
        for answer in message.answers:
            if answer.rtype == QTYPE_A:
                try:
                    self.service.domain_of_ip[answer.address] = \
                        answer.name if not domain else domain
                except Exception:
                    continue
        return domain
