"""TCP relay: splicing tunnel connections to external sockets (§2.3).

Each app connection becomes a :class:`TcpClient`: a user-space TCP state
machine terminating the internal (tunnel) side, two-way referenced with
a ``SocketChannel`` for the external side.  The temporary
*socket-connect thread* (section 2.4) performs the blocking external
``connect()`` -- whose duration *is* the RTT measurement -- then the
lazy packet-to-app mapping, then completes the internal handshake.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.core.records import (
    FailureKind,
    MeasurementKind,
    MeasurementRecord,
)
from repro.netstack.tcp_segment import TCPSegment
from repro.netstack.tcp_state import TCPState, TCPStateMachine
from repro.phone.ktcp import (
    ConnectionRefused,
    ConnectTimeout,
    NetworkUnreachable,
)
from repro.phone.nio import OP_READ, OP_WRITE, SocketChannel

FourTuple = Tuple[str, int, str, int]

# Exception -> FailureKind on the persisted failure record.
_FAILURE_KINDS = {
    ConnectionRefused: FailureKind.REFUSED,
    ConnectTimeout: FailureKind.TIMEOUT,
    NetworkUnreachable: FailureKind.UNREACHABLE,
}


class TcpClient:
    """One spliced connection: state machine <-> socket channel."""

    def __init__(self, service, four_tuple: FourTuple,
                 syn: TCPSegment):
        self.service = service
        self.device = service.device
        self.sim = service.sim
        self.four_tuple = four_tuple
        local_ip, local_port, remote_ip, remote_port = four_tuple
        self.machine = TCPStateMachine(
            local_ip, local_port, remote_ip, remote_port,
            isn=self.device.rng.randrange(1 << 32),
            mss=service.config.mss, window=service.config.window)
        self.machine.on_syn(syn)
        self.channel = SocketChannel(self.device, service.uid,
                                     protected=False)
        # Two-way referencing (section 2.3).
        self.channel.client = self
        self.rtt_ms: Optional[float] = None
        self.connect_started_at: Optional[float] = None
        self.app_uid: Optional[int] = None
        self.app_package: Optional[str] = None
        self.registered = False
        self.finished = False
        # Beyond-RTT metrics: relayed byte counters per direction.
        self.opened_at = self.sim.now
        self.bytes_up = 0
        self.bytes_down = 0
        # App-layer RTT (docs/MIDDLEBOX.md): first request byte out to
        # first response byte in.  Unlike the SYN RTT this spans the
        # full path even behind a split-connection proxy.
        self.first_request_at: Optional[float] = None
        self.app_rtt_recorded = False
        # RRC promotion counts at flow open (RrcAwareLink only):
        # record_flow charges this flow the promotions that happened
        # during its lifetime when attributing energy.
        machine = getattr(service.device.link, "machine", None)
        self.rrc_promos_at_open = (
            (machine.promotions_full, machine.promotions_partial)
            if machine is not None else None)
        # Socket write buffer (section 2.3): tunnel data is buffered
        # here and a write event is triggered for the socket instance.
        self.write_buffer = bytearray()
        self.half_close_pending = False

    # -- the temporary socket-connect thread (sections 2.4, 3.3) -----------
    def socket_connect_thread(self):
        service = self.service
        costs = self.device.costs
        yield self.device.busy(costs.thread_spawn.sample(),
                               "mopeye.connect")
        if service.per_socket_protect:
            # Pre-5.0 path: protect each socket before connecting
            # (section 3.5.2 mitigation -- only the SYN is affected).
            yield service.vpn.protect(self.channel.socket)
        yield self.device.busy(costs.socket_create.sample(),
                               "mopeye.connect")
        dst_ip, dst_port = self.four_tuple[2], self.four_tuple[3]
        # Timestamps bracket the connect() call itself (section 4.1.1:
        # "putting the timing function just before and after the socket
        # call"); the syscall's own issue cost is inside the window,
        # which is the sub-millisecond deviation Table 2 reports.
        start = costs.quantize_nano(self.sim.now)
        self.connect_started_at = self.sim.now
        # The span brackets exactly what the timestamps bracket, so a
        # trace replays the Table 2 accuracy argument span by span.
        span = service.obs.start_span("tcp.connect", dst_ip=dst_ip,
                                      dst_port=dst_port)
        try:
            yield self.device.busy(costs.connect_issue.sample(),
                                   "mopeye.connect")
            yield self.channel.connect(dst_ip, dst_port)
        except (ConnectionRefused, ConnectTimeout,
                NetworkUnreachable) as exc:
            service.obs.end_span(span, outcome=type(exc).__name__)
            # External connect failed: persist *why* (timeout vs
            # refused vs unreachable) so diagnosis can tell a dead host
            # from a dead route, then refuse the app with RST.  Map
            # the app first -- a failure record nobody can attribute
            # is useless, and the app is already waiting on a failure,
            # so the lazy-mapping timeliness argument does not apply.
            self.app_uid, self.app_package = yield from \
                service.mapper.map_connection(self.four_tuple)
            service.record_tcp_failure(self, _FAILURE_KINDS[type(exc)])
            yield from service.emit_tunnel_segment(self,
                                                   self.machine.make_rst())
            service.remove_client(self)
            service.obs.inc("relay.connect_failures")
            return
        if service.config.connect_mode == "blocking_thread":
            end = costs.quantize_nano(self.sim.now)
            # A jittered clock (repro.middlebox.imperfect) can stamp
            # the end before the start on a short connect; a negative
            # RTT would be rejected by the record schema.
            self.rtt_ms = max(0.0, end - start)
            service.obs.end_span(span, rtt_ms=self.rtt_ms)
            service.obs.observe("tcp.connect_rtt_ms", self.rtt_ms)
            # Lazy mapping happens only after the connect, so it never
            # delays the app-side handshake (section 3.3).
            yield from self._finish_measurement()
        else:
            # 'selector' ablation: the main worker will observe the
            # completed connect on a later loop and timestamp it there
            # (less accurately).  Nothing more to do here.
            service.obs.end_span(span, outcome="selector_mode")
            service.selector.wakeup()
            return

    def _finish_measurement(self):
        service = self.service
        # Complete the internal handshake first: the app must not wait
        # for mapping or registration (section 3.3: mapping never delays
        # "the timely TCP handshake on the application side").
        syn_ack = self.machine.make_syn_ack()
        yield from service.emit_tunnel_segment(self, syn_ack)
        # register() is expensive, so it also runs in this thread,
        # after the internal handshake is under way (section 3.4).
        yield service.selector.register(self.channel,
                                        OP_READ | OP_WRITE,
                                        attachment=self)
        self.registered = True
        # Deferred packet-to-app mapping (section 3.3), then record.
        self.app_uid, self.app_package = yield from \
            service.mapper.map_connection(self.four_tuple)
        service.record_tcp(self)

    # -- tunnel-side packet processing (section 2.3) -------------------------
    def handle_tunnel_segment(self, segment: TCPSegment):
        """Generator (runs in MainWorker): dispatch one tunnel segment
        according to the RFC 793 processing rules."""
        service = self.service
        machine = self.machine
        if segment.is_rst:
            machine.on_rst(segment)
            self.channel.abort()
            service.remove_client(self)
            return
        if segment.is_fin:
            ack = machine.on_fin(segment)
            yield from service.emit_tunnel_segment(self, ack)
            # Trigger a half-close write event for the socket instance
            # (section 2.3); it runs after any buffered data drains.
            self.half_close_pending = True
            self.channel.request_write()
            return
        if segment.payload:
            data = machine.on_data(segment)
            # Place the data in the socket write buffer and trigger a
            # socket write event (section 2.3); MainWorker handles it
            # via handle_socket_writable.
            self.write_buffer.extend(data)
            self.channel.request_write()
            return
        # Pure ACK (section 2.3: discarded, nothing relayed).
        if machine.state == TCPState.SYN_RECEIVED:
            machine.on_handshake_ack(segment)
        elif machine.fin_sent:
            machine.on_fin_ack(segment)
            if machine.state == TCPState.CLOSED or machine.is_closed:
                self._cleanup()
        service.obs.inc("relay.pure_acks_discarded")

    # -- socket-side events (section 2.3) ----------------------------------------
    def handle_socket_writable(self):
        """Generator (runs in MainWorker): the socket write event --
        flush the write buffer to the server and instruct the state
        machine to ACK the app; or complete a pending half-close."""
        service = self.service
        self.channel.write_requested = False
        if self.write_buffer:
            data = bytes(self.write_buffer)
            self.write_buffer.clear()
            cost = self.device.costs.socket_write.sample()
            yield self.device.busy(cost, "mopeye.worker")
            if service.config.per_packet_inspection_ms:
                packets = max(1, len(data) // self.machine.mss)
                yield self.device.busy(
                    service.config.per_packet_inspection_ms * packets,
                    "inspection")
            if self.bytes_up == 0 and self.first_request_at is None:
                # Timestamp the first request byte the same way the
                # connect() is bracketed (section 4.1.1): just before
                # the write call, through the same quantised clock.
                self.first_request_at = \
                    self.device.costs.quantize_nano(self.sim.now)
            self.bytes_up += len(data)
            service.obs.inc("relay.bytes_up", len(data))
            self.channel.write(data)
            yield from service.emit_tunnel_segment(
                self, self.machine.make_ack())
        if self.half_close_pending:
            # Half-close write event: close the external write side.
            self.half_close_pending = False
            self.channel.shutdown_output()

    def handle_socket_readable(self):
        """Generator (runs in MainWorker): drain the external socket and
        forward toward the app."""
        service = self.service
        cost = self.device.costs.socket_read.sample()
        yield self.device.busy(cost, "mopeye.worker")
        data = self.channel.read_all()
        if data:
            if self.bytes_down == 0 and not self.app_rtt_recorded \
                    and self.first_request_at is not None:
                self.app_rtt_recorded = True
                end = self.device.costs.quantize_nano(self.sim.now)
                service.record_app_rtt(
                    self, max(0.0, end - self.first_request_at))
            self.bytes_down += len(data)
            service.obs.inc("relay.bytes_down", len(data))
            if self.service.config.per_packet_inspection_ms:
                packets = max(1, len(data) // self.machine.mss)
                yield self.device.busy(
                    self.service.config.per_packet_inspection_ms * packets,
                    "inspection")
            for segment in self.machine.deliver(data):
                yield from service.emit_tunnel_segment(self, segment)
        if self.channel.eof and not self.finished:
            yield from self._handle_socket_close()

    def _handle_socket_close(self):
        """Socket close/reset: generate FIN or RST toward the app."""
        service = self.service
        machine = self.machine
        if getattr(self.channel.socket, "reset_received", False):
            if not machine.is_closed:
                yield from service.emit_tunnel_segment(
                    self, machine.make_rst())
            self._cleanup()
            return
        if machine.state in (TCPState.ESTABLISHED, TCPState.CLOSE_WAIT):
            yield from service.emit_tunnel_segment(self,
                                                   machine.make_fin())
        elif machine.is_closed or machine.state == TCPState.CLOSED:
            self._cleanup()

    def _cleanup(self):
        if not self.finished:
            self.finished = True
            self.channel.close()
            self.service.record_flow(self)
            self.service.remove_client(self)

    def __repr__(self) -> str:
        return "<TcpClient %s:%d->%s:%d app=%s>" % (
            self.four_tuple + (self.app_package,))
