#!/usr/bin/env python
"""Check that local markdown links resolve to real files.

Scans the given markdown files (or the repo's standard doc set when
run without arguments) for inline links and verifies every relative
target exists.  External (http/https/mailto) links and pure anchors
are skipped; `path#anchor` checks only the path part.  Exits non-zero
listing every broken link, so CI can gate on it.
"""

from __future__ import annotations

import os
import re
import sys

# [text](target) -- non-greedy, ignores images' leading ! harmlessly.
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_EXTERNAL = ("http://", "https://", "mailto:")

DEFAULT_DOC_SET = ["README.md", "EXPERIMENTS.md", "DESIGN.md",
                   "ROADMAP.md", "docs"]


def iter_markdown_files(paths):
    for path in paths:
        if os.path.isdir(path):
            for entry in sorted(os.listdir(path)):
                if entry.endswith(".md"):
                    yield os.path.join(path, entry)
        elif os.path.exists(path):
            yield path


def check_file(path):
    """Return a list of (line_number, target) broken links."""
    broken = []
    base = os.path.dirname(os.path.abspath(path))
    with open(path, encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, 1):
            for target in _LINK.findall(line):
                if target.startswith(_EXTERNAL) or \
                        target.startswith("#"):
                    continue
                local = target.split("#", 1)[0]
                if not local:
                    continue
                if not os.path.exists(os.path.join(base, local)):
                    broken.append((line_number, target))
    return broken


def main(argv=None) -> int:
    paths = (argv if argv else sys.argv[1:]) or DEFAULT_DOC_SET
    checked = 0
    failures = 0
    for markdown in iter_markdown_files(paths):
        checked += 1
        for line_number, target in check_file(markdown):
            failures += 1
            print("%s:%d: broken link -> %s"
                  % (markdown, line_number, target))
    if not checked:
        print("error: no markdown files found in %s" % paths,
              file=sys.stderr)
        return 2
    print("checked %d markdown file(s): %s"
          % (checked, "%d broken link(s)" % failures if failures
             else "all links resolve"))
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
