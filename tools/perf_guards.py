#!/usr/bin/env python
"""CI performance guards for the ingest, recovery and query paths.

Cheap, binary checks that would have caught regressions this repo
shipped (or could ship) and later had to fix:

* ``scaling``  -- shard-parallel ingest must not be *slower* than
  serial (the old whole-store-pickle merge made 4 workers run at
  0.9x).  Asserts digest parity always, and speedup >= 1.0 when the
  host actually has >= 2 CPUs.
* ``replay``   -- with checkpoints enabled, crash-recovery replay
  work must be bounded by the checkpoint interval, not the run
  length: a 3x longer run must not replay 3x the records, and its
  recovery wall must stay within a small factor of the short run's.
* ``query``    -- zone-map pruning must earn its keep: dashboard
  panels answered through the pruned read path must serialise
  byte-identically to the same panels computed by full table scans
  while reading *strictly fewer* blocks.
* ``cluster``  -- the federated tier's merge must stay a small tax:
  ring-shard the dataset across 3 collectors, ingest each share, and
  the global ``merge_stores`` wall must be < 15% of the total ingest
  wall -- with the merged digest byte-identical to a single collector
  ingesting everything.
* ``modalities`` -- the PR-9 schema widening (throughput/energy/AoI
  tables) must not tax the hot rollup path: a same-host A/B of N
  legacy-kind records vs the same N with a quarter modality records
  must stay within 15% (the line ``BENCH_modalities.json`` records;
  the ``BENCH_backend.json`` rate is printed for context -- absolute
  rec/s is hardware-dependent, so only the ratio is gated).
* ``middlebox`` -- the dual-RTT view (``APP_RTT`` records landing in
  the ``network`` and ``app`` tables next to the SYN RTTs) must not
  tax the hot rollup path either: the same A/B with a quarter
  app-layer RTT records must stay within 15% of the legacy rate
  (the line ``BENCH_middlebox.json`` records).

Run all (the default) or one by name::

    PYTHONPATH=src python tools/perf_guards.py \
        [scaling|replay|query|cluster|modalities|middlebox]

Exit code 0 on pass, 1 on any guard failure.
"""

import json
import os
import sys
import tempfile
import time

SCALE = float(os.environ.get("MOPEYE_GUARD_SCALE", "0.02"))
SEED = 2016
CKPT_INTERVAL = 10_000


def _dataset(root):
    from repro.crowd import CampaignConfig, ShardedCampaign
    campaign = ShardedCampaign(
        config=CampaignConfig(scale=SCALE, seed=SEED),
        workers=2, shard_dir=os.path.join(root, "shards"))
    return campaign.run()


def _fail(message):
    print("GUARD FAIL: %s" % message)
    return 1


def guard_scaling(dataset):
    """1 worker vs 2 workers: identical digest, and on a multi-core
    host the parallel run must not lose to serial."""
    from repro.backend import RollupConfig, ingest_shard_files

    start = time.perf_counter()
    serial = ingest_shard_files(dataset.paths, config=RollupConfig(),
                                workers=1)
    serial_s = time.perf_counter() - start

    report = {}
    start = time.perf_counter()
    parallel = ingest_shard_files(dataset.paths, config=RollupConfig(),
                                  workers=2, report=report)
    parallel_s = time.perf_counter() - start

    speedup = serial_s / parallel_s if parallel_s else 0.0
    cpus = os.cpu_count() or 1
    print("scaling: serial %.2fs, 2 workers %.2fs (speedup %.2fx, "
          "merge %.2fs, mode %s, %d CPUs)"
          % (serial_s, parallel_s, speedup, report["merge_wall_s"],
             report["mode"], cpus))
    if serial.digest() != parallel.digest():
        return _fail("worker count changed the rollup digest")
    if cpus >= 2 and speedup < 1.0:
        return _fail("parallel ingest is slower than serial "
                     "(%.2fx) on a %d-CPU host" % (speedup, cpus))
    if cpus < 2:
        print("scaling: single-CPU host, speedup assertion skipped "
              "(digest parity still enforced)")
    return 0


def guard_replay(dataset):
    """Recovery replay work with checkpoints: bounded by the interval
    for any run length."""
    from repro.core.persist import _record_from_dict
    from repro.obs import Observability
    from repro.store import StoreConfig, StoreEngine

    entries = []
    for path in dataset.paths:
        with open(path, "rb") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    entries.append(
                        (_record_from_dict(json.loads(line)), line))

    walls = []
    failures = 0
    for label, count in (("short", len(entries) // 3),
                         ("long", len(entries))):
        root = tempfile.mkdtemp(prefix="guard-replay-")
        engine = StoreEngine(
            os.path.join(root, "store"),
            config=StoreConfig(
                flush_threshold_records=None,
                checkpoint_interval_records=CKPT_INTERVAL),
            obs=Observability())
        engine.append_entries(entries[:count])
        engine.crash()
        start = time.perf_counter()
        info = engine.recover()
        wall = time.perf_counter() - start
        walls.append(wall)
        print("replay: %-5s run=%d records -> replayed %d "
              "(checkpoint %s) in %.2fs"
              % (label, count, info.wal_records,
                 info.checkpoint_loaded or "-", wall))
        if info.wal_records > CKPT_INTERVAL + 512:
            failures += _fail(
                "replayed %d records; checkpoints every %d should "
                "bound the tail" % (info.wal_records, CKPT_INTERVAL))
        engine.close()
    # Wall-clock bound with generous slack: the long run loads a
    # bigger checkpoint but must not replay proportionally more.
    if walls[1] > 3.0 * walls[0] + 1.0:
        failures += _fail(
            "recovery wall grew with run length (%.2fs -> %.2fs); "
            "replay is not bounded" % (walls[0], walls[1]))
    return failures


def guard_query(dataset):
    """Pruned dashboard panels: byte-identical to full scans, and
    strictly fewer blocks read."""
    from repro.core.persist import _record_from_dict
    from repro.obs import Observability
    from repro.serve import DashboardWorkload, QueryEngine, QueryError
    from repro.store import StoreConfig, StoreEngine

    entries = []
    for path in dataset.paths:
        with open(path, "rb") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    entries.append(
                        (_record_from_dict(json.loads(line)), line))

    root = tempfile.mkdtemp(prefix="guard-query-")
    engine = StoreEngine(
        os.path.join(root, "store"),
        config=StoreConfig(
            flush_threshold_records=max(2_000, len(entries) // 5)),
        obs=Observability())
    engine.append_entries(entries)
    engine.flush()
    segments = len(engine.segment_names())
    view = QueryEngine(engine).snapshot()
    try:
        workload = DashboardWorkload(view, seed=SEED, panels=0)
        try:
            verify = workload.verify_against_scan(sample=8)
        except QueryError as exc:
            return _fail("pruned panel diverged from its full scan: "
                         "%s" % exc)
        print("query: %d panels over %d segments -> pruned read %d "
              "blocks, scan read %d"
              % (verify["panels_checked"], segments,
                 verify["pruned_blocks_read"],
                 verify["scan_blocks_read"]))
        if segments < 2:
            return _fail("guard needs >= 2 segments, got %d"
                         % segments)
        if verify["pruned_blocks_read"] \
                >= verify["scan_blocks_read"]:
            return _fail(
                "pruning read %d blocks, full scans read %d; zone "
                "maps are not pruning"
                % (verify["pruned_blocks_read"],
                   verify["scan_blocks_read"]))
    finally:
        view.close()
        engine.close()
    return 0


def guard_cluster(dataset):
    """Ring-sharded ingest over 3 nodes: global merge digest parity
    with a single collector, and the merge wall bounded."""
    from repro.backend import RollupConfig, ingest_shard_files
    from repro.cluster import HashRing, merge_stores, node_name

    nodes = 3
    ring = HashRing(nodes=[node_name(i) for i in range(nodes)])
    root = tempfile.mkdtemp(prefix="guard-cluster-")
    paths = {node_name(i): os.path.join(root,
                                        "%s.jsonl" % node_name(i))
             for i in range(nodes)}
    handles = {node: open(path, "wb")
               for node, path in paths.items()}
    homes = {}
    try:
        for path in dataset.paths:
            with open(path, "rb") as shard:
                for line in shard:
                    if not line.strip():
                        continue
                    device = json.loads(line)["device_id"]
                    home = homes.get(device)
                    if home is None:
                        home = homes[device] = ring.node_for(device)
                    handles[home].write(line)
    finally:
        for handle in handles.values():
            handle.close()

    node_walls = []
    stores = []
    for i in range(nodes):
        start = time.perf_counter()
        stores.append(ingest_shard_files(
            [paths[node_name(i)]], config=RollupConfig(), workers=1))
        node_walls.append(time.perf_counter() - start)
    start = time.perf_counter()
    merged = merge_stores(stores)
    merge_s = time.perf_counter() - start
    ingest_s = sum(node_walls)

    single = ingest_shard_files(dataset.paths, config=RollupConfig(),
                                workers=1)
    print("cluster: %d nodes ingested %s in %.2fs total, merge %.3fs "
          "(%.1f%% of ingest)"
          % (nodes,
             "/".join("%d" % s.records for s in stores),
             ingest_s, merge_s, 100.0 * merge_s / ingest_s))
    if merged.digest() != single.digest():
        return _fail("merged global rollup digest != single-collector "
                     "digest; the cluster tier perturbed the data")
    if merge_s >= 0.15 * ingest_s:
        return _fail("global merge took %.3fs against %.2fs of ingest "
                     "(>= 15%%); the merge tax regressed"
                     % (merge_s, ingest_s))
    return 0


def guard_modalities(dataset):
    """Widened-schema ingest A/B: legacy kinds only vs a stream with
    a quarter modality records, same count, best of 3 runs each --
    the widened rate must stay within 15% of the legacy rate."""
    del dataset                       # self-contained synthetic A/B
    from repro.backend.rollups import RollupStore
    from repro.core.records import MeasurementKind, MeasurementRecord

    count = int(os.environ.get("MOPEYE_GUARD_MODALITY_RECORDS",
                               "40000"))
    day = 24 * 3600 * 1000.0

    def records(modality_share):
        out = []
        for i in range(count):
            if modality_share and i % modality_share == 0:
                kind = MeasurementKind.MODALITIES[
                    (i // modality_share) % 4]
            elif i % 7 == 0:
                kind = MeasurementKind.DNS
            else:
                kind = MeasurementKind.TCP
            out.append(MeasurementRecord(
                kind=kind, rtt_ms=0.5 + (i % 900) * 1.7,
                timestamp_ms=(i % 40) * day,
                app_package="com.app.%d" % (i % 20),
                domain="d%d.example" % (i % 11),
                network_type="LTE" if i % 3 else "WIFI",
                operator="Op%d" % (i % 5),
                device_id="dev-%d" % (i % 8)))
        return out

    def best_wall(stream):
        walls = []
        store = None
        for _ in range(3):
            store = RollupStore()
            start = time.perf_counter()
            store.add_all(stream)
            walls.append(time.perf_counter() - start)
        return min(walls), store

    legacy_wall, _legacy = best_wall(records(0))
    widened_wall, widened = best_wall(records(4))
    ratio = legacy_wall / widened_wall if widened_wall else 0.0
    baseline = None
    baseline_path = os.path.join(
        os.path.dirname(os.path.abspath(__file__)), os.pardir,
        "benchmarks", "results", "BENCH_backend.json")
    try:
        with open(baseline_path) as handle:
            baseline = json.load(handle).get("records_per_s")
    except (OSError, ValueError):
        pass
    print("modalities: %d records, legacy %.3fs (%.0f rec/s), "
          "widened %.3fs (%.0f rec/s), ratio %.3f%s"
          % (count, legacy_wall, count / legacy_wall,
             widened_wall, count / widened_wall, ratio,
             ", BENCH_backend baseline %.0f rec/s (context only)"
             % baseline if baseline else ""))
    for table in RollupStore.MODALITY_TABLES:
        if not widened.tables[table]:
            return _fail("widened ingest left table %r empty; the "
                         "A/B measured nothing" % table)
    if ratio < 0.85:
        return _fail("widened-schema ingest runs at %.3fx the legacy "
                     "rate (floor 0.85)" % ratio)
    return 0


def guard_middlebox(dataset):
    """App-layer-RTT ingest A/B: legacy kinds only vs a stream with a
    quarter APP_RTT records, same count, best of 3 runs each -- the
    widened rate must stay within 15% of the legacy rate."""
    del dataset                       # self-contained synthetic A/B
    from repro.backend.rollups import RollupStore
    from repro.core.records import MeasurementKind, MeasurementRecord

    count = int(os.environ.get("MOPEYE_GUARD_MIDDLEBOX_RECORDS",
                               "40000"))
    day = 24 * 3600 * 1000.0

    def records(app_rtt_share):
        out = []
        for i in range(count):
            if app_rtt_share and i % app_rtt_share == 0:
                kind = MeasurementKind.APP_RTT
            elif i % 7 == 0:
                kind = MeasurementKind.DNS
            else:
                kind = MeasurementKind.TCP
            out.append(MeasurementRecord(
                kind=kind, rtt_ms=0.5 + (i % 900) * 1.7,
                timestamp_ms=(i % 40) * day,
                app_package="com.app.%d" % (i % 20),
                domain="d%d.example" % (i % 11),
                network_type="LTE" if i % 3 else "WIFI",
                operator="Op%d" % (i % 5),
                device_id="dev-%d" % (i % 8)))
        return out

    def best_wall(stream):
        walls = []
        store = None
        for _ in range(3):
            store = RollupStore()
            start = time.perf_counter()
            store.add_all(stream)
            walls.append(time.perf_counter() - start)
        return min(walls), store

    legacy_wall, _legacy = best_wall(records(0))
    widened_wall, widened = best_wall(records(4))
    ratio = legacy_wall / widened_wall if widened_wall else 0.0
    print("middlebox: %d records, legacy %.3fs (%.0f rec/s), "
          "widened %.3fs (%.0f rec/s), ratio %.3f"
          % (count, legacy_wall, count / legacy_wall,
             widened_wall, count / widened_wall, ratio))
    if not any(key[3] == MeasurementKind.APP_RTT
               for key in widened.tables["network"]):
        return _fail("widened ingest left no APP_RTT rows in the "
                     "network table; the A/B measured nothing")
    if ratio < 0.85:
        return _fail("app-layer-RTT ingest runs at %.3fx the legacy "
                     "rate (floor 0.85)" % ratio)
    return 0


def main(argv):
    which = argv[1] if len(argv) > 1 else "all"
    with tempfile.TemporaryDirectory(prefix="guard-data-") as root:
        dataset = _dataset(root)
        print("dataset: %d records in %d shards (scale %g)"
              % (dataset.total_records, len(dataset.paths), SCALE))
        failures = 0
        if which in ("all", "scaling"):
            failures += guard_scaling(dataset)
        if which in ("all", "replay"):
            failures += guard_replay(dataset)
        if which in ("all", "query"):
            failures += guard_query(dataset)
        if which in ("all", "cluster"):
            failures += guard_cluster(dataset)
        if which in ("all", "modalities"):
            failures += guard_modalities(dataset)
        if which in ("all", "middlebox"):
            failures += guard_middlebox(dataset)
    if failures:
        return 1
    print("perf guards: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
