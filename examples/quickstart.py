#!/usr/bin/env python3
"""Quickstart: opportunistic per-app RTT measurement in 60 lines.

Builds a simulated world (one Android phone on WiFi, an app server and
a DNS resolver), starts MopEye, lets two apps do ordinary traffic, and
prints the measurements MopEye collected -- RTT per app, with domain
attribution, and zero probe packets on the wire.

Run:  python examples/quickstart.py
"""

import random

from repro.baselines import TcpdumpCapture
from repro.core import MopEyeService
from repro.network import AppServer, DnsServer, DnsZone, Internet, wifi_profile
from repro.phone import AndroidDevice, App
from repro.sim import Simulator


def main():
    # -- world -----------------------------------------------------------
    sim = Simulator()
    internet = Internet(sim)
    link = wifi_profile(sim, rng=random.Random(1))
    device = AndroidDevice(sim, internet, link, sdk=23)

    zone = DnsZone()
    zone.add("api.example.com", "93.184.216.34")
    zone.add("cdn.example.com", "198.51.100.7")
    internet.add_server(DnsServer(sim, "8.8.8.8", zone))
    internet.add_server(AppServer(sim, ["93.184.216.34"], name="api"))
    internet.add_server(AppServer(sim, ["198.51.100.7"], name="cdn"))

    # A wire observer so we can prove zero measurement traffic.
    tcpdump = TcpdumpCapture()
    internet.add_tap(tcpdump.tap)

    # -- MopEye ------------------------------------------------------------
    mopeye = MopEyeService(device)
    mopeye.start()

    # -- app traffic ----------------------------------------------------------
    messenger = App(device, "com.example.messenger")
    browser = App(device, "com.example.browser")

    def workload():
        for _ in range(3):
            yield from messenger.resolve_and_request(
                "api.example.com", 443, b"POST /message HTTP/1.1\r\n\r\n")
            yield from browser.resolve_and_request(
                "cdn.example.com", 80, b"GET /page HTTP/1.1\r\n\r\n")
            yield sim.timeout(500.0)

    process = sim.process(workload())
    sim.run(until=60_000)
    assert process.triggered, "workload did not finish"

    # -- results ------------------------------------------------------------------
    print("MopEye collected %d measurements:" % len(mopeye.store))
    for record in mopeye.store:
        print("  %-4s %7.2f ms  app=%-24s dst=%s  domain=%s"
              % (record.kind, record.rtt_ms,
                 record.app_package or "-", record.dst_ip,
                 record.domain or "-"))

    app_connections = len(tcpdump.samples)
    measured = len(mopeye.store.tcp())
    print("\nwire handshakes: %d, TCP measurements: %d "
          "(opportunistic: one measurement per app connection, "
          "zero probes)" % (app_connections, measured))


if __name__ == "__main__":
    main()
