#!/usr/bin/env python3
"""Render the paper's figures in the terminal.

Synthesises a small campaign and draws Figures 6-11 as ASCII charts:
CDFs for the RTT/DNS distributions, bar charts for users per country,
and the Figure 8 world map.

Run:  python examples/terminal_figures.py [scale]
"""

import sys

from repro.analysis import (
    app_rtt_cdfs,
    country_distribution,
    dns_cdfs_by_technology,
    isp_dns_cdfs,
    location_scatter,
    render_bars,
    render_cdf,
    render_map,
)
from repro.crowd import Campaign, CampaignConfig


def main(scale: float = 0.01) -> None:
    print("synthesising campaign at scale %g ..." % scale)
    store = Campaign(config=CampaignConfig(scale=scale,
                                           seed=2016)).run()

    print()
    print(render_cdf(app_rtt_cdfs(store),
                     title="Figure 9(a): apps' raw RTT CDFs"))
    print()
    print(render_cdf(dns_cdfs_by_technology(store), max_x=800,
                     title="Figure 10(b): DNS RTT by technology"))
    print()
    print(render_cdf(
        isp_dns_cdfs(store, ["Verizon", "Singtel"]), max_x=200,
        title="Figure 11 (excerpt): Verizon vs Singtel DNS"))
    print()
    top = country_distribution(store, top=10)
    print(render_bars(top, title="Figure 7: top-10 user countries"))
    print()
    print(render_map(location_scatter(store),
                     title="Figure 8: measurement locations"))


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.01)
