#!/usr/bin/env python3
"""Replay one workload trace under three relay configurations.

Generates a synthetic app-traffic trace, then replays the *identical*
trace with (a) no VPN, (b) MopEye, and (c) a ToyVpn-style 100 ms
sleep-loop relay -- and compares the app-observed connect latencies.
This is the controlled-workload methodology behind Table 3 /
section 4.1.2, exposed as a reusable tool.

Run:  python examples/trace_comparison.py
"""

import random
import statistics

from repro.baselines import toyvpn_config
from repro.core import MopEyeService
from repro.network import AppServer, DnsServer, DnsZone, Internet, wifi_profile
from repro.phone import AndroidDevice
from repro.phone.trace import TraceReplayer, WorkloadTrace
from repro.sim import Simulator

SERVER_IP = "198.51.100.80"
ENDPOINTS = [("com.app.mail", SERVER_IP, 443),
             ("com.app.news", SERVER_IP, 80),
             ("com.app.chat", SERVER_IP, 443)]


def build_world(seed=17):
    sim = Simulator()
    internet = Internet(sim)
    link = wifi_profile(sim, rng=random.Random(seed))
    device = AndroidDevice(sim, internet, link, sdk=23)
    internet.add_server(DnsServer(sim, "8.8.8.8", DnsZone()))
    internet.add_server(AppServer(sim, [SERVER_IP], name="srv"))
    return sim, device


def replay(trace, config=None, label="baseline"):
    sim, device = build_world()
    if config is not None:
        MopEyeService(device, config).start()
    elif label == "mopeye":
        MopEyeService(device).start()
    replayer = TraceReplayer(device)
    done = replayer.replay(trace)
    sim.run(until=3_600_000, stop_event=done)
    sim.run(until=sim.now + 5_000)
    connects = []
    for app in replayer._apps.values():
        connects.extend(duration for _ip, _port, duration, _t
                        in app.connect_samples)
    return replayer, connects


def main():
    trace = WorkloadTrace.generate(ENDPOINTS, duration_ms=60_000.0,
                                   events_per_minute=40, seed=3)
    print("trace: %d events over %.0f s across %d apps"
          % (len(trace), trace.duration_ms / 1000, len(trace.apps())))

    results = {}
    for label, config in (("no VPN", None),
                          ("MopEye", "default"),
                          ("ToyVpn (100ms poll)", toyvpn_config())):
        replayer, connects = replay(
            trace,
            config=None if config in (None, "default") else config,
            label="mopeye" if config == "default" else "x")
        results[label] = (replayer, connects)

    print("\n%-22s %10s %10s %10s %8s" % ("relay", "median", "p95",
                                          "mean", "events"))
    base_median = statistics.median(results["no VPN"][1])
    for label, (replayer, connects) in results.items():
        connects.sort()
        median = statistics.median(connects)
        p95 = connects[int(0.95 * (len(connects) - 1))]
        mean = statistics.mean(connects)
        print("%-22s %8.2fms %8.2fms %8.2fms %8d"
              % (label, median, p95, mean, replayer.completed))
    mop_median = statistics.median(results["MopEye"][1])
    toy_median = statistics.median(results["ToyVpn (100ms poll)"][1])
    print("\nMopEye adds %.2f ms to the median connect; the sleep-loop "
          "relay adds %.2f ms." % (mop_median - base_median,
                                   toy_median - base_median))


if __name__ == "__main__":
    main()
