#!/usr/bin/env python3
"""Automated diagnosis sweep: find the Whatsapps and Jios in a dataset.

Synthesises a campaign, then runs the diagnosis engine that
systematises the paper's case-study recipes (section 4.2.2): for every
sufficiently-measured app and operator it asks "slow relative to
peers?", and if so, localises the problem to the app's servers, the
ISP's core network, or the access network.

Run:  python examples/auto_diagnosis.py [scale]
"""

import sys

from repro.analysis import diagnose_all, format_table
from repro.crowd import Campaign, CampaignConfig


def main(scale: float = 0.02) -> None:
    print("synthesising campaign at scale %g ..." % scale)
    store = Campaign(config=CampaignConfig(scale=scale,
                                           seed=2016)).run()

    findings = diagnose_all(store, min_samples=max(100, int(2000
                                                            * scale)),
                            top=15)
    rows = [[f.kind, f.subject, f.verdict,
             f.median_ms, f.baseline_ms,
             "%.1fx" % f.slowdown if f.slowdown else "-"]
            for f in findings]
    print(format_table(
        ["Kind", "Subject", "Verdict", "Median (ms)", "Peers (ms)",
         "Slowdown"],
        rows, title="Diagnosis findings (worst first):"))
    print()
    for finding in findings[:5]:
        print("%s %s:" % (finding.kind, finding.subject))
        for line in finding.evidence:
            print("   - " + line)

    named = {f.subject for f in findings}
    print()
    print("expected case-study subjects found:",
          "Jio 4G" in named and "com.whatsapp" in named)


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.02)
