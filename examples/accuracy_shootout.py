#!/usr/bin/env python3
"""Accuracy shoot-out: MopEye vs MobiPerf vs tcpdump (Table 2 live).

Measures the same three destinations with MopEye's opportunistic
SYN/SYN-ACK timing and with MobiPerf-style active HTTP pings, each
checked against a tcpdump wire capture.  Also demonstrates the
'selector' ablation: what MopEye's accuracy would be if it took the
post-connect timestamp in the main event loop instead of a blocking
socket-connect thread (section 2.4's challenge C2).

Run:  python examples/accuracy_shootout.py
"""

import random

from repro.baselines import MobiPerf, TcpdumpCapture
from repro.core import MopEyeConfig, MopEyeService
from repro.network import AppServer, DnsServer, DnsZone, Internet, wifi_profile
from repro.phone import AndroidDevice, App
from repro.sim import Constant, Simulator

DESTINATIONS = [
    ("Google", "216.58.221.132", 0.0),
    ("Facebook", "31.13.79.251", 16.0),
    ("Dropbox", "108.160.166.126", 140.0),
]
ROUNDS = 10


def build_world(seed):
    sim = Simulator()
    internet = Internet(sim)
    link = wifi_profile(sim, rng=random.Random(seed), median_rtt_ms=4.0)
    device = AndroidDevice(sim, internet, link, sdk=23)
    internet.add_server(DnsServer(sim, "8.8.8.8", DnsZone()))
    for _name, ip, path in DESTINATIONS:
        internet.add_server(AppServer(sim, [ip], name=ip,
                                      path_oneway=Constant(path),
                                      accept_delay=Constant(0.05)))
    capture = TcpdumpCapture()
    internet.add_tap(capture.tap)
    return sim, internet, device, capture


def run_process(sim, generator, budget=3e6):
    process = sim.process(generator)
    sim.run(until=sim.now + budget)
    assert process.triggered
    return process.value


def measure_with_mopeye(connect_mode: str):
    sim, _internet, device, capture = build_world(seed=5)
    mopeye = MopEyeService(device,
                          MopEyeConfig(connect_mode=connect_mode))
    mopeye.start()
    app = App(device, "com.example.app")
    rows = []
    for name, ip, _path in DESTINATIONS:
        capture.clear()

        def run(ip=ip):
            for _ in range(ROUNDS):
                socket = yield from app.timed_connect(ip, 80)
                if socket is not None:
                    socket.send(b"ping\n")
                    yield socket.recv()
                    socket.close()
                yield sim.timeout(120.0)

        run_process(sim, run())
        wire = capture.mean_rtt(ip)
        measured = [r.rtt_ms for r in mopeye.store.tcp()
                    if r.dst_ip == ip]
        rows.append((name, wire, sum(measured) / len(measured)))
    return rows


def measure_with_mobiperf():
    sim, _internet, device, capture = build_world(seed=6)
    mobiperf = MobiPerf(device)
    rows = []
    for name, ip, _path in DESTINATIONS:
        capture.clear()

        def run(ip=ip):
            mean = yield from mobiperf.ping_run(ip, rounds=ROUNDS)
            return mean

        mean = run_process(sim, run())
        rows.append((name, capture.mean_rtt(ip), mean))
    return rows


def main():
    print("%-10s  %-28s  %-28s" % ("", "blocking-thread (MopEye)",
                                   "selector-loop (ablation)"))
    accurate = measure_with_mopeye("blocking_thread")
    sloppy = measure_with_mopeye("selector")
    for (name, wire_a, rtt_a), (_n, wire_s, rtt_s) in zip(accurate,
                                                          sloppy):
        print("%-10s  wire %7.2f meas %7.2f (d=%.2f)   "
              "wire %7.2f meas %7.2f (d=%.2f)"
              % (name, wire_a, rtt_a, abs(rtt_a - wire_a),
                 wire_s, rtt_s, abs(rtt_s - wire_s)))

    print("\nMobiPerf-style active HTTP ping:")
    for name, wire, reported in measure_with_mobiperf():
        print("%-10s  wire %7.2f reported %7.2f (d=%.2f)"
              % (name, wire, reported, abs(reported - wire)))
    print("\nPaper's Table 2: MopEye within 1 ms of tcpdump; "
          "MobiPerf off by 12-79 ms.")


if __name__ == "__main__":
    main()
