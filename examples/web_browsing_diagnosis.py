#!/usr/bin/env python3
"""Web-browsing diagnosis: the section 3.3 scenario end to end.

A Chrome-like app loads pages that each open a dozen connections to
different origins.  MopEye relays everything, measures per-origin RTTs,
and the lazy mapper attributes each connection while parsing
/proc/net/tcp* only a fraction of the time.  The script then prints a
per-origin latency report -- the kind of per-app diagnosis the paper
motivates -- plus the mapping statistics of Figure 5(b).

Run:  python examples/web_browsing_diagnosis.py
"""

import random
from collections import defaultdict

from repro.analysis import format_table
from repro.analysis.stats import median
from repro.core import MopEyeService
from repro.network import AppServer, DnsServer, DnsZone, Internet, wifi_profile
from repro.phone import AndroidDevice, WebBrowsingApp
from repro.sim import Constant, Simulator

# Each origin sits at a different distance (one-way path ms).
ORIGINS = [
    ("static.fastcdn.test", "198.51.100.10", 1.0),
    ("api.shop.test", "198.51.100.11", 8.0),
    ("img.shop.test", "198.51.100.12", 8.0),
    ("ads.tracker.test", "198.51.100.13", 60.0),
    ("fonts.fastcdn.test", "198.51.100.14", 1.0),
    ("analytics.slow.test", "198.51.100.15", 120.0),
]


def main():
    sim = Simulator()
    internet = Internet(sim)
    link = wifi_profile(sim, rng=random.Random(3))
    device = AndroidDevice(sim, internet, link, sdk=23)
    zone = DnsZone()
    for domain, ip, path in ORIGINS:
        zone.add(domain, ip)
        internet.add_server(AppServer(sim, [ip], name=domain,
                                      path_oneway=Constant(path)))
    internet.add_server(DnsServer(sim, "8.8.8.8", zone))

    mopeye = MopEyeService(device)
    mopeye.start()

    chrome = WebBrowsingApp(device, "com.android.chrome")
    pages = [[(ip, 443) for _domain, ip, _path in ORIGINS]
             for _ in range(12)]

    def session():
        # Resolve every origin once (so MopEye learns the domains),
        # then browse.
        for domain, _ip, _path in ORIGINS:
            yield device.resolve_process(domain)
        total = yield from chrome.browse(pages, page_think_ms=250.0)
        return total

    process = sim.process(session())
    sim.run(until=600_000)
    assert process.triggered

    # -- per-origin report ---------------------------------------------------
    by_domain = defaultdict(list)
    for record in mopeye.store.tcp():
        by_domain[record.domain or record.dst_ip].append(record.rtt_ms)
    rows = sorted(
        ((domain, len(rtts), median(rtts)) for domain, rtts
         in by_domain.items()),
        key=lambda row: -row[2])
    print(format_table(
        ["Origin", "Connections", "Median RTT (ms)"], rows,
        title="Per-origin RTT while browsing (worst first):"))

    slowest = rows[0]
    print("\nDiagnosis: %r dominates page latency (median %.0f ms)."
          % (slowest[0], slowest[2]))

    # -- lazy-mapping statistics (Figure 5(b)) -----------------------------------
    stats = mopeye.mapper.stats
    print("\nLazy packet-to-app mapping: %d socket-connect threads, "
          "%d proc parses, %.1f%% mitigation (paper: 67.8%%)."
          % (stats.threads, stats.parses,
             100 * stats.mitigation_rate))


if __name__ == "__main__":
    main()
