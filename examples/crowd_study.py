#!/usr/bin/env python3
"""The full section 4.2 crowdsourcing study, reproduced in one run.

Synthesises the measurement campaign (2,351 devices, 6,266 apps, 114
countries -- scaled down by default so it finishes in seconds), then
runs the entire analysis pipeline: dataset statistics, Figures 6-11,
Tables 5-6 and both case studies.

Run:  python examples/crowd_study.py [scale]
      (scale defaults to 0.02; the paper's full size is 1.0)
"""

import sys

from repro.analysis import (
    country_distribution,
    format_table,
    isp_dns_table,
    jio_analysis,
    measurements_per_app,
    measurements_per_user,
    representative_app_table,
    whatsapp_analysis,
)
from repro.analysis.coverage import dataset_statistics
from repro.analysis.dnsperf import dns_medians
from repro.analysis.perapp import (
    raw_rtt_medians,
    representative_packages_table_spec,
)
from repro.crowd import Campaign, CampaignConfig


def main(scale: float = 0.02) -> None:
    print("synthesising campaign at scale %g ..." % scale)
    campaign = Campaign(config=CampaignConfig(scale=scale, seed=2016))
    store = campaign.run()

    stats = dataset_statistics(store)
    print("\n== Dataset (section 4.2.1; paper: 5,252,758 records, "
          "2,351 devices, 6,266 apps, 114 countries) ==")
    for key, value in stats.items():
        print("  %-12s %d" % (key, value))

    print("\n== Figure 6: measurements per user / app ==")
    print("  users:", measurements_per_user(store, scale=scale))
    print("  apps: ", measurements_per_app(store, scale=scale))

    print("\n== Figure 7: top-10 countries ==")
    for country, count in country_distribution(store, top=10):
        print("  %-12s %d" % (country, count))

    print("\n== Figure 9: raw RTT medians (paper: all 65 / WiFi 58 / "
          "cellular 84 / LTE 76) ==")
    for name, value in raw_rtt_medians(store).items():
        print("  %-9s %.1f ms" % (name, value))

    print("\n== Table 5: representative apps ==")
    rows = representative_app_table(
        store, representative_packages_table_spec())
    print(format_table(
        ["Category", "App", "#RTT", "Median (ms)"],
        [[r["category"], r["app"], r["count"], r["median_ms"]]
         for r in rows]))

    print("\n== Figure 10: DNS medians (paper: all 42 / WiFi 33 / "
          "4G 56 / 3G 105 / 2G 755) ==")
    for name, value in dns_medians(store).items():
        print("  %-9s %.1f ms" % (name, value))

    print("\n== Table 6: LTE operators' DNS ==")
    print(format_table(
        ["ISP", "Country", "#RTT", "Median (ms)"],
        [[r["isp"], r["country"], r["count"], r["median_ms"]]
         for r in isp_dns_table(store)]))

    print("\n== Case 1: Whatsapp ==")
    whatsapp = whatsapp_analysis(store, scale=scale)
    print("  chat-domain median %.0f ms (paper 261), CDN median "
          "%.0f ms, app median %.0f ms (paper 133)"
          % (whatsapp["chat_median_ms"], whatsapp["cdn_median_ms"],
             whatsapp["app_median_ms"]))

    print("\n== Case 2: Jio ==")
    jio = jio_analysis(store, scale=scale, min_domain_count=50)
    print("  app median %.0f ms (paper 281) vs DNS median %.0f ms "
          "(paper 59); %d/%d domains faster on non-Jio LTE by "
          "%.0f ms on average (paper 63/71 by 138 ms)"
          % (jio["app_median_ms"], jio["dns_median_ms"],
             jio["domains_faster_elsewhere"],
             jio["comparable_domains"], jio["mean_gap_ms"]))


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.02)
