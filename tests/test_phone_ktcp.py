"""Kernel TCP/UDP socket tests (direct path, no VPN)."""

import pytest

from repro.netstack.dns import DNSMessage
from repro.phone.ktcp import (
    ConnectTimeout,
    SocketClosed,
    TCP_CLOSE,
    TCP_CLOSE_WAIT,
    TCP_ESTABLISHED,
    TCP_SYN_SENT,
)


class TestConnect:
    def test_connect_establishes(self, world):
        socket = world.device.create_tcp_socket(10001)

        def main():
            yield socket.connect("93.184.216.34", 80)
            return socket.state

        state = world.run_process(main())
        assert state == TCP_ESTABLISHED
        assert socket.connected_at is not None

    def test_connect_duration_close_to_link_rtt(self, world):
        socket = world.device.create_tcp_socket(10001)
        times = {}

        def main():
            times["start"] = world.sim.now
            yield socket.connect("93.184.216.34", 80)
            times["end"] = world.sim.now

        world.run_process(main())
        duration = times["end"] - times["start"]
        # WiFi one-way is lognormal(median 7 ms); RTT plus the server's
        # accept delay should land well inside 1..200 ms.
        assert 1.0 < duration < 200.0

    def test_connect_to_unrouted_ip_times_out(self, world):
        socket = world.device.create_tcp_socket(10001)
        outcome = {}

        def main():
            try:
                yield socket.connect("203.0.113.99", 80)
            except ConnectTimeout:
                outcome["timeout"] = True

        world.run_process(main(), until=5e6)
        assert outcome.get("timeout")
        assert socket.state == TCP_CLOSE

    def test_socket_appears_in_registry_while_syn_sent(self, world):
        socket = world.device.create_tcp_socket(10001)
        socket.connect("93.184.216.34", 80)
        assert socket.state == TCP_SYN_SENT
        assert socket in world.device.sockets()

    def test_double_connect_rejected(self, world):
        socket = world.device.create_tcp_socket(10001)
        socket.connect("93.184.216.34", 80)
        with pytest.raises(SocketClosed):
            socket.connect("93.184.216.34", 81)


class TestDataTransfer:
    def test_echo_roundtrip(self, world):
        socket = world.device.create_tcp_socket(10001)

        def main():
            yield socket.connect("93.184.216.34", 80)
            socket.send(b"hello echo\n")
            response = yield socket.recv()
            return response

        assert world.run_process(main()) == b"hello echo\n"

    def test_large_download_chunked_and_complete(self, world):
        socket = world.device.create_tcp_socket(10001)
        size = 100000

        def main():
            yield socket.connect("93.184.216.34", 80)
            socket.send(b"DOWNLOAD %d\n" % size)
            data = yield from socket.recv_exactly(size)
            return data

        data = world.run_process(main())
        assert len(data) == size
        assert socket.bytes_received == size

    def test_send_before_connect_rejected(self, world):
        socket = world.device.create_tcp_socket(10001)
        with pytest.raises(SocketClosed):
            socket.send(b"x")

    def test_recv_after_server_close_returns_eof(self, world):
        socket = world.device.create_tcp_socket(10001)

        def main():
            yield socket.connect("93.184.216.34", 80)
            socket.send(b"GET / HTTP/1.1\r\n\r\n")
            yield socket.recv()          # response page
            socket.close()               # we FIN; server FINs back
            eof = yield socket.recv()
            return eof

        assert world.run_process(main()) == b""


class TestClose:
    def test_full_close_sequence_reaches_closed(self, world):
        socket = world.device.create_tcp_socket(10001)

        def main():
            yield socket.connect("93.184.216.34", 80)
            socket.send(b"ping\n")
            yield socket.recv()
            socket.close()
            yield world.sim.timeout(2000)
            return socket.state

        state = world.run_process(main())
        # Server FINs back after our FIN -> we end in TIME_WAIT/CLOSE.
        from repro.phone.ktcp import TCP_TIME_WAIT
        assert state in (TCP_TIME_WAIT, TCP_CLOSE)

    def test_abort_sends_rst_and_closes(self, world):
        socket = world.device.create_tcp_socket(10001)

        def main():
            yield socket.connect("93.184.216.34", 80)
            socket.abort()
            return socket.state

        assert world.run_process(main()) == TCP_CLOSE
        assert socket not in world.device.sockets()


class TestUdp:
    def test_dns_query_roundtrip(self, world):
        socket = world.device.create_udp_socket(10001)

        def main():
            query = DNSMessage.query(42, "www.example.com")
            socket.sendto(query.encode(), "8.8.8.8", 53)
            payload, addr = yield socket.recvfrom()
            return DNSMessage.decode(payload), addr

        response, addr = world.run_process(main())
        assert addr == ("8.8.8.8", 53)
        assert response.txid == 42
        assert response.answers[0].address == "93.184.216.34"

    def test_nxdomain_for_unknown_name(self, world):
        from repro.netstack.dns import RCODE_NXDOMAIN
        socket = world.device.create_udp_socket(10001)

        def main():
            query = DNSMessage.query(1, "nope.invalid")
            socket.sendto(query.encode(), "8.8.8.8", 53)
            payload, _addr = yield socket.recvfrom()
            return DNSMessage.decode(payload)

        assert world.run_process(main()).rcode == RCODE_NXDOMAIN

    def test_closed_socket_rejects_io(self, world):
        socket = world.device.create_udp_socket(10001)
        socket.close()
        with pytest.raises(SocketClosed):
            socket.sendto(b"x", "8.8.8.8", 53)
        with pytest.raises(SocketClosed):
            socket.recvfrom()


class TestResolver:
    def test_device_resolver(self, world):
        def main():
            address = yield world.device.resolve_process("example.com")
            return address

        assert world.run_process(main()) == "93.184.216.34"

    def test_resolver_raises_on_nxdomain(self, world):
        from repro.phone.device import ResolveError
        outcome = {}

        def main():
            try:
                yield world.device.resolve_process("missing.invalid")
            except ResolveError:
                outcome["raised"] = True

        world.run_process(main())
        assert outcome.get("raised")
